"""The shipped examples must actually run (docs that can't rot).

Each example is executed in a subprocess with small arguments where it
accepts any; we assert on exit status and a recognizable line of output.
The long-running availability comparison is exercised at reduced scope by
its own marker-gated test.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=180):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "deterministic mapping" in out
    assert "replicas converged       : True" in out


def test_memory_analysis():
    out = run_example("memory_analysis.py")
    assert "bytes per znode" in out
    assert "ZooKeeper heap" in out


def test_elastic_backends():
    out = run_example("elastic_backends.py")
    assert "relocate" in out
    assert "300/300" in out


def test_trace_replay():
    out = run_example("trace_replay.py", "--ops", "300", "--procs", "4")
    assert "replayed 300 ops" in out
    assert "stat" in out


def test_mdtest_campaign_small():
    out = run_example("mdtest_campaign.py", "--procs", "8", "--items", "4")
    assert "Basic Lustre" in out
    assert "speedups" in out


def test_consistency_demo():
    out = run_example("consistency_demo.py", timeout=300)
    assert "consistent? False" in out          # the strawman diverges
    assert "all replicas consistent? True" in out


@pytest.mark.slow
def test_availability_comparison():
    out = run_example("availability_comparison.py", timeout=420)
    assert "longest metadata stall" in out
