"""POSIX-semantics conformance, run against every filesystem client.

The same behavioural contract must hold for the local FS, the Lustre
client, and the PVFS client (and, in tests/core, for DUFS itself) — this
is what lets the paper swap back-ends under one DUFS prototype.
"""


from repro.errors import (
    EEXIST,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    FSError,
)


def expect_err(code):
    class _Ctx:
        def __init__(self):
            self.err = None

    return code


def test_mkdir_stat_roundtrip(anyfs):
    def main():
        yield from anyfs.cli.mkdir("/d")
        st = yield from anyfs.cli.stat("/d")
        return st

    st = anyfs.run(main())
    assert st.is_dir
    assert st.st_nlink >= 2


def test_mkdir_eexist(anyfs):
    def main():
        yield from anyfs.cli.mkdir("/d")
        try:
            yield from anyfs.cli.mkdir("/d")
        except FSError as e:
            return e.err

    assert anyfs.run(main()) == EEXIST


def test_mkdir_missing_parent_enoent(anyfs):
    def main():
        try:
            yield from anyfs.cli.mkdir("/no/such/parent")
        except FSError as e:
            return e.err

    assert anyfs.run(main()) == ENOENT


def test_create_and_stat_file(anyfs):
    def main():
        yield from anyfs.cli.mkdir("/d")
        yield from anyfs.cli.create("/d/f")
        st = yield from anyfs.cli.stat("/d/f")
        return st

    st = anyfs.run(main())
    assert st.is_file
    assert st.st_size == 0


def test_stat_missing_enoent(anyfs):
    def main():
        try:
            yield from anyfs.cli.stat("/ghost")
        except FSError as e:
            return e.err

    assert anyfs.run(main()) == ENOENT


def test_unlink_then_stat_enoent(anyfs):
    def main():
        yield from anyfs.cli.create("/f")
        yield from anyfs.cli.unlink("/f")
        try:
            yield from anyfs.cli.stat("/f")
        except FSError as e:
            return e.err

    assert anyfs.run(main()) == ENOENT


def test_unlink_directory_eisdir(anyfs):
    def main():
        yield from anyfs.cli.mkdir("/d")
        try:
            yield from anyfs.cli.unlink("/d")
        except FSError as e:
            return e.err

    assert anyfs.run(main()) == EISDIR


def test_rmdir_nonempty_enotempty(anyfs):
    def main():
        yield from anyfs.cli.mkdir("/d")
        yield from anyfs.cli.create("/d/f")
        try:
            yield from anyfs.cli.rmdir("/d")
        except FSError as e:
            return e.err

    assert anyfs.run(main()) == ENOTEMPTY


def test_rmdir_file_enotdir(anyfs):
    def main():
        yield from anyfs.cli.create("/f")
        try:
            yield from anyfs.cli.rmdir("/f")
        except FSError as e:
            return e.err

    assert anyfs.run(main()) == ENOTDIR


def test_readdir_lists_entries(anyfs):
    def main():
        yield from anyfs.cli.mkdir("/d")
        yield from anyfs.cli.create("/d/f1")
        yield from anyfs.cli.mkdir("/d/sub")
        entries = yield from anyfs.cli.readdir("/d")
        return entries

    entries = anyfs.run(main())
    assert [(e.name, e.is_dir) for e in entries] == [("f1", False), ("sub", True)]


def test_rename_file(anyfs):
    def main():
        yield from anyfs.cli.mkdir("/d")
        yield from anyfs.cli.create("/d/old")
        yield from anyfs.cli.rename("/d/old", "/d/new")
        old = None
        try:
            yield from anyfs.cli.stat("/d/old")
            old = "exists"
        except FSError:
            pass
        st = yield from anyfs.cli.stat("/d/new")
        return old, st.is_file

    old, is_file = anyfs.run(main())
    assert old is None and is_file


def test_chmod_changes_permissions(anyfs):
    def main():
        yield from anyfs.cli.create("/f")
        yield from anyfs.cli.chmod("/f", 0o600)
        st = yield from anyfs.cli.stat("/f")
        return st

    st = anyfs.run(main())
    assert st.st_mode & 0o7777 == 0o600
    assert st.is_file


def test_truncate_sets_size(anyfs):
    def main():
        yield from anyfs.cli.create("/f")
        yield from anyfs.cli.truncate("/f", 4096)
        st = yield from anyfs.cli.stat("/f")
        return st.st_size

    assert anyfs.run(main()) == 4096


def test_access_existing(anyfs):
    def main():
        yield from anyfs.cli.create("/f")
        ok = yield from anyfs.cli.access("/f")
        try:
            yield from anyfs.cli.access("/ghost")
        except FSError as e:
            return ok, e.err

    ok, err = anyfs.run(main())
    assert ok and err == ENOENT


def test_symlink_readlink(anyfs):
    def main():
        yield from anyfs.cli.create("/target")
        yield from anyfs.cli.symlink("/target", "/link")
        t = yield from anyfs.cli.readlink("/link")
        return t

    assert anyfs.run(main()) == "/target"


def test_open_existing_file(anyfs):
    def main():
        yield from anyfs.cli.create("/f")
        fh = yield from anyfs.cli.open("/f")
        return fh

    assert anyfs.run(main()) is not None


def test_write_then_stat_size(anyfs):
    def main():
        yield from anyfs.cli.create("/f")
        n = yield from anyfs.cli.write("/f", 0, b"x" * 1000)
        st = yield from anyfs.cli.stat("/f")
        return n, st.st_size

    n, size = anyfs.run(main())
    assert n == 1000
    assert size == 1000


def test_two_clients_see_each_others_changes(anyfs):
    """No stale caching: client 1's create is visible to client 0."""
    c0, c1 = anyfs.clients
    order = []

    def writer():
        yield from c1.mkdir("/shared")
        yield from c1.create("/shared/from1")
        order.append("written")

    def reader():
        yield anyfs.cluster.sim.timeout(2.0)
        st = yield from c0.stat("/shared/from1")
        order.append(("seen", st.is_file))

    anyfs.run_all(writer(), reader())
    assert order == ["written", ("seen", True)]


def test_deep_tree(anyfs):
    def main():
        path = ""
        for d in range(6):
            path += f"/l{d}"
            yield from anyfs.cli.mkdir(path)
        yield from anyfs.cli.create(path + "/leaf")
        st = yield from anyfs.cli.stat(path + "/leaf")
        return st.is_file

    assert anyfs.run(main())
