"""Lustre-specific behaviour: single-MDS bottleneck, DLM, glimpse."""


from repro.models.params import LustreParams

from .conftest import FSHarness


def test_single_mds_serializes_all_metadata(lustre):
    """All metadata ops from both client nodes land on the one MDS."""
    c0, c1 = lustre.clients

    def worker(cli, base):
        yield from cli.mkdir(f"/{base}")
        for i in range(5):
            yield from cli.create(f"/{base}/f{i}")

    lustre.run_all(worker(c0, "a"), worker(c1, "b"))
    assert lustre.fs.mds.stats["ops"] >= 12
    assert lustre.fs.mds.ns.count_files() == 10


def test_dentry_cache_avoids_lookup_rpcs(lustre):
    cli = lustre.cli

    def main():
        yield from cli.mkdir("/a")
        yield from cli.mkdir("/a/b")
        before = cli.stats["lookups"]
        for i in range(10):
            yield from cli.create(f"/a/b/f{i}")
        return cli.stats["lookups"] - before

    # Parents were just created by us -> fully cached, zero lookups.
    assert lustre.run(main()) == 0


def test_cross_client_mutation_revokes_locks(lustre):
    """Client 1 creating in a dir client 0 has cached must revoke."""
    c0, c1 = lustre.clients
    log = []

    def setup_and_watch():
        yield from c0.mkdir("/shared")
        yield from c0.create("/shared/seed")   # c0 now caches /shared lock
        log.append(("c0-revocations-before", c0.stats["revocations"]))

    def intruder():
        yield lustre.cluster.sim.timeout(1.0)
        yield from c1.create("/shared/other")  # must revoke c0's lock

    lustre.run_all(setup_and_watch(), intruder())
    assert c0.stats["revocations"] >= 1
    assert lustre.fs.mds.dlm.stats["revokes"] >= 1


def test_revoked_client_pays_lookups_again(lustre):
    """The lock on /d guards c0's cached dentries *inside* /d: once c1
    mutates /d, c0 must re-lookup /d/sub before operating under it."""
    c0, c1 = lustre.clients

    def phase0():
        yield from c0.mkdir("/d")
        yield from c0.mkdir("/d/sub")
        yield from c0.create("/d/sub/f0")

    lustre.run(phase0())

    def intrude():
        yield from c1.create("/d/from-c1")  # revokes c0's lock on /d

    lustre.run(intrude(), node_index=1)

    def phase1():
        before = c0.stats["lookups"]
        yield from c0.create("/d/sub/f1")
        return c0.stats["lookups"] - before

    assert lustre.run(phase1()) >= 1  # had to re-resolve /d/sub


def test_dlm_disabled_ablation():
    params = LustreParams(dlm_enabled=False)
    h = FSHarness("lustre", params=params)
    c0, c1 = h.clients

    def w0():
        yield from c0.mkdir("/d")
        for i in range(5):
            yield from c0.create(f"/d/a{i}")

    def w1():
        yield h.cluster.sim.timeout(0.5)
        for i in range(5):
            yield from c1.create(f"/d/b{i}")

    h.run_all(w0(), w1())
    assert c0.stats["revocations"] == 0
    assert h.fs.mds.dlm.stats["revokes"] == 0


def test_file_stat_pays_oss_glimpse(lustre):
    cli = lustre.cli

    def main():
        yield from cli.create("/f")
        yield from cli.write("/f", 0, b"z" * 500)
        st = yield from cli.stat("/f")
        return st.st_size

    assert lustre.run(main()) == 500
    # The write and the glimpse both hit an OSS.
    assert sum(len(o.objects) for o in lustre.fs.oss) == 1


def test_unlink_destroys_oss_object(lustre):
    cli = lustre.cli

    def main():
        yield from cli.create("/f")
        yield from cli.write("/f", 0, b"z")
        yield from cli.unlink("/f")
        yield lustre.cluster.sim.timeout(0.5)  # async destroy

    lustre.run(main())
    assert sum(len(o.objects) for o in lustre.fs.oss) == 0


def test_mds_throughput_saturates_with_offered_load():
    """More client processes than MDS capacity -> throughput plateaus."""
    done = {8: 0, 32: 0}

    for procs in (8, 32):
        hh = FSHarness("lustre", seed=procs)
        counter = [0]

        def worker(k, c=None, hh=hh, counter=counter):
            cli = hh.clients[k % 2]
            yield from cli.mkdir(f"/w{k}")
            while hh.cluster.sim.now < 1.0:
                yield from cli.create(f"/w{k}/f{counter[0]}")
                counter[0] += 1

        for k in range(procs):
            hh.client_nodes[k % 2].spawn(worker(k))
        hh.cluster.sim.run(until=1.0)
        done[procs] = counter[0]

    # 4x the processes must NOT give 4x throughput (single-MDS ceiling).
    assert done[32] < done[8] * 2.5
    assert done[8] > 100  # sanity: the system actually made progress
