"""Unit tests for the POSIX namespace engine."""

import pytest

from repro.errors import (
    EEXIST,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    FSError,
)
from repro.pfs.namespace import Namespace


@pytest.fixture
def ns():
    n = Namespace()
    n.mkdir("/a", 0o755, 1.0)
    n.mkdir("/a/b", 0o755, 2.0)
    n.create("/a/f", 0o644, 3.0)
    return n


def err(fn, *args):
    with pytest.raises(FSError) as ei:
        fn(*args)
    return ei.value.err


def test_lookup_root(ns):
    assert ns.lookup("/").is_dir


def test_mkdir_create_stat(ns):
    st = ns.stat("/a/b")
    assert st.is_dir
    st = ns.stat("/a/f")
    assert st.is_file
    assert st.st_size == 0


def test_mkdir_errors(ns):
    assert err(ns.mkdir, "/a", 0o755, 5.0) == EEXIST
    assert err(ns.mkdir, "/zz/y", 0o755, 5.0) == ENOENT
    assert err(ns.mkdir, "/a/f/x", 0o755, 5.0) == ENOTDIR


def test_create_errors(ns):
    assert err(ns.create, "/a/f", 0o644, 5.0) == EEXIST
    assert err(ns.create, "/missing/f", 0o644, 5.0) == ENOENT


def test_nlink_accounting(ns):
    assert ns.stat("/a").st_nlink == 3  # ., .., b
    ns.mkdir("/a/c", 0o755, 4.0)
    assert ns.stat("/a").st_nlink == 4
    ns.rmdir("/a/c", 5.0)
    assert ns.stat("/a").st_nlink == 3


def test_rmdir_semantics(ns):
    assert err(ns.rmdir, "/a", 9.0) == ENOTEMPTY
    assert err(ns.rmdir, "/a/f", 9.0) == ENOTDIR
    assert err(ns.rmdir, "/nope", 9.0) == ENOENT
    ns.rmdir("/a/b", 9.0)
    assert not ns.exists("/a/b")


def test_unlink_semantics(ns):
    assert err(ns.unlink, "/a/b", 9.0) == EISDIR
    assert err(ns.unlink, "/ghost", 9.0) == ENOENT
    ns.unlink("/a/f", 9.0)
    assert not ns.exists("/a/f")


def test_rename_file(ns):
    ns.rename("/a/f", "/a/b/g", 9.0)
    assert ns.exists("/a/b/g")
    assert not ns.exists("/a/f")


def test_rename_overwrites_file(ns):
    ns.create("/a/b/target", 0o644, 4.0)
    ino_src = ns.lookup("/a/f").ino
    ns.rename("/a/f", "/a/b/target", 9.0)
    assert ns.lookup("/a/b/target").ino == ino_src


def test_rename_dir_onto_nonempty_dir_fails(ns):
    ns.mkdir("/d2", 0o755, 4.0)
    ns.mkdir("/d2/kid", 0o755, 4.5)
    assert err(ns.rename, "/a/b", "/d2", 9.0) == ENOTEMPTY


def test_rename_dir_onto_empty_dir(ns):
    ns.mkdir("/d2", 0o755, 4.0)
    ns.rename("/a/b", "/d2", 9.0)
    assert ns.lookup("/d2").is_dir
    assert not ns.exists("/a/b")


def test_rename_type_mismatch(ns):
    ns.mkdir("/d2", 0o755, 4.0)
    assert err(ns.rename, "/a/f", "/d2", 9.0) == EISDIR
    assert err(ns.rename, "/a/b", "/a/f", 9.0) == ENOTDIR


def test_rename_into_own_subtree_rejected(ns):
    assert err(ns.rename, "/a", "/a/b/inside", 9.0) == EINVAL


def test_rename_dir_moves_subtree(ns):
    ns.create("/a/b/deep", 0o644, 4.0)
    ns.rename("/a", "/renamed", 9.0)
    assert ns.exists("/renamed/b/deep")


def test_symlink_and_readlink(ns):
    ns.symlink("/a/f", "/link", 5.0)
    assert ns.readlink("/link") == "/a/f"
    st = ns.stat("/link")
    assert st.is_symlink
    # resolution through symlinked dir component
    ns.symlink("/a", "/adir", 6.0)
    assert ns.lookup("/adir/f").ino == ns.lookup("/a/f").ino


def test_readlink_non_symlink_is_einval(ns):
    assert err(ns.readlink, "/a/f") == EINVAL


def test_chmod(ns):
    ns.chmod("/a/f", 0o600, 9.0)
    assert ns.stat("/a/f").st_mode & 0o7777 == 0o600
    # file-type bits survive
    assert ns.stat("/a/f").is_file


def test_truncate(ns):
    ns.truncate("/a/f", 100, 9.0)
    assert ns.stat("/a/f").st_size == 100
    assert err(ns.truncate, "/a/b", 5, 9.0) == EISDIR


def test_readdir_sorted(ns):
    ns.create("/a/z", 0o644, 4.0)
    ns.create("/a/0", 0o644, 4.0)
    names = [e.name for e in ns.readdir("/a")]
    assert names == ["0", "b", "f", "z"]
    assert err(ns.readdir, "/a/f") == ENOTDIR


def test_counts(ns):
    assert ns.count_dirs() == 3  # /, /a, /a/b
    assert ns.count_files() == 1


def test_mtime_updates_on_mutation(ns):
    before = ns.stat("/a").st_mtime
    ns.create("/a/new", 0o644, 50.0)
    assert ns.stat("/a").st_mtime == 50.0 > before
