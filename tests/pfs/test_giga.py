"""GIGA+ distributed directory: addressing, splits, stale bitmaps,
and the availability trade-off the paper calls out (§VI)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EEXIST, ENOENT, FSError
from repro.pfs.giga import build_giga
from repro.pfs.giga.service import (
    MAX_DEPTH,
    bit,
    hash_bits,
    partition_for,
    prefix_id,
)
from repro.sim import Cluster


def make(n_servers=4, split_threshold=50, seed=0):
    cluster = Cluster(seed=seed)
    cnodes = [cluster.add_node(f"c{i}") for i in range(2)]
    svc = build_giga(cluster, n_servers=n_servers,
                     split_threshold=split_threshold)
    return cluster, cnodes, svc


def run(cluster, node, gen):
    proc = node.spawn(gen)
    return cluster.sim.run(until=proc)


# -- addressing math ---------------------------------------------------------

def test_partition_for_empty_bitmap_is_root():
    assert partition_for(hash_bits("x"), set()) == 0


def test_partition_for_follows_splits():
    # Split root (creates 1): names with b0=1 go to partition 1.
    bitmap = {1}
    h1 = next(h for h in map(hash_bits, (f"n{i}" for i in range(100)))
              if bit(h, 0) == 1)
    h0 = next(h for h in map(hash_bits, (f"n{i}" for i in range(100)))
              if bit(h, 0) == 0)
    assert partition_for(h1, bitmap) == 1
    assert partition_for(h0, bitmap) == 0
    # Split partition 1 at depth 1 (creates 1 | 2 = 3).
    bitmap.add(3)
    if bit(h1, 1):
        assert partition_for(h1, bitmap) == 3
    else:
        assert partition_for(h1, bitmap) == 1


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 2**32 - 1),
       st.sets(st.integers(1, 2**10), max_size=32))
def test_partition_id_always_matches_prefix(h, bitmap):
    """Invariant: the partition chosen for h is always a prefix-id of h
    at the partition's implied depth (bitmap may be arbitrary garbage —
    the walk only follows children consistent with h's bits)."""
    pid = partition_for(h, bitmap)
    depth = max((k + 1 for k in range(MAX_DEPTH)
                 if pid & (1 << k)), default=0)
    assert prefix_id(h, depth) & pid == pid  # pid's set bits match h's


# -- behaviour ---------------------------------------------------------------

def test_insert_lookup_remove():
    cluster, cnodes, svc = make()
    cli = svc.client(cnodes[0])

    def main():
        yield from cli.insert("alpha")
        yield from cli.lookup("alpha")
        try:
            yield from cli.insert("alpha")
        except FSError as e:
            dup = e.err
        yield from cli.remove("alpha")
        try:
            yield from cli.lookup("alpha")
        except FSError as e:
            return dup, e.err

    dup, gone = run(cluster, cnodes[0], main())
    assert dup == EEXIST and gone == ENOENT


def test_partitions_split_and_spread():
    cluster, cnodes, svc = make(n_servers=4, split_threshold=40)
    cli = svc.client(cnodes[0])

    def main():
        for i in range(600):
            yield from cli.insert(f"file-{i:05d}")

    run(cluster, cnodes[0], main())
    assert svc.total_entries() == 600
    assert svc.stats["splits"] >= 3
    # Partitions landed on several servers, and no partition is huge.
    populated = [n for n in svc.partitions_per_server() if n > 0]
    assert len(populated) >= 3
    for s in svc.servers:
        for pid, table in s.partitions.items():
            assert len(table) <= 40 * 2  # threshold + in-flight slack


def test_entries_stay_reachable_across_splits():
    cluster, cnodes, svc = make(split_threshold=30)
    cli = svc.client(cnodes[0])

    def main():
        for i in range(300):
            yield from cli.insert(f"k{i}")
        found = 0
        for i in range(300):
            yield from cli.lookup(f"k{i}")
            found += 1
        return found

    assert run(cluster, cnodes[0], main()) == 300


def test_stale_client_learns_lazily():
    """A second client with an empty bitmap addresses the root partition,
    gets bounced, refreshes, retries — GIGA+'s lazy propagation."""
    cluster, cnodes, svc = make(split_threshold=25)
    writer = svc.client(cnodes[0])

    def fill():
        for i in range(200):
            yield from writer.insert(f"z{i}")

    run(cluster, cnodes[0], fill())
    assert svc.stats["splits"] >= 2
    fresh = svc.client(cnodes[1])

    def probe():
        ok = 0
        for i in range(0, 200, 10):
            yield from fresh.lookup(f"z{i}")
            ok += 1
        return ok

    assert run(cluster, cnodes[1], probe()) == 20
    assert fresh.stats["retries"] >= 1  # bounced at least once
    assert fresh.bitmap == svc.bitmap   # converged


def test_no_replication_means_unavailability_on_server_loss():
    """The paper's §VI criticism: 'if the server or the partition goes
    down ... the files are not accessible anymore' — unlike DUFS, whose
    ZooKeeper metadata survives minority failures."""
    cluster, cnodes, svc = make(n_servers=4, split_threshold=30, seed=2)
    cli = svc.client(cnodes[0])

    def fill():
        for i in range(400):
            yield from cli.insert(f"v{i}")

    run(cluster, cnodes[0], fill())
    victim = max(svc.servers, key=lambda s: sum(len(t)
                 for t in s.partitions.values()))
    lost_entries = sum(len(t) for t in victim.partitions.values())
    assert lost_entries > 0
    victim.node.crash()
    cli.rpc_timeout = 0.3

    from repro.sim.rpc import RpcTimeout

    def probe():
        unreachable = 0
        for i in range(0, 400, 7):
            try:
                yield from cli.lookup(f"v{i}")
            except (RpcTimeout, FSError):
                unreachable += 1
        return unreachable

    unreachable = run(cluster, cnodes[0], probe())
    assert unreachable > 0  # a slice of the namespace simply vanished
