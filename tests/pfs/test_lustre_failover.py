"""Lustre active/standby MDS failover (paper §III-A).

"Most parallel file systems have a single MDS, with a fail-over MDS that
becomes operational if the primary server becomes nonfunctional. Only one
MDS is operational at a given point in time."
"""

import pytest

from repro.errors import ENOENT, FSError
from repro.models.params import LustreParams
from repro.pfs.lustre import build_lustre
from repro.sim import Cluster


def make_failover_fs(seed=0):
    params = LustreParams(client_rpc_timeout=0.5, failover_takeover_delay=1.0)
    cluster = Cluster(seed=seed)
    nodes = [cluster.add_node(f"c{i}") for i in range(2)]
    fs = build_lustre(cluster, "ha", params=params, with_standby=True)
    return cluster, nodes, fs


def run(cluster, node, gen):
    proc = node.spawn(gen)
    return cluster.sim.run(until=proc)


def test_failover_requires_standby():
    cluster = Cluster(seed=0)
    fs = build_lustre(cluster, "nostandby")
    with pytest.raises(RuntimeError):
        fs.failover()


def test_namespace_survives_failover():
    cluster, nodes, fs = make_failover_fs()
    cli = fs.client(nodes[0])

    def phase1():
        yield from cli.mkdir("/data")
        yield from cli.create("/data/f1")

    run(cluster, nodes[0], phase1())
    fs.failover()
    cluster.sim.run(until=cluster.sim.now + 2.0)

    def phase2():
        st = yield from cli.stat("/data/f1")
        yield from cli.create("/data/f2")  # mutations work on the standby
        entries = yield from cli.readdir("/data")
        return st.is_file, [e.name for e in entries]

    is_file, names = run(cluster, nodes[0], phase2())
    assert is_file
    assert names == ["f1", "f2"]
    assert fs.mds.node is fs.standby_node


def test_client_blocks_then_recovers_through_failover():
    """An operation issued while the primary is dead retries until the
    standby takes over — the service gap equals the takeover delay."""
    cluster, nodes, fs = make_failover_fs()
    cli = fs.client(nodes[0])

    def setup():
        yield from cli.mkdir("/d")

    run(cluster, nodes[0], setup())
    fs.failover()
    t0 = cluster.sim.now

    def during():
        yield from cli.create("/d/file")  # primary is dead right now
        return cluster.sim.now - t0

    gap = run(cluster, nodes[0], during())
    assert gap >= fs.params.failover_takeover_delay * 0.9
    assert fs.mds.ns.exists("/d/file")


def test_failover_clears_client_caches():
    cluster, nodes, fs = make_failover_fs()
    cli = fs.client(nodes[0])

    def setup():
        yield from cli.mkdir("/a")
        yield from cli.mkdir("/a/b")

    run(cluster, nodes[0], setup())
    assert len(cli.dentries) > 1
    fs.failover()
    cluster.sim.run(until=cluster.sim.now + 2.0)
    assert cli.dentries == {"/": 1}

    def after():
        before = cli.stats["lookups"]
        yield from cli.create("/a/b/f")  # must re-resolve /a and /a/b
        return cli.stats["lookups"] - before

    assert run(cluster, nodes[0], after()) >= 2


def test_errors_still_posix_after_failover():
    cluster, nodes, fs = make_failover_fs()
    cli = fs.client(nodes[0])

    def setup():
        yield from cli.mkdir("/d")

    run(cluster, nodes[0], setup())
    fs.failover()
    cluster.sim.run(until=cluster.sim.now + 2.0)

    def after():
        try:
            yield from cli.stat("/ghost")
        except FSError as e:
            return e.err

    assert run(cluster, nodes[0], after()) == ENOENT
