"""PVFS-specific behaviour: handle partitioning, resolve cost, sync txns."""


from repro.models.params import PVFSParams

from .conftest import FSHarness


def test_metadata_spread_across_servers(pvfs):
    cli = pvfs.cli

    def main():
        yield from cli.mkdir("/d")
        for i in range(24):
            yield from cli.create(f"/d/f{i}")

    pvfs.run(main())
    with_objects = [s for s in pvfs.fs.servers if len(s.objects) > 0]
    # Datafiles land on every server; metadata spread over several.
    assert len(with_objects) == len(pvfs.fs.servers)


def test_create_allocates_datafile_on_every_server(pvfs):
    cli = pvfs.cli
    n = len(pvfs.fs.servers)

    def main():
        yield from cli.create("/f")

    pvfs.run(main())
    from repro.pfs.pvfs.server import DFILE_T
    dfiles = sum(1 for s in pvfs.fs.servers
                 for o in s.objects.values() if o.kind == DFILE_T)
    assert dfiles == n


def test_no_client_cache_resolve_rpcs_grow_with_depth(pvfs):
    cli = pvfs.cli

    def main():
        yield from cli.mkdir("/a")
        yield from cli.mkdir("/a/b")
        yield from cli.mkdir("/a/b/c")
        yield from cli.create("/a/b/c/f")
        base = cli.stats["rpcs"]
        yield from cli.stat("/a/b/c/f")   # resolve 4 + getattr + dfiles
        deep = cli.stats["rpcs"] - base
        base = cli.stats["rpcs"]
        yield from cli.stat("/a")         # resolve 1 + getattr
        shallow = cli.stats["rpcs"] - base
        return deep, shallow

    deep, shallow = pvfs.run(main())
    assert shallow == 2
    assert deep >= 5 + len(pvfs.fs.servers)
    # Crucially: a REPEATED stat pays the same cost (no cache).
    def again():
        base = cli.stats["rpcs"]
        yield from cli.stat("/a")
        return cli.stats["rpcs"] - base

    assert pvfs.run(again()) == shallow


def test_mutations_pay_sync_disk_txns(pvfs):
    cli = pvfs.cli

    def main():
        start = pvfs.cluster.sim.now
        yield from cli.mkdir("/slow")
        return pvfs.cluster.sim.now - start

    elapsed = pvfs.run(main())
    # mkdir = dir-object txn + dirent txn, each >= disk_txn
    assert elapsed >= pvfs.fs.params.disk_txn


def test_reads_do_not_touch_disk(pvfs):
    cli = pvfs.cli

    def setup():
        yield from cli.mkdir("/d")

    pvfs.run(setup())
    txns_before = sum(s.stats["txns"] for s in pvfs.fs.servers)

    def reads():
        for _ in range(5):
            yield from cli.stat("/d")

    pvfs.run(reads())
    assert sum(s.stats["txns"] for s in pvfs.fs.servers) == txns_before


def test_failed_create_leaves_no_orphans(pvfs):
    cli = pvfs.cli

    def main():
        yield from cli.create("/f")
        objs = pvfs.fs.total_objects()
        try:
            yield from cli.create("/f")  # EEXIST on crdirent
        except Exception:
            pass
        return objs

    objs_after_first = pvfs.run(main())
    # Second create rolled its orphan objects back.
    assert pvfs.fs.total_objects() == objs_after_first


def test_rename_overwrite(pvfs):
    cli = pvfs.cli

    def main():
        yield from cli.create("/src")
        yield from cli.create("/dst")
        before = pvfs.fs.total_objects()
        yield from cli.rename("/src", "/dst")
        st = yield from cli.stat("/dst")
        return before, st.is_file

    before, is_file = pvfs.run(main())
    assert is_file
    # The overwritten file's meta+datafiles were removed.
    n = len(pvfs.fs.servers)
    assert pvfs.fs.total_objects() == before - (1 + n)


def test_bounded_server_parallelism():
    """server_cores=1 means a server handles one request at a time."""
    params = PVFSParams(server_cores=1, getattr_cpu=5e-3)
    h = FSHarness("pvfs", params=params, n_servers=1)
    cli = h.cli

    def setup():
        yield from cli.mkdir("/d")

    h.run(setup())
    t0 = h.cluster.sim.now

    def stat_worker():
        yield from cli.stat("/d")

    for _ in range(4):
        h.client_nodes[0].spawn(stat_worker())
    h.cluster.run()
    # 4 stats, each with a 5 ms getattr, all serialized on the single
    # worker ≈ 20 ms; a fully parallel server would take ~5 ms.
    assert h.cluster.sim.now - t0 >= 0.018
