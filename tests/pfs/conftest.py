"""Shared harness for filesystem-client conformance tests."""

import pytest

from repro.sim import Cluster


class FSHarness:
    """A cluster with one filesystem under test and client helpers."""

    def __init__(self, kind: str, seed: int = 0, **kwargs):
        self.cluster = Cluster(seed=seed)
        self.client_nodes = [self.cluster.add_node(f"c{i}") for i in range(2)]
        if kind == "lustre":
            from repro.pfs.lustre import build_lustre
            self.fs = build_lustre(self.cluster, "testfs", **kwargs)
            self.clients = [self.fs.client(n) for n in self.client_nodes]
        elif kind == "pvfs":
            from repro.pfs.pvfs import build_pvfs
            self.fs = build_pvfs(self.cluster, "testfs", **kwargs)
            self.clients = [self.fs.client(n) for n in self.client_nodes]
        elif kind == "local":
            from repro.pfs.localfs import LocalFS
            self.fs = LocalFS(self.client_nodes[0])
            self.clients = [self.fs.client(), self.fs.client()]
        else:
            raise ValueError(kind)

    @property
    def cli(self):
        return self.clients[0]

    def run(self, gen, node_index=0):
        proc = self.client_nodes[node_index].spawn(gen)
        return self.cluster.sim.run(until=proc)

    def run_all(self, *gens):
        procs = [self.client_nodes[i % 2].spawn(g) for i, g in enumerate(gens)]
        self.cluster.run()
        return [p.value for p in procs]


@pytest.fixture(params=["local", "lustre", "pvfs"])
def anyfs(request):
    return FSHarness(request.param)


@pytest.fixture
def lustre():
    return FSHarness("lustre")


@pytest.fixture
def pvfs():
    return FSHarness("pvfs")
