"""Clustered-MDS (CMD) model: semantics, partitioning, global-lock cost."""


from repro.errors import EEXIST, EISDIR, ENOENT, ENOTEMPTY, FSError
from repro.pfs.cmd import build_cmd
from repro.pfs.cmd.server import owner_index
from repro.sim import Cluster


def make(n_mds=2, seed=0):
    cluster = Cluster(seed=seed)
    nodes = [cluster.add_node(f"c{i}") for i in range(2)]
    fs = build_cmd(cluster, "cmd", n_mds=n_mds)
    return cluster, nodes, fs


def run(cluster, node, gen):
    proc = node.spawn(gen)
    return cluster.sim.run(until=proc)


def test_basic_namespace_ops():
    cluster, nodes, fs = make()
    cli = fs.client(nodes[0])

    def main():
        yield from cli.mkdir("/a")
        yield from cli.mkdir("/a/b")
        yield from cli.create("/a/b/f")
        st = yield from cli.stat("/a/b/f")
        entries = yield from cli.readdir("/a/b")
        yield from cli.unlink("/a/b/f")
        yield from cli.rmdir("/a/b")
        yield from cli.rmdir("/a")
        return st.is_file, [e.name for e in entries]

    is_file, names = run(cluster, nodes[0], main())
    assert is_file and names == ["f"]
    assert fs.total_dirs() == 1  # only "/"


def test_posix_errors():
    cluster, nodes, fs = make()
    cli = fs.client(nodes[0])

    def main():
        errs = []
        for op, code in [
            (cli.stat("/ghost"), ENOENT),
            (cli.mkdir("/no/parent"), ENOENT),
        ]:
            try:
                yield from op
            except FSError as e:
                errs.append(e.err == code)
        yield from cli.mkdir("/d")
        yield from cli.create("/d/f")
        try:
            yield from cli.mkdir("/d")
        except FSError as e:
            errs.append(e.err == EEXIST)
        try:
            yield from cli.rmdir("/d")
        except FSError as e:
            errs.append(e.err == ENOTEMPTY)
        try:
            yield from cli.unlink("/d")
        except FSError as e:
            errs.append(e.err == EISDIR)
        return errs

    assert run(cluster, nodes[0], main()) == [True] * 5


def test_directories_partition_across_servers():
    cluster, nodes, fs = make(n_mds=4)
    cli = fs.client(nodes[0])

    def main():
        for i in range(24):
            yield from cli.mkdir(f"/d{i}")

    run(cluster, nodes[0], main())
    populated = [s for s in fs.servers if len(s.dirs) > 0]
    assert len(populated) >= 3  # hash spreads dir objects around


def test_cross_server_mkdir_takes_global_lock():
    cluster, nodes, fs = make(n_mds=2)
    cli = fs.client(nodes[0])
    n = len(fs.server_endpoints)

    # Find a path whose dir object hashes away from its parent.
    cross = next(f"/x{i}" for i in range(100)
                 if owner_index(f"/x{i}", n) != owner_index("/", n))
    same = next(f"/y{i}" for i in range(100)
                if owner_index(f"/y{i}", n) == owner_index("/", n))

    def main():
        yield from cli.mkdir(same)
        before = fs.lock_server.stats["acquisitions"]
        yield from cli.mkdir(cross)
        return before, fs.lock_server.stats["acquisitions"]

    before, after = run(cluster, nodes[0], main())
    assert before == 0      # same-server mkdir: fast path
    assert after == 1       # cross-server mkdir: global lock


def test_rename_always_locks_globally():
    cluster, nodes, fs = make()
    cli = fs.client(nodes[0])

    def main():
        yield from cli.create("/f")
        yield from cli.rename("/f", "/g")
        st = yield from cli.stat("/g")
        return st.is_file, fs.lock_server.stats["acquisitions"]

    is_file, locks = run(cluster, nodes[0], main())
    assert is_file and locks == 1


def test_failed_cross_server_mkdir_rolls_back_dirent():
    cluster, nodes, fs = make()
    cli = fs.client(nodes[0])
    n = len(fs.server_endpoints)
    cross = next(f"/x{i}" for i in range(100)
                 if owner_index(f"/x{i}", n) != owner_index("/", n))

    def main():
        yield from cli.mkdir(cross)
        # Force the second phase to fail: adopt_dir EEXISTs.
        try:
            yield from cli.mkdir(cross)
        except FSError as e:
            pass
        entries = yield from cli.readdir("/")
        return [e.name for e in entries]

    names = run(cluster, nodes[0], main())
    assert names.count(cross.lstrip("/")) == 1  # no duplicate dirent


def test_global_lock_serializes_concurrent_cross_server_mkdirs():
    """The paper's critique, measured: cross-MDS mkdirs cannot overlap."""
    cluster, nodes, fs = make(n_mds=4, seed=3)
    n = len(fs.server_endpoints)
    cross_paths = [p for p in (f"/c{i}" for i in range(200))
                   if owner_index(p, n) != owner_index("/", n)][:24]
    done = []

    def worker(paths, k):
        cli = fs.client(nodes[k % 2])
        for p in paths:
            yield from cli.mkdir(p)
            done.append(cluster.sim.now)

    chunk = len(cross_paths) // 4
    for k in range(4):
        nodes[k % 2].spawn(worker(cross_paths[k * chunk:(k + 1) * chunk], k))
    cluster.run()
    assert fs.lock_server.stats["acquisitions"] == len(cross_paths)
    # Throughput is bounded by serialized lock-hold time, NOT by MDS count:
    # each hold spans two RPCs + journal, ~1ms+; 24 ops take > 15 ms.
    assert max(done) - min(done) > 0.01
