"""Property-based tests for the POSIX namespace engine (incl. rename)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import FSError
from repro.pfs.namespace import Namespace

names = st.sampled_from(["a", "b", "c"])
paths = st.lists(names, min_size=1, max_size=3).map(
    lambda cs: "/" + "/".join(cs))

ops = st.one_of(
    st.tuples(st.just("mkdir"), paths),
    st.tuples(st.just("create"), paths),
    st.tuples(st.just("rmdir"), paths),
    st.tuples(st.just("unlink"), paths),
    st.tuples(st.just("rename"), paths, paths),
)


class Oracle:
    """Dict model: path -> 'd' | 'f'."""

    def __init__(self):
        self.nodes = {"/": "d"}

    def parent(self, p):
        return p.rsplit("/", 1)[0] or "/"

    def children(self, p):
        return [q for q in self.nodes
                if q != "/" and self.parent(q) == p]

    def subtree(self, p):
        return [q for q in self.nodes if q == p or q.startswith(p + "/")]

    def mkdir(self, p):
        if p in self.nodes:
            raise KeyError("exists")
        if self.nodes.get(self.parent(p)) != "d":
            raise KeyError("no dir parent")
        self.nodes[p] = "d"

    def create(self, p):
        if p in self.nodes:
            raise KeyError("exists")
        if self.nodes.get(self.parent(p)) != "d":
            raise KeyError("no dir parent")
        self.nodes[p] = "f"

    def rmdir(self, p):
        if self.nodes.get(p) != "d" or p == "/":
            raise KeyError("not a dir")
        if self.children(p):
            raise KeyError("not empty")
        del self.nodes[p]

    def unlink(self, p):
        if self.nodes.get(p) != "f":
            raise KeyError("not a file")
        del self.nodes[p]

    def rename(self, src, dst):
        kind = self.nodes.get(src)
        if kind is None or src == "/":
            raise KeyError("missing src")
        if self.nodes.get(self.parent(dst)) != "d":
            raise KeyError("no dst parent")
        if kind == "d" and (dst + "/").startswith(src + "/"):
            raise KeyError("into own subtree")
        existing = self.nodes.get(dst)
        if existing is not None and dst != src:
            if existing == "d":
                if kind != "d":
                    raise KeyError("file onto dir")
                if self.children(dst):
                    raise KeyError("dst not empty")
                del self.nodes[dst]
            else:
                if kind == "d":
                    raise KeyError("dir onto file")
                del self.nodes[dst]
        if src == dst:
            return
        for q in sorted(self.subtree(src), key=len, reverse=True):
            self.nodes[dst + q[len(src):]] = self.nodes.pop(q)


def listing(ns: Namespace):
    out = []

    def rec(path, inode):
        for name in sorted(inode.entries or ()):
            child = ns.inodes[inode.entries[name]]
            p = f"{path}/{name}" if path != "/" else f"/{name}"
            out.append((p, "d" if child.is_dir else "f"))
            if child.is_dir:
                rec(p, child)

    rec("/", ns.root)
    return sorted(out)


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(ops, max_size=30))
def test_namespace_matches_oracle_including_rename(op_list):
    ns = Namespace()
    oracle = Oracle()
    for op in op_list:
        ns_err = oracle_err = None
        try:
            if op[0] == "mkdir":
                ns.mkdir(op[1], 0o755, 1.0)
            elif op[0] == "create":
                ns.create(op[1], 0o644, 1.0)
            elif op[0] == "rmdir":
                ns.rmdir(op[1], 1.0)
            elif op[0] == "unlink":
                ns.unlink(op[1], 1.0)
            else:
                if op[1] == op[2]:
                    # POSIX same-path rename is a no-op if src exists;
                    # model both sides identically and continue.
                    ns.lookup(op[1])
                else:
                    ns.rename(op[1], op[2], 1.0)
        except FSError:
            ns_err = True
        try:
            if op[0] == "rename":
                if op[1] == op[2]:
                    if op[1] not in oracle.nodes:
                        raise KeyError("missing")
                else:
                    oracle.rename(op[1], op[2])
            else:
                getattr(oracle, op[0])(op[1])
        except KeyError:
            oracle_err = True
        assert ns_err == oracle_err, (op, ns_err, oracle_err)
    want = sorted((p, k) for p, k in oracle.nodes.items() if p != "/")
    assert listing(ns) == want


@settings(max_examples=100, deadline=None)
@given(st.lists(ops, max_size=25))
def test_nlink_invariant(op_list):
    """Every directory's nlink is 2 + its subdirectory count, always."""
    ns = Namespace()
    for op in op_list:
        try:
            if op[0] == "mkdir":
                ns.mkdir(op[1], 0o755, 1.0)
            elif op[0] == "create":
                ns.create(op[1], 0o644, 1.0)
            elif op[0] == "rmdir":
                ns.rmdir(op[1], 1.0)
            elif op[0] == "unlink":
                ns.unlink(op[1], 1.0)
            elif op[1] != op[2]:
                ns.rename(op[1], op[2], 1.0)
        except FSError:
            continue
        for inode in ns.inodes.values():
            if inode.is_dir:
                subdirs = sum(1 for ino in inode.entries.values()
                              if ns.inodes[ino].is_dir)
                assert inode.nlink == 2 + subdirs
