"""Additional CMD coverage: attrs, readdir at root, concurrent clients."""


from repro.errors import ENOENT, FSError
from repro.pfs.cmd import build_cmd
from repro.sim import Cluster


def make(n_mds=2, seed=0):
    cluster = Cluster(seed=seed)
    nodes = [cluster.add_node(f"c{i}") for i in range(2)]
    fs = build_cmd(cluster, "cmd", n_mds=n_mds)
    return cluster, nodes, fs


def run(cluster, node, gen):
    proc = node.spawn(gen)
    return cluster.sim.run(until=proc)


def test_chmod_truncate_access():
    cluster, nodes, fs = make()
    cli = fs.client(nodes[0])

    def main():
        yield from cli.create("/f")
        yield from cli.chmod("/f", 0o640)
        yield from cli.truncate("/f", 512)
        yield from cli.access("/f")
        st = yield from cli.stat("/f")
        return st

    st = run(cluster, nodes[0], main())
    assert st.st_mode & 0o7777 == 0o640
    assert st.st_size == 512


def test_stat_root():
    cluster, nodes, fs = make()
    cli = fs.client(nodes[0])

    def main():
        return (yield from cli.stat("/"))

    assert run(cluster, nodes[0], main()).is_dir


def test_readdir_root_lists_both_kinds():
    cluster, nodes, fs = make()
    cli = fs.client(nodes[0])

    def main():
        yield from cli.mkdir("/d")
        yield from cli.create("/f")
        entries = yield from cli.readdir("/")
        return [(e.name, e.is_dir) for e in entries]

    assert run(cluster, nodes[0], main()) == [("d", True), ("f", False)]


def test_two_clients_share_namespace():
    cluster, nodes, fs = make()
    c0, c1 = fs.client(nodes[0]), fs.client(nodes[1])
    seen = []

    def writer():
        yield from c0.mkdir("/shared")
        yield from c0.create("/shared/x")

    def reader():
        yield cluster.sim.timeout(1.0)
        st = yield from c1.stat("/shared/x")
        seen.append(st.is_file)

    nodes[0].spawn(writer())
    nodes[1].spawn(reader())
    cluster.run()
    assert seen == [True]


def test_rename_missing_source():
    cluster, nodes, fs = make()
    cli = fs.client(nodes[0])

    def main():
        try:
            yield from cli.rename("/ghost", "/elsewhere")
        except FSError as e:
            return e.err

    assert run(cluster, nodes[0], main()) == ENOENT
