"""Byte-identical trace pin against the pre-overhaul kernel.

The simulator hot-path overhaul (fast event kernel, same-time FIFO lane,
batched heap inserts, interned RPC keys) must not move a single event:
with trace sampling off, a figure-suite workload replays the exact
OpTrace stream the pre-overhaul kernel produced. The golden digest below
was captured from the kernel as of the commit *before* the overhaul; any
rewrite that reorders ties, shifts a timestamp, or drops/duplicates an
op changes it.
"""

import hashlib

from repro.core.fs import build_dufs_deployment
from repro.svc import TraceBus
from repro.workloads.mdtest import MdtestConfig, run_mdtest

# sha256 over the full OpTrace stream of the workload below (see
# _trace_digest for the exact encoding). Captured on the pre-overhaul
# kernel; re-recorded when the ZK follower forwarding path gained the
# read-your-writes wait (a semantic protocol fix that legitimately moves
# events — acks now land after the local apply). Kernel-only rewrites
# must still reproduce it bit-for-bit.
GOLDEN_DIGEST = ("c5dfa3efd3fa04feb0039ace7fdb6f3d"
                 "6735b342cd5d02c7228d4c12328518e3")


def _trace_digest() -> str:
    bus = TraceBus(keep_events=True)
    dep = build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=2,
                                backend="local", seed=0, bus=bus)
    cfg = MdtestConfig(n_procs=4, items_per_proc=10,
                       phases=("dir_create", "dir_stat", "dir_remove"))
    run_mdtest(dep.cluster, dep.mount_for, dep.node_for, cfg)
    h = hashlib.sha256()
    for ev in bus.events:
        h.update(repr((ev.deployment, ev.endpoint, ev.method, ev.arrive,
                       ev.start, ev.end, ev.ok, ev.src, ev.retries,
                       ev.shard)).encode())
    return h.hexdigest()


def test_figure_workload_trace_matches_pre_overhaul_kernel():
    assert _trace_digest() == GOLDEN_DIGEST
