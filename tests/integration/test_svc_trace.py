"""Service-kernel acceptance: trace determinism and the group-commit win.

Two properties from the issue's acceptance list:

* with batching OFF the instrumented stack is a pure observer — two
  identically-seeded runs produce byte-identical op-trace streams;
* with leader-side proposal batching ON, a create-heavy mdtest pushes
  measurably more ops/s through an 8-server ensemble than unbatched.
"""

from dataclasses import replace

from repro.core.fs import build_dufs_deployment
from repro.models.params import SimParams
from repro.svc import TraceBus
from repro.workloads.mdtest import MdtestConfig, run_mdtest


def _traced_run(seed, batch=1, n_zk=3, n_procs=8, items=6,
                phases=("dir_create", "dir_stat", "dir_remove")):
    params = SimParams()
    if batch > 1:
        params = params.with_overrides(
            zk=replace(params.zk, propose_batch_max=batch))
    bus = TraceBus(keep_events=True)
    dep = build_dufs_deployment(n_zk=n_zk, n_backends=2, n_client_nodes=4,
                                backend="local", params=params, seed=seed,
                                bus=bus)
    cfg = MdtestConfig(n_procs=n_procs, items_per_proc=items, phases=phases)
    result = run_mdtest(dep.cluster, dep.mount_for, dep.node_for, cfg)
    return result, bus


def test_traces_byte_identical_with_batching_off():
    a, bus_a = _traced_run(seed=11)
    b, bus_b = _traced_run(seed=11)
    assert bus_a.events, "trace bus captured nothing"
    # OpTrace is a frozen dataclass: list equality compares every field of
    # every recorded op, i.e. the full trace stream is byte-identical.
    assert bus_a.events == bus_b.events
    for phase in a.phases:
        assert a.phases[phase].duration == b.phases[phase].duration
    # Every layer reports through the one bus.
    deployments = {k.split("/")[0] for k in bus_a.keys()}
    assert {"dufs", "zk"} <= deployments


def test_every_endpoint_reports_queue_wait_and_service():
    _, bus = _traced_run(seed=2)
    for key in bus.keys():
        assert bus.queue_wait.count(key) == bus.ops.get(key)
        assert bus.service.count(key) == bus.ops.get(key)


def test_zk_write_batching_raises_create_throughput():
    plain, _ = _traced_run(seed=7, batch=1, n_zk=8, n_procs=32, items=10,
                           phases=("dir_create",))
    batched, _ = _traced_run(seed=7, batch=8, n_zk=8, n_procs=32, items=10,
                             phases=("dir_create",))
    t_plain = plain.phases["dir_create"].throughput
    t_batched = batched.phases["dir_create"].throughput
    assert t_batched > t_plain * 1.05, (
        f"batching gave {t_batched:.0f} ops/s vs {t_plain:.0f} unbatched")


def test_traced_zk_pipeline_reports_batch_occupancy():
    """Satellite: the group-commit loops (ZK txn log + leader proposals)
    publish per-flush occupancy through the bus, so `repro trace` can
    show how full the batches actually run."""
    _, bus = _traced_run(seed=3, batch=8, n_zk=3, n_procs=8, items=8,
                         phases=("dir_create",))
    occ = bus.batch_occupancy()
    zk_batchers = {k for k in occ if k.startswith("zk/")}
    assert zk_batchers, f"no zk batcher occupancy recorded: {sorted(occ)}"
    for key in zk_batchers:
        row = occ[key]
        assert row["flushes"] > 0
        assert row["fill_mean"] >= 1.0
    assert "batcher" in bus.table()


def test_traced_async_client_reports_wblog_occupancy():
    from repro.models.params import AsyncParams

    bus = TraceBus(keep_events=True)
    dep = build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=2,
                                backend="local", seed=5, bus=bus,
                                awrite=AsyncParams.async_on())
    cfg = MdtestConfig(n_procs=2, items_per_proc=10,
                       phases=("file_create",), drain=True)
    run_mdtest(dep.cluster,
               lambda i: dep.clients[i % 2], dep.node_for, cfg)
    occ = bus.batch_occupancy()
    wb = {k: v for k, v in occ.items()
          if k.startswith("dufs/") and ".wblog" in k}
    assert wb, f"no write-behind batcher occupancy: {sorted(occ)}"
    assert sum(v["items"] for v in wb.values()) >= 20
