"""One fault schedule, three metadata architectures.

The acceptance scenario of the chaos subsystem: the *same* symbolic
schedule is replayed against DUFS (ZooKeeper quorum), single-MDS Lustre
and PVFS, and the degradation modes differ exactly as the paper argues —
DUFS rides out minority crashes with bounded stalls and a clean namespace,
Lustre stalls the whole namespace until takeover, PVFS degrades but never
hangs the simulation.
"""

import pytest

from repro.chaos import (
    ChaosEngine,
    ChaosSchedule,
    RandomChaos,
    audit_dufs,
    run_chaos,
)
from repro.core import build_dufs_deployment
from repro.models.params import SimParams, ZKParams
from repro.workloads.mdtest import MdtestConfig, run_mdtest

#: The shared schedule: metadata server 0 dies at t+0.5s, returns at
#: t+2.0s. "meta:0" resolves to a ZK server node (DUFS), the MDS node
#: (Lustre) or the root-owning PVFS server.
SHARED = ChaosSchedule().crash(0.5, "meta:0").recover(2.0, "meta:0")


@pytest.mark.chaos
def test_lustre_mds_crash_stalls_whole_namespace():
    result = run_chaos("lustre", schedule=SHARED, ops=300, seed=7)
    # The MDS is the only metadata path: while it is down *every* op
    # stalls (client retries ride out the outage), and the stall spans
    # the full 1.5 s outage.
    assert result.max_stall > 1.0
    assert result.completed > 250
    assert result.trace and result.trace[0].split()[1] == "crash"


@pytest.mark.chaos
def test_pvfs_server_crash_degrades_but_never_hangs():
    result = run_chaos("pvfs", schedule=SHARED, ops=300, seed=7)
    # Server 0 owns the root directory, so path resolution dies with it:
    # the op stream stalls for the whole outage. The client's bounded
    # retries (5 x 0.5 s) ride it out — ops stall-then-succeed or fail
    # with EIO, but the simulation never wedges.
    assert result.max_stall > 1.0
    assert result.completed > 100
    assert result.elapsed < 10.0


@pytest.mark.chaos
def test_dufs_rides_out_shared_schedule_with_clean_audit():
    result = run_chaos("dufs", schedule=SHARED, ops=300, seed=7)
    # meta:0 is one ZK server of five: quorum holds, every op completes,
    # and the longest stall is bounded by detection + fail-over, far
    # below Lustre's takeover delay.
    assert result.failed == 0
    assert result.completed == 300
    assert result.max_stall < 1.0
    assert result.audit is not None and result.audit.ok, \
        result.audit.to_text()


@pytest.mark.chaos
@pytest.mark.slow
def test_dufs_minority_zk_crashes_mdtest_zero_violations():
    """The headline acceptance test: seeded random minority ZK crashes
    under a live mdtest workload — everything completes, stalls stay
    bounded by the retry budget, and the post-fault audit is clean."""
    params = SimParams()
    params.zk = ZKParams(failure_detection=True, ping_interval=0.1,
                         ping_timeout=0.3, election_tick=0.05)
    dep = build_dufs_deployment(n_zk=5, n_backends=2, n_client_nodes=2,
                                backend="local", params=params,
                                co_locate_zk=False, seed=11,
                                zk_request_timeout=0.4, zk_max_retries=10)
    dep.cluster.sim.run(until=1.0)   # settle

    # The workload spans ~1-2 simulated seconds; the generator packs a
    # dense minority-crash storm into that window (at most 2 of 5 down).
    schedule = RandomChaos([f"zk:{i}" for i in range(5)], duration=1.5,
                           seed=11, rate=6.0, mean_downtime=0.3,
                           streams=dep.cluster.streams,
                           name="chaos.mdtest").schedule()
    assert len(schedule) >= 2

    def resolve(symbol):
        kind, _, arg = symbol.partition(":")
        return dep.ensemble.servers[int(arg)].node

    engine = ChaosEngine(dep.cluster, schedule, resolve=resolve)
    engine.start()

    config = MdtestConfig(n_procs=4, items_per_proc=150,
                          phases=("dir_create", "file_create", "file_stat"))
    result = run_mdtest(dep.cluster, dep.mount_for, dep.node_for, config)

    for phase in config.phases:
        assert result.phases[phase].ops == 600
        # Bounded stall: no op took longer than the per-op budget.
        assert result.latency(phase).p99 < 60.0

    assert len(engine.trace) >= 2    # faults really fired mid-workload
    report = audit_dufs(dep)
    assert report.ok, report.to_text()
    assert report.checked_files == 600   # every mdtest file materialized
