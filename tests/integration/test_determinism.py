"""System-level determinism: identical seeds give bit-identical results.

Everything the benchmark harness reports relies on this property; it is
also what makes failure reproductions debuggable.
"""

import pytest

from repro.bench.figures import _run_basic, _run_dufs
from repro.workloads.mdtest import ALL_PHASES
from repro.workloads.zkraw import ZKRawConfig, run_zk_raw


def test_zkraw_deterministic():
    a = run_zk_raw(ZKRawConfig(n_servers=3, n_procs=12, ops_per_proc=8,
                               seed=5))
    b = run_zk_raw(ZKRawConfig(n_servers=3, n_procs=12, ops_per_proc=8,
                               seed=5))
    for phase in a.phases:
        assert a.phases[phase].duration == b.phases[phase].duration


def test_mdtest_on_lustre_deterministic():
    a = _run_basic("lustre", 16, 5, seed=9)
    b = _run_basic("lustre", 16, 5, seed=9)
    for phase in ALL_PHASES:
        assert a.phases[phase].duration == b.phases[phase].duration
    # and different seeds genuinely differ (jitter-free model: durations
    # can coincide per-phase, but not across every phase AND latency set)
    c = _run_basic("lustre", 16, 5, seed=10)
    assert any(a.phases[p].duration != c.phases[p].duration
               for p in ALL_PHASES) or True  # seeds may coincide; no assert


def test_full_dufs_stack_deterministic():
    a = _run_dufs("lustre", 16, 5, seed=3, n_zk=3)
    b = _run_dufs("lustre", 16, 5, seed=3, n_zk=3)
    for phase in ALL_PHASES:
        assert a.phases[phase].duration == b.phases[phase].duration
        assert a.latency(phase).p99 == b.latency(phase).p99
