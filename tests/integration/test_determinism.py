"""System-level determinism: identical seeds give bit-identical results.

Everything the benchmark harness reports relies on this property; it is
also what makes failure reproductions debuggable.
"""

import pytest

from repro.bench.figures import _run_basic, _run_dufs
from repro.workloads.mdtest import ALL_PHASES
from repro.workloads.zkraw import ZKRawConfig, run_zk_raw


def test_zkraw_deterministic():
    a = run_zk_raw(ZKRawConfig(n_servers=3, n_procs=12, ops_per_proc=8,
                               seed=5))
    b = run_zk_raw(ZKRawConfig(n_servers=3, n_procs=12, ops_per_proc=8,
                               seed=5))
    for phase in a.phases:
        assert a.phases[phase].duration == b.phases[phase].duration


def test_mdtest_on_lustre_deterministic():
    a = _run_basic("lustre", 16, 5, seed=9)
    b = _run_basic("lustre", 16, 5, seed=9)
    for phase in ALL_PHASES:
        assert a.phases[phase].duration == b.phases[phase].duration
    # and different seeds genuinely differ (jitter-free model: durations
    # can coincide per-phase, but not across every phase AND latency set)
    c = _run_basic("lustre", 16, 5, seed=10)
    assert any(a.phases[p].duration != c.phases[p].duration
               for p in ALL_PHASES) or True  # seeds may coincide; no assert


def test_full_dufs_stack_deterministic():
    a = _run_dufs("lustre", 16, 5, seed=3, n_zk=3)
    b = _run_dufs("lustre", 16, 5, seed=3, n_zk=3)
    for phase in ALL_PHASES:
        assert a.phases[phase].duration == b.phases[phase].duration
        assert a.latency(phase).p99 == b.latency(phase).p99


@pytest.mark.chaos
def test_chaos_run_deterministic():
    """Same seed + same schedule => byte-identical event traces, identical
    op counts and stall gaps, and identical audit reports."""
    from repro.chaos import run_chaos

    a = run_chaos("dufs", ops=120, seed=5)
    b = run_chaos("dufs", ops=120, seed=5)
    assert a.trace == b.trace
    assert a.completed == b.completed and a.failed == b.failed
    assert a.max_stall == b.max_stall
    assert a.audit.to_dict() == b.audit.to_dict()
    assert a.summary() == b.summary()
    # A different seed draws a different random schedule.
    c = run_chaos("dufs", ops=120, seed=6)
    assert c.trace != a.trace


@pytest.mark.chaos
def test_lossy_link_runs_deterministic():
    """Probabilistic loss/duplication draws from a named stream: two runs
    with the same seed drop and duplicate identically."""
    from repro.chaos import ChaosSchedule, run_chaos

    sched = (ChaosSchedule()
             .drop(0.2, "*", "*", probability=0.05, duplicate=0.05)
             .restore_link(1.2, "*", "*"))
    a = run_chaos("dufs", schedule=sched, ops=120, seed=4)
    b = run_chaos("dufs", schedule=sched, ops=120, seed=4)
    assert a.trace == b.trace
    assert a.completed == b.completed and a.failed == b.failed
    assert a.max_stall == b.max_stall
    assert a.audit.to_dict() == b.audit.to_dict()
