"""Tree scaffolding generator tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.treegen import TreeSpec, item_dir, leaf_dirs, tree_dirs


def test_dir_count_matches_formula():
    spec = TreeSpec(fanout=10, depth=2)
    assert spec.n_dirs == 10 + 100
    dirs = tree_dirs(spec)
    assert len(dirs) == 1 + spec.n_dirs  # + the root


def test_paper_tree_size():
    """The paper's fan-out 10, depth 5 tree has 111,110 directories."""
    spec = TreeSpec(fanout=10, depth=5)
    assert spec.n_dirs == 111_110


def test_bfs_order_parents_before_children():
    dirs = tree_dirs(TreeSpec(fanout=3, depth=3))
    seen = set()
    for d in dirs:
        parent = d.rsplit("/", 1)[0]
        if parent and parent != "":
            assert parent in seen or d == dirs[0], d
        seen.add(d)


def test_leaf_dirs_are_deepest():
    spec = TreeSpec(fanout=4, depth=3)
    leaves = leaf_dirs(spec)
    assert len(leaves) == 64
    root_depth = spec.root.count("/")
    assert all(d.count("/") == root_depth + 3 for d in leaves)
    assert set(leaves) <= set(tree_dirs(spec))


def test_item_dir_spreads_items():
    spec = TreeSpec(fanout=10, depth=2)
    dirs = tree_dirs(spec)
    used = {item_dir(spec, dirs, p, i) for p in range(8) for i in range(50)}
    assert len(used) > 50  # items touch many distinct directories


def test_item_dir_deterministic():
    spec = TreeSpec()
    dirs = tree_dirs(spec)
    assert item_dir(spec, dirs, 3, 7) == item_dir(spec, dirs, 3, 7)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 6), st.integers(1, 4))
def test_tree_dirs_count_property(fanout, depth):
    spec = TreeSpec(fanout=fanout, depth=depth)
    dirs = tree_dirs(spec)
    assert len(dirs) == 1 + sum(fanout ** d for d in range(1, depth + 1))
    assert len(set(dirs)) == len(dirs)  # no duplicates
