"""run_phase / PhaseResult: barrier semantics and throughput math."""

import pytest

from repro.sim import Cluster
from repro.workloads.driver import PhaseResult, run_phase


def make_nodes(n):
    cluster = Cluster(seed=3)
    return cluster, [cluster.add_node(f"c{i}") for i in range(n)]


def spinner(sim, delay, count, log=None):
    for _ in range(count):
        yield sim.timeout(delay)
        if log is not None:
            log.append(sim.now)


def test_empty_phase_reports_zero_ops_and_zero_rate():
    cluster, nodes = make_nodes(1)
    res = run_phase(cluster.sim, "empty", nodes, [], ops_per_worker=5)
    assert res.ops == 0
    assert res.duration == 0.0
    assert res.throughput == 0.0        # the zero-duration guard
    assert cluster.sim.now == 0.0       # no events were scheduled


def test_single_op_phase():
    cluster, nodes = make_nodes(1)
    sim = cluster.sim
    res = run_phase(sim, "one", nodes, [spinner(sim, 0.25, 1)],
                    ops_per_worker=1)
    assert res.ops == 1
    assert res.duration == pytest.approx(0.25)
    assert res.throughput == pytest.approx(4.0)


def test_multi_client_phase_barriers_on_slowest():
    cluster, nodes = make_nodes(2)
    sim = cluster.sim
    # Four workers round-robin over two nodes; one is 3x slower.
    workers = [spinner(sim, 0.1, 2) for _ in range(3)]
    workers.append(spinner(sim, 0.3, 2))
    res = run_phase(sim, "mixed", nodes, workers, ops_per_worker=2)
    assert res.ops == 8
    # The phase ends only when the slow straggler finishes (mdtest barrier).
    assert res.duration == pytest.approx(0.6)
    assert res.throughput == pytest.approx(8 / 0.6)


def test_phases_are_sequential_and_separately_timed():
    cluster, nodes = make_nodes(1)
    sim = cluster.sim
    first = run_phase(sim, "a", nodes, [spinner(sim, 0.5, 1)], 1)
    second = run_phase(sim, "b", nodes, [spinner(sim, 0.5, 1)], 1)
    assert first.duration == pytest.approx(0.5)
    assert second.duration == pytest.approx(0.5)   # not cumulative
    assert sim.now == pytest.approx(1.0)


def test_phase_result_str_mentions_rate():
    res = PhaseResult("create", 100, 2.0)
    assert res.throughput == pytest.approx(50.0)
    assert "create" in str(res) and "ops" in str(res)
