"""mdtest workload driver tests (against the cheap local backend)."""

import pytest

from repro.pfs.localfs import LocalFS
from repro.sim import Cluster
from repro.workloads.driver import PhaseResult, run_phase
from repro.workloads.mdtest import (
    ALL_PHASES,
    MdtestConfig,
    _item_paths,
    run_mdtest,
)
from repro.workloads.treegen import TreeSpec, tree_dirs


def make_env():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n0")
    fs = LocalFS(node)
    return cluster, node, fs


def test_run_phase_reports_ops_and_duration():
    cluster, node, fs = make_env()
    cli = fs.client()

    def worker(k):
        for i in range(5):
            yield from cli.mkdir(f"/w{k}i{i}")

    res = run_phase(cluster.sim, "create", [node],
                    [worker(k) for k in range(4)], ops_per_worker=5)
    assert res.ops == 20
    assert res.duration > 0
    assert res.throughput == pytest.approx(20 / res.duration)


def test_phase_result_zero_duration():
    assert PhaseResult("x", 0, 0.0).throughput == 0.0


def test_item_paths_unique_across_procs():
    cfg = MdtestConfig(n_procs=6, items_per_proc=9)
    all_paths = [p for proc in _item_paths(cfg, "file") for p in proc]
    assert len(set(all_paths)) == 54


def test_item_paths_single_dir_mode():
    cfg = MdtestConfig(n_procs=3, items_per_proc=4, single_dir=True)
    for proc_paths in _item_paths(cfg, "dir"):
        for p in proc_paths:
            assert p.rsplit("/", 1)[0] == cfg.tree.root


def test_full_mdtest_run_all_phases():
    cluster, node, fs = make_env()
    cfg = MdtestConfig(n_procs=4, items_per_proc=6, tree=TreeSpec(3, 2))
    res = run_mdtest(cluster, lambda i: fs.client(), lambda i: node, cfg)
    assert set(res.phases) == set(ALL_PHASES)
    for phase in ALL_PHASES:
        assert res.phases[phase].ops == 24
        assert res.throughput(phase) > 0
    # After dir_remove and file_remove, only the scaffold remains.
    assert fs.ns.count_files() == 0
    scaffold = len(tree_dirs(cfg.tree))
    assert fs.ns.count_dirs() == 1 + scaffold  # root + scaffold


def test_mdtest_phases_leave_consistent_state_mid_campaign():
    """Running only the create phases leaves the items in place."""
    cluster, node, fs = make_env()
    cfg = MdtestConfig(n_procs=2, items_per_proc=5, tree=TreeSpec(2, 1),
                       phases=("dir_create", "file_create"))
    run_mdtest(cluster, lambda i: fs.client(), lambda i: node, cfg)
    assert fs.ns.count_files() == 10


def test_mdtest_summary_text():
    cluster, node, fs = make_env()
    cfg = MdtestConfig(n_procs=2, items_per_proc=3, tree=TreeSpec(2, 1),
                       phases=("dir_create",))
    res = run_mdtest(cluster, lambda i: fs.client(), lambda i: node, cfg)
    text = res.summary()
    assert "dir_create" in text and "ops/s" in text


def test_single_dir_mode_contends_one_directory():
    cluster, node, fs = make_env()
    cfg = MdtestConfig(n_procs=4, items_per_proc=5, single_dir=True,
                       phases=("file_create",))
    run_mdtest(cluster, lambda i: fs.client(), lambda i: node, cfg)
    entries = fs.ns.readdir(cfg.tree.root)
    assert len(entries) == 20
