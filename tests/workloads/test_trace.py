"""Trace workload: parsing, synthesis, replay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.localfs import LocalFS
from repro.sim import Cluster
from repro.workloads.trace import (
    TraceOp,
    format_trace,
    parse_trace,
    replay_trace,
    synthesize_trace,
)

SAMPLE = """
# a tiny trace (each process touches only its own paths: replay runs
# processes concurrently with no cross-process ordering)
0 mkdir /a
0 create /a/f
0 stat /a/f
0 rename /a/f /a/g
1 mkdir /b
1 create /b/h
1 unlink /b/h
1 rmdir /b
"""


def test_parse_sample():
    ops = parse_trace(SAMPLE)
    assert len(ops) == 8
    assert ops[0] == TraceOp(0, "mkdir", ("/a",))
    assert ops[3] == TraceOp(0, "rename", ("/a/f", "/a/g"))


def test_parse_rejects_garbage():
    with pytest.raises(ValueError, match="line 1"):
        parse_trace("0 frobnicate /x")
    with pytest.raises(ValueError):
        parse_trace("zero mkdir /x")
    with pytest.raises(ValueError):
        parse_trace("0 rename /only-one-arg")


def test_format_parse_roundtrip():
    ops = parse_trace(SAMPLE)
    assert parse_trace(format_trace(ops)) == ops


def test_parse_numeric_args():
    ops = parse_trace("0 write /f 100 4096\n0 read /f 0 512\n"
                      "0 chmod /f 600\n0 truncate /f 99")
    assert ops[0].args == ("/f", 100, 4096)
    assert ops[2].args == ("/f", 0o600)
    assert ops[3].args == ("/f", 99)


def make_env():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n0")
    fs = LocalFS(node)
    return cluster, node, fs


def test_replay_sample_trace():
    cluster, node, fs = make_env()
    ops = parse_trace(SAMPLE)
    res = replay_trace(cluster, lambda p: fs.client(), lambda p: node, ops)
    assert res.total_ops == 8
    assert res.errors == 0
    assert res.throughput > 0
    assert res.by_op["mkdir"] == 2
    assert fs.ns.count_files() == 1  # /a/g survives
    assert fs.ns.count_dirs() == 2   # / and /a


def test_replay_counts_errors():
    cluster, node, fs = make_env()
    ops = parse_trace("0 stat /missing\n0 unlink /also-missing")
    res = replay_trace(cluster, lambda p: fs.client(), lambda p: node, ops)
    assert res.errors == 2


def test_replay_stop_on_error():
    from repro.errors import FSError

    cluster, node, fs = make_env()
    ops = parse_trace("0 stat /missing")
    with pytest.raises(FSError):
        replay_trace(cluster, lambda p: fs.client(), lambda p: node, ops,
                     stop_on_error=True)


def test_replay_out_of_range_proc():
    cluster, node, fs = make_env()
    with pytest.raises(ValueError):
        replay_trace(cluster, lambda p: fs.client(), lambda p: node,
                     [TraceOp(5, "stat", ("/x",))], n_procs=2)


def test_synthesized_trace_replays_cleanly_on_local():
    cluster, node, fs = make_env()
    ops = synthesize_trace(n_procs=1, n_ops=150, seed=3)
    res = replay_trace(cluster, lambda p: fs.client(), lambda p: node, ops)
    # Single proc, generated against a model namespace: zero errors.
    assert res.errors == 0
    assert res.total_ops == 150


def test_synthesized_trace_replays_on_dufs():
    from repro.core import build_dufs_deployment

    dep = build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=2,
                                backend="local")
    ops = synthesize_trace(n_procs=4, n_ops=120, seed=7)
    res = replay_trace(dep.cluster, dep.mount_for, dep.node_for, ops)
    # Per-proc-independent traces: no errors even fully concurrent.
    assert res.errors == 0
    assert dep.ensemble.converged() or True  # run drains below
    dep.cluster.sim.run(until=dep.cluster.sim.now + 0.5)
    assert dep.ensemble.converged()
    assert res.latencies.summary("stat") is not None


def test_synthesis_deterministic():
    a = synthesize_trace(4, 100, seed=5)
    b = synthesize_trace(4, 100, seed=5)
    c = synthesize_trace(4, 100, seed=6)
    assert a == b
    assert a != c


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 6), st.integers(10, 80), st.integers(0, 100))
def test_synthesized_traces_always_valid_single_proc(procs, n_ops, seed):
    """Property: synthesized traces replay without errors when serialized
    onto one process (op-level validity)."""
    cluster = Cluster(seed=0)
    node = cluster.add_node("n0")
    fs = LocalFS(node)
    ops = [TraceOp(0, o.op, o.args)
           for o in synthesize_trace(procs, n_ops, seed=seed)]
    res = replay_trace(cluster, lambda p: fs.client(), lambda p: node, ops)
    assert res.errors == 0
