"""DUFS client fault tolerance: degraded mode, ZK retry/fail-over, and
transparent session re-establishment."""

import pytest

from repro.core import build_dufs_deployment
from repro.errors import EIO, FSError
from repro.models.params import FaultToleranceParams, SimParams, ZKParams


def test_degraded_mode_fails_only_mapped_slice():
    dep = build_dufs_deployment(n_zk=1, n_backends=2, n_client_nodes=1,
                                backend="local", seed=4)
    mount = dep.mounts[0]
    client = dep.clients[0]
    dep.call(mount.mkdir, "/d")

    client.mark_backend_down(0)
    ok, failed = [], []
    for i in range(12):
        try:
            dep.call(mount.create, f"/d/f{i}")
            ok.append(i)
        except FSError as e:
            assert e.err == EIO
            failed.append(i)
    # MD5 spreads FIDs over both back-ends: some ops fail (their slice is
    # dark), the rest keep working — the paper's partial-failure claim.
    assert ok and failed
    assert client.stats["degraded_fails"] >= len(failed)

    # Namespace-only operations never touch the dead back-end.
    st = dep.call(mount.stat, "/d")
    assert st is not None
    names = {e.name for e in dep.call(mount.readdir, "/d")}
    assert names == {f"f{i}" for i in ok}

    # Recovery restores the full slice.
    client.mark_backend_up(0)
    for i in failed:
        dep.call(mount.create, f"/d/f{i}")
    assert {e.name for e in dep.call(mount.readdir, "/d")} == \
        {f"f{i}" for i in range(12)}


def test_degraded_backend_file_ops_fail_fast_without_hanging():
    dep = build_dufs_deployment(n_zk=1, n_backends=1, n_client_nodes=1,
                                backend="local", seed=4)
    mount = dep.mounts[0]
    dep.call(mount.create, "/f")
    dep.clients[0].mark_backend_down(0)
    before = dep.cluster.sim.now
    with pytest.raises(FSError) as exc:
        dep.call(mount.stat, "/f")
    assert exc.value.err == EIO
    assert dep.cluster.sim.now - before < 1.0   # fail fast, no timeout wait


def test_zk_client_survives_leader_crash():
    params = SimParams()
    params.zk = ZKParams(failure_detection=True, ping_interval=0.1,
                         ping_timeout=0.3, election_tick=0.05)
    dep = build_dufs_deployment(n_zk=3, n_backends=1, n_client_nodes=1,
                                backend="local", params=params,
                                co_locate_zk=False, seed=6,
                                zk_request_timeout=0.4, zk_max_retries=10)
    dep.cluster.sim.run(until=1.0)
    mount = dep.mounts[0]
    dep.call(mount.mkdir, "/d")

    leader = dep.ensemble.leader
    leader.node.crash()
    # Every op the client sends now first times out against its preferred
    # (possibly dead) server, then fails over and retries with backoff.
    for i in range(10):
        dep.call(mount.create, f"/d/f{i}")
    assert len(dep.call(mount.readdir, "/d")) == 10


def test_zk_defaults_bound_lost_requests():
    """The old defaults (no timeout, no retries) hung forever on a lost
    message; the FaultToleranceParams defaults turn that into a bounded
    ConnectionLossError."""
    from repro.zk.errors import ConnectionLossError

    dep = build_dufs_deployment(n_zk=1, n_backends=1, n_client_nodes=1,
                                backend="local", seed=4)
    zkc = dep.zk_clients[0]
    assert zkc.request_timeout == FaultToleranceParams().request_timeout
    assert zkc.max_retries == FaultToleranceParams().max_retries

    dep.ensemble.servers[0].node.crash()
    with pytest.raises(ConnectionLossError):
        dep.call(zkc.create, "/x", b"D:755:0:0")
    # Bounded: retries * timeout + backoff, not an infinite hang.
    assert dep.cluster.sim.now < FaultToleranceParams().op_budget + 10


def test_session_reestablished_after_expiry():
    params = SimParams()
    params.zk = ZKParams(session_tracking=True, session_timeout=30.0)
    dep = build_dufs_deployment(n_zk=1, n_backends=1, n_client_nodes=1,
                                backend="local", params=params, seed=4)
    zkc = dep.zk_clients[0]
    dep.call(zkc.connect)
    old = zkc.session
    assert old is not None

    # Server forgets the session (as after an expiry sweep).
    dep.ensemble.servers[0].sessions.pop(old)
    # An ephemeral create trips SessionExpired server-side; the client
    # transparently reconnects, rebinds the request, and succeeds.
    dep.call(zkc.create, "/eph", b"D:755:0:0", True)
    assert zkc.session is not None and zkc.session != old
    assert zkc.last_retries >= 1
    stat = dep.call(zkc.exists, "/eph")
    assert stat is not None and stat.ephemeral_owner == zkc.session
