"""Write-behind mode under faults: crash losses stay confined to the
acked-but-uncommitted window, never become namespace damage.

The acceptance claim: a chaos run with async writes enabled still audits
clean — a client crash mid-drain may *lose* whatever was acked but not
yet quorum-committed (the mode's advertised bounded loss, counted as
``lost_unacked``), but it may not leave dangling mappings or orphan FIDs
the auditor cannot attribute to that window.
"""

import pytest

from repro.chaos import ChaosSchedule, run_chaos
from repro.chaos.audit import audit_dufs
from repro.core import build_dufs_deployment
from repro.models.params import AsyncParams, SimParams


def build_async_dep(seed=7, **kw):
    kw.setdefault("awrite", AsyncParams.async_on())
    return build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=2,
                                 backend="local", params=SimParams(),
                                 seed=seed, co_locate_zk=False, **kw)


def test_awrite_is_dufs_only():
    with pytest.raises(ValueError):
        run_chaos("lustre", awrite=AsyncParams.async_on(), ops=10)


def test_client_crash_mid_drain_bounds_loss_to_unacked_window():
    dep = build_async_dep()
    cli = dep.clients[0]
    node = dep.client_nodes[0]
    sim = dep.cluster.sim

    acked = []

    def work():
        yield from cli.mkdir("/d")
        yield from cli.flush()
        for i in range(40):
            yield from cli.create(f"/d/f{i}")
        acked.append(sim.now)

    node.spawn(work())
    while not acked:
        sim.step()
    # All 40 creates are acked; most are still in the window.
    assert cli.wblog.outstanding > 0
    node.crash()
    sim.run(until=sim.now + 2.0)
    node.recover()
    sim.run(until=sim.now + 2.0)

    assert cli.wblog.stats["lost"] > 0
    report = audit_dufs(dep)
    assert report.ok, report.to_text()
    # Every orphaned physical file is attributed to the lost window —
    # some lost ops committed server-side before the ack bookkeeping
    # died, so lost_unacked is bounded by (not equal to) stats["lost"].
    assert 0 < report.lost_unacked <= cli.wblog.stats["lost"]
    assert "lost-unacked" in report.to_text()
    assert report.to_dict()["lost_unacked"] == report.lost_unacked


def test_client_recovers_cold_and_keeps_working_after_crash():
    dep = build_async_dep()
    cli = dep.clients[0]
    node = dep.client_nodes[0]
    sim = dep.cluster.sim

    acked = []

    def work():
        yield from cli.mkdir("/d")
        yield from cli.flush()
        for i in range(30):
            yield from cli.create(f"/d/f{i}")
        acked.append(1)

    node.spawn(work())
    while not acked:
        sim.step()
    node.crash()
    sim.run(until=sim.now + 1.0)
    node.recover()
    sim.run(until=sim.now + 1.0)

    # No ghosts: the overlay forgot the lost window, so reads go to the
    # authoritative namespace; new writes drain normally.
    done = []

    def work2():
        for i in range(5):
            yield from cli.create(f"/d/g{i}")
        errors = yield from cli.flush()
        names = yield from cli.readdir("/d")
        done.append((errors, sorted(e.name for e in names)))

    node.spawn(work2())
    sim.run(until=sim.now + 3.0)
    assert done, "post-recovery workload did not finish"
    errors, names = done[0]
    assert errors == []
    assert {f"g{i}" for i in range(5)} <= set(names)
    assert cli.wblog.outstanding == 0
    report = audit_dufs(dep)
    assert report.ok, report.to_text()


def test_lost_pending_deletes_are_excused_not_damage():
    """The delete direction: physical unlink happens at ack time, the
    znode delete commits at drain. A crash between the two leaves znodes
    mapping to unlinked files — dangling mappings the auditor must
    attribute to the lost window."""
    dep = build_async_dep(seed=11)
    cli = dep.clients[0]
    node = dep.client_nodes[0]
    sim = dep.cluster.sim

    staged = []

    def stage():
        yield from cli.mkdir("/d")
        for i in range(30):
            yield from cli.create(f"/d/f{i}")
        errors = yield from cli.flush()
        assert errors == []
        staged.append(1)

    node.spawn(stage())
    sim.run(until=sim.now + 5.0)
    assert staged

    acked = []

    def remove():
        for i in range(30):
            yield from cli.unlink(f"/d/f{i}")
        acked.append(1)

    node.spawn(remove())
    while not acked:
        sim.step()
    assert cli.wblog.outstanding > 0
    node.crash()
    sim.run(until=sim.now + 2.0)

    report = audit_dufs(dep)
    assert report.ok, report.to_text()
    assert report.lost_unacked > 0


@pytest.mark.chaos
def test_chaos_zk_crashes_with_async_writes_audit_clean():
    """ZK server faults (not client faults) under write-behind load: the
    drain retries through fail-over like any client, so nothing is lost
    and the audit is clean; the op stream never blocks on the quorum."""
    sched = ChaosSchedule().crash(0.8, "meta:0").recover(2.2, "meta:0")
    result = run_chaos("dufs", schedule=sched, ops=300, seed=7,
                       awrite=AsyncParams.async_on())
    assert result.failed == 0
    assert result.completed == 300
    assert result.audit is not None and result.audit.ok, \
        result.audit.to_text()


@pytest.mark.chaos
def test_chaos_async_run_is_deterministic():
    sched = ChaosSchedule().crash(0.8, "meta:1").recover(2.0, "meta:1")
    a = run_chaos("dufs", schedule=sched, ops=150, seed=3,
                  awrite=AsyncParams.async_on())
    b = run_chaos("dufs", schedule=sched, ops=150, seed=3,
                  awrite=AsyncParams.async_on())
    assert a.completed == b.completed and a.failed == b.failed
    assert a.audit.to_dict() == b.audit.to_dict()
