"""Chaos campaigns under the full resilience policy.

The acceptance bar: with hedging and breakers enabled, crash/recover
campaigns — including shard-targeted ones — must still audit clean, and
no acknowledged write may be lost to a cancelled duplicate (hedges are
restricted to idempotent reads, so the audit doubles as that proof)."""

import pytest

from repro.chaos import ChaosSchedule, RandomChaos, run_chaos
from repro.models.params import ResilienceParams


def full_policy():
    return ResilienceParams.resilience_on(hedge_enabled=True,
                                          hedge_delay=0.02,
                                          hedge_min_samples=8)


def test_random_chaos_with_resilience_audits_clean():
    result = run_chaos("dufs", seed=3, ops=120, resilience=full_policy())
    assert result.completed > 0
    assert result.audit is not None
    assert result.audit.ok, result.audit.to_text()


def test_shard_targeted_crash_with_resilience_audits_clean():
    sched = ChaosSchedule()
    sched.crash(0.3, "shard:1")
    sched.recover(0.8, "shard:1")
    result = run_chaos("dufs", schedule=sched, seed=5, ops=150, shards=2,
                       resilience=full_policy())
    assert result.completed > 0
    assert result.audit is not None
    assert result.audit.ok, result.audit.to_text()


def test_leader_crash_with_resilience_audits_clean():
    sched = ChaosSchedule()
    sched.crash(0.4, "zk:leader")
    sched.recover(1.2, "zk:0")
    result = run_chaos("dufs", schedule=sched, seed=7, ops=150,
                       resilience=full_policy())
    assert result.audit is not None
    assert result.audit.ok, result.audit.to_text()


def test_resilience_rejected_for_non_dufs():
    with pytest.raises(ValueError):
        run_chaos("lustre", resilience=ResilienceParams())
    with pytest.raises(ValueError):
        run_chaos("pvfs", resilience=ResilienceParams())


def test_random_chaos_recovery_clamped_to_run_window():
    """Satellite fix: a crash drawn near the end of the window must still
    schedule its recover inside the window — no node left down forever."""
    gen = RandomChaos([f"n{i}" for i in range(5)], duration=5.0, seed=2,
                      rate=2.0, mean_downtime=100.0)
    sched = gen.schedule()
    crashes = [e for e in sched if e.kind == "crash"]
    recovers = [e for e in sched if e.kind == "recover"]
    assert crashes, "schedule drew no crashes"
    assert len(recovers) == len(crashes)    # every crash is paired
    assert all(e.at <= 5.0 for e in recovers)
    # With a 100s mean downtime the clamp must actually have fired.
    assert any(e.at == 5.0 for e in recovers)
