"""ChaosSchedule builder and RandomChaos generator."""

import pytest

from repro.chaos import ChaosSchedule, FaultSpec, RandomChaos


def test_builder_chains_and_sorts():
    sched = (ChaosSchedule()
             .recover(2.0, "n1")
             .crash(1.0, "n1")
             .drop(0.5, "a", "b", probability=0.3)
             .heal(3.0))
    kinds = [s.kind for s in sched.events()]
    assert kinds == ["drop", "crash", "recover", "heal"]
    assert len(sched) == 4


def test_builder_rejects_bad_input():
    with pytest.raises(ValueError):
        ChaosSchedule()._add(FaultSpec(0.0, "explode", ("n1",)))
    with pytest.raises(ValueError):
        ChaosSchedule().crash(-1.0, "n1")


def test_stable_order_for_simultaneous_events():
    sched = ChaosSchedule().crash(1.0, "a").crash(1.0, "b").crash(1.0, "c")
    assert [s.target[0] for s in sched.events()] == ["a", "b", "c"]


def test_describe_mentions_parameters():
    sched = (ChaosSchedule()
             .degrade_link(1.0, "a", "b", factor=8.0)
             .drop(2.0, probability=0.25, duplicate=0.1))
    text = sched.describe()
    assert "x8" in text
    assert "loss=0.25" in text and "dup=0.1" in text


def test_random_chaos_reproducible():
    targets = [f"zk:{i}" for i in range(5)]
    a = RandomChaos(targets, duration=20.0, seed=7).schedule()
    b = RandomChaos(targets, duration=20.0, seed=7).schedule()
    assert a.events() == b.events()
    c = RandomChaos(targets, duration=20.0, seed=8).schedule()
    assert a.events() != c.events()
    assert len(a) > 0


def test_random_chaos_pairs_crash_with_recover():
    sched = RandomChaos(["a", "b", "c"], duration=50.0, seed=1).schedule()
    crashes = [s for s in sched if s.kind == "crash"]
    recovers = [s for s in sched if s.kind == "recover"]
    assert len(crashes) == len(recovers)
    assert len(crashes) + len(recovers) == len(sched)


def test_random_chaos_keeps_majority_alive():
    targets = [f"zk:{i}" for i in range(5)]
    sched = RandomChaos(targets, duration=100.0, seed=3, rate=2.0,
                        mean_downtime=3.0).schedule()
    # Replay the timeline: at most 2 of 5 targets down at once.
    down = {}
    for spec in sched.events():
        if spec.kind == "crash":
            down[spec.target[0]] = True
        elif spec.kind == "recover":
            down.pop(spec.target[0], None)
        assert sum(down.values()) <= 2


def test_random_chaos_needs_targets():
    with pytest.raises(ValueError):
        RandomChaos([], duration=10.0)
