"""Crash-during-migration: the journaled two-phase protocol must leave
the namespace auditable from either side of the cutover."""

import pytest

from repro.chaos import audit_dufs
from repro.core import build_dufs_deployment
from repro.models.params import ElasticParams, SimParams, ZKParams


def build_elastic_chaos(seed=0):
    """2 shards x 3 servers, fast-failing ZK clients so a dead quorum is
    detected in sim-milliseconds instead of stretching the test."""
    params = SimParams()
    params.zk = ZKParams(failure_detection=True, session_tracking=True,
                         ping_interval=0.1, ping_timeout=0.3,
                         election_tick=0.05)
    return build_dufs_deployment(n_zk=6, n_backends=2, n_client_nodes=2,
                                 backend="local", n_shards=2, params=params,
                                 co_locate_zk=False, seed=seed,
                                 zk_request_timeout=0.2, zk_max_retries=2,
                                 autoscale=ElasticParams.elastic_on(
                                     autoscale=False, drain=0.02))


def populated_dir(dep, n_files=40):
    svc = dep.clients[0].zk
    m = dep.mounts[0]
    d = next(f"/t{i}" for i in range(64)
             if svc.map.child_shard(f"/t{i}") in (0, 1))
    src = svc.map.child_shard(d)
    dep.call(m.mkdir, d)
    for i in range(n_files):
        dep.call(m.create, f"{d}/f{i:03d}")
    return d, src, 1 - src


def step_until(sim, cond, limit=5.0, dt=0.002):
    deadline = sim.now + limit
    while not cond() and sim.now < deadline:
        sim.run(until=sim.now + dt)
    assert cond(), "migration never reached the target phase"


def in_copy_phase(dep, min_entries=3):
    def cond():
        migs = dep.registry.migrations
        return bool(migs) and migs[0].state == "copy" \
            and migs[0].entries_copied >= min_entries
    return cond


def test_src_quorum_crash_after_cutover_rolls_forward():
    """Source shard dies right after cutover: the new map is installed,
    but stale-copy cleanup and marker-retire on the dead source fail.
    The surviving marker tells the auditor the migration was torn;
    rolling it forward under current-map authority audits clean."""
    dep = build_elastic_chaos()
    sim = dep.cluster.sim
    d, src, dst = populated_dir(dep)

    dep.client_nodes[0].spawn(dep.migrator.split(d, dst))
    step_until(sim, in_copy_phase(dep))
    mig = dep.registry.migrations[0]
    step_until(sim, lambda: mig.state == "done")   # cutover, pre-cleanup
    for server in dep.ensembles[src].servers:
        server.node.crash()
    sim.run(until=sim.now + 8.0)

    assert dep.registry.epoch == 1
    assert dep.registry.current.child_shard(d) == dst
    assert dep.migrator.stats["splits"] == 1

    # The marker survived on the dead shard's store; the auditor rolls
    # the torn migration forward and the namespace audits clean.
    report = audit_dufs(dep)
    assert report.repairs >= 1
    assert report.ok, report.to_text()

    # A client refreshed to the current map serves the whole subtree
    # from the destination, source still dark.
    svc = dep.clients[0].zk
    svc._adopt_map(dep.registry.current)
    names = dep.call(svc.get_children, d)
    assert names == [f"f{i:03d}" for i in range(40)]
    dep.call(dep.mounts[0].create, f"{d}/after")
    assert "after" in dep.call(svc.get_children, d)


def test_src_quorum_crash_mid_copy_aborts_to_source_authority():
    """Source shard dies while the copy is still running: the migrator
    cannot prove the destination copy complete (the settle sweep needs
    the source), so it aborts — the old map stays current and the frozen
    subtree rides out the outage with the rest of the dead shard. The
    marker could not be retired; the auditor rolls it forward as a
    no-op."""
    dep = build_elastic_chaos()
    sim = dep.cluster.sim
    d, src, dst = populated_dir(dep)

    dep.client_nodes[0].spawn(dep.migrator.split(d, dst))
    step_until(sim, in_copy_phase(dep))
    mig = dep.registry.migrations[0]
    for server in dep.ensembles[src].servers:
        server.node.crash()
    sim.run(until=sim.now + 8.0)

    assert mig.state == "aborted"
    assert dep.registry.epoch == 0
    assert dep.registry.current.subtrees == {}
    assert dep.registry.migrations == []
    report = audit_dufs(dep)
    assert report.repairs >= 1        # the marker it could not retire
    assert report.ok, report.to_text()

    # The shard comes back: the subtree is intact at the source and the
    # aborted move left no routing change behind.
    for server in dep.ensembles[src].servers:
        server.node.recover()
    sim.run(until=sim.now + 3.0)
    svc = dep.clients[0].zk
    names = dep.call(svc.get_children, d)
    assert names == [f"f{i:03d}" for i in range(40)]


def test_dst_quorum_crash_mid_copy_aborts_cleanly():
    """Destination shard dies mid-copy: the copy fails, the migration
    aborts, the old map stays current (the frozen source is complete and
    authoritative), and the marker is retired — nothing for the auditor
    to repair."""
    dep = build_elastic_chaos()
    sim = dep.cluster.sim
    d, src, dst = populated_dir(dep)

    dep.client_nodes[0].spawn(dep.migrator.split(d, dst))
    step_until(sim, in_copy_phase(dep, min_entries=1))
    mig = dep.registry.migrations[0]
    for server in dep.ensembles[dst].servers:
        server.node.crash()
    sim.run(until=sim.now + 8.0)

    assert mig.state == "aborted"
    assert dep.migrator.stats["aborted"] == 1
    assert dep.registry.epoch == 0
    assert dep.registry.current.subtrees == {}
    assert dep.registry.migrations == []       # writers were released

    # Marker retired (source is alive): the audit sees no torn intent,
    # and the destination partials are invisible under the old map.
    report = audit_dufs(dep)
    assert report.repairs == 0
    assert report.ok, report.to_text()

    # The source keeps serving the subtree as if nothing happened.
    svc = dep.clients[0].zk
    dep.call(dep.mounts[0].create, f"{d}/after")
    assert "after" in dep.call(svc.get_children, d)


def test_chaos_migration_targets_resolve_lazily():
    from repro.chaos.runner import _build_dufs

    cluster, dep, _client, node, resolve, _apply = _build_dufs(
        seed=0, shards=2,
        elastic=ElasticParams.elastic_on(autoscale=False, drain=0.02))
    with pytest.raises(RuntimeError):
        resolve("migration:src")           # nothing in flight yet

    svc = dep.clients[0].zk
    m = dep.mounts[0]
    d = "/t0"
    src = svc.map.child_shard(d)
    dst = 1 - src
    dep.call(m.mkdir, d)
    for i in range(20):
        dep.call(m.create, f"{d}/f{i}")

    proc = node.spawn(dep.migrator.split(d, dst))
    step_until(cluster.sim, in_copy_phase(dep, min_entries=1))
    src_nodes = {s.node for s in dep.ensembles[src].servers}
    dst_nodes = {s.node for s in dep.ensembles[dst].servers}
    assert resolve("migration:src") in src_nodes
    assert resolve("migration:dst") in dst_nodes

    assert cluster.sim.run(until=proc) is True
    with pytest.raises(RuntimeError):
        resolve("migration:src")           # done: nothing to target again
