"""Link faults: loss, duplication, degradation — and their safety
properties (timeouts instead of hangs; duplicate delivery is harmless;
healthy runs never touch the chaos random stream)."""

from repro.sim import Cluster, RpcAgent, RpcTimeout
from repro.sim.network import CHAOS_STREAM


def build_pair():
    cluster = Cluster(seed=1)
    snode = cluster.add_node("server", cores=2)
    cnode = cluster.add_node("client", cores=2)
    server = RpcAgent(snode, "svc")
    client = RpcAgent(cnode, "cli")

    def echo(src, args):
        yield from snode.cpu_work(1e-4)
        return args

    server.register("echo", echo)
    return cluster, snode, cnode, server, client


def test_total_loss_surfaces_as_timeout_not_hang():
    cluster, snode, cnode, server, client = build_pair()
    cluster.network.degrade_link("client", "server", loss=1.0)
    outcome = []

    def caller():
        try:
            yield from client.call("svc", "echo", 1, timeout=0.5)
            outcome.append("ok")
        except RpcTimeout:
            outcome.append("timeout")

    cnode.spawn(caller())
    cluster.run()
    assert outcome == ["timeout"]
    assert cluster.network.stats.dropped >= 1
    assert cluster.sim.now < 1.0  # bounded, no hang


def test_restore_link_heals_loss():
    cluster, snode, cnode, server, client = build_pair()
    cluster.network.degrade_link("client", "server", loss=1.0)
    cluster.network.restore_link("client", "server")
    results = []

    def caller():
        value = yield from client.call("svc", "echo", 7, timeout=0.5)
        results.append(value)

    cnode.spawn(caller())
    cluster.run()
    assert results == [7]


def test_duplicate_delivery_is_harmless():
    cluster, snode, cnode, server, client = build_pair()
    # Duplicate every message in both directions: requests run the handler
    # twice (at-least-once), responses to settled calls are discarded.
    cluster.network.degrade_link("*", "*", duplicate=1.0)
    results = []

    def caller():
        for i in range(5):
            value = yield from client.call("svc", "echo", i, timeout=1.0)
            results.append(value)

    cnode.spawn(caller())
    cluster.run()
    assert results == [0, 1, 2, 3, 4]
    assert cluster.network.stats.duplicated >= 5


def test_latency_degradation_slows_but_delivers():
    base_cluster, snode, cnode, server, client = build_pair()
    done = []

    def caller():
        yield from client.call("svc", "echo", 1)
        done.append(base_cluster.sim.now)

    cnode.spawn(caller())
    base_cluster.run()
    healthy = done[0]

    slow_cluster, snode2, cnode2, server2, client2 = build_pair()
    slow_cluster.network.degrade_link("*", "*", latency_factor=100.0)
    done2 = []

    def caller2():
        yield from client2.call("svc", "echo", 1)
        done2.append(slow_cluster.sim.now)

    cnode2.spawn(caller2())
    slow_cluster.run()
    assert done2[0] > healthy * 10


def test_loopback_immune_to_wildcard_faults():
    cluster = Cluster(seed=1)
    node = cluster.add_node("host", cores=2)
    server = RpcAgent(node, "svc")
    client = RpcAgent(node, "cli")

    def echo(src, args):
        yield from node.cpu_work(1e-5)
        return args

    server.register("echo", echo)
    cluster.network.degrade_link("*", "*", loss=1.0)
    results = []

    def caller():
        value = yield from client.call("svc", "echo", 42, timeout=0.5)
        results.append(value)

    node.spawn(caller())
    cluster.run()
    assert results == [42]


def test_healthy_runs_never_draw_from_chaos_stream():
    cluster, snode, cnode, server, client = build_pair()
    # A deterministic (non-stochastic) degradation installed and removed:
    cluster.network.degrade_link("client", "server", latency_factor=2.0)
    results = []

    def caller():
        value = yield from client.call("svc", "echo", 1)
        results.append(value)

    cnode.spawn(caller())
    cluster.run()
    assert results == [1]
    # No loss/duplicate probability -> the chaos RNG stream was never
    # instantiated, so pre-chaos seeds replay byte-identically.
    assert CHAOS_STREAM not in cluster.streams._streams


def test_lossy_zab_links_never_lose_acknowledged_writes():
    """A dropped proposal leaves a hole in a follower's log; the follower
    must re-sync from the leader rather than apply later commits across
    the gap and silently diverge at the same commit index."""
    from repro.zk.client import ZKClient
    from repro.zk.ensemble import build_ensemble
    from repro.zk.errors import ZKError

    cluster = Cluster(seed=3)
    nodes = [cluster.add_node(f"n{i}") for i in range(3)]
    ens = build_ensemble(cluster, nodes, n_servers=3)
    cnode = cluster.add_node("cl")
    zkc = ZKClient(cnode, [s.endpoint for s in ens.servers],
                   request_timeout=0.4, max_retries=8, name="lz")
    cluster.network.degrade_link("*", "*", loss=0.1, duplicate=0.05)
    acked = []

    def workload():
        yield from zkc.connect()
        for i in range(60):
            try:
                yield from zkc.create(f"/k{i}", b"v")
                acked.append(f"/k{i}")
            except ZKError:
                # Timeout/retry exhaustion or a NodeExists from our own
                # duplicate: outcome unknown, so nothing is guaranteed.
                pass
            yield cluster.sim.timeout(0.01)

    cnode.spawn(workload())
    cluster.sim.run(until=60.0)

    # Every acknowledged create is present on every replica's committed
    # tree once the ensemble quiesces (followers re-synced over the gaps).
    assert acked
    assert any(s.stats["gap_resyncs"] > 0 for s in ens.servers)
    leader = max(ens.servers, key=lambda s: s.commit_index)
    committed = set(leader.store.walk_paths())
    assert all(path in committed for path in acked)
    # No silent divergence: replicas at the same commit index carry the
    # same committed tree.
    for s in ens.servers:
        if s.commit_index == leader.commit_index:
            assert s.store.fingerprint() == leader.store.fingerprint()
