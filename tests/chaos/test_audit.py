"""Namespace auditor: clean runs audit clean, and each injected
inconsistency class is detected and classified."""

import pytest

from repro.chaos import audit_dufs
from repro.chaos.audit import freshest_store, physical_files
from repro.core import build_dufs_deployment
from repro.core.metadata import DirPayload, FilePayload


@pytest.fixture
def dep():
    return build_dufs_deployment(n_zk=1, n_backends=2, n_client_nodes=1,
                                 backend="local", seed=2)


def populate(dep, n_files=8):
    mount = dep.mounts[0]
    dep.call(mount.mkdir, "/d")
    for i in range(n_files):
        dep.call(mount.create, f"/d/f{i}")


def test_clean_deployment_audits_clean(dep):
    populate(dep)
    report = audit_dufs(dep)
    assert report.ok, report.to_text()
    assert report.checked_znodes == 9   # /d + 8 files
    assert report.checked_files == 8
    assert "CLEAN" in report.to_text()


def test_unlink_leaves_no_residue(dep):
    populate(dep, n_files=4)
    for i in range(4):
        dep.call(dep.mounts[0].unlink, f"/d/f{i}")
    report = audit_dufs(dep)
    assert report.ok, report.to_text()
    assert report.checked_files == 0


def test_detects_orphan_physical_file(dep):
    populate(dep, n_files=2)
    # A physical file nothing references (e.g. a rollback that never ran).
    dep.backends[0].ns.create("/stray", 0o644, 0.0)
    report = audit_dufs(dep)
    assert not report.ok
    assert report.count("orphan-fid") == 1
    v = [v for v in report.violations if v.kind == "orphan-fid"][0]
    assert v.path == "/stray"


def test_detects_dangling_mapping(dep):
    populate(dep, n_files=3)
    # Remove one physical file behind the namespace's back.
    for backend in dep.backends:
        files = sorted(physical_files(backend))
        if files:
            backend.ns.unlink(files[0], 0.0)
            break
    report = audit_dufs(dep)
    assert not report.ok
    assert report.count("dangling-mapping") == 1


def test_detects_bad_payload_and_tree_invariant(dep):
    populate(dep, n_files=1)
    zkc = dep.zk_clients[0]
    dep.call(zkc.create, "/junk", b"garbage")
    dep.call(zkc.create, "/file2", FilePayload(fid=0xDEAD).encode())
    dep.call(zkc.create, "/file2/kid", DirPayload().encode())
    report = audit_dufs(dep)
    assert report.count("bad-payload") == 1
    assert report.count("tree-invariant") == 1   # /file2/kid under a file
    assert report.count("dangling-mapping") == 1  # 0xDEAD has no file


def test_detects_duplicate_fid(dep):
    populate(dep, n_files=1)
    store = freshest_store(dep.ensemble)
    path, = [p for p in store.walk_paths() if p.startswith("/d/")]
    data, _ = store.get(path)
    zkc = dep.zk_clients[0]
    dep.call(zkc.create, "/twin", data)    # same FID, second znode
    report = audit_dufs(dep)
    assert report.count("duplicate-fid") == 1


def test_report_is_deterministic_and_machine_readable(dep):
    populate(dep, n_files=2)
    dep.backends[0].ns.create("/stray-b", 0o644, 0.0)
    dep.backends[0].ns.create("/stray-a", 0o644, 0.0)
    d1 = audit_dufs(dep).to_dict()
    d2 = audit_dufs(dep).to_dict()
    assert d1 == d2
    assert d1["ok"] is False
    kinds = [v["kind"] for v in d1["violations"]]
    assert kinds == sorted(kinds)
    paths = [v["path"] for v in d1["violations"]]
    assert paths == sorted(paths)   # same kind -> path-sorted
