"""Fault injection against the sharded metadata plane: a dead shard
degrades only its namespace slice, and the post-chaos audit reconciles
cross-shard residue through the intent records."""

import pytest

from repro.chaos import ChaosSchedule, audit_dufs, run_chaos
from repro.core import build_dufs_deployment
from repro.models.params import SimParams, ZKParams
from repro.zk.errors import ZKError


def test_chaos_run_with_default_schedule_audits_clean():
    result = run_chaos("dufs", seed=3, ops=120, shards=2)
    assert result.completed > 0
    assert result.audit is not None
    assert result.audit.ok, result.audit.to_text()


def test_shard_target_crash_and_recover_audits_clean():
    sched = ChaosSchedule()
    sched.crash(0.3, "shard:1")
    sched.recover(0.8, "shard:1")
    result = run_chaos("dufs", schedule=sched, seed=5, ops=150, shards=2)
    assert result.audit is not None
    assert result.audit.ok, result.audit.to_text()
    # The stream survived the shard outage: the run completed ops.
    assert result.completed > 0


def test_shards_rejected_for_non_dufs():
    with pytest.raises(ValueError):
        run_chaos("lustre", shards=2)


def test_dead_shard_degrades_only_its_slice():
    params = SimParams()
    params.zk = ZKParams(failure_detection=True, session_tracking=True,
                         ping_interval=0.1, ping_timeout=0.3,
                         election_tick=0.05)
    dep = build_dufs_deployment(n_zk=4, n_backends=2, n_client_nodes=1,
                                backend="local", n_shards=2, params=params,
                                co_locate_zk=False,
                                zk_request_timeout=0.2, zk_max_retries=2)
    svc = dep.clients[0].zk
    m = dep.mounts[0]
    # Two dirs homed on different shards.
    a = next(f"/t{i}" for i in range(64) if svc.map.child_shard(f"/t{i}") == 0)
    b = next(f"/u{i}" for i in range(64) if svc.map.child_shard(f"/u{i}") == 1)
    dep.call(m.mkdir, a)
    dep.call(m.mkdir, b)
    dep.call(m.create, f"{a}/ok0")
    dep.call(m.create, f"{b}/ok0")

    for server in dep.ensembles[1].servers:     # shard 1 goes dark
        server.node.crash()

    # Shard 0's slice keeps serving...
    dep.call(m.create, f"{a}/ok1")
    assert dep.call(svc.get_children, a) == ["ok0", "ok1"]
    # ...while shard 1's slice exhausts its retry budget and fails.
    from repro.errors import FSError
    with pytest.raises((ZKError, FSError)):
        dep.call(m.create, f"{b}/dead")

    for server in dep.ensembles[1].servers:
        server.node.recover()
    dep.cluster.sim.run(until=dep.cluster.sim.now + 2.0)
    dep.call(m.create, f"{b}/ok1")
    assert dep.call(svc.get_children, b) == ["ok0", "ok1"]
    # The failed create may leave an orphaned physical file: with the
    # shard down the outcome is unverifiable, and the client deliberately
    # keeps the data (a dangling name->FID mapping would be worse). The
    # *namespace* itself must still be consistent — nothing dangling, no
    # tree violations.
    report = audit_dufs(dep)
    assert all(v.kind == "orphan-fid" for v in report.violations), \
        report.to_text()
