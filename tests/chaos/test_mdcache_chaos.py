"""Client metadata cache under faults: coherence holds, staleness bounded.

Two claims from the cache PR's acceptance bar:

- a chaos run with caching enabled still audits clean — watch-based
  invalidation plus flush-on-watch-loss keep every client's view
  reconcilable with the authoritative namespace even while ZooKeeper
  servers crash and recover under the op stream;
- the stale-read window after a remote write is bounded by watch
  delivery (one cast after the committed txn is applied), not by any
  TTL — a cached entry can be served stale only for the notification
  hop, never indefinitely.
"""

import pytest

from repro.chaos import ChaosSchedule, run_chaos
from repro.core import build_dufs_deployment
from repro.models.params import CacheParams
from repro.sim.core import AllOf


@pytest.mark.chaos
def test_chaos_run_with_cache_enabled_audits_clean():
    sched = ChaosSchedule().crash(0.5, "meta:0").recover(2.0, "meta:0")
    result = run_chaos("dufs", schedule=sched, ops=300, seed=7,
                       cache=CacheParams.caching_on())
    assert result.failed == 0
    assert result.completed == 300
    assert result.audit is not None and result.audit.ok, \
        result.audit.to_text()


@pytest.mark.chaos
def test_chaos_random_minority_crashes_with_cache_audits_clean():
    result = run_chaos("dufs", seed=11, ops=250,
                       cache=CacheParams.caching_on())
    assert result.audit is not None and result.audit.ok, \
        result.audit.to_text()
    assert result.completed > 0


def test_stale_read_window_bounded_by_watch_delivery():
    """Client 0 polls a cached directory's mode every millisecond while
    client 1 chmods it. Once the write commits, client 0 may serve the
    old mode only until the watch event lands (a single network cast,
    ~100 us) — and never flips back."""
    dep = build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=2,
                                backend="local", seed=7,
                                cache=CacheParams.caching_on())
    sim = dep.cluster.sim
    c0, c1 = dep.clients[0], dep.clients[1]
    dep.call(c0.mkdir, "/d")
    dep.call(c0.stat, "/d")             # warm the cache (mode 0o755)

    observations = []

    def reader():
        for _ in range(150):
            st = yield from c0.stat("/d")
            observations.append((sim.now, st.st_mode & 0o777))
            yield sim.timeout(0.001)

    committed = []

    def writer():
        yield sim.timeout(0.05)
        yield from c1.chmod("/d", 0o700)
        committed.append(sim.now)

    p1 = dep.client_nodes[0].spawn(reader())
    p2 = dep.client_nodes[1].spawn(writer())
    sim.run(until=AllOf(sim, [p1, p2]))

    t_commit = committed[0]
    stale = [t for t, mode in observations if mode == 0o755]
    fresh = [t for t, mode in observations if mode == 0o700]
    assert fresh, "new mode never observed"

    # Staleness past the commit is bounded by watch delivery, orders of
    # magnitude under the 1 ms poll interval's resolution.
    window = max((t - t_commit for t in stale), default=0.0)
    assert window < 0.01, f"stale window {window * 1e3:.2f} ms"

    # Monotone: once the invalidation landed, never stale again.
    assert max(stale) < min(fresh)
    assert dep.clients[0].mdcache.counters["watch_invalidations"] >= 1
