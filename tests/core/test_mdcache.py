"""The coherent client metadata cache: hits, bounds, coalescing, coherence.

Each test drives real DUFS clients over a real simulated ZooKeeper
ensemble — the cache is exercised through the client entry points, not
poked directly, except where a test targets one internal policy.
"""

import pytest

from repro.errors import ENOENT, FSError
from repro.models.params import CacheParams

from .conftest import DUFSHarness


@pytest.fixture
def cached():
    return DUFSHarness(cache=CacheParams.caching_on())


def _stats(h, i=0):
    return h.dep.clients[i].stats


def _cache(h, i=0):
    return h.dep.clients[i].mdcache


# -- hits ---------------------------------------------------------------------
def test_repeat_stat_is_served_from_cache(cached):
    c = cached.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        yield from c.create("/d/f")
        yield from c.stat("/d/f")
        reads_after_first = _stats(cached)["zk_reads"]
        for _ in range(5):
            yield from c.stat("/d/f")
        return reads_after_first

    reads_after_first = cached.run(main())
    assert _stats(cached)["zk_reads"] == reads_after_first  # all hits
    assert _cache(cached).counters["hits"] >= 5
    assert _cache(cached).hit_rate() > 0.5


def test_stat_after_readdir_piggybacks_listing(cached):
    """The ls -l pattern: readdir-plus fills positive entries, so the
    per-entry stats that follow never touch ZooKeeper."""
    c = cached.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        for i in range(4):
            yield from c.create(f"/d/f{i}")
        entries = yield from c.readdir("/d")
        reads = _stats(cached)["zk_reads"]
        for e in entries:
            yield from c.stat(f"/d/{e.name}")
        return reads

    reads_before_stats = cached.run(main())
    assert _stats(cached)["zk_reads"] == reads_before_stats
    mc = _cache(cached)
    assert mc.counters["listing_misses"] == 1
    assert mc.counters["hits"] >= 4

    def again():
        yield from c.readdir("/d")

    cached.run(again())
    assert mc.counters["listing_hits"] == 1


def test_cache_off_records_nothing(dufs):
    """Default policy: every counter stays zero (the byte-identity face)."""
    c = dufs.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        yield from c.create("/d/f")
        yield from c.stat("/d/f")
        yield from c.stat("/d/f")
        yield from c.readdir("/d")

    dufs.run(main())
    assert all(v == 0 for v in _cache(dufs).counters.values())
    assert len(_cache(dufs)) == 0


# -- bounds -------------------------------------------------------------------
def test_ttl_expiry_forces_refetch():
    h = DUFSHarness(cache=CacheParams.caching_on(ttl=0.05))
    c = h.dep.clients[0]

    def part1():
        yield from c.mkdir("/d")
        yield from c.create("/d/f")
        yield from c.stat("/d/f")
        yield from c.stat("/d/f")      # within TTL: hit

    h.run(part1())
    assert _cache(h).counters["hits"] == 1
    h.settle(0.2)                      # expire the entry

    def part2():
        yield from c.stat("/d/f")

    h.run(part2())
    assert _cache(h).counters["hits"] == 1      # no new hit
    assert _cache(h).counters["misses"] >= 2    # refetched


def test_lru_capacity_bound():
    h = DUFSHarness(cache=CacheParams.caching_on(capacity=4))
    c = h.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        for i in range(8):
            yield from c.create(f"/d/f{i}")
        for i in range(8):
            yield from c.stat(f"/d/f{i}")

    h.run(main())
    mc = _cache(h)
    assert len(mc) <= 4
    assert mc.counters["evictions"] > 0
    assert "/d/f7" in mc._entries       # most recent survives
    assert "/d/f0" not in mc._entries   # oldest evicted


def test_negative_caching_bounds_enoent_lookups():
    h = DUFSHarness(cache=CacheParams.caching_on(negative_ttl=0.5))
    c = h.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        for _ in range(3):
            try:
                yield from c.stat("/d/nope")
            except FSError as exc:
                assert exc.errno == ENOENT
        reads = _stats(h)["zk_reads"]
        # creating the path must kill the negative (read-your-writes)
        yield from c.create("/d/nope")
        st = yield from c.stat("/d/nope")
        assert st is not None
        return reads

    h.run(main())
    assert _cache(h).counters["neg_hits"] == 2   # 1 miss + 2 negative hits


def test_negative_caching_off_by_default(cached):
    c = cached.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        for _ in range(3):
            try:
                yield from c.stat("/d/nope")
            except FSError:
                pass

    cached.run(main())
    assert _cache(cached).counters["neg_hits"] == 0


# -- read coalescing ----------------------------------------------------------
def test_concurrent_lookups_share_one_rpc(cached):
    c = cached.dep.clients[0]
    cached.run(c.mkdir("/d"))
    cached.run(c.create("/d/f"))
    before = _stats(cached)["zk_reads"]

    results = cached.run_all(c.stat("/d/f"), c.stat("/d/f"), c.stat("/d/f"))
    assert all(st is not None for st in results)
    mc = _cache(cached)
    assert mc.counters["coalesced"] == 2        # two piggybacked
    assert _stats(cached)["zk_reads"] == before + 1


def test_coalesced_failure_propagates_to_waiters(cached):
    c = cached.dep.clients[0]
    cached.run(c.mkdir("/d"))

    def one():
        try:
            yield from c.stat("/d/nope")
        except FSError as exc:
            return exc.errno
        return None

    errnos = cached.run_all(one(), one())
    assert errnos == [ENOENT, ENOENT]
    assert _cache(cached).counters["coalesced"] == 1


def test_coalescing_can_be_disabled():
    h = DUFSHarness(cache=CacheParams.caching_on(coalesce=False))
    c = h.dep.clients[0]
    h.run(c.mkdir("/d"))
    h.run(c.create("/d/f"))
    before = _stats(h)["zk_reads"]
    h.run_all(c.stat("/d/f"), c.stat("/d/f"))
    assert _cache(h).counters["coalesced"] == 0
    assert _stats(h)["zk_reads"] == before + 2


# -- coherence ----------------------------------------------------------------
def test_remote_write_invalidates_via_watch(cached):
    """Client 1 deletes a file client 0 has cached; the data watch (plus
    the parent child watch) invalidates, and client 0 sees ENOENT."""
    c0, c1 = cached.dep.clients[0], cached.dep.clients[1]
    cached.run(c0.mkdir("/d"))
    cached.run(c0.create("/d/f"))
    cached.run(c0.stat("/d/f"))                  # cached at client 0
    cached.run(c1.unlink("/d/f"), node_index=1)
    cached.settle(0.2)                           # watch delivery
    assert _cache(cached).counters["watch_invalidations"] >= 1

    def check():
        try:
            yield from c0.stat("/d/f")
        except FSError as exc:
            return exc.errno
        return None

    assert cached.run(check()) == ENOENT


def test_remote_chmod_refreshes_cached_mode(cached):
    c0, c1 = cached.dep.clients[0], cached.dep.clients[1]
    cached.run(c0.mkdir("/d"))
    st = cached.run(c0.stat("/d"))
    assert (st.st_mode & 0o777) == 0o755
    cached.run(c1.chmod("/d", 0o700), node_index=1)
    cached.settle(0.2)
    st = cached.run(c0.stat("/d"))
    assert (st.st_mode & 0o777) == 0o700


def test_watch_loss_flushes_everything(cached):
    c = cached.dep.clients[0]
    cached.run(c.mkdir("/d"))
    cached.run(c.create("/d/f"))
    cached.run(c.stat("/d/f"))
    cached.run(c.readdir("/d"))
    mc = _cache(cached)
    assert len(mc) > 0 and mc._listings

    c.zk._notify_watch_loss("failover")          # what _fail_over() calls
    assert len(mc) == 0
    assert not mc._listings and not mc._watched and not mc._dirs
    assert mc.counters["flushes"] == 1

    # and the next lookup refetches, repopulating
    cached.run(c.stat("/d/f"))
    assert len(mc) == 1


def test_rename_dir_kills_cached_subtree(cached):
    c = cached.dep.clients[0]

    def setup():
        yield from c.mkdir("/a")
        yield from c.create("/a/f")
        yield from c.stat("/a/f")
        yield from c.readdir("/a")

    cached.run(setup())
    mc = _cache(cached)
    assert "/a/f" in mc._entries

    cached.run(c.rename("/a", "/b"))
    assert "/a/f" not in mc._entries
    assert "/a" not in mc._listings
    assert not mc.known_dir("/a")

    def check():
        st = yield from c.stat("/b/f")
        assert st is not None
        try:
            yield from c.stat("/a/f")
        except FSError as exc:
            return exc.errno

    assert cached.run(check()) == ENOENT


def test_vdir_dcache_unified_without_cache(dufs):
    """The always-on virtual-directory dcache (the old _vdir_cache) lives
    in MDCache now, cache enabled or not."""
    c = dufs.dep.clients[0]
    mc = _cache(dufs)
    dufs.run(c.mkdir("/d"))
    assert mc.known_dir("/d")
    dufs.run(c.rmdir("/d"))
    assert not mc.known_dir("/d")
