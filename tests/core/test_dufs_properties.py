"""Property-based conformance: DUFS vs a POSIX namespace oracle.

A single client applies random operation sequences both to a full DUFS
deployment (FUSE → DUFS → ZooKeeper + 2 local back-ends) and to a plain
in-memory :class:`Namespace`. Every operation must succeed/fail alike
(same errno class), and the final virtual tree must list identically.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import build_dufs_deployment
from repro.errors import FSError
from repro.pfs.namespace import Namespace

names = st.sampled_from(["a", "b", "c"])
paths = st.lists(names, min_size=1, max_size=3).map(
    lambda cs: "/" + "/".join(cs))

ops = st.one_of(
    st.tuples(st.just("mkdir"), paths),
    st.tuples(st.just("create"), paths),
    st.tuples(st.just("rmdir"), paths),
    st.tuples(st.just("unlink"), paths),
    st.tuples(st.just("stat"), paths),
    st.tuples(st.just("rename"), paths, paths),
)


def oracle_apply(ns: Namespace, op):
    kind = op[0]
    if kind == "mkdir":
        ns.mkdir(op[1], 0o755, 1.0)
    elif kind == "create":
        ns.create(op[1], 0o644, 1.0)
    elif kind == "rmdir":
        ns.rmdir(op[1], 1.0)
    elif kind == "unlink":
        ns.unlink(op[1], 1.0)
    elif kind == "stat":
        ns.stat(op[1])
    elif kind == "rename":
        if op[1] == op[2]:
            ns.lookup(op[1])  # DUFS treats same-path rename as a no-op stat
        else:
            ns.rename(op[1], op[2], 1.0)


def tree_listing(ns: Namespace):
    out = []

    def rec(path, inode):
        for name in sorted(inode.entries or ()):
            child = ns.inodes[inode.entries[name]]
            p = f"{path}/{name}" if path != "/" else f"/{name}"
            out.append((p, child.is_dir))
            if child.is_dir:
                rec(p, child)

    rec("/", ns.root)
    return out


def dufs_listing(dep):
    """Walk the virtual namespace through the ZooKeeper leader's store."""
    from repro.core.metadata import DirPayload, decode_payload

    store = dep.ensemble.servers[0].store
    out = []
    for path in store.walk_paths():
        if path == "/":
            continue
        payload = decode_payload(store.get(path)[0])
        out.append((path, isinstance(payload, DirPayload)))
    return out


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large,
                                 HealthCheck.filter_too_much])
@given(st.lists(ops, max_size=25))
def test_dufs_matches_posix_oracle(op_list):
    dep = build_dufs_deployment(n_zk=1, n_backends=2, n_client_nodes=1,
                                backend="local")
    mount = dep.mounts[0]
    oracle = Namespace()
    mismatches = []

    def driver():
        for op in op_list:
            dufs_err = oracle_err = None
            try:
                if op[0] == "rename":
                    yield from mount.rename(op[1], op[2])
                else:
                    yield from getattr(mount, op[0])(op[1])
            except FSError as e:
                dufs_err = e.err
            try:
                oracle_apply(oracle, op)
            except FSError as e:
                oracle_err = e.err
            if dufs_err != oracle_err:
                mismatches.append((op, dufs_err, oracle_err))

    dep.call(lambda: driver())
    assert not mismatches, mismatches
    assert dufs_listing(dep) == tree_listing(oracle)
    # Physical files on the back-ends equal the number of virtual files.
    n_virtual_files = sum(1 for _, is_dir in tree_listing(oracle)
                          if not is_dir)
    assert sum(be.ns.count_files() for be in dep.backends) == n_virtual_files


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(ops, max_size=12), st.lists(ops, max_size=12))
def test_two_clients_still_converge(ops_a, ops_b):
    """Concurrent random clients: no invariant violations, replicas equal,
    and no orphaned physical files."""
    dep = build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=2,
                                backend="local")

    def driver(mount, op_list):
        for op in op_list:
            try:
                if op[0] == "rename":
                    yield from mount.rename(op[1], op[2])
                else:
                    yield from getattr(mount, op[0])(op[1])
            except FSError:
                pass

    dep.client_nodes[0].spawn(driver(dep.mounts[0], ops_a))
    dep.client_nodes[1].spawn(driver(dep.mounts[1], ops_b))
    dep.cluster.run()
    assert dep.ensemble.converged()
    n_virtual_files = sum(1 for _, is_dir in dufs_listing(dep)
                          if not is_dir)
    assert sum(be.ns.count_files() for be in dep.backends) == n_virtual_files
