"""Per-shard watch-loss flush: losing one shard's session must not cost
the client its whole cache, only the entries that shard served."""

from repro.core import build_dufs_deployment
from repro.models.params import CacheParams


def make_dep(n_shards=4):
    return build_dufs_deployment(n_zk=4, n_backends=2, n_client_nodes=1,
                                 backend="local", n_shards=n_shards,
                                 cache=CacheParams.caching_on())


def populate(dep, n_dirs=8):
    m = dep.mounts[0]
    for i in range(n_dirs):
        dep.call(m.mkdir, f"/d{i}")
        dep.call(m.create, f"/d{i}/f")
    for i in range(n_dirs):               # warm the cache
        dep.call(m.stat, f"/d{i}/f")
        dep.call(m.readdir, f"/d{i}")


def test_shard_watch_loss_flushes_only_that_slice():
    dep = make_dep()
    client = dep.clients[0]
    cache, svc = client.mdcache, client.zk
    populate(dep)
    assert cache._entries and cache._listings

    victim = svc.shard_for("/d0/f")
    kept_entries = [p for p in cache._entries
                    if svc.shard_for(p) != victim]
    kept_listings = [p for p in cache._listings
                     if svc.listing_shard_for(p) != victim]
    assert kept_entries, "test needs entries on surviving shards"

    flushes = cache.counters["flushes"]
    cache._on_watch_loss("session", shard=victim)

    assert all(svc.shard_for(p) != victim for p in cache._entries)
    assert all(svc.listing_shard_for(p) != victim
               for p in cache._listings)
    for p in kept_entries:
        assert p in cache._entries        # survivors untouched
    for p in kept_listings:
        assert p in cache._listings
    assert cache.counters["flushes"] == flushes + 1


def test_watch_loss_without_shard_still_flushes_wholesale():
    dep = make_dep()
    cache = dep.clients[0].mdcache
    populate(dep, n_dirs=4)
    assert cache._entries
    cache._on_watch_loss("failover")      # raw two-arg listener form
    assert not cache._entries and not cache._listings


def test_single_shard_deployment_flushes_wholesale():
    dep = build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=1,
                                backend="local",
                                cache=CacheParams.caching_on())
    cache = dep.clients[0].mdcache
    populate(dep, n_dirs=4)
    assert cache._entries
    cache._on_watch_loss("session", shard=0)
    assert not cache._entries
