"""Znode payload codec (paper §IV-D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fid import make_fid
from repro.core.metadata import (
    DirPayload,
    FilePayload,
    SymlinkPayload,
    decode_payload,
)


def test_dir_roundtrip():
    p = DirPayload(mode=0o750, uid=5, gid=6)
    assert decode_payload(p.encode()) == p


def test_file_roundtrip():
    p = FilePayload(fid=make_fid(3, 99), mode=0o600)
    assert decode_payload(p.encode()) == p


def test_symlink_roundtrip():
    p = SymlinkPayload(target="/a/b:with:colons")
    assert decode_payload(p.encode()) == p


def test_type_byte_distinguishes():
    d = decode_payload(DirPayload().encode())
    f = decode_payload(FilePayload(fid=make_fid(1, 1)).encode())
    ln = decode_payload(SymlinkPayload("/t").encode())
    assert isinstance(d, DirPayload)
    assert isinstance(f, FilePayload)
    assert isinstance(ln, SymlinkPayload)


def test_bad_payloads_rejected():
    with pytest.raises(ValueError):
        decode_payload(b"")
    with pytest.raises(ValueError):
        decode_payload(b"X:whatever")


def test_payload_is_compact():
    """The data field stays small — ZooKeeper memory is the scarce
    resource (paper §V-E)."""
    assert len(FilePayload(fid=make_fid(2**64 - 1, 2**64 - 1)).encode()) <= 40
    assert len(DirPayload().encode()) <= 16


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1),
       st.integers(0, 0o7777))
def test_file_payload_roundtrip_property(cid, ctr, mode):
    p = FilePayload(fid=make_fid(cid, ctr), mode=mode)
    assert decode_payload(p.encode()) == p


@settings(max_examples=50, deadline=None)
@given(st.text(alphabet=st.characters(blacklist_characters="\x00",
                                      codec="utf-8"), max_size=64))
def test_symlink_payload_roundtrip_property(target):
    p = SymlinkPayload(target)
    assert decode_payload(p.encode()) == p
