"""Elastic back-end rebalancing (§VII future work, as a library tool)."""

import pytest

from repro.core import build_dufs_deployment
from repro.core.rebalance import (
    attach_backend,
    collect_files,
    migrate,
    plan_relocations,
    rebalance_after_add,
)
from repro.pfs.localfs import LocalFS


def make_dep(n_files=60, strategy="consistent"):
    dep = build_dufs_deployment(n_zk=1, n_backends=3, n_client_nodes=1,
                                backend="local", mapping_strategy=strategy)
    m = dep.mounts[0]

    def populate():
        yield from m.mkdir("/data")
        yield from m.mkdir("/data/sub")
        for i in range(n_files):
            parent = "/data" if i % 2 else "/data/sub"
            yield from m.create(f"{parent}/f{i:03d}")
        yield from m.write("/data/f001", 0, b"z" * 500)

    dep.call(lambda: populate())
    return dep


def new_backend_factory(dep):
    node = dep.cluster.add_node(f"local-extra{len(dep.backends)}")
    fs = LocalFS(node)
    dep.backends.append(fs)
    return lambda client: fs.client()


def test_collect_files_finds_everything():
    dep = make_dep(20)
    files = dep.call(lambda: collect_files(dep.clients[0]))
    assert len(files) == 20
    assert all(p.startswith("/data") for p, _ in files)


def test_attach_backend_requires_consistent_mapping():
    dep = make_dep(4, strategy="md5mod")
    factory = new_backend_factory(dep)
    with pytest.raises(RuntimeError):
        attach_backend(dep.clients, factory)


def test_full_rebalance_moves_bounded_fraction():
    dep = make_dep(60)
    factory = new_backend_factory(dep)

    def go():
        result = yield from rebalance_after_add(dep.clients, factory)
        return result

    new_index, moved, total = dep.call(lambda: go())
    assert total == 60
    assert new_index == 3
    assert 0 < moved < total / 2   # ~1/4 expected; far below mod-N's 3/4
    # Physical placement is complete and consistent: every virtual file
    # still stats correctly.
    m = dep.mounts[0]

    def verify():
        ok = 0
        files = yield from collect_files(dep.clients[0])
        for vpath, fid in files:
            st = yield from m.stat(vpath)
            ok += st.is_file
        return ok

    assert dep.call(lambda: verify()) == 60
    # And the new mount actually holds the moved files.
    assert dep.backends[3].ns.count_files() == moved


def test_migrate_preserves_sizes():
    dep = make_dep(30)
    factory = new_backend_factory(dep)

    def go():
        result = yield from rebalance_after_add(dep.clients, factory)
        return result

    dep.call(lambda: go())
    m = dep.mounts[0]

    def check():
        st = yield from m.stat("/data/f001")
        return st.st_size

    assert dep.call(lambda: check()) == 500


def test_migrate_is_idempotent():
    dep = make_dep(40)
    coordinator = dep.clients[0]
    files = dep.call(lambda: collect_files(coordinator))
    old = {fid: coordinator.mapping.backend_for(fid) for _, fid in files}
    factory = new_backend_factory(dep)
    attach_backend(dep.clients, factory)
    relocations = plan_relocations(coordinator, files,
                                   lambda fid: old[fid])

    def run_migrate():
        n = yield from migrate(coordinator, relocations)
        return n

    first = dep.call(lambda: run_migrate())
    second = dep.call(lambda: run_migrate())
    assert first == len(relocations)
    assert second == 0
