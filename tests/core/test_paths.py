"""The shared path helpers every layer now uses instead of re-deriving
``rsplit`` idioms locally."""

from repro.core.paths import (ancestors, basename, components, depth,
                              is_ancestor, parent_dir, split)


def test_parent_dir():
    assert parent_dir("/") == "/"
    assert parent_dir("/a") == "/"
    assert parent_dir("/a/b") == "/a"
    assert parent_dir("/a/b/c") == "/a/b"


def test_basename():
    assert basename("/") == ""
    assert basename("/a") == "a"
    assert basename("/a/b.txt") == "b.txt"


def test_split():
    assert split("/") == ("/", "")
    assert split("/a") == ("/", "a")
    assert split("/a/b/c") == ("/a/b", "c")
    for p in ("/a", "/a/b", "/x/y/z"):
        assert split(p) == (parent_dir(p), basename(p))


def test_components_and_depth():
    assert components("/") == []
    assert components("/a/b") == ["a", "b"]
    assert depth("/") == 0
    assert depth("/a") == 1
    assert depth("/a/b/c/d") == 4


def test_ancestors_shallowest_first_excluding_root_and_self():
    assert list(ancestors("/")) == []
    assert list(ancestors("/a")) == []
    assert list(ancestors("/a/b")) == ["/a"]
    assert list(ancestors("/a/b/c/d")) == ["/a", "/a/b", "/a/b/c"]


def test_is_ancestor():
    assert is_ancestor("/", "/anything")
    assert is_ancestor("/a", "/a")            # reflexive
    assert is_ancestor("/a", "/a/b/c")
    assert not is_ancestor("/a", "/ab")       # no prefix confusion
    assert not is_ancestor("/a/b", "/a")
