"""Thin-client path resolution end to end: one RPC per lookup at any
depth, the O(depth) legacy walk it replaces, POSIX miss classification,
negative-chain caching, and the resolve-off byte-identical replay."""

import pytest

from repro.core import build_dufs_deployment
from repro.errors import ENOENT, ENOTDIR, FSError
from repro.models.params import CacheParams, ResolveParams

DEPTH = 8
CHAIN = "/t0/l0/l1/l2/l3/l4"              # 6 dirs; file below is depth 8


def make_dep(**kwargs):
    kwargs.setdefault("n_zk", 3)
    kwargs.setdefault("n_backends", 2)
    kwargs.setdefault("n_client_nodes", 2)
    kwargs.setdefault("backend", "local")
    return build_dufs_deployment(**kwargs)


def scaffold(dep):
    def build():
        c = dep.clients[0]
        path = ""
        for comp in CHAIN.split("/")[1:]:
            path += f"/{comp}"
            yield from c.mkdir(path)
        yield from c.create(f"{CHAIN}/ckpt")
        yield from c.mkdir("/shallow")
        yield from c.create("/shallow/f")
    dep.cluster.sim.run(until=dep.client_nodes[0].spawn(build()))
    dep.cluster.sim.run(until=dep.cluster.sim.now + 0.1)


def reads(dep):
    return sum(c.stats["zk_reads"] for c in dep.clients)


def bus_rpcs(dep, method):
    """TraceBus-counted client RPC completions of one wire method."""
    return sum(dep.bus.ops.get(k) for k in dep.bus.keys()
               if k.startswith("zk/") and k.endswith(f".{method}"))


def test_thin_client_is_one_rpc_per_lookup_at_any_depth():
    dep = make_dep(resolve=ResolveParams.resolve_on(), trace=True)
    scaffold(dep)
    for path in (f"{CHAIN}/ckpt", "/shallow/f", "/t0"):
        before = reads(dep)
        traced = bus_rpcs(dep, "resolve")
        dep.call(dep.clients[0].stat, path)
        assert reads(dep) - before == 1, path
        assert bus_rpcs(dep, "resolve") - traced == 1, path


def test_walk_mode_pays_o_depth_rpcs():
    dep = make_dep(resolve=ResolveParams(walk=True, dcache_capacity=2),
                   trace=True)
    scaffold(dep)
    before = reads(dep)
    traced = bus_rpcs(dep, "read")
    dep.call(dep.clients[0].stat, f"{CHAIN}/ckpt")
    # 7 proper ancestors below the root + the leaf read, minus at most
    # the 2 dcache-resident ones: strictly O(depth), not O(1).
    assert reads(dep) - before >= DEPTH - 2
    assert bus_rpcs(dep, "read") - traced >= DEPTH - 2


def test_thin_miss_classification():
    dep = make_dep(resolve=ResolveParams.resolve_on())
    scaffold(dep)
    client = dep.clients[0]
    with pytest.raises(FSError) as err:
        dep.call(client.stat, "/t0/l0/missing/x")
    assert err.value.err == ENOENT         # nearest ancestor is a dir
    with pytest.raises(FSError) as err:
        dep.call(client.stat, f"{CHAIN}/ckpt/below-a-file")
    assert err.value.err == ENOTDIR        # nearest ancestor is a file


def test_negative_chain_served_without_rpcs():
    dep = make_dep(resolve=ResolveParams.resolve_on(),
                   cache=CacheParams.caching_on(negative_ttl=10.0))
    scaffold(dep)
    client = dep.clients[0]
    with pytest.raises(FSError):
        dep.call(client.stat, "/t0/m1/m2/f")   # one resolve RPC, ENOENT
    before = reads(dep)
    neg0 = client.mdcache.counters["neg_hits"]
    # The miss proved /t0/m1, /t0/m1/m2 AND the target absent: repeats
    # anywhere along the chain are negative hits, no RPC.
    for path in ("/t0/m1/m2/f", "/t0/m1/m2", "/t0/m1"):
        with pytest.raises(FSError) as err:
            dep.call(client.stat, path)
        assert err.value.err == ENOENT
    assert reads(dep) == before
    assert client.mdcache.counters["neg_hits"] - neg0 == 3


def test_rename_invalidates_server_dentries_end_to_end():
    dep = make_dep(resolve=ResolveParams.resolve_on())
    scaffold(dep)
    client = dep.clients[0]

    def rename_and_settle():
        yield from client.rename("/t0/l0", "/t0/moved")
    dep.cluster.sim.run(until=dep.client_nodes[0].spawn(rename_and_settle()))
    dep.cluster.sim.run(until=dep.cluster.sim.now + 0.1)
    with pytest.raises(FSError) as err:
        dep.call(client.stat, f"{CHAIN}/ckpt")
    assert err.value.err == ENOENT
    st = dep.call(client.stat, "/t0/moved/l1/l2/l3/l4/ckpt")
    assert st is not None


def test_resolve_off_replay_is_byte_identical():
    """Default build vs explicit inert policies: not one completion time
    may shift (the same discipline as cache/sharding/resilience)."""

    def run_once(resolve):
        dep = make_dep(seed=11, resolve=resolve)
        times = []

        def workload():
            yield from dep.mounts[0].mkdir("/d")
            times.append(dep.cluster.sim.now)
            for i in range(5):
                yield from dep.mounts[0].create(f"/d/f{i}")
                times.append(dep.cluster.sim.now)
            yield from dep.mounts[1].stat("/d/f0")
            times.append(dep.cluster.sim.now)

        dep.cluster.sim.run(until=dep.client_nodes[0].spawn(workload()))
        return times

    default = run_once(None)
    assert default == run_once(ResolveParams())
    # A dcache bound large enough never to evict is equally inert.
    assert default == run_once(ResolveParams(dcache_capacity=4096))
