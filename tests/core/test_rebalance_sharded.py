"""Rebalancing through the MetadataService interface: the migration
tooling only uses the public client API (attach_backend_mount /
ensure_physical_dirs / collect_files), so it works unchanged whether the
namespace is one ensemble or a sharded metadata plane."""

from repro.chaos import audit_dufs
from repro.core import build_dufs_deployment
from repro.core.rebalance import collect_files, rebalance_after_add
from repro.mds import MetadataService, ShardedMDS
from repro.pfs.localfs import LocalFS


def make_dep(n_files=48, n_shards=2):
    dep = build_dufs_deployment(n_zk=max(2, n_shards), n_backends=3,
                                n_client_nodes=2, backend="local",
                                mapping_strategy="consistent",
                                n_shards=n_shards)
    m = dep.mounts[0]

    def populate():
        yield from m.mkdir("/data")
        yield from m.mkdir("/proj")
        for i in range(n_files):
            parent = "/data" if i % 2 else "/proj"
            yield from m.create(f"{parent}/f{i:03d}")

    dep.call(lambda: populate())
    return dep


def new_backend_factory(dep):
    node = dep.cluster.add_node(f"local-extra{len(dep.backends)}")
    fs = LocalFS(node)
    dep.backends.append(fs)
    return lambda client: fs.client()


def test_collect_files_spans_shards():
    dep = make_dep(24)
    svc = dep.clients[0].zk
    assert isinstance(svc, ShardedMDS)
    files = dep.call(lambda: collect_files(dep.clients[0]))
    assert len(files) == 24
    # The walk genuinely crossed shards (both dirs' entry sets visited).
    shards = {svc.listing_shard_for(p.rsplit("/", 1)[0]) for p, _ in files}
    assert len(shards) == 2


def test_rebalance_over_sharded_namespace_audits_clean():
    dep = make_dep(48)
    assert isinstance(dep.clients[0].zk, MetadataService)
    factory = new_backend_factory(dep)

    def go():
        result = yield from rebalance_after_add(dep.clients, factory)
        return result

    new_index, moved, total = dep.call(lambda: go())
    assert total == 48
    assert new_index == 3
    assert 0 < moved < total / 2
    # Every client's view grew through the public API, in lockstep.
    assert all(len(c.backends) == 4 for c in dep.clients)
    assert all(c.mapping.n_backends == 4 for c in dep.clients)

    # Post-migration the whole deployment still audits clean: every
    # name->FID mapping resolves, no orphans left behind by the moves.
    report = audit_dufs(dep)
    assert report.ok, report.to_text()

    m = dep.mounts[0]

    def verify():
        ok = 0
        files = yield from collect_files(dep.clients[0])
        for vpath, _ in files:
            st = yield from m.stat(vpath)
            ok += st.is_file
        return ok

    assert dep.call(lambda: verify()) == 48
