"""FID generation (paper §IV-E)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fid import (
    CLIENT_ID_BITS,
    FIDGenerator,
    HEX_DIGITS,
    fid_client_id,
    fid_counter,
    fid_from_hex,
    fid_hex,
    make_fid,
)


def test_fid_is_client_id_concat_counter():
    fid = make_fid(0xDEAD, 0xBEEF)
    assert fid_client_id(fid) == 0xDEAD
    assert fid_counter(fid) == 0xBEEF


def test_fid_hex_is_32_digits():
    assert HEX_DIGITS == 32
    h = fid_hex(make_fid(1, 2))
    assert len(h) == 32
    assert h == "0000000000000001" + "0000000000000002"


def test_fid_hex_roundtrip():
    fid = make_fid(123456789, 987654321)
    assert fid_from_hex(fid_hex(fid)) == fid


def test_fid_from_hex_validates_length():
    with pytest.raises(ValueError):
        fid_from_hex("0123")


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        make_fid(1 << CLIENT_ID_BITS, 0)
    with pytest.raises(ValueError):
        make_fid(0, 1 << 64)
    with pytest.raises(ValueError):
        FIDGenerator(-1)


def test_generator_is_monotonic():
    gen = FIDGenerator(client_id=7)
    fids = [gen.next() for _ in range(10)]
    assert fids == sorted(fids)
    assert all(fid_client_id(f) == 7 for f in fids)
    assert [fid_counter(f) for f in fids] == list(range(10))
    assert gen.created == 10


def test_two_instances_never_collide():
    """Restarted client = new instance = new client id (paper §IV-E)."""
    g1, g2 = FIDGenerator(), FIDGenerator()
    assert g1.client_id != g2.client_id
    a = {g1.next() for _ in range(100)}
    b = {g2.next() for _ in range(100)}
    assert not (a & b)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
def test_fid_split_roundtrip_property(cid, ctr):
    fid = make_fid(cid, ctr)
    assert fid_client_id(fid) == cid
    assert fid_counter(fid) == ctr
    assert fid_from_hex(fid_hex(fid)) == fid
