"""The pending-write overlay vs the coherence machinery.

The overlay mirrors this client's own acked-but-uncommitted write-behind
mutations; its truth does not depend on any watch registration. So the
coherence paths — watch invalidation, watch-loss flush, shard flush —
must never touch it, while commit/reject (owned by the drain) retire it
exactly. Plus the ``note_created`` stale-ancestor-negative regression.
"""

import pytest

from repro.errors import ENOENT, FSError
from repro.models.params import AsyncParams, CacheParams
from repro.zk.protocol import WatchEvent

from .conftest import DUFSHarness


@pytest.fixture
def cached_async():
    return DUFSHarness(cache=CacheParams.caching_on(),
                       awrite=AsyncParams.async_on(), seed=0)


# -- overlay vs coherence -----------------------------------------------------
def test_overlay_survives_full_cache_flush(cached_async):
    """Watch-loss (session re-establishment) flushes every coherence
    table wholesale — the overlay must keep serving read-your-writes."""
    h = cached_async
    c = h.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        yield from c.flush()
        yield from c.create("/d/f")             # acked, still pending
        assert c.mdcache.overlay_pending("/d/f") == "create"
        c.mdcache.flush()                       # what _on_watch_loss does
        assert c.mdcache.overlay_pending("/d/f") == "create"
        st = yield from c.stat("/d/f")          # no sim yield: overlay hit
        names = yield from c.readdir("/d")
        return st, [e.name for e in names]

    st, names = h.run(main())
    assert st is not None and "f" in names


def test_overlay_survives_watch_invalidation(cached_async):
    """A remote write's watch event drops the cached entry/listing for
    the path — never the pending overlay entry riding above it."""
    h = cached_async
    c = h.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        yield from c.flush()
        yield from c.readdir("/d")              # cache the listing + watch
        yield from c.create("/d/mine")          # pending
        # A remote create in /d fires the child watch on /d.
        c.mdcache._on_watch(WatchEvent(kind="child", path="/d"))
        assert c.mdcache.overlay_pending("/d/mine") == "create"
        st = yield from c.stat("/d/mine")
        return st

    assert h.run(main()) is not None


def test_overlay_survives_flush_shard():
    h = DUFSHarness(n_zk=4, n_shards=2, cache=CacheParams.caching_on(),
                    awrite=AsyncParams.async_on(), seed=0)
    c = h.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        yield from c.flush()
        yield from c.create("/d/f")             # pending
        for shard in range(2):                  # fail over every shard
            c.mdcache.flush_shard(shard)
        assert c.mdcache.overlay_pending("/d/f") == "create"
        st = yield from c.stat("/d/f")
        return st

    assert h.run(main()) is not None


def test_pending_path_is_served_locally_never_coalesced(cached_async):
    """Reads of a pending path are answered from the overlay without an
    RPC, so they never enter the read-coalescing inflight table — and
    concurrent readers all get the pending payload."""
    h = cached_async
    c = h.dep.clients[0]
    results = []

    def setup():
        yield from c.mkdir("/d")
        yield from c.flush()
        yield from c.create("/d/f")

    h.run(setup())
    reads_before = c.stats["zk_reads"]
    hits_before = c.mdcache.counters["overlay_hits"]

    def reader():
        st = yield from c.stat("/d/f")
        results.append(st)

    h.run_all(reader(), reader(), reader())
    assert len(results) == 3 and all(st is not None for st in results)
    assert c.mdcache.counters["overlay_hits"] >= hits_before + 3
    assert c.mdcache.counters["coalesced"] == 0
    assert c.stats["zk_reads"] == reads_before


def test_remote_rmdir_rejects_pending_create_at_the_barrier():
    """Coherence conflict end-to-end: client 1 removes a directory the
    server sees as empty while client 0 holds an acked-but-uncommitted
    create under it. The drain's create is refused, the overlay rolls
    back, and the error surfaces at client 0's next flush."""
    h = DUFSHarness(awrite=AsyncParams.async_on(), seed=0)
    c0, c1 = h.dep.clients[0], h.dep.clients[1]

    def setup():
        yield from c0.mkdir("/d")
        yield from c0.flush()

    h.run(setup())

    def remote_rmdir():
        yield from c1.rmdir("/d")
        yield from c1.flush()

    h.run(remote_rmdir(), node_index=1)

    def local_create():
        # c0's dcache still believes /d exists; the ack goes through.
        yield from c0.create("/d/f")
        return (yield from c0.flush())

    errors = h.run(local_create())
    assert [(p, e.errno) for p, (e) in
            [(p, exc) for p, exc in errors]] == [("/d/f", ENOENT)]
    assert c0.wblog.stats["rejected"] == 1
    assert c0.mdcache.overlay_pending("/d/f") is None

    def confirm_gone():
        try:
            yield from c0.stat("/d/f")
            return None
        except FSError as exc:
            return exc.errno

    assert h.run(confirm_gone()) == ENOENT


def test_overlay_commit_requires_exact_seq(cached_async):
    """A newer pending op on the same path keeps the overlay in place
    when an older op's commit lands."""
    md = cached_async.dep.clients[0].mdcache
    md.overlay_put("/x", "create", None, seq=1)
    md.overlay_put("/x", "set", None, seq=2)    # newer op, same path
    md.overlay_commit("/x", 1)                  # stale seq: no-op
    assert md.overlay_pending("/x") == "set"
    md.overlay_commit("/x", 2)
    assert md.overlay_pending("/x") is None


# -- note_created ancestor-negative regression --------------------------------
def test_note_created_purges_stale_ancestor_negatives_unit():
    md = DUFSHarness(cache=CacheParams.caching_on(negative_ttl=30.0)) \
        .dep.clients[0].mdcache
    md.note_missing("/a")
    md.note_missing("/a/b")
    assert md.known_missing("/a")
    md.note_created("/a/b/c")
    # A successful create proves every ancestor exists.
    assert not md.known_missing("/a")
    assert not md.known_missing("/a/b")


def test_create_under_formerly_negative_ancestor_unsticks_the_chain():
    """Regression: client 0 proves /a missing (negative cached), client 1
    then builds /a/b remotely. When client 0 itself creates /a/b/g (the
    parent walk re-probes the tree), the stale negative for /a must be
    purged — stat("/a") may not keep serving ENOENT until the TTL."""
    h = DUFSHarness(cache=CacheParams.caching_on(negative_ttl=30.0), seed=0)
    c0, c1 = h.dep.clients[0], h.dep.clients[1]

    def probe():
        try:
            yield from c0.stat("/a")
        except FSError:
            pass
        return c0.mdcache.known_missing("/a")

    assert h.run(probe()) is True               # negative recorded for /a

    def remote_build():
        yield from c1.mkdir("/a")
        yield from c1.mkdir("/a/b")

    h.run(remote_build(), node_index=1)

    def local_create_and_stat():
        # The parent walk re-reads /a/b (no negative cached for it) and
        # proves the chain exists; the successful create must then purge
        # the stale negative for /a.
        yield from c0.create("/a/b/g")
        st = yield from c0.stat("/a")
        return st

    assert h.run(local_create_and_stat()) is not None
    assert not c0.mdcache.known_missing("/a")
