"""The stateless-client claim (paper §IV-I): DUFS clients hold no state
that matters — everything lives in ZooKeeper and the back-ends, so a
crashed/restarted client resumes with zero recovery work."""


from repro.core import DUFSClient, build_dufs_deployment
from repro.core.mapping import MappingFunction
from repro.zk.client import ZKClient


def restart_client(dep, index):
    """Simulate a client restart: a brand-new DUFS instance on the same
    node (fresh FID generator / caches), same ensemble and back-ends."""
    node = dep.client_nodes[index]
    zkc = ZKClient(node, dep.ensemble.endpoints,
                   prefer=dep.ensemble.endpoints[index % len(dep.ensemble.endpoints)],
                   name=f"restarted{index}")
    old = dep.clients[index]
    new = DUFSClient(node, zkc, old.backends,
                     mapping=MappingFunction(len(old.backends)),
                     layout=old.layout)
    return new


def test_restarted_client_sees_everything():
    dep = build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=1,
                                backend="local")
    m = dep.mounts[0]

    def before():
        yield from m.mkdir("/survivors")
        yield from m.create("/survivors/f")
        yield from m.write("/survivors/f", 0, b"data!")

    dep.call(lambda: before())
    fresh = restart_client(dep, 0)

    def after():
        st = yield from fresh.stat("/survivors/f")
        data = yield from fresh.read("/survivors/f", 0, 64)
        entries = yield from fresh.readdir("/survivors")
        return st.is_file, data, [e.name for e in entries]

    is_file, data, names = dep.call(lambda: after())
    assert is_file and data == b"data!" and names == ["f"]


def test_restarted_client_gets_fresh_client_id():
    dep = build_dufs_deployment(n_zk=1, n_backends=2, n_client_nodes=1,
                                backend="local")
    old = dep.clients[0]
    fresh = restart_client(dep, 0)
    assert fresh.fidgen.client_id != old.fidgen.client_id
    assert fresh.fidgen.created == 0  # counter reset, per §IV-E


def test_no_fid_collision_across_restart():
    """Old instance's files and new instance's files coexist: the fresh
    client id guarantees disjoint FIDs even though both counters start
    at zero."""
    dep = build_dufs_deployment(n_zk=1, n_backends=2, n_client_nodes=1,
                                backend="local")
    m = dep.mounts[0]

    def phase1():
        for i in range(10):
            yield from m.create(f"/old{i}")

    dep.call(lambda: phase1())
    fresh = restart_client(dep, 0)

    def phase2():
        for i in range(10):
            yield from fresh.create(f"/new{i}")
        ok = 0
        for i in range(10):
            st = yield from fresh.stat(f"/old{i}")
            ok += st.is_file
        return ok

    assert dep.call(lambda: phase2()) == 10
    assert sum(be.ns.count_files() for be in dep.backends) == 20


def test_restarted_client_can_delete_predecessors_files():
    dep = build_dufs_deployment(n_zk=1, n_backends=2, n_client_nodes=1,
                                backend="local")
    m = dep.mounts[0]

    def phase1():
        yield from m.create("/doomed")

    dep.call(lambda: phase1())
    fresh = restart_client(dep, 0)

    def phase2():
        yield from fresh.unlink("/doomed")

    dep.call(lambda: phase2())
    assert sum(be.ns.count_files() for be in dep.backends) == 0
