"""Write-behind metadata updates: ack decoupling, ordering, barriers,
deferred errors, backpressure, and the byte-identical-when-off pin."""

import hashlib

import pytest

from repro.core import build_dufs_deployment
from repro.core.wblog import PendingOp, WriteBehindLog
from repro.errors import EEXIST, ENOENT, ENOTEMPTY, FSError
from repro.models.params import AsyncParams
from repro.svc import TraceBus
from repro.workloads.mdtest import MdtestConfig, run_mdtest

from .conftest import DUFSHarness

#: sha256 over every OpTrace of the pinned replay below, recorded on the
#: pre-write-behind tree (verified equal against the seed commit's code).
#: Async OFF must keep this byte-identical: no wblog, no overlay traffic,
#: no extra simulator events — not merely "similar numbers". Re-record
#: deliberately (and say why in the commit) if the *core* simulation
#: changes; the write-behind path itself must never shift it.
GOLDEN_DIGEST = "33f47b76095ddfa2383ab80a1d903bd7d78491f7d56193c53e579cf5264a5089"


@pytest.fixture
def adufs():
    return DUFSHarness(awrite=AsyncParams.async_on(), seed=0)


def _wblog(h, i=0):
    return h.dep.clients[i].wblog


def op(seq, kind, path):
    return PendingOp(seq, kind, path, b"", None, False)


# -- dependency waves (pure) --------------------------------------------------
def test_waves_keep_unrelated_ops_concurrent():
    batch = [op(1, "create", "/a"), op(2, "create", "/b"),
             op(3, "create", "/c")]
    assert WriteBehindLog._waves(batch) == [batch]


def test_waves_split_on_path_conflicts_in_program_order():
    a, ax, ax2, b = (op(1, "create", "/a"), op(2, "create", "/a/x"),
                     op(3, "delete", "/a/x"), op(4, "create", "/b"))
    waves = WriteBehindLog._waves([a, ax, ax2, b])
    assert waves == [[a], [ax], [ax2, b]]
    # Conflicting pairs always land in strictly increasing waves.
    index = {o.seq: i for i, w in enumerate(waves) for o in w}
    assert index[1] < index[2] < index[3]


def test_waves_ancestor_conflicts_both_directions():
    parent_then_child = WriteBehindLog._waves(
        [op(1, "create", "/d"), op(2, "create", "/d/f")])
    child_then_parent = WriteBehindLog._waves(
        [op(1, "delete", "/d/f"), op(2, "delete", "/d")])
    assert len(parent_then_child) == 2
    assert len(child_then_parent) == 2


# -- ack decoupling -----------------------------------------------------------
def test_wblog_absent_when_disabled(dufs):
    assert all(c.wblog is None for c in dufs.dep.clients)

    def main():
        errors = yield from dufs.dep.clients[0].flush()
        ok = yield from dufs.dep.clients[0].fsync("/nope")
        return errors, ok

    errors, ok = dufs.run(main())
    assert errors == [] and ok is True


def test_async_ack_is_decoupled_from_quorum_commit(adufs):
    c = adufs.dep.clients[0]
    sim = adufs.cluster.sim

    def main():
        yield from c.mkdir("/d")
        yield from c.flush()
        t0 = sim.now
        for i in range(20):
            yield from c.create(f"/d/f{i}")
        return sim.now - t0

    ack_window = adufs.run(main())
    # 20 acks cost client CPU plus the (still synchronous) physical
    # creates — not 20 quorum round trips at ~1.6 ms each.
    assert ack_window < 5e-3
    assert _wblog(adufs).stats["acked"] >= 20
    adufs.settle(2.0)
    assert _wblog(adufs).outstanding == 0
    s = _wblog(adufs).stats
    assert s["committed"] == s["acked"] and s["rejected"] == 0
    # The drain really committed: a fresh synchronous client sees all 20.
    plain = adufs.dep.clients[1]
    names = adufs.run(plain.readdir("/d"), node_index=1)
    assert sorted(e.name for e in names) == sorted(f"f{i}" for i in range(20))


def test_drain_coalesces_into_batches(adufs):
    c = adufs.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        yield from c.flush()
        for i in range(32):
            yield from c.create(f"/d/f{i}")
        yield from c.flush()

    adufs.run(main())
    adufs.settle(0.1)       # the barrier fires inside the final flush,
    b = _wblog(adufs).batch_stats   # before the Batcher tallies it
    assert b["items"] >= 32
    assert b["flushes"] < b["items"]        # group commit, not one-by-one


def test_read_your_writes_before_commit(adufs):
    c = adufs.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        yield from c.create("/d/f")
        # Still pending: served from the overlay, visible immediately.
        st = yield from c.stat("/d/f")
        names = yield from c.readdir("/d")
        yield from c.unlink("/d/f")
        names_after = yield from c.readdir("/d")
        try:
            yield from c.stat("/d/f")
            raised = None
        except FSError as exc:
            raised = exc.errno
        return st, [e.name for e in names], \
            [e.name for e in names_after], raised

    st, names, names_after, raised = adufs.run(main())
    assert st is not None
    assert names == ["f"] and names_after == []
    assert raised == ENOENT
    assert c.mdcache.counters["overlay_hits"] > 0


def test_conflicting_ops_commit_in_program_order(adufs):
    c = adufs.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        yield from c.create("/d/f")
        yield from c.unlink("/d/f")
        yield from c.create("/d/f")     # create -> delete -> create again
        errors = yield from c.flush()
        st = yield from c.stat("/d/f")
        return errors, st

    errors, st = adufs.run(main())
    assert errors == []
    assert st is not None
    assert _wblog(adufs).stats["rejected"] == 0


# -- barriers and deferred errors ---------------------------------------------
def test_flush_reports_deferred_rmdir_error(adufs):
    c = adufs.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        yield from c.create("/d/f")
        yield from c.flush()
        yield from c.rmdir("/d")        # acked; the quorum will refuse it
        return (yield from c.flush())

    errors = adufs.run(main())
    assert len(errors) == 1
    path, exc = errors[0]
    assert path == "/d" and isinstance(exc, FSError)
    assert exc.errno == ENOTEMPTY
    assert _wblog(adufs).stats["rejected"] == 1
    # The optimistic removal was rolled back: the directory still lists.
    names = adufs.run(c.readdir("/d"))
    assert [e.name for e in names] == ["f"]


def test_fsync_surfaces_only_its_own_paths_error(adufs):
    c = adufs.dep.clients[0]

    def main():
        for d in ("/a", "/b"):
            yield from c.mkdir(d)
            yield from c.create(f"{d}/f")
        yield from c.flush()
        yield from c.rmdir("/a")
        yield from c.rmdir("/b")
        try:
            yield from c.fsync("/a")
            errno = None
        except FSError as exc:
            errno = exc.errno
        rest = yield from c.flush()
        return errno, rest

    errno, rest = adufs.run(main())
    assert errno == ENOTEMPTY
    assert [p for p, _ in rest] == ["/b"]   # /a's error was consumed


def test_cross_client_create_conflict_rolls_back_physical(adufs):
    c0, c1 = adufs.dep.clients[0], adufs.dep.clients[1]

    def winner():
        yield from c1.create("/x")
        yield from c1.flush()

    adufs.run(winner(), node_index=1)
    files_before = sum(adufs.backend_file_counts())

    def loser():
        yield from c0.create("/x")      # acked: c0 has no cached view of /x
        return (yield from c0.flush())

    errors = adufs.run(loser())
    assert len(errors) == 1
    assert errors[0][0] == "/x" and errors[0][1].errno == EEXIST
    adufs.settle(1.0)                   # fire-and-forget physical rollback
    assert sum(adufs.backend_file_counts()) == files_before
    assert _wblog(adufs).stats["rejected"] == 1


def test_backpressure_bounds_the_acked_window():
    h = DUFSHarness(awrite=AsyncParams.async_on(max_pending=4), seed=0)
    c = h.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        yield from c.flush()
        for i in range(40):
            yield from c.create(f"/d/f{i}")
        yield from c.flush()

    h.run(main())
    s = c.wblog.stats
    assert s["max_pending"] <= 4
    assert s["stalls"] > 0
    assert s["committed"] == s["acked"]


def test_rename_forces_a_drain_barrier(adufs):
    c = adufs.dep.clients[0]

    def main():
        yield from c.mkdir("/d")
        yield from c.create("/d/f")     # both still pending
        yield from c.rename("/d", "/e")
        names = yield from c.readdir("/e")
        return [e.name for e in names], c.wblog.outstanding

    names, outstanding_at_rename = adufs.run(main())
    assert names == ["f"]


# -- the off-switch pin -------------------------------------------------------
def test_async_off_replay_is_byte_identical():
    bus = TraceBus(keep_events=True)
    dep = build_dufs_deployment(n_zk=5, n_backends=2, n_client_nodes=2,
                                backend="local", seed=0, bus=bus,
                                awrite=AsyncParams())    # explicit OFF
    cfg = MdtestConfig(n_procs=4, items_per_proc=10,
                       phases=("dir_create", "file_create", "file_stat",
                               "file_remove"))
    run_mdtest(dep.cluster, dep.mount_for, dep.node_for, cfg)
    h = hashlib.sha256()
    for ev in bus.events:
        h.update(repr((ev.deployment, ev.endpoint, ev.method, ev.arrive,
                       ev.start, ev.end, ev.ok, ev.src, ev.retries,
                       ev.shard)).encode())
    assert len(bus.events) == 1038
    assert h.hexdigest() == GOLDEN_DIGEST
