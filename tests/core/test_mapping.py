"""Deterministic mapping function and physical layout (paper §IV-F/G)."""

import hashlib
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fid import fid_bytes, make_fid
from repro.core.mapping import (
    MappingFunction,
    physical_dirs,
    physical_path,
    split_hex,
)


def test_paper_fig4_example():
    """FID 0123456789abcdef -> cdef / 89ab / 4567 / 0123 (verbatim)."""
    name, d1, d2, d3 = split_hex("0123456789abcdef")
    assert (name, d1, d2, d3) == ("0123", "4567", "89ab", "cdef")
    # path = d3/d2/d1/filename
    assert f"{d3}/{d2}/{d1}/{name}" == "cdef/89ab/4567/0123"


def test_physical_path_128bit():
    fid = make_fid(0x0123456789ABCDEF, 0x0011223344556677)
    assert physical_path(fid) == \
        "/44556677/00112233/89abcdef/01234567"


def test_physical_dirs_are_path_prefixes():
    fid = make_fid(42, 43)
    dirs = physical_dirs(fid)
    path = physical_path(fid)
    assert len(dirs) == 3
    for d in dirs:
        assert path.startswith(d + "/") or path.startswith(d)
    assert dirs == sorted(dirs, key=len)


def test_split_hex_validates():
    with pytest.raises(ValueError):
        split_hex("abc")


def test_mapping_matches_paper_formula():
    """backend = MD5(fid) mod N, byte-for-byte."""
    mapping = MappingFunction(4)
    for i in range(50):
        fid = make_fid(7, i)
        want = int.from_bytes(hashlib.md5(fid_bytes(fid)).digest(), "big") % 4
        assert mapping.backend_for(fid) == want


def test_mapping_is_fair():
    """MD5 distributes FIDs evenly (the reason the paper picked it)."""
    mapping = MappingFunction(4)
    counts = Counter(mapping.backend_for(make_fid(3, i)) for i in range(4000))
    for backend in range(4):
        assert 800 < counts[backend] < 1200


def test_mapping_deterministic_across_instances():
    """Every DUFS client computes the same location without coordination."""
    m1, m2 = MappingFunction(3), MappingFunction(3)
    fids = [make_fid(9, i) for i in range(200)]
    assert [m1.backend_for(f) for f in fids] == [m2.backend_for(f) for f in fids]


def test_mapping_validation():
    with pytest.raises(ValueError):
        MappingFunction(0)
    with pytest.raises(ValueError):
        MappingFunction(2, strategy="nope")


def test_md5mod_cannot_grow():
    mapping = MappingFunction(2)
    with pytest.raises(RuntimeError):
        mapping.add_backend()
    with pytest.raises(RuntimeError):
        mapping.remove_backend(0)


def test_consistent_strategy_bounded_relocation():
    """The paper's future work: adding a mount relocates ~1/(N+1) files."""
    mapping = MappingFunction(4, strategy="consistent")
    fids = [make_fid(11, i) for i in range(3000)]
    before = {f: mapping.backend_for(f) for f in fids}
    new_idx = mapping.add_backend()
    moved = [f for f in fids if mapping.backend_for(f) != before[f]]
    assert len(moved) < len(fids) / 3          # mod-N would move ~4/5
    assert all(mapping.backend_for(f) == new_idx for f in moved)


def test_consistent_strategy_is_fair_too():
    mapping = MappingFunction(4, strategy="consistent", replicas=128)
    counts = Counter(mapping.backend_for(make_fid(5, i)) for i in range(4000))
    for backend in range(4):
        assert 550 < counts[backend] < 1600


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 2**128 - 1), st.integers(1, 8))
def test_backend_always_in_range(fid, n):
    mapping = MappingFunction(n)
    assert 0 <= mapping.backend_for(fid) < n


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**128 - 1))
def test_physical_path_structure(fid):
    p = physical_path(fid)
    parts = p.strip("/").split("/")
    assert len(parts) == 4
    assert all(len(part) == 8 for part in parts)
    # Recombining in layout order recovers the FID hex.
    name, d1, d2, d3 = parts[3], parts[2], parts[1], parts[0]
    assert name + d1 + d2 + d3 == f"{fid:032x}"
