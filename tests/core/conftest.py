"""Fixtures for DUFS end-to-end tests."""

import pytest

from repro.core import build_dufs_deployment


class DUFSHarness:
    def __init__(self, **kwargs):
        kwargs.setdefault("n_zk", 3)
        kwargs.setdefault("n_backends", 2)
        kwargs.setdefault("n_client_nodes", 2)
        kwargs.setdefault("backend", "local")
        self.dep = build_dufs_deployment(**kwargs)
        self.cluster = self.dep.cluster

    def mount(self, i=0):
        return self.dep.mounts[i]

    def run(self, gen, node_index=0):
        proc = self.dep.client_nodes[node_index].spawn(gen)
        return self.cluster.sim.run(until=proc)

    def run_all(self, *gens):
        procs = [self.dep.client_nodes[i % len(self.dep.client_nodes)].spawn(g)
                 for i, g in enumerate(gens)]
        self.cluster.run()
        return [p.value for p in procs]

    def settle(self, duration=0.5):
        self.cluster.sim.run(until=self.cluster.sim.now + duration)

    def backend_file_counts(self):
        return [be.ns.count_files() for be in self.dep.backends]


@pytest.fixture
def dufs():
    return DUFSHarness()


@pytest.fixture
def dufs_lustre():
    return DUFSHarness(backend="lustre", n_client_nodes=2, n_zk=3)
