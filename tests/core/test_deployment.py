"""DUFSDeployment assembly helpers."""

import pytest

from repro.core import build_dufs_deployment


def test_mounts_and_nodes_round_robin():
    dep = build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=3,
                                backend="local")
    assert dep.mount_for(0) is dep.mounts[0]
    assert dep.mount_for(3) is dep.mounts[0]
    assert dep.mount_for(4) is dep.mounts[1]
    assert dep.node_for(5) is dep.client_nodes[2]


def test_call_runs_coroutine_to_completion():
    dep = build_dufs_deployment(n_zk=1, n_backends=2, n_client_nodes=1,
                                backend="local")
    assert dep.call(dep.mounts[0].mkdir, "/x") is True

    def compound():
        yield from dep.mounts[0].create("/x/y")
        st = yield from dep.mounts[0].stat("/x/y")
        return st.is_file

    assert dep.call(lambda: compound())


def test_colocated_zk_prefers_local_server():
    dep = build_dufs_deployment(n_zk=4, n_backends=2, n_client_nodes=4,
                                backend="local", co_locate_zk=True)
    for i, zkc in enumerate(dep.zk_clients):
        assert zkc.server == dep.ensemble.endpoints[i]
        # server endpoint is registered on the same host as the client
        assert dep.cluster.network.host_of(zkc.server) == \
            dep.client_nodes[i].name


def test_dedicated_zk_nodes_are_separate():
    dep = build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=2,
                                backend="local", co_locate_zk=False)
    zk_hosts = {dep.cluster.network.host_of(ep)
                for ep in dep.ensemble.endpoints}
    client_hosts = {n.name for n in dep.client_nodes}
    assert not (zk_hosts & client_hosts)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        build_dufs_deployment(backend="tapes")


def test_deterministic_client_ids():
    a = build_dufs_deployment(n_zk=1, n_backends=2, n_client_nodes=3,
                              backend="local", seed=5)
    b = build_dufs_deployment(n_zk=1, n_backends=2, n_client_nodes=3,
                              backend="local", seed=5)
    assert [c.fidgen.client_id for c in a.clients] == \
        [c.fidgen.client_id for c in b.clients]


def test_backend_counts_match_request():
    for kind, nb in (("local", 3), ("lustre", 2), ("pvfs", 2)):
        dep = build_dufs_deployment(n_zk=1, n_backends=nb, n_client_nodes=1,
                                    backend=kind)
        assert len(dep.backends) == nb
        assert all(len(c.backends) == nb for c in dep.clients)
