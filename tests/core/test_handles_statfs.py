"""DUFS file handles (Fig. 3's resolve-once open path) and statfs."""


from repro.errors import EBADF, EISDIR, ENOENT, FSError


def test_open_returns_handle_and_io_works(dufs):
    m = dufs.mount(0)

    def main():
        yield from m.create("/f")
        yield from m.write("/f", 0, b"hello-fh")
        fh = yield from m.open("/f")
        client = dufs.dep.clients[0]
        data = yield from client.pread(fh, 0, 64)
        n = yield from client.pwrite(fh, 8, b"!more")
        yield from m.release(fh)
        return fh, data, n

    fh, data, n = dufs.run(main())
    assert isinstance(fh, int) and fh > 0
    assert data == b"hello-fh"
    assert n == 5


def test_handle_io_skips_zookeeper(dufs):
    """The point of the FID indirection: I/O after open never touches the
    coordination service."""
    m = dufs.mount(0)
    client = dufs.dep.clients[0]

    def main():
        yield from m.create("/f")
        fh = yield from m.open("/f")
        before = client.stats["zk_reads"] + client.stats["zk_writes"]
        for i in range(10):
            yield from client.pwrite(fh, i * 4, b"data")
            yield from client.pread(fh, 0, 4)
        after = client.stats["zk_reads"] + client.stats["zk_writes"]
        yield from m.release(fh)
        return after - before

    assert dufs.run(main()) == 0


def test_release_invalidates_handle(dufs):
    m = dufs.mount(0)
    client = dufs.dep.clients[0]

    def main():
        yield from m.create("/f")
        fh = yield from m.open("/f")
        yield from m.release(fh)
        errs = []
        try:
            yield from client.pread(fh, 0, 1)
        except FSError as e:
            errs.append(e.err)
        try:
            yield from m.release(fh)
        except FSError as e:
            errs.append(e.err)
        return errs

    assert dufs.run(main()) == [EBADF, EBADF]


def test_open_errors(dufs):
    m = dufs.mount(0)

    def main():
        errs = []
        try:
            yield from m.open("/missing")
        except FSError as e:
            errs.append(e.err)
        yield from m.mkdir("/d")
        try:
            yield from m.open("/d")
        except FSError as e:
            errs.append(e.err)
        return errs

    assert dufs.run(main()) == [ENOENT, EISDIR]


def test_open_through_symlink_still_works(dufs):
    m = dufs.mount(0)
    client = dufs.dep.clients[0]

    def main():
        yield from m.create("/target")
        yield from m.write("/target", 0, b"via-link")
        yield from m.symlink("/target", "/lnk")
        fh = yield from m.open("/lnk")
        data = yield from client.pread(fh, 0, 64)
        yield from m.release(fh)
        return data

    assert dufs.run(main()) == b"via-link"


def test_statfs_aggregates_backends(dufs):
    m = dufs.mount(0)

    def main():
        yield from m.mkdir("/d")
        for i in range(8):
            yield from m.create(f"/d/f{i}")
        yield from m.write("/d/f0", 0, b"x" * 1000)
        return (yield from m.statfs())

    vfs = dufs.run(main())
    assert vfs.f_files == 8
    assert vfs.f_bytes_used >= 1000
    # Two back-end mounts' capacity summed.
    assert vfs.f_capacity == 2 * 250 * 10**9


def test_statfs_on_lustre_backend(dufs_lustre):
    m = dufs_lustre.mount(0)

    def main():
        yield from m.create("/f")
        return (yield from m.statfs())

    vfs = dufs_lustre.run(main())
    assert vfs.f_files == 1
    assert vfs.f_capacity > 0
