"""End-to-end DUFS behaviour (paper §IV design properties)."""


from repro.core.mapping import physical_path
from repro.errors import (
    EEXIST,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    FSError,
)


def test_directory_ops_never_touch_backends(dufs):
    """Paper §IV-B: directory operations involve only ZooKeeper."""
    m = dufs.mount(0)
    client = dufs.dep.clients[0]

    def main():
        yield from m.mkdir("/d")
        yield from m.mkdir("/d/sub")
        yield from m.stat("/d")
        yield from m.readdir("/d")
        yield from m.rmdir("/d/sub")

    dufs.run(main())
    assert client.stats["backend_ops"] == 0
    assert dufs.backend_file_counts() == [0, 0]


def test_directories_not_materialized_on_backends(dufs):
    m = dufs.mount(0)

    def main():
        for i in range(5):
            yield from m.mkdir(f"/dir{i}")

    dufs.run(main())
    for be in dufs.dep.backends:
        assert be.ns.count_dirs() == 1  # only the root


def test_file_lands_on_exactly_one_backend_at_fid_path(dufs):
    m = dufs.mount(0)
    client = dufs.dep.clients[0]

    def main():
        yield from m.create("/data")

    dufs.run(main())
    fid = client.fidgen.client_id << 64  # counter 0
    expected_backend = client.mapping.backend_for(fid)
    counts = dufs.backend_file_counts()
    assert counts[expected_backend] == 1
    assert sum(counts) == 1
    ppath = physical_path(fid, client.layout)
    assert dufs.dep.backends[expected_backend].ns.exists(ppath)


def test_files_distribute_over_backends(dufs):
    m = dufs.mount(0)

    def main():
        for i in range(40):
            yield from m.create(f"/f{i}")

    dufs.run(main())
    counts = dufs.backend_file_counts()
    assert sum(counts) == 40
    assert all(c > 5 for c in counts), counts  # both mounts used


def test_file_stat_forwards_to_physical_file(dufs):
    m = dufs.mount(0)

    def main():
        yield from m.create("/f")
        yield from m.write("/f", 0, b"x" * 123)
        st = yield from m.stat("/f")
        return st

    st = dufs.run(main())
    assert st.is_file
    assert st.st_size == 123


def test_rename_keeps_fid_and_physical_file(dufs):
    """Paper §IV-A: rename changes no data; the FID indirection absorbs it."""
    m = dufs.mount(0)

    def main():
        yield from m.create("/old")
        yield from m.write("/old", 0, b"payload")
        counts_before = dufs.backend_file_counts()
        yield from m.rename("/old", "/new")
        data = yield from m.read("/new", 0, 100)
        return counts_before, data

    counts_before, data = dufs.run(main())
    assert data == b"payload"
    assert dufs.backend_file_counts() == counts_before  # nothing moved


def test_delete_then_recreate_gets_new_fid(dufs):
    """Paper §IV-A: a name can denote different contents over time."""
    client = dufs.dep.clients[0]
    m = dufs.mount(0)
    fids = []

    def main():
        yield from m.create("/f")
        fids.append(client.fidgen.created - 1)
        yield from m.unlink("/f")
        yield from m.create("/f")
        fids.append(client.fidgen.created - 1)

    dufs.run(main())
    assert fids[0] != fids[1]


def test_unlink_removes_physical_file(dufs):
    m = dufs.mount(0)

    def main():
        yield from m.create("/f")
        yield from m.unlink("/f")

    dufs.run(main())
    assert dufs.backend_file_counts() == [0, 0]


def test_create_eexist_rolls_back_physical_file(dufs):
    m = dufs.mount(0)

    def main():
        yield from m.create("/f")
        try:
            yield from m.create("/f")
        except FSError as e:
            return e.err

    assert dufs.run(main()) == EEXIST
    assert sum(dufs.backend_file_counts()) == 1  # no orphan


def test_posix_error_mapping(dufs):
    m = dufs.mount(0)

    def main():
        errs = []
        for op, expected in [
            (m.stat("/ghost"), ENOENT),
            (m.mkdir("/no/parent"), ENOENT),
            (m.rmdir("/ghost"), ENOENT),
        ]:
            try:
                yield from op
            except FSError as e:
                errs.append(e.err == expected)
        yield from m.mkdir("/d")
        yield from m.create("/d/f")
        try:
            yield from m.rmdir("/d")
        except FSError as e:
            errs.append(e.err == ENOTEMPTY)
        try:
            yield from m.unlink("/d")
        except FSError as e:
            errs.append(e.err == EISDIR)
        try:
            yield from m.rmdir("/d/f")
        except FSError as e:
            errs.append(e.err == ENOTDIR)
        return errs

    assert dufs.run(main()) == [True] * 6


def test_dir_stat_fields_from_zookeeper(dufs):
    m = dufs.mount(0)

    def main():
        yield from m.mkdir("/d", 0o750)
        yield from m.mkdir("/d/a")
        yield from m.mkdir("/d/b")
        return (yield from m.stat("/d"))

    st = dufs.run(main())
    assert st.is_dir
    assert st.st_mode & 0o7777 == 0o750
    assert st.st_nlink == 4  # 2 + two children
    assert st.st_ctime > 0


def test_chmod_dir_via_zookeeper_file_via_backend(dufs):
    m = dufs.mount(0)
    client = dufs.dep.clients[0]

    def main():
        yield from m.mkdir("/d")
        yield from m.chmod("/d", 0o700)
        st_d = yield from m.stat("/d")
        backend_ops_before = client.stats["backend_ops"]
        yield from m.create("/f")
        yield from m.chmod("/f", 0o640)
        st_f = yield from m.stat("/f")
        return st_d, st_f, backend_ops_before

    st_d, st_f, _ = dufs.run(main())
    assert st_d.st_mode & 0o7777 == 0o700
    assert st_f.st_mode & 0o7777 == 0o640


def test_symlink_is_metadata_only(dufs):
    m = dufs.mount(0)
    client = dufs.dep.clients[0]

    def main():
        yield from m.create("/target")
        before = client.stats["backend_ops"]
        yield from m.symlink("/target", "/lnk")
        t = yield from m.readlink("/lnk")
        st = yield from m.stat("/lnk")
        return t, st, client.stats["backend_ops"] - before

    t, st, backend_ops = dufs.run(main())
    assert t == "/target"
    assert st.is_symlink
    assert backend_ops == 0


def test_open_through_symlink(dufs):
    m = dufs.mount(0)

    def main():
        yield from m.create("/target")
        yield from m.write("/target", 0, b"via-link")
        yield from m.symlink("/target", "/lnk")
        data = yield from m.read("/lnk", 0, 64)
        return data

    assert dufs.run(main()) == b"via-link"


def test_dir_rename_moves_whole_subtree_atomically(dufs):
    m = dufs.mount(0)

    def main():
        yield from m.mkdir("/proj")
        yield from m.mkdir("/proj/src")
        yield from m.create("/proj/src/main.c")
        yield from m.create("/proj/README")
        yield from m.rename("/proj", "/project")
        entries = yield from m.readdir("/project")
        st = yield from m.stat("/project/src/main.c")
        missing = yield from dufs.dep.clients[0].zk.exists("/proj")
        return [e.name for e in entries], st.is_file, missing

    names, is_file, missing = dufs.run(main())
    assert names == ["README", "src"]
    assert is_file
    assert missing is None


def test_rename_overwrites_existing_file_and_gcs_contents(dufs):
    m = dufs.mount(0)

    def main():
        yield from m.create("/a")
        yield from m.write("/a", 0, b"AAA")
        yield from m.create("/b")
        yield from m.write("/b", 0, b"BBBBBB")
        yield from m.rename("/a", "/b")
        data = yield from m.read("/b", 0, 64)
        return data

    assert dufs.run(main()) == b"AAA"
    dufs.settle()
    assert sum(dufs.backend_file_counts()) == 1  # old /b contents GC'd


def test_concurrent_create_same_name_exactly_one_wins(dufs):
    m0, m1 = dufs.mount(0), dufs.mount(1)
    results = []

    def racer(m, tag):
        try:
            yield from m.create("/race")
            results.append((tag, "won"))
        except FSError as e:
            results.append((tag, e.err))

    dufs.run_all(racer(m0, 0), racer(m1, 1))
    dufs.settle()
    outcomes = sorted(str(r[1]) for r in results)
    assert outcomes == sorted([str(EEXIST), "won"])
    assert sum(dufs.backend_file_counts()) == 1  # loser rolled back


def test_fig1_consistency_scenario(dufs):
    """Client 1 mkdirs /d1 while client 2 renames /d1 -> /d2: whatever the
    interleaving, the metadata ends in ONE consistent state everywhere."""
    m0, m1 = dufs.mount(0), dufs.mount(1)

    def creator():
        yield from m0.mkdir("/d1")

    def renamer():
        for _ in range(40):  # spin until /d1 appears, then rename
            try:
                yield from m1.rename("/d1", "/d2")
                return "renamed"
            except FSError:
                yield dufs.cluster.sim.timeout(0.001)
        return "never"

    dufs.run_all(creator(), renamer())
    dufs.settle()
    assert dufs.dep.ensemble.converged()
    store = dufs.dep.ensemble.servers[0].store
    assert store.exists("/d2") is not None
    assert store.exists("/d1") is None


def test_fids_unique_across_client_instances(dufs):
    m0, m1 = dufs.mount(0), dufs.mount(1)
    c0, c1 = dufs.dep.clients

    def worker(m, prefix):
        for i in range(10):
            yield from m.create(f"/{prefix}{i}")

    dufs.run_all(worker(m0, "a"), worker(m1, "b"))
    assert c0.fidgen.client_id != c1.fidgen.client_id
    assert sum(dufs.backend_file_counts()) == 20


def test_cross_client_visibility(dufs):
    m0, m1 = dufs.mount(0), dufs.mount(1)

    def writer():
        yield from m0.mkdir("/shared")
        yield from m0.create("/shared/file")
        yield from m0.write("/shared/file", 0, b"hello")

    def reader():
        yield dufs.cluster.sim.timeout(1.0)
        data = yield from m1.read("/shared/file", 0, 64)
        return data

    results = dufs.run_all(writer(), reader())
    assert results[1] == b"hello"


def test_dufs_over_lustre_backend(dufs_lustre):
    """The full paper stack: FUSE -> DUFS -> ZK + two Lustre instances."""
    m = dufs_lustre.mount(0)

    def main():
        yield from m.mkdir("/exp")
        for i in range(6):
            yield from m.create(f"/exp/f{i}")
        st = yield from m.stat("/exp/f3")
        entries = yield from m.readdir("/exp")
        for i in range(6):
            yield from m.unlink(f"/exp/f{i}")
        yield from m.rmdir("/exp")
        return st.is_file, len(entries)

    is_file, n = dufs_lustre.run(main())
    assert is_file and n == 6
    # Both Lustre MDSes served physical file ops; ZK held the namespace.
    mds_ops = [be.mds.stats["ops"] for be in dufs_lustre.dep.backends]
    assert all(ops > 0 for ops in mds_ops)
    for be in dufs_lustre.dep.backends:
        assert be.mds.ns.count_files() == 0  # all cleaned up
