"""The autoscaler's decision policy, driven directly (no simulator).

``_decide`` is pure apart from the hysteresis streaks and cooldown
clocks, so the no-flap guarantee and the placement rules are checked
here as plain function calls on synthetic load signals (all ops/sec).
"""

from repro.mds import ShardMap, ShardMapRegistry
from repro.mds.autoscaler import Autoscaler
from repro.models.params import ElasticParams


class _FakeMigrator:
    sim = None


def make_scaler(registry=None, **overrides):
    params = ElasticParams.elastic_on(
        hysteresis=2, cooldown=0.5, moves_per_tick=8, max_pins=8,
        min_window_ops=10, merge_min_ops=5, **overrides)
    reg = registry or ShardMapRegistry(ShardMap(4))
    return Autoscaler(reg, _FakeMigrator(), [], params=params)


def dirs_on_shard(shard, count, n_shards=4):
    ref = ShardMap(n_shards)
    out = []
    i = 0
    while len(out) < count:
        d = f"/d{i}"
        if ref.child_shard(d) == shard:
            out.append(d)
        i += 1
    return out


def test_oscillating_load_never_flaps():
    """A shard that is hot only on alternating ticks never satisfies the
    consecutive-tick hysteresis, so the map never moves."""
    a = make_scaler()
    hot_dirs = {d: 1000.0 for d in dirs_on_shard(0, 4)}
    hot = {0: 4000.0, 1: 500.0, 2: 500.0, 3: 500.0}
    calm = {k: 1000.0 for k in range(4)}
    for tick in range(10):
        load = hot if tick % 2 == 0 else calm
        assert a._decide(load, hot_dirs, now=tick * 0.1) == []


def test_sustained_heat_acts_once_then_waits_for_fresh_windows():
    a = make_scaler(window=0.2)
    hot_dirs = {d: 1000.0 for d in dirs_on_shard(0, 8)}
    load = {0: 8000.0, 1: 0.0, 2: 0.0, 3: 0.0}
    assert a._decide(load, hot_dirs, now=0.0) == []      # streak = 1
    actions = a._decide(load, hot_dirs, now=0.1)         # streak = 2: act
    assert actions and all(act == "split" for act, _r, _d in actions)
    # Acting reset the streak AND armed the per-shard act-then-listen
    # gate: the same stale-looking signal does not trigger more moves.
    assert a._decide(load, hot_dirs, now=0.2) == []
    assert a._decide(load, hot_dirs, now=0.3) == []


def test_split_batch_spreads_over_destinations_and_keeps_a_share():
    a = make_scaler()
    dirs = dirs_on_shard(0, 8)
    hot_dirs = {d: 1000.0 for d in dirs}
    load = {0: 8000.0, 1: 0.0, 2: 0.0, 3: 0.0}
    a._decide(load, hot_dirs, now=0.0)
    actions = a._decide(load, hot_dirs, now=0.1)
    # The source keeps its proportional share (8 dirs / 4 shards = 2)...
    assert len(actions) == 6
    # ...and the batch round-robins the destinations instead of piling
    # onto whichever shard measured lightest.
    dsts = [dst for _a, _r, dst in actions]
    assert sorted(dsts) == [1, 1, 2, 2, 3, 3]
    assert 0 not in dsts


def test_quiet_window_resets_streaks():
    a = make_scaler()
    hot_dirs = {d: 1000.0 for d in dirs_on_shard(0, 4)}
    load = {0: 4000.0, 1: 0.0, 2: 0.0, 3: 0.0}
    assert a._decide(load, hot_dirs, now=0.0) == []      # streak = 1
    idle = {k: 1.0 for k in range(4)}                    # < min_window_ops
    assert a._decide(idle, {}, now=0.1) == []            # lull: reset
    assert a._decide(load, hot_dirs, now=0.2) == []      # streak = 1 again
    assert a._decide(load, hot_dirs, now=0.3) != []


def test_idle_pin_merges_after_hysteresis():
    reg = ShardMapRegistry(ShardMap(4))
    reg.install(reg.current.split("/cold", 2), "pin")
    a = make_scaler(registry=reg)
    # Enough total traffic to clear min_window_ops, none of it on /cold.
    busy = {d: 500.0 for d in dirs_on_shard(1, 4)}
    load = {0: 500.0, 1: 1500.0, 2: 0.0, 3: 0.0}
    assert a._decide(load, busy, now=0.0) == []          # cold streak = 1
    actions = a._decide(load, busy, now=0.1)             # cold streak = 2
    assert ("merge", "/cold", -1) in actions
    # An active pin is never merged.
    a2 = make_scaler(registry=reg)
    busy_cold = dict(busy)
    busy_cold["/cold/sub"] = 800.0
    for tick in range(4):
        acts = a2._decide(load, busy_cold, now=tick * 0.1)
        assert all(root != "/cold" for _a, root, _d in acts)
