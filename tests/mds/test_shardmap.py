"""Deterministic path → shard routing (pure function, no I/O)."""

import pytest

from repro.mds import STRATEGIES, ShardMap, parent_dir


def test_parent_dir():
    assert parent_dir("/a/b/c") == "/a/b"
    assert parent_dir("/a") == "/"
    assert parent_dir("/") == "/"


def test_single_shard_routes_everything_to_zero():
    m = ShardMap(1)
    for p in ("/", "/a", "/a/b", "/deep/x/y/z"):
        assert m.home_shard(p) == 0
        assert m.child_shard(p) == 0


def test_parent_hash_is_deterministic_across_instances():
    a, b = ShardMap(4), ShardMap(4)
    for p in ("/", "/a", "/a/f1", "/a/f2", "/b/sub/file"):
        assert a.home_shard(p) == b.home_shard(p)
        assert a.child_shard(p) == b.child_shard(p)


def test_siblings_share_a_home_shard():
    m = ShardMap(4)
    shards = {m.home_shard(f"/data/f{i}") for i in range(50)}
    assert len(shards) == 1                      # one dir = one quorum
    assert shards == {m.child_shard("/data")}


def test_directories_spread_across_shards():
    m = ShardMap(4)
    shards = {m.child_shard(f"/d{i}") for i in range(64)}
    assert len(shards) == 4                      # unrelated dirs spread


def test_subtree_pinning_longest_prefix_wins():
    m = ShardMap(4, strategy="subtree",
                 subtrees={"/scratch": 1, "/scratch/hot": 3})
    assert m.child_shard("/scratch/a") == 1
    assert m.home_shard("/scratch/a/f") == 1
    assert m.child_shard("/scratch/hot/x") == 3
    # Outside every pin the hash fallback still applies deterministically.
    assert m.child_shard("/other") == ShardMap(4).child_shard("/other")


def test_validation():
    assert "parent-hash" in STRATEGIES and "subtree" in STRATEGIES
    with pytest.raises(ValueError):
        ShardMap(0)
    with pytest.raises(ValueError):
        ShardMap(2, strategy="range")
    with pytest.raises(ValueError):
        ShardMap(2, strategy="subtree")          # needs a mapping
    with pytest.raises(ValueError):
        ShardMap(2, strategy="subtree", subtrees={"relative": 0})
    with pytest.raises(ValueError):
        ShardMap(2, strategy="subtree", subtrees={"/a": 5})
