"""Sharded ``resolve``: bounded hop counts. An existing path always
resolves in one hop (its home shard child-hosts the parent, so the
whole anchor chain is local); a miss costs a second hop only when the
parent's authoritative copy lives on another shard; subtree-pinned
namespaces never leave their shard."""

from repro.core import build_dufs_deployment
from repro.models.params import ResolveParams


def make_dep(n_shards=4, **kwargs):
    kwargs.setdefault("n_zk", max(4, n_shards))
    kwargs.setdefault("n_backends", 2)
    kwargs.setdefault("n_client_nodes", 1)
    kwargs.setdefault("backend", "local")
    kwargs.setdefault("resolve", ResolveParams.resolve_on())
    return build_dufs_deployment(n_shards=n_shards, **kwargs)


def hops(svc):
    return svc.stats["resolve_hops"]


def test_existing_paths_resolve_in_one_hop():
    dep = make_dep()
    svc = dep.clients[0].zk
    m = dep.mounts[0]
    dep.call(m.mkdir, "/deep")
    dep.call(m.mkdir, "/deep/a")
    dep.call(m.mkdir, "/deep/a/b")
    dep.call(m.create, "/deep/a/b/f")
    for path in ("/deep/a/b/f", "/deep/a/b", "/deep/a", "/deep"):
        before = hops(svc)
        res = dep.call(svc.resolve, path)
        assert res.status == "ok", path
        assert hops(svc) - before == 1, path


def test_miss_with_remote_parent_costs_at_most_two_hops():
    dep = make_dep()
    svc = dep.clients[0].zk
    name = next(f"/p{i}" for i in range(256)
                if svc.map.home_shard(f"/p{i}/child")
                != svc.map.home_shard(f"/p{i}"))
    before = hops(svc)
    res = dep.call(svc.resolve, f"{name}/child")
    assert res.status == "miss"
    assert res.ancestor == "/"            # nothing was ever created
    assert hops(svc) - before == 2        # home probe + parent's home


def test_miss_with_local_parent_stays_one_hop():
    dep = make_dep()
    svc = dep.clients[0].zk
    name = next(f"/q{i}" for i in range(256)
                if svc.map.home_shard(f"/q{i}/child")
                == svc.map.home_shard(f"/q{i}"))
    before = hops(svc)
    res = dep.call(svc.resolve, f"{name}/child")
    assert res.status == "miss"
    assert hops(svc) - before == 1


def test_subtree_pinned_namespace_resolves_in_one_hop():
    dep = make_dep(shard_strategy="subtree", shard_subtrees={"/pin": 1})
    svc = dep.clients[0].zk
    m = dep.mounts[0]
    dep.call(m.mkdir, "/pin")
    dep.call(m.mkdir, "/pin/a")
    dep.call(m.create, "/pin/a/f")
    for path, status in (("/pin/a/f", "ok"), ("/pin/a/x/y", "miss")):
        before = hops(svc)
        res = dep.call(svc.resolve, path)
        assert res.status == status, path
        assert hops(svc) - before == 1, path
