"""SingleEnsembleMDS: the MetadataService facade over one ZK ensemble."""

from repro.mds import MetadataService, SingleEnsembleMDS, as_metadata_service
from repro.models.params import ZKParams
from repro.sim import Cluster
from repro.zk import ZKClient, build_ensemble


def make_svc(seed=0):
    cluster = Cluster(seed=seed)
    nodes = [cluster.add_node(f"n{i}") for i in range(3)]
    cnode = cluster.add_node("cli")
    ens = build_ensemble(cluster, nodes, 3, params=ZKParams())
    zkc = ZKClient(cnode, ens.endpoints)
    return cluster, cnode, zkc, as_metadata_service(zkc)


def run(cluster, node, gen):
    return cluster.sim.run(until=node.spawn(gen))


def test_wrapping_is_idempotent_and_typed():
    _, _, zkc, svc = make_svc()
    assert isinstance(svc, SingleEnsembleMDS)
    assert isinstance(svc, MetadataService)
    assert as_metadata_service(svc) is svc       # pass-through, no re-wrap
    assert svc.n_shards == 1


def test_everything_routes_to_shard_zero():
    _, _, _, svc = make_svc()
    for p in ("/", "/a", "/a/b/c"):
        assert svc.shard_for(p) == 0
        assert svc.listing_shard_for(p) == 0


def test_ops_delegate_to_the_wrapped_client():
    cluster, cnode, zkc, svc = make_svc()

    def go():
        yield from svc.create("/d", b"D:755:0:0")
        yield from svc.create("/d/f", b"F:00:644")
        data, _ = yield from svc.get("/d/f")
        kids = yield from svc.get_children("/d")
        yield from svc.multi([svc.op_delete("/d/f"),
                              svc.op_create("/d/g", b"F:01:644")])
        st = yield from svc.exists("/d/g")
        yield from svc.delete("/d/g", is_dir=False)   # hint is ignored
        yield from svc.delete("/d", is_dir=True)
        return data, kids, st is not None

    data, names, g_exists = run(cluster, cnode, go())
    assert data == b"F:00:644"
    assert names == ["f"]
    assert g_exists
    assert svc.last_retries == zkc.last_retries


def test_watch_loss_propagates_with_shard_zero():
    _, _, zkc, svc = make_svc()
    seen = []
    svc.watch_loss_listeners.append(lambda reason, shard: seen.append(
        (reason, shard)))
    for listener in zkc.watch_loss_listeners:
        listener("session-expired")
    assert seen == [("session-expired", 0)]
