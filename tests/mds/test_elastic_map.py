"""Epoch-versioned shard map: immutable per epoch, diffable, registered."""

import pytest

from repro.mds import Migration, ShardMap, ShardMapRegistry


def test_epoch_starts_at_zero_and_advances_per_derivation():
    m = ShardMap(4)
    assert m.epoch == 0
    m1 = m.split("/hot", 2)
    assert m1.epoch == 1
    m2 = m1.merge("/hot")
    assert m2.epoch == 2
    # Derivations never mutate the parent.
    assert m.epoch == 0 and m.subtrees == {}
    assert m1.subtrees == {"/hot": 2}


def test_split_repin_and_merge_rules():
    m = ShardMap(4).split("/hot", 2)
    with pytest.raises(ValueError):
        m.split("/hot", 2)               # already pinned there
    repinned = m.split("/hot", 3)        # re-pinning elsewhere is a move
    assert repinned.subtrees == {"/hot": 3}
    with pytest.raises(ValueError):
        ShardMap(4).merge("/nope")       # nothing pinned
    back = repinned.merge("/hot")
    assert back.subtrees == {}
    # Last pin gone: placement is pure parent-hash again.
    assert back.child_shard("/hot") == ShardMap(4).child_shard("/hot")


def test_diff_names_the_changed_roots():
    m = ShardMap(4)
    m1 = m.split("/hot", 2)
    assert m.diff(m1) == ["/hot"]
    m2 = m1.split("/warm", 1)
    assert sorted(m1.diff(m2)) == ["/warm"]
    assert sorted(m.diff(m2)) == ["/hot", "/warm"]
    assert m.diff(m) == []


def test_registry_installs_are_epoch_disciplined():
    reg = ShardMapRegistry(ShardMap(4))
    assert reg.epoch == 0
    new = reg.current.split("/hot", 2)
    roots = reg.install(new, "split /hot -> s2")
    assert roots == ["/hot"] and reg.epoch == 1
    with pytest.raises(ValueError):
        reg.install(new, "replay")       # epoch must advance by exactly 1
    assert [e for e, _m, _r in reg.history] == [0, 1]
    assert reg.map_at(0).subtrees == {}
    assert reg.map_at(1).subtrees == {"/hot": 2}


def test_registry_routing_changed_is_per_path():
    reg = ShardMapRegistry(ShardMap(4))
    reg.install(reg.current.split("/hot", 2), "split")
    assert reg.routing_changed(0, "/hot/f")
    untouched = "/elsewhere/f"
    assert not reg.routing_changed(0, untouched)
    assert not reg.routing_changed(1, "/hot/f")   # current epoch
    # Unknown epochs are conservatively treated as changed.
    assert reg.routing_changed(99, untouched)


def test_registry_blocking_migration_covers_the_frozen_subtree():
    reg = ShardMapRegistry(ShardMap(4))

    class _Ev:
        triggered = False
    mig = Migration("/hot", src=0, dst=2, from_epoch=0, done=_Ev())
    reg.begin_migration(mig)
    assert reg.blocking_migration("/hot/f") is mig
    assert reg.blocking_migration("/hot") is mig
    assert reg.blocking_migration("/cold/f") is None
    mig.state = "done"                   # cutover: writes flow again
    assert reg.blocking_migration("/hot/f") is None
    reg.end_migration(mig)
    assert reg.migrations == [] and reg.completed == [mig]
