"""ShardedMDS: placement, readdir semantics, and the cross-shard
two-phase intent protocol, exercised through a real DUFS deployment."""

import pytest

from repro.chaos import audit_dufs
from repro.mds import INTENT_ROOT, ShardedMDS, SingleEnsembleMDS
from repro.mds.sharded import PLACEHOLDER_DIR_DATA
from repro.core import build_dufs_deployment
from repro.zk.errors import NoNodeError, NotEmptyError


def make_dep(n_shards=4, **kwargs):
    kwargs.setdefault("n_zk", max(4, n_shards))
    kwargs.setdefault("n_backends", 2)
    kwargs.setdefault("n_client_nodes", 1)
    kwargs.setdefault("backend", "local")
    return build_dufs_deployment(n_shards=n_shards, **kwargs)


def find_dir(svc, pred, prefix="/t"):
    """A directory name satisfying a shard-placement predicate."""
    for i in range(256):
        name = f"{prefix}{i}"
        if pred(name):
            return name
    raise AssertionError("no dir name matched the placement predicate")


def test_deployment_picks_the_right_service():
    assert isinstance(make_dep(n_shards=4).clients[0].zk, ShardedMDS)
    assert isinstance(make_dep(n_shards=1).clients[0].zk, SingleEnsembleMDS)


def test_directory_materializes_on_home_and_child_shards():
    dep = make_dep()
    svc = dep.clients[0].zk
    d = find_dir(svc, lambda p: svc.map.home_shard(p)
                 != svc.map.child_shard(p))
    dep.call(dep.mounts[0].mkdir, d)
    dep.call(dep.mounts[0].create, f"{d}/f")
    home, child = svc.map.home_shard(d), svc.map.child_shard(d)

    def probe(shard, path):
        return dep.call(svc.client_for_shard(shard).exists, path)

    assert probe(home, d) is not None          # authoritative home copy
    assert probe(child, d) is not None         # child-host anchor copy
    # The file entry lives ONLY on its home shard (= the dir's child
    # shard); the dir's home shard holds no entry for it.
    assert probe(child, f"{d}/f") is not None
    assert probe(home, f"{d}/f") is None or home == child
    # readdir is served by the child shard and sees the entry.
    assert dep.call(svc.get_children, d) == ["f"]


def test_readdir_falls_back_to_home_copy_for_missing_anchor():
    dep = make_dep()
    svc = dep.clients[0].zk
    d = find_dir(svc, lambda p: svc.map.home_shard(p)
                 != svc.map.child_shard(p))
    dep.call(dep.mounts[0].mkdir, d)
    # Simulate crash residue: the child-host copy vanished.
    dep.call(svc.client_for_shard(svc.map.child_shard(d)).delete, d)
    assert dep.call(svc.get_children, d) == []   # home copy: dir exists
    with pytest.raises(NoNodeError):
        dep.call(svc.get_children, "/never-created")


def test_placeholder_anchors_stay_invisible_to_listings():
    dep = make_dep()
    svc = dep.clients[0].zk
    m = dep.mounts[0]
    dep.call(m.mkdir, "/deep")
    dep.call(m.mkdir, "/deep/a")
    dep.call(m.mkdir, "/deep/a/b")
    dep.call(m.create, "/deep/a/b/f")
    # Whatever placeholder chains were built, every listing shows exactly
    # the real entries.
    assert dep.call(svc.get_children, "/deep") == ["a"]
    assert dep.call(svc.get_children, "/deep/a") == ["b"]
    assert dep.call(svc.get_children, "/deep/a/b") == ["f"]


def cross_shard_pair(svc):
    """Two dirs whose entry sets live on different shards."""
    a = find_dir(svc, lambda p: True)
    b = find_dir(svc, lambda p: svc.map.child_shard(p)
                 != svc.map.child_shard(a), prefix="/u")
    return a, b


def test_cross_shard_rename_runs_the_intent_protocol():
    dep = make_dep()
    svc = dep.clients[0].zk
    a, b = cross_shard_pair(svc)
    m = dep.mounts[0]
    dep.call(m.mkdir, a)
    dep.call(m.mkdir, b)
    dep.call(m.create, f"{a}/f")
    assert dep.call(dep.clients[0].rename, f"{a}/f", f"{b}/f")
    assert dep.call(svc.get_children, a) == []
    assert dep.call(svc.get_children, b) == ["f"]
    assert svc.stats["cross_shard_ops"] >= 1
    assert svc.stats["intents_written"] == svc.stats["intents_retired"]
    report = audit_dufs(dep)
    assert report.ok, report.to_text()


def test_root_listing_hides_the_intent_area():
    dep = make_dep()
    svc = dep.clients[0].zk
    a, b = cross_shard_pair(svc)
    m = dep.mounts[0]
    dep.call(m.mkdir, a)
    dep.call(m.mkdir, b)
    dep.call(m.create, f"{a}/f")
    dep.call(dep.clients[0].rename, f"{a}/f", f"{b}/f")
    names = set(dep.call(svc.get_children, "/"))
    assert names == {a[1:], b[1:]}
    # ... even though the intent root genuinely exists on some shard.
    raw = [k for k in range(svc.n_shards)
           if dep.call(svc.client_for_shard(k).exists, INTENT_ROOT)]
    assert raw, "cross-shard rename should have created the intent root"


def test_cross_shard_multi_keeps_the_notempty_guard():
    dep = make_dep()
    svc = dep.clients[0].zk
    d = find_dir(svc, lambda p: svc.map.home_shard(p)
                 != svc.map.child_shard(p))
    m = dep.mounts[0]
    dep.call(m.mkdir, d)
    dep.call(m.create, f"{d}/f")
    before = svc.stats["intents_written"]
    with pytest.raises(NotEmptyError):
        dep.call(svc.multi, [svc.op_delete(d),
                             svc.op_create(d, PLACEHOLDER_DIR_DATA)])
    # Rejected before any journaling or mutation.
    assert svc.stats["intents_written"] == before
    assert dep.call(svc.exists, d) is not None
    assert dep.call(svc.get_children, d) == ["f"]


def test_last_retries_resets_per_operation():
    dep = make_dep()
    svc = dep.clients[0].zk
    dep.call(dep.mounts[0].mkdir, "/r")
    assert svc.last_retries == 0     # healthy cluster: no retries anywhere
    dep.call(svc.get, "/r")
    assert svc.last_retries == 0
