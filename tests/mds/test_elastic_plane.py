"""The elastic plane end-to-end: epoch bounces, live migration, and the
byte-identical-when-off guarantee."""

import hashlib

import pytest

from repro.core import build_dufs_deployment
from repro.models.params import ElasticParams
from repro.svc import TraceBus
from repro.workloads.mdtest import MdtestConfig, run_mdtest

#: sha256 over every OpTrace of the pinned replay below, recorded on a
#: non-elastic deployment. Elastic OFF must keep this byte-identical:
#: no registry, no stamping, no guards — not merely "similar numbers".
#: Re-record deliberately (and say why in the commit) if the *core*
#: simulation changes; the elastic plane itself must never shift it.
GOLDEN_DIGEST = "613c6b3cee2f9e0f74160adec6404f50bb300e01d110a71927c87d9d29d9b08d"


def build_elastic(seed=0, bus=None, autoscale=False):
    elastic = ElasticParams.elastic_on(autoscale=autoscale, drain=0.02,
                                       interval=0.05, window=0.15)
    return build_dufs_deployment(n_zk=8, n_backends=2, n_client_nodes=2,
                                 backend="local", seed=seed, n_shards=4,
                                 bus=bus, autoscale=elastic)


def pinnable_dir(dep, tag="t"):
    """A top-level dir plus a shard it does NOT naturally hash to."""
    svc = dep.clients[0].zk
    for i in range(64):
        d = f"/{tag}{i}"
        src = svc.map.child_shard(d)
        dst = (src + 1) % svc.map.n_shards
        return d, src, dst


def test_elastic_needs_at_least_two_shards():
    with pytest.raises(ValueError):
        build_dufs_deployment(n_zk=4, n_backends=2, n_client_nodes=1,
                              backend="local", n_shards=1,
                              autoscale=ElasticParams.elastic_on())


def test_elastic_wiring_and_off_by_default():
    dep = build_elastic()
    assert dep.registry is not None and dep.migrator is not None
    assert dep.autoscaler is None              # autoscale=False: manual
    plain = build_dufs_deployment(n_zk=4, n_backends=2, n_client_nodes=1,
                                  backend="local", n_shards=2)
    assert plain.registry is None and plain.migrator is None


def test_live_split_moves_data_and_client_follows():
    dep = build_elastic()
    svc = dep.clients[0].zk
    m = dep.mounts[0]
    d, src, dst = pinnable_dir(dep)
    dep.call(m.mkdir, d)
    for i in range(10):
        dep.call(m.create, f"{d}/f{i}")

    assert dep.call(dep.migrator.split, d, dst) is True
    assert dep.registry.epoch == 1
    assert dep.registry.current.child_shard(d) == dst

    # The client still holds the epoch-0 map; its next op is bounced with
    # StaleShardMapError, adopts the new map, and retries internally.
    dep.call(m.create, f"{d}/f10")
    assert svc.stats["stale_map_retries"] >= 1
    assert svc.map.epoch == 1
    assert dep.call(svc.get_children, d) == \
        sorted(f"f{i}" for i in range(11))
    # Data really lives on the destination shard now.
    store = max(dep.ensembles[dst].servers,
                key=lambda s: s.commit_index).store
    assert f"{d}/f10" in set(store.walk_paths())


def test_stale_epoch_retry_counts_the_op_once():
    bus = TraceBus(keep_events=True)
    dep = build_elastic(bus=bus)
    m = dep.mounts[0]
    d, src, dst = pinnable_dir(dep)
    dep.call(m.mkdir, d)
    dep.call(m.create, f"{d}/f0")
    dep.call(dep.migrator.split, d, dst)

    before = sum(1 for ev in bus.events
                 if ev.deployment == "dufs" and ev.method == "create")
    dep.call(m.create, f"{d}/f1")
    after = [ev for ev in bus.events
             if ev.deployment == "dufs" and ev.method == "create"]
    # One client call = one op on the bus, stale-map bounce and all: the
    # retry happens inside the service, beneath the instrumented surface.
    assert len(after) == before + 1
    assert after[-1].ok
    assert dep.clients[0].zk.stats["stale_map_retries"] >= 1


def test_merge_returns_subtree_to_hash_placement():
    dep = build_elastic()
    svc = dep.clients[0].zk
    m = dep.mounts[0]
    d, src, dst = pinnable_dir(dep)
    dep.call(m.mkdir, d)
    for i in range(5):
        dep.call(m.create, f"{d}/f{i}")
    dep.call(dep.migrator.split, d, dst)
    assert dep.call(dep.migrator.merge, d) is True
    assert dep.registry.epoch == 2
    assert dep.registry.current.subtrees == {}
    assert dep.registry.current.child_shard(d) == src
    dep.call(m.create, f"{d}/f5")
    assert dep.call(svc.get_children, d) == [f"f{i}" for i in range(6)]


def test_elastic_off_replay_is_byte_identical():
    bus = TraceBus(keep_events=True)
    dep = build_dufs_deployment(n_zk=8, n_backends=2, n_client_nodes=2,
                                backend="local", seed=0, bus=bus,
                                n_shards=4)
    cfg = MdtestConfig(n_procs=4, items_per_proc=10,
                       phases=("dir_create", "file_create", "file_stat",
                               "file_remove"))
    run_mdtest(dep.cluster, dep.mount_for, dep.node_for, cfg)
    h = hashlib.sha256()
    for ev in bus.events:
        h.update(repr((ev.deployment, ev.endpoint, ev.method, ev.arrive,
                       ev.start, ev.end, ev.ok, ev.src, ev.retries,
                       ev.shard)).encode())
    assert len(bus.events) == 1605
    assert h.hexdigest() == GOLDEN_DIGEST
