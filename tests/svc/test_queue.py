"""Admission policies: direct pass-through, bounded FIFO, priority."""

import pytest

from repro.sim import Cluster
from repro.svc import (
    AdmissionPolicy,
    BoundedAdmission,
    DirectAdmission,
    PriorityAdmission,
    make_policy,
)


def test_direct_admission_is_free():
    pol = DirectAdmission()
    assert pol.admit("anything") is None
    pol.release(None)          # no-op, must not raise
    assert pol.depth == 0
    assert isinstance(pol, AdmissionPolicy)


def test_bounded_admission_serializes():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    sim = cluster.sim
    pol = BoundedAdmission(sim, 1)
    order = []

    def worker(i):
        tok = pol.admit("op")
        try:
            yield tok
            order.append((i, sim.now))
            yield sim.timeout(1.0)
        finally:
            pol.release(tok)

    for i in range(3):
        node.spawn(worker(i))
    cluster.run()
    assert [i for i, _ in order] == [0, 1, 2]
    # Each admission waited for the previous holder's full second.
    assert [round(t, 6) for _, t in order] == [0.0, 1.0, 2.0]


def test_bounded_admission_depth():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    sim = cluster.sim
    pol = BoundedAdmission(sim, 1)

    def worker():
        tok = pol.admit("op")
        try:
            yield tok
            yield sim.timeout(1.0)
        finally:
            pol.release(tok)

    for _ in range(3):
        node.spawn(worker())
    sim.run(until=0.5)
    assert pol.depth == 2       # one in service, two waiting
    cluster.run()
    assert pol.depth == 0


def test_priority_admission_reorders_waiters():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    sim = cluster.sim
    prio = {"bulk": 10, "urgent": 0}
    pol = PriorityAdmission(sim, 1, priority_of=prio.get)
    order = []

    def worker(method):
        tok = pol.admit(method)
        try:
            yield tok
            order.append(method)
            yield sim.timeout(1.0)
        finally:
            pol.release(tok)

    # First bulk grabs the slot; the queued urgent overtakes queued bulk.
    node.spawn(worker("bulk"))
    node.spawn(worker("bulk"))
    node.spawn(worker("urgent"))
    cluster.run()
    assert order == ["bulk", "urgent", "bulk"]


def test_make_policy_parses_specs():
    cluster = Cluster(seed=0)
    sim = cluster.sim
    assert isinstance(make_policy("direct", sim), DirectAdmission)
    assert isinstance(make_policy("", sim), DirectAdmission)
    assert isinstance(make_policy("fifo", sim), DirectAdmission)
    bounded = make_policy("bounded:4", sim)
    assert isinstance(bounded, BoundedAdmission)
    assert bounded.resource.capacity == 4
    assert isinstance(make_policy("priority:2", sim), PriorityAdmission)
    with pytest.raises(ValueError):
        make_policy("wrong:1", sim)
