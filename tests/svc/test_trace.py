"""TraceBus aggregation, OpTrace arithmetic, export surfaces."""

import pytest

from repro.svc import NULL_BUS, NullBus, OpTrace, TraceBus


def ev(method="op", arrive=0.0, start=0.5, end=2.0, ok=True, retries=0):
    return OpTrace("dep", "ep", method, arrive, start, end, ok,
                   retries=retries)


def test_optrace_derived_metrics():
    t = ev()
    assert t.queue_wait == pytest.approx(0.5)
    assert t.service == pytest.approx(1.5)
    assert t.total == pytest.approx(2.0)
    assert t.key == "dep/ep.op"


def test_bus_aggregates_by_key():
    bus = TraceBus()
    bus.record(ev())
    bus.record(ev(ok=False, retries=2))
    bus.record(ev(method="other"))
    assert bus.keys() == ["dep/ep.op", "dep/ep.other"]
    assert bus.ops.get("dep/ep.op") == 2
    assert bus.errors.get("dep/ep.op") == 1
    assert bus.retries.get("dep/ep.op") == 2
    assert bus.queue_wait.count("dep/ep.op") == 2
    assert bus.service.summary("dep/ep.op").mean == pytest.approx(1.5)


def test_bus_keep_events_retains_raw_stream():
    bus = TraceBus(keep_events=True)
    events = [ev(), ev(method="b")]
    for e in events:
        bus.record(e)
    assert bus.events == events
    assert TraceBus().events is None


def test_bus_subscribe():
    bus = TraceBus()
    seen = []
    bus.subscribe(seen.append)
    bus.record(ev())
    assert len(seen) == 1 and seen[0].key == "dep/ep.op"


def test_bus_as_dict_and_table():
    bus = TraceBus()
    bus.record(ev())
    d = bus.as_dict()
    row = d["dep/ep.op"]
    assert row["ops"] == 1 and row["errors"] == 0
    assert row["queue_wait_mean"] == pytest.approx(0.5)
    assert row["service_mean"] == pytest.approx(1.5)
    text = bus.table()
    assert "dep/ep.op" in text and "endpoint.method" in text


def test_bus_histogram_export():
    bus = TraceBus()
    bus.record(ev(start=0.0, end=0.5))
    bus.record(ev(start=0.0, end=2.0))
    h = bus.histogram("dep/ep.op", which="service", edges=[1.0])
    assert h.counts == [1, 1]
    assert bus.histogram("missing") is None


def test_null_bus_discards():
    bus = NullBus()
    bus.record(ev())
    assert not bus.keys() and bus.ops.get("dep/ep.op") == 0
    assert isinstance(NULL_BUS, NullBus)


def test_bus_sampling_keeps_counters_exact_thins_samples():
    bus = TraceBus(keep_events=True, sample=4)
    seen = []
    bus.subscribe(seen.append)
    for i in range(100):
        bus.record(ev(ok=(i % 10 != 0), retries=1 if i % 5 == 0 else 0))
    # Counters never lose ops, sampled or not.
    assert bus.ops.get("dep/ep.op") == 100
    assert bus.errors.get("dep/ep.op") == 10
    assert bus.retries.get("dep/ep.op") == 20
    # Distributions, the raw stream, and subscribers see one op in four.
    assert bus.queue_wait.count("dep/ep.op") == 25
    assert bus.service.count("dep/ep.op") == 25
    assert len(bus.events) == 25
    assert len(seen) == 25


def test_bus_sample_default_records_everything():
    bus = TraceBus(keep_events=True)
    for _ in range(7):
        bus.record(ev())
    assert bus.queue_wait.count("dep/ep.op") == 7
    assert len(bus.events) == 7


def test_bus_sample_must_be_positive():
    with pytest.raises(ValueError):
        TraceBus(sample=0)
