"""Group-commit Batcher: coalescing, crash clear, recovery restart."""

import pytest

from repro.sim import Cluster
from repro.svc import Batcher


def make():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    return cluster, node


def test_batcher_coalesces_up_to_max_batch():
    cluster, node = make()
    flushed = []

    def flush(batch):
        yield cluster.sim.timeout(1e-3)
        flushed.append(list(batch))

    b = Batcher(node, "b", flush, max_batch=4)

    def producer():
        for i in range(10):
            b.submit(i)
        yield cluster.sim.timeout(0)

    node.spawn(producer())
    cluster.run()
    # First flush takes whatever was queued when the loop woke (all 10 are
    # submitted at t=0, so they drain in ceil(10/4) = 3 batches).
    assert [len(batch) for batch in flushed] == [4, 4, 2]
    assert [x for batch in flushed for x in batch] == list(range(10))
    assert b.stats == {"flushes": 3, "items": 10}
    assert len(b) == 0


def test_batcher_flushes_arrivals_during_flush_together():
    cluster, node = make()
    flushed = []

    def flush(batch):
        yield cluster.sim.timeout(1.0)
        flushed.append(list(batch))

    b = Batcher(node, "b", flush, max_batch=64)

    def producer():
        b.submit("a")
        yield cluster.sim.timeout(0.5)   # lands mid-flush of ["a"]
        b.submit("b")
        b.submit("c")

    node.spawn(producer())
    cluster.run()
    assert flushed == [["a"], ["b", "c"]]


def test_batcher_rejects_bad_max_batch():
    _, node = make()
    with pytest.raises(ValueError):
        Batcher(node, "b", lambda batch: iter(()), max_batch=0)


def test_batcher_crash_clear_and_restart():
    cluster, node = make()
    flushed = []

    def flush(batch):
        yield cluster.sim.timeout(1.0)
        flushed.extend(batch)

    b = Batcher(node, "b", flush, max_batch=64)

    def producer():
        b.submit(1)
        b.submit(2)
        yield cluster.sim.timeout(0.5)   # mid-flush
        node.crash()
        b.clear()

    node.spawn(producer())
    cluster.run(until=2.0)
    assert flushed == [] and len(b) == 0   # un-flushed work died

    node.recover()
    b.restart()

    def producer2():
        b.submit(3)
        yield cluster.sim.timeout(0)

    node.spawn(producer2())
    cluster.run()
    assert flushed == [3]


def test_batcher_marks_occupancy_on_the_bus():
    from repro.svc import TraceBus

    cluster, node = make()
    bus = TraceBus()

    def flush(batch):
        yield cluster.sim.timeout(1e-3)

    b = Batcher(node, "wb", flush, max_batch=4, bus=bus, deployment="test")

    def producer():
        for i in range(10):
            b.submit(i)
        yield cluster.sim.timeout(0)

    node.spawn(producer())
    cluster.run()
    occ = bus.batch_occupancy()
    row = occ["test/wb"]
    assert row["flushes"] == 3 and row["items"] == 10
    assert abs(row["fill_mean"] - 10 / 3) < 1e-9
    assert row["depth_mean"] >= 0.0
    # The human-readable table grows a batcher occupancy section.
    table = bus.table()
    assert "batcher" in table and "test/wb" in table


def test_unwired_batcher_records_nothing():
    from repro.svc import TraceBus

    cluster, node = make()
    bus = TraceBus()

    def flush(batch):
        yield cluster.sim.timeout(1e-3)

    b = Batcher(node, "wb", flush, max_batch=4)   # default NULL_BUS

    def producer():
        b.submit(1)
        yield cluster.sim.timeout(0)

    node.spawn(producer())
    cluster.run()
    assert b.stats["flushes"] == 1
    assert bus.batch_occupancy() == {} and "batcher" not in bus.table()
