"""Admission-queue overflow: bounded wait queues refuse, never leak."""

import pytest

from repro.sim import Cluster
from repro.svc import (
    AdmissionReject,
    BoundedAdmission,
    PriorityAdmission,
    make_policy,
)


def overflow_harness(pol, sim, node, n, hold=0.5):
    """Spawn ``n`` concurrent workers through ``pol``; returns the logs."""
    admitted, rejected = [], []

    def worker(i):
        try:
            tok = pol.admit("op")
        except AdmissionReject as exc:
            rejected.append((i, exc.depth))
            return
            yield  # pragma: no cover - keeps this a generator
        try:
            yield tok
            admitted.append((i, sim.now))
            yield sim.timeout(hold)
        finally:
            pol.release(tok)

    for i in range(n):
        node.spawn(worker(i))
    return admitted, rejected


def test_bounded_overflow_rejects_at_capacity():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    pol = BoundedAdmission(cluster.sim, 1, max_queue=2)
    admitted, rejected = overflow_harness(pol, cluster.sim, node, 5)
    cluster.run()
    # 1 in service + 2 queued; arrivals 3 and 4 bounce off the full queue.
    assert [i for i, _ in admitted] == [0, 1, 2]
    assert [i for i, _ in rejected] == [3, 4]
    assert all(depth == 2 for _, depth in rejected)
    assert pol.depth == 0


def test_priority_overflow_rejects_at_capacity():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    pol = PriorityAdmission(cluster.sim, 1, max_queue=1)
    admitted, rejected = overflow_harness(pol, cluster.sim, node, 3)
    cluster.run()
    assert [i for i, _ in admitted] == [0, 1]
    assert [i for i, _ in rejected] == [2, ]
    assert pol.depth == 0


def test_rejected_request_holds_no_token():
    """A rejection must not consume capacity: service keeps flowing at
    full rate and the queue drains to exactly zero."""
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    pol = BoundedAdmission(cluster.sim, 1, max_queue=1)
    admitted, rejected = overflow_harness(pol, cluster.sim, node, 6,
                                          hold=1.0)
    cluster.run()
    assert len(admitted) == 2 and len(rejected) == 4
    # Back-to-back service: second starts the instant the first releases.
    assert [round(t, 6) for _, t in admitted] == [0.0, 1.0]
    assert pol.depth == 0
    assert pol.admit("op") is not None      # fresh capacity available


def test_depth_returns_to_zero_after_mixed_drain():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    pol = PriorityAdmission(cluster.sim, 2, max_queue=3)
    admitted, rejected = overflow_harness(pol, cluster.sim, node, 8,
                                          hold=0.25)
    cluster.sim.run(until=0.1)
    assert pol.depth == 3                   # the wait queue is full
    cluster.run()
    assert len(admitted) + len(rejected) == 8
    assert pol.depth == 0


def test_make_policy_parses_queue_bound():
    sim = Cluster(seed=0).sim
    pol = make_policy("bounded:2:4", sim)
    assert isinstance(pol, BoundedAdmission)
    assert pol.resource.capacity == 2 and pol.max_queue == 4
    prio = make_policy("priority:1:2", sim)
    assert isinstance(prio, PriorityAdmission)
    assert prio.max_queue == 2
    # No third field = unbounded wait queue (the legacy spec still parses).
    assert make_policy("bounded:2", sim).max_queue is None
    # max_queue=0: admit straight into a free slot, never wait.
    full = make_policy("bounded:1:0", sim)
    assert full.admit("op") is not None
    with pytest.raises(AdmissionReject):
        full.admit("op")
