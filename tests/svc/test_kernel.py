"""Service kernel: declarative endpoints, unified counting, tracing."""

import pytest

from repro.errors import ENOENT, FSError
from repro.sim import Cluster
from repro.sim.rpc import RpcAgent
from repro.svc import BoundedAdmission, Service, TraceBus, instrument_client


def make_cluster():
    cluster = Cluster(seed=1)
    server = cluster.add_node("server")
    client = cluster.add_node("client")
    return cluster, server, client


def drive(cluster, node, gen):
    proc = node.spawn(gen)
    return cluster.sim.run(until=proc)


def test_expose_serves_and_counts():
    cluster, server, client = make_cluster()
    svc = Service(server, "srv", deployment="test")

    def h_echo(src, args):
        yield cluster.sim.timeout(1e-4)
        return args * 2

    svc.expose("echo", h_echo, cost=1e-4)
    agent = RpcAgent(client, "cli")
    assert drive(cluster, client, agent.call("srv", "echo", 21)) == 42
    assert svc.completed == 1
    assert svc.op_counts.get("echo") == 1
    assert svc.error_counts.get("echo") == 0
    assert svc.inflight == 0


def test_failed_ops_are_counted_too():
    """The satellite fix: every stack counts failures identically."""
    cluster, server, client = make_cluster()
    stats = {"ops": 0}
    svc = Service(server, "srv", op_stats=stats)

    def h_boom(src, args):
        yield cluster.sim.timeout(1e-5)
        raise FSError(ENOENT, "nope")

    svc.expose("boom", h_boom)
    agent = RpcAgent(client, "cli")

    def caller():
        with pytest.raises(FSError):
            yield from agent.call("srv", "boom", None)
        return True

    assert drive(cluster, client, caller())
    assert stats["ops"] == 1
    assert svc.op_counts.get("boom") == 1
    assert svc.error_counts.get("boom") == 1
    assert svc.inflight == 0


def test_op_stats_hook_preserves_existing_keys():
    cluster, server, client = make_cluster()
    stats = {"ops": 7, "custom": 3}
    svc = Service(server, "srv", op_stats=stats)

    def h_noop(src, args):
        yield cluster.sim.timeout(1e-6)
        return True

    svc.expose("noop", h_noop)
    agent = RpcAgent(client, "cli")
    drive(cluster, client, agent.call("srv", "noop", None))
    assert stats == {"ops": 8, "custom": 3}


def test_write_methods_and_specs():
    cluster, server, _ = make_cluster()
    svc = Service(server, "srv")
    svc.expose("get", lambda s, a: iter(()), cost=1e-6)
    svc.expose("put", lambda s, a: iter(()), write=True, cost=2e-6)
    svc.expose("del", lambda s, a: iter(()), write=True)
    assert svc.write_methods() == ["del", "put"]
    assert svc.specs["put"].cost == 2e-6
    assert not svc.specs["get"].write


def test_trace_records_queue_wait_under_bounded_admission():
    cluster, server, client = make_cluster()
    bus = TraceBus()
    svc = Service(server, "srv", deployment="d",
                  policy=BoundedAdmission(cluster.sim, 1), bus=bus)

    def h_slow(src, args):
        yield cluster.sim.timeout(1e-3)
        return args

    svc.expose("slow", h_slow)
    agent = RpcAgent(client, "cli")

    def caller(i):
        result = yield from agent.call("srv", "slow", i)
        return result

    procs = [client.spawn(caller(i)) for i in range(3)]
    cluster.run()
    assert all(p.ok for p in procs)
    key = "d/srv.slow"
    assert bus.ops.get(key) == 3
    # With capacity 1, later requests queued behind the first.
    assert bus.queue_wait.summary(key).max >= 1e-3
    assert bus.service.summary(key).count == 3


def test_expose_fast_bypasses_admission_and_counting():
    cluster, server, client = make_cluster()
    bus = TraceBus()
    svc = Service(server, "srv", bus=bus)
    seen = []
    svc.expose_fast("note", lambda src, args: seen.append(args))
    agent = RpcAgent(client, "cli")
    agent.cast("srv", "note", 5)
    cluster.run(until=1.0)
    assert seen == [5]
    assert svc.completed == 0 and not bus.keys()


def test_instrument_client_publishes_traces():
    cluster, _, client = make_cluster()
    bus = TraceBus()

    class Lib:
        def __init__(self, node):
            self.sim = node.sim

        def op(self, x):
            yield self.sim.timeout(2e-3)
            return x + 1

    lib = Lib(client)
    instrument_client(lib, ("op",), bus, deployment="lib", endpoint="c0",
                      retries_of=lambda: 4)
    assert drive(cluster, client, lib.op(1)) == 2
    key = "lib/c0.op"
    assert bus.ops.get(key) == 1
    assert bus.retries.get(key) == 4
    tr = bus.service.summary(key)
    assert tr.max == pytest.approx(2e-3)
