"""Consistent-hash ring: distribution fairness and bounded relocation."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import ConsistentHashRing


def test_empty_ring_lookup_fails():
    with pytest.raises(LookupError):
        ConsistentHashRing().lookup("k")


def test_add_remove_membership():
    ring = ConsistentHashRing(["a", "b"])
    assert ring.members == {"a", "b"}
    ring.remove("a")
    assert ring.members == {"b"}
    with pytest.raises(KeyError):
        ring.remove("a")
    with pytest.raises(ValueError):
        ring.add("b")


def test_single_member_owns_everything():
    ring = ConsistentHashRing(["only"])
    assert all(ring.lookup(f"key{i}") == "only" for i in range(50))


def test_lookup_deterministic():
    r1 = ConsistentHashRing(["a", "b", "c"])
    r2 = ConsistentHashRing(["a", "b", "c"])
    keys = [f"file-{i}" for i in range(200)]
    assert [r1.lookup(k) for k in keys] == [r2.lookup(k) for k in keys]


def test_load_roughly_balanced():
    ring = ConsistentHashRing([f"s{i}" for i in range(4)], replicas=128)
    counts = Counter(ring.lookup(f"fid-{i}") for i in range(4000))
    for member, count in counts.items():
        assert 0.5 * 1000 < count < 1.6 * 1000, (member, count)


def test_bounded_relocation_on_add():
    """Adding a 5th member must move only ~1/5 of keys (the paper's goal)."""
    keys = [f"fid-{i}" for i in range(3000)]
    ring = ConsistentHashRing([f"s{i}" for i in range(4)], replicas=128)
    before = {k: ring.lookup(k) for k in keys}
    ring.add("s4")
    moved = sum(1 for k in keys if ring.lookup(k) != before[k])
    # Expect ~ 1/5 = 600; anything under 1/3 proves the bound vs mod-N
    # (mod-N rehashing would move ~4/5 = 2400).
    assert moved < len(keys) / 3
    # And every moved key must have moved TO the new member.
    for k in keys:
        now = ring.lookup(k)
        if now != before[k]:
            assert now == "s4"


def test_bounded_relocation_on_remove():
    keys = [f"fid-{i}" for i in range(3000)]
    ring = ConsistentHashRing([f"s{i}" for i in range(5)], replicas=128)
    before = {k: ring.lookup(k) for k in keys}
    ring.remove("s2")
    for k in keys:
        if before[k] != "s2":
            assert ring.lookup(k) == before[k]  # untouched keys stay put


def test_replicas_validation():
    with pytest.raises(ValueError):
        ConsistentHashRing(replicas=0)


@settings(max_examples=30, deadline=None)
@given(st.sets(st.text(min_size=1, max_size=8), min_size=1, max_size=6),
       st.text(min_size=0, max_size=20))
def test_lookup_always_returns_a_member(members, key):
    ring = ConsistentHashRing(members, replicas=16)
    assert ring.lookup(key) in members


@settings(max_examples=20, deadline=None)
@given(st.sets(st.integers(0, 50), min_size=2, max_size=8))
def test_removal_only_moves_keys_of_removed_member(members):
    members = sorted(members)
    ring = ConsistentHashRing(members, replicas=32)
    keys = [f"k{i}" for i in range(300)]
    before = {k: ring.lookup(k) for k in keys}
    victim = members[0]
    ring.remove(victim)
    for k in keys:
        if before[k] != victim:
            assert ring.lookup(k) == before[k]
