"""MD5 correctness: RFC 1321 appendix vectors + hypothesis vs hashlib."""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import md5_bytes, md5_hex, md5_int

RFC1321_VECTORS = {
    b"": "d41d8cd98f00b204e9800998ecf8427e",
    b"a": "0cc175b9c0f1b6a831c399e269772661",
    b"abc": "900150983cd24fb0d6963f7d28e17f72",
    b"message digest": "f96b697d7cb7938d525a2f31aaf161d0",
    b"abcdefghijklmnopqrstuvwxyz": "c3fcd3d76192e4007dfb496cca67e13b",
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789":
        "d174ab98d277d9f5a5611c2c9f419d9f",
    b"1234567890" * 8:
        "57edf4a22be3c955ac49da2e2107b67a",
}


def test_rfc1321_appendix_vectors():
    for data, want in RFC1321_VECTORS.items():
        assert md5_hex(data) == want


def test_padding_boundaries():
    """Lengths straddling the 55/56/64-byte padding edges."""
    for n in (54, 55, 56, 57, 63, 64, 65, 119, 120, 128):
        data = b"x" * n
        assert md5_hex(data) == hashlib.md5(data).hexdigest()


def test_md5_int_matches_big_endian_digest():
    data = b"dufs"
    want = int.from_bytes(hashlib.md5(data).digest(), "big")
    assert md5_int(data) == want


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=0, max_size=300))
def test_matches_hashlib_on_arbitrary_input(data):
    assert md5_bytes(data) == hashlib.md5(data).digest()


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=0, max_size=64), st.binary(min_size=0, max_size=64))
def test_distinct_inputs_distinct_digests_in_practice(a, b):
    # Not a cryptographic claim — just that the implementation doesn't
    # collapse inputs (e.g. by ignoring part of the message).
    if a != b:
        assert md5_bytes(a) != md5_bytes(b)
