"""Ensemble builder/handle helpers."""

import pytest

from repro.sim import Cluster
from repro.zk import ZKClient, build_ensemble


def test_server_for_round_robin():
    cluster = Cluster(seed=0)
    nodes = [cluster.add_node(f"n{i}") for i in range(3)]
    ens = build_ensemble(cluster, nodes, 3)
    assert ens.server_for(0) == "zk0"
    assert ens.server_for(4) == "zk1"


def test_leader_property():
    cluster = Cluster(seed=0)
    nodes = [cluster.add_node(f"n{i}") for i in range(3)]
    ens = build_ensemble(cluster, nodes, 3)
    assert ens.leader is ens.servers[0]


def test_servers_spread_over_nodes_round_robin():
    cluster = Cluster(seed=0)
    nodes = [cluster.add_node(f"n{i}") for i in range(2)]
    ens = build_ensemble(cluster, nodes, 4)
    assert ens.servers[0].node is nodes[0]
    assert ens.servers[1].node is nodes[1]
    assert ens.servers[2].node is nodes[0]
    assert ens.servers[3].node is nodes[1]


def test_fingerprints_and_convergence():
    cluster = Cluster(seed=0)
    nodes = [cluster.add_node(f"n{i}") for i in range(3)]
    cnode = cluster.add_node("cli")
    ens = build_ensemble(cluster, nodes, 3)
    assert ens.converged()  # all empty
    cli = ZKClient(cnode, ens.endpoints)

    def write():
        yield from cli.create("/q", b"v")

    proc = cnode.spawn(write())
    cluster.sim.run(until=proc)
    cluster.sim.run(until=cluster.sim.now + 0.2)
    fps = ens.fingerprints()
    assert len(set(fps)) == 1
    assert ens.converged()


def test_boot_false_leaves_servers_looking():
    cluster = Cluster(seed=0)
    nodes = [cluster.add_node(f"n{i}") for i in range(3)]
    ens = build_ensemble(cluster, nodes, 3, boot=False)
    assert all(s.role == "looking" for s in ens.servers)


@pytest.mark.parametrize("n,quorum",
                         [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (8, 5)])
def test_quorum_sizes(n, quorum):
    cluster = Cluster(seed=0)
    nodes = [cluster.add_node(f"n{i}") for i in range(n)]
    ens = build_ensemble(cluster, nodes, n)
    assert all(s.quorum == quorum for s in ens.servers)


def test_server_for_skips_dead_endpoints():
    cluster = Cluster(seed=0)
    nodes = [cluster.add_node(f"n{i}") for i in range(3)]
    ens = build_ensemble(cluster, nodes, 3)
    nodes[1].crash()
    # The dead endpoint is never assigned; the live ones round-robin.
    picks = {ens.server_for(i) for i in range(6)}
    assert picks == {"zk0", "zk2"}
    assert ens.server_for(0) == "zk0" and ens.server_for(1) == "zk2"
    nodes[1].recover()
    assert {ens.server_for(i) for i in range(6)} == {"zk0", "zk1", "zk2"}


def test_server_for_falls_back_when_nothing_is_live():
    cluster = Cluster(seed=0)
    nodes = [cluster.add_node(f"n{i}") for i in range(2)]
    ens = build_ensemble(cluster, nodes, 2)
    for n in nodes:
        n.crash()
    # Degenerate case: hand out the full list and let the client's own
    # fail-over loop discover liveness.
    assert ens.server_for(0) == "zk0"
    assert ens.server_for(1) == "zk1"


def test_named_ensembles_share_a_cluster():
    cluster = Cluster(seed=0)
    nodes = [cluster.add_node(f"n{i}") for i in range(2)]
    a = build_ensemble(cluster, nodes, 2, name="s0zk", shard=0)
    b = build_ensemble(cluster, nodes, 2, name="s1zk", shard=1)
    assert a.endpoints == ["s0zk0", "s0zk1"]
    assert b.endpoints == ["s1zk0", "s1zk1"]
    assert all(s.svc.shard == 1 for s in b.servers)
