"""Server-side ``resolve``: one-RPC lookups answered from the dentry
cache, misses reported with the nearest existing ancestor, and dentry
invalidation on every namespace mutation."""


def _server_stats(h, key):
    return sum(s.stats.get(key, 0) for s in h.ensemble.servers)


def scaffold(h, client):
    def build():
        yield from client.create("/a", b"A")
        yield from client.create("/a/b", b"B")
        yield from client.create("/a/b/c", b"C")
    h.run(build())


def test_resolve_ok_returns_data_and_stat(zk3):
    c = zk3.client()
    scaffold(zk3, c)
    res = zk3.run(c.resolve("/a/b/c"))
    assert res.status == "ok"
    assert res.path == "/a/b/c"
    assert res.data == b"C"
    assert res.stat is not None and res.stat.version == 0


def test_resolve_miss_reports_nearest_ancestor(zk3):
    c = zk3.client()
    scaffold(zk3, c)
    res = zk3.run(c.resolve("/a/x/y/z"))
    assert res.status == "miss"
    assert res.ancestor == "/a"
    assert res.ancestor_data == b"A"
    # Nothing exists at all: the root is the nearest ancestor.
    res = zk3.run(c.resolve("/nope/deeper"))
    assert res.status == "miss"
    assert res.ancestor == "/"


def test_resolve_is_one_rpc_at_any_depth(zk1):
    c = zk1.client()

    def build():
        path = ""
        for comp in "abcdefgh":            # depth 8
            path += f"/{comp}"
            yield from c.create(path, b"D")
    zk1.run(build())
    before = _server_stats(zk1, "resolves")
    res = zk1.run(c.resolve("/a/b/c/d/e/f/g/h"))
    assert res.status == "ok"
    # The whole depth-8 walk happened inside ONE server-side request.
    assert _server_stats(zk1, "resolves") - before == 1


def test_dentry_cache_warms_across_resolves(zk1):
    c = zk1.client()
    scaffold(zk1, c)
    zk1.run(c.resolve("/a/b/c"))           # cold: misses /a and /a/b
    hits0 = _server_stats(zk1, "dentry_hits")
    misses0 = _server_stats(zk1, "dentry_misses")
    zk1.run(c.resolve("/a/b/c"))           # warm: both ancestors hit
    assert _server_stats(zk1, "dentry_hits") - hits0 == 2
    assert _server_stats(zk1, "dentry_misses") == misses0


def test_dentry_invalidated_on_delete(zk3):
    c = zk3.client()
    scaffold(zk3, c)
    zk3.run(c.resolve("/a/b/c/x"))         # warms dentries /a, /a/b, /a/b/c

    def remove():
        yield from c.delete("/a/b/c")
        yield from c.delete("/a/b")
    zk3.run(remove())
    zk3.settle(0.2)                        # let every replica apply
    res = zk3.run(c.resolve("/a/b/c/x"))
    assert res.status == "miss"
    # A stale dentry would report /a/b or /a/b/c as still existing.
    assert res.ancestor == "/a"
    assert res.ancestor_data == b"A"


def test_dentry_invalidated_on_multi_rename(zk3):
    c = zk3.client()
    scaffold(zk3, c)
    zk3.run(c.resolve("/a/b/c"))           # warms /a, /a/b
    # A client-level rename is one multi: create the new chain, delete
    # the old one (children first).
    zk3.run(c.multi([c.op_create("/n", b"N"),
                     c.op_create("/n/b", b"B"),
                     c.op_create("/n/b/c", b"C"),
                     c.op_delete("/a/b/c"),
                     c.op_delete("/a/b")]))
    zk3.settle(0.2)
    res = zk3.run(c.resolve("/a/b/c"))
    assert res.status == "miss" and res.ancestor == "/a"
    res = zk3.run(c.resolve("/n/b/c"))
    assert res.status == "ok" and res.data == b"C"
