"""Integration tests: ZK ensemble semantics through the client API."""


from repro.zk.errors import (
    BadVersionError,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
)


def test_create_visible_on_all_replicas(zk3):
    cli = zk3.client()

    def main():
        yield from cli.create("/app", b"cfg")

    zk3.run(main())
    zk3.settle(0.1)
    for server in zk3.ensemble.servers:
        assert server.store.get("/app")[0] == b"cfg"
    assert zk3.ensemble.converged()


def test_write_via_follower_is_forwarded(zk3):
    cli = zk3.client(prefer_index=2)  # zk2 is a follower (leader = zk0)

    def main():
        yield from cli.create("/f", b"x")
        return (yield from cli.get("/f"))

    data, stat = zk3.run(main())
    assert data == b"x"
    assert zk3.ensemble.servers[2].stats["forwards"] == 1
    assert zk3.ensemble.servers[0].stats["writes"] == 1


def test_duplicate_create_raises_node_exists(zk3):
    cli = zk3.client()

    def main():
        yield from cli.create("/dup")
        try:
            yield from cli.create("/dup")
        except NodeExistsError:
            return "exists"

    assert zk3.run(main()) == "exists"


def test_reads_served_locally_by_follower(zk3):
    cli = zk3.client(prefer_index=1)

    def main():
        yield from cli.create("/r", b"v")
        return (yield from cli.get("/r"))

    data, _ = zk3.run(main())
    assert data == b"v"
    # The read hit zk1, not the leader.
    assert zk3.ensemble.servers[1].stats["reads"] == 1
    assert zk3.ensemble.servers[0].stats["reads"] == 0


def test_set_data_version_conflict(zk3):
    cli = zk3.client()

    def main():
        yield from cli.create("/v", b"0")
        yield from cli.set_data("/v", b"1", version=0)
        try:
            yield from cli.set_data("/v", b"2", version=0)
        except BadVersionError:
            return "conflict"

    assert zk3.run(main()) == "conflict"


def test_delete_nonempty_and_missing(zk3):
    cli = zk3.client()

    def main():
        out = []
        yield from cli.create("/d")
        yield from cli.create("/d/c")
        try:
            yield from cli.delete("/d")
        except NotEmptyError:
            out.append("notempty")
        try:
            yield from cli.delete("/ghost")
        except NoNodeError:
            out.append("nonode")
        return out

    assert zk3.run(main()) == ["notempty", "nonode"]


def test_sequential_create_through_api(zk3):
    cli = zk3.client()

    def main():
        yield from cli.create("/q")
        p1 = yield from cli.create("/q/n-", sequential=True)
        p2 = yield from cli.create("/q/n-", sequential=True)
        return p1, p2

    p1, p2 = zk3.run(main())
    assert p1 == "/q/n-0000000000"
    assert p2 == "/q/n-0000000001"


def test_concurrent_writes_from_two_clients_converge(zk3):
    c1 = zk3.client(prefer_index=1)
    c2 = zk3.client(prefer_index=2)

    def writer(cli, base):
        yield from cli.create(f"/{base}")
        for i in range(10):
            yield from cli.create(f"/{base}/f{i}", b"d")

    zk3.run_all(writer(c1, "a"), writer(c2, "b"))
    zk3.settle(0.2)
    assert zk3.ensemble.converged()
    leader = zk3.ensemble.servers[0]
    assert len(leader.store.get_children("/a")) == 10
    assert len(leader.store.get_children("/b")) == 10


def test_single_server_ensemble_works(zk1):
    cli = zk1.client()

    def main():
        yield from cli.create("/solo", b"1")
        return (yield from cli.get("/solo"))

    data, _ = zk1.run(main())
    assert data == b"1"


def test_multi_atomic_success(zk3):
    cli = zk3.client()

    def main():
        yield from cli.create("/m", b"")
        results = yield from cli.multi([
            cli.op_create("/m/a", b"1"),
            cli.op_create("/m/b", b"2"),
            cli.op_set("/m", b"parent"),
        ])
        return results

    results = zk3.run(main())
    assert results == ["/m/a", "/m/b", True]
    zk3.settle(0.1)
    assert zk3.ensemble.converged()
    assert zk3.ensemble.servers[1].store.get("/m")[0] == b"parent"


def test_multi_atomic_failure_applies_nothing(zk3):
    cli = zk3.client()

    def main():
        yield from cli.create("/m", b"")
        yield from cli.create("/m/conflict", b"")
        try:
            yield from cli.multi([
                cli.op_create("/m/new", b""),
                cli.op_create("/m/conflict", b""),  # fails
            ])
        except NodeExistsError:
            pass
        return (yield from cli.exists("/m/new"))

    assert zk3.run(main()) is None


def test_multi_rename_pattern(zk3):
    """The DUFS rename: create new name + delete old name, atomically."""
    cli = zk3.client()

    def main():
        yield from cli.create("/old", b"fid-123")
        yield from cli.multi([
            cli.op_create("/new", b"fid-123"),
            cli.op_delete("/old"),
        ])
        old = yield from cli.exists("/old")
        new_data, _ = yield from cli.get("/new")
        return old, new_data

    old, new_data = zk3.run(main())
    assert old is None
    assert new_data == b"fid-123"


def test_multi_delete_then_recreate_same_path(zk3):
    cli = zk3.client()

    def main():
        yield from cli.create("/x", b"old")
        yield from cli.multi([
            cli.op_delete("/x"),
            cli.op_create("/x", b"new"),
        ])
        return (yield from cli.get("/x"))

    data, stat = zk3.run(main())
    assert data == b"new"
    assert stat.version == 0  # brand-new node


def test_multi_check_guard(zk3):
    cli = zk3.client()

    def main():
        yield from cli.create("/g", b"v0")
        yield from cli.set_data("/g", b"v1")  # version now 1
        try:
            yield from cli.multi([
                cli.op_check("/g", version=0),
                cli.op_set("/g", b"v2"),
            ])
        except BadVersionError:
            return (yield from cli.get("/g"))

    data, _ = zk3.run(main())
    assert data == b"v1"


def test_ephemeral_cleanup_on_session_close(zk3):
    cli = zk3.client()

    def main():
        yield from cli.connect()
        yield from cli.create("/perm", b"")
        yield from cli.create("/eph", b"", ephemeral=True)
        yield from cli.close()
        return (yield from cli.exists("/eph")), (yield from cli.exists("/perm"))

    eph, perm = zk3.run(main())
    assert eph is None
    assert perm is not None


def test_ephemeral_cannot_have_children(zk3):
    from repro.zk.errors import NoChildrenForEphemeralsError
    cli = zk3.client()

    def main():
        yield from cli.connect()
        yield from cli.create("/e", ephemeral=True)
        try:
            yield from cli.create("/e/child")
        except NoChildrenForEphemeralsError:
            return "rejected"

    assert zk3.run(main()) == "rejected"


def test_stat_fields_flow_to_client(zk3):
    cli = zk3.client()

    def main():
        yield from cli.create("/s", b"abc")
        return (yield from cli.exists("/s"))

    stat = zk3.run(main())
    assert stat.data_length == 3
    assert stat.version == 0
    assert stat.czxid > 0
    assert stat.ctime > 0


def test_totally_ordered_commits_identical_on_all_replicas(zk3):
    """The Fig. 1 consistency scenario: concurrent conflicting namespace
    operations must be applied in the same order everywhere."""
    c1 = zk3.client(prefer_index=1)
    c2 = zk3.client(prefer_index=2)

    def maker():
        for i in range(20):
            try:
                yield from c1.create("/d1", bytes([i]))
            except NodeExistsError:
                pass

    def renamer():
        for i in range(20):
            try:
                yield from c2.multi([
                    c2.op_create("/d2", b""),
                    c2.op_delete("/d1"),
                ])
                yield from c2.delete("/d2")
            except (NoNodeError, NodeExistsError):
                pass

    zk3.run_all(maker(), renamer())
    zk3.settle(0.5)
    assert zk3.ensemble.converged()


def test_throughput_counters(zk3):
    cli = zk3.client()

    def main():
        for i in range(5):
            yield from cli.create(f"/n{i}")
        for i in range(5):
            yield from cli.get(f"/n{i}")

    zk3.run(main())
    leader = zk3.ensemble.servers[0]
    assert leader.stats["writes"] == 5
    assert leader.stats["proposals"] == 5
