"""ZooKeeper observers: read fan-out without the write-quorum penalty.

An extension beyond the paper (real ZooKeeper grew observers in 3.3):
DUFS's central trade-off — Fig. 7's "more servers = slower writes, faster
reads" — dissolves if the extra read capacity comes from non-voting
replicas.
"""


from repro.sim import Cluster
from repro.zk import ZKClient, build_ensemble


def build(n_voters, n_observers, seed=0):
    cluster = Cluster(seed=seed)
    nodes = [cluster.add_node(f"n{i}")
             for i in range(n_voters + n_observers)]
    cnode = cluster.add_node("cli")
    ens = build_ensemble(cluster, nodes, n_voters, n_observers=n_observers)
    return cluster, cnode, ens


def run(cluster, node, gen):
    proc = node.spawn(gen)
    return cluster.sim.run(until=proc)


def test_observer_replicates_committed_state():
    cluster, cnode, ens = build(3, 2)
    cli = ZKClient(cnode, ens.endpoints, prefer=ens.endpoints[0])

    def main():
        for i in range(5):
            yield from cli.create(f"/o{i}", b"x")

    run(cluster, cnode, main())
    cluster.sim.run(until=cluster.sim.now + 0.5)
    for server in ens.servers:
        for i in range(5):
            assert server.store.exists(f"/o{i}") is not None, \
                (server.sid, server.observer, i)
    assert ens.converged()


def test_observer_serves_reads():
    cluster, cnode, ens = build(3, 1)
    observer_ep = ens.endpoints[3]
    cli = ZKClient(cnode, ens.endpoints, prefer=ens.endpoints[0])
    ocli = ZKClient(cnode, ens.endpoints, prefer=observer_ep)

    def main():
        yield from cli.create("/via-voter", b"v")
        yield from ocli.sync()
        data, _ = yield from ocli.get("/via-voter")
        return data

    assert run(cluster, cnode, main()) == b"v"
    assert ens.servers[3].stats["reads"] >= 1


def test_observer_never_acks_or_votes():
    cluster, cnode, ens = build(3, 2)
    cli = ZKClient(cnode, ens.endpoints, prefer=ens.endpoints[0])

    def main():
        for i in range(10):
            yield from cli.create(f"/w{i}")

    run(cluster, cnode, main())
    leader = ens.servers[0]
    assert leader.active_observers == {3, 4}
    # No outstanding entry ever saw an ack from an observer sid.
    assert all(sid < 3 for out in leader.outstanding.values()
               for sid in out.acks)


def test_quorum_excludes_observers():
    """3 voters + 2 observers: quorum is 2 (of voters), not 3 (of 5)."""
    cluster, cnode, ens = build(3, 2)
    assert all(s.quorum == 2 for s in ens.servers)
    # Crash BOTH observers: writes must still commit.
    ens.servers[3].node.crash()
    ens.servers[4].node.crash()
    cli = ZKClient(cnode, ens.endpoints, prefer=ens.endpoints[0])

    def main():
        yield from cli.create("/still-works")
        return (yield from cli.exists("/still-works"))

    assert run(cluster, cnode, main()) is not None


def test_observers_give_read_scaling_without_write_penalty():
    """The punchline: 3 voters + 5 observers reads ~like 8 servers but
    writes ~like 3 servers."""

    def measure(n_servers, n_observers):
        cluster = Cluster(seed=42)
        nodes = [cluster.add_node(f"client{i}") for i in range(8)]
        ens = build_ensemble(cluster, nodes, n_servers,
                             n_observers=n_observers)
        cluster.sim.run(until=0.5)  # let observers sync
        procs = 48
        clients = []
        for i in range(procs):
            node = nodes[i % 8]
            prefer = ens.endpoints[i % len(ens.endpoints)]
            clients.append(ZKClient(node, ens.endpoints, prefer=prefer,
                                    name=f"m{n_servers}-{n_observers}-{i}"))

        from repro.workloads.driver import run_phase

        def worker(phase, p):
            cli = clients[p]
            for i in range(15):
                if phase == "create":
                    yield from cli.create(f"/b-{p}-{i}", b"x")
                else:
                    yield from cli.get(f"/b-{p}-{i}")

        nodes_for = [nodes[i % 8] for i in range(procs)]
        w = run_phase(cluster.sim, "create", nodes_for,
                      [worker("create", p) for p in range(procs)], 15)
        r = run_phase(cluster.sim, "get", nodes_for,
                      [worker("get", p) for p in range(procs)], 15)
        return w.throughput, r.throughput

    w8, r8 = measure(8, 0)       # the paper's configuration
    w3o5, r3o5 = measure(3, 5)   # same machine count, 3 voters
    assert w3o5 > 1.15 * w8      # writes faster with a smaller quorum
    assert r3o5 > 0.8 * r8       # reads essentially unchanged
