"""Unit tests for the znode tree (no simulation involved)."""

import pytest

from repro.zk.data import ZnodeStore, split_path, validate_path
from repro.zk.errors import (
    BadArgumentsError,
    BadVersionError,
    NoChildrenForEphemeralsError,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
)


def make_store_with(*paths):
    store = ZnodeStore()
    zxid = 0
    for p in paths:
        zxid += 1
        store.apply_create(p, b"", zxid, float(zxid))
    return store, zxid


# -- path helpers -----------------------------------------------------------

def test_split_path():
    assert split_path("/a/b/c") == ("/a/b", "c")
    assert split_path("/a") == ("/", "a")


@pytest.mark.parametrize("bad", ["a/b", "/a/", "/a//b", "/a/./b", "/a/../b"])
def test_validate_path_rejects(bad):
    with pytest.raises(BadArgumentsError):
        validate_path(bad)


@pytest.mark.parametrize("good", ["/", "/a", "/a/b", "/a-b_c.d/e"])
def test_validate_path_accepts(good):
    validate_path(good)


# -- basic tree ops -----------------------------------------------------------

def test_root_always_exists():
    store = ZnodeStore()
    assert store.exists("/") is not None
    assert store.get_children("/") == []
    assert len(store) == 1


def test_create_get_roundtrip():
    store, zxid = make_store_with("/x")
    data, stat = store.get("/x")
    assert data == b""
    assert stat.czxid == stat.mzxid == zxid
    assert stat.version == 0


def test_create_updates_parent_stat():
    store, _ = make_store_with("/p")
    before = store.exists("/p")
    store.apply_create("/p/c", b"", 5, 5.0)
    after = store.exists("/p")
    assert after.cversion == before.cversion + 1
    assert after.num_children == 1
    assert after.pzxid == 5


def test_children_sorted():
    store, _ = make_store_with("/d", "/d/b", "/d/a", "/d/c")
    assert store.get_children("/d") == ["a", "b", "c"]


def test_get_missing_raises():
    store = ZnodeStore()
    with pytest.raises(NoNodeError):
        store.get("/nope")
    with pytest.raises(NoNodeError):
        store.get_children("/nope")
    assert store.exists("/nope") is None


def test_check_create_validations():
    store, _ = make_store_with("/a")
    with pytest.raises(NodeExistsError):
        store.check_create("/a")
    with pytest.raises(NoNodeError):
        store.check_create("/missing/child")
    assert store.check_create("/a/b") == "/a/b"


def test_check_create_under_ephemeral_rejected():
    store = ZnodeStore()
    store.apply_create("/e", b"", 1, 1.0, ephemeral_owner=42)
    with pytest.raises(NoChildrenForEphemeralsError):
        store.check_create("/e/c")


def test_sequential_create_appends_counter():
    store, _ = make_store_with("/q")
    p1 = store.check_create("/q/item-", sequential=True)
    assert p1 == "/q/item-0000000000"
    store.apply_create(p1, b"", 10, 1.0, sequential=True)
    p2 = store.check_create("/q/item-", sequential=True)
    assert p2 == "/q/item-0000000001"


def test_delete_validations():
    store, _ = make_store_with("/a", "/a/b")
    with pytest.raises(NotEmptyError):
        store.check_delete("/a")
    with pytest.raises(NoNodeError):
        store.check_delete("/zzz")
    with pytest.raises(BadArgumentsError):
        store.check_delete("/")
    store.check_delete("/a/b")  # ok


def test_delete_version_check():
    store, _ = make_store_with("/v")
    store.apply_set_data("/v", b"1", 2, 2.0)
    with pytest.raises(BadVersionError):
        store.check_delete("/v", version=0)
    store.check_delete("/v", version=1)
    store.check_delete("/v", version=-1)


def test_set_data_bumps_version_and_mzxid():
    store, _ = make_store_with("/s")
    store.apply_set_data("/s", b"abc", 7, 3.5)
    data, stat = store.get("/s")
    assert data == b"abc"
    assert stat.version == 1
    assert stat.mzxid == 7
    assert stat.mtime == 3.5
    assert stat.data_length == 3
    # czxid unchanged
    assert stat.czxid != 7


def test_set_version_check():
    store, _ = make_store_with("/s")
    with pytest.raises(BadVersionError):
        store.check_set_data("/s", version=3)
    store.check_set_data("/s", version=0)


def test_delete_updates_parent():
    store, _ = make_store_with("/p", "/p/c")
    store.apply_delete("/p/c", 9)
    stat = store.exists("/p")
    assert stat.num_children == 0
    assert stat.cversion == 2  # one create + one delete
    assert stat.pzxid == 9
    assert len(store) == 2


def test_ephemeral_tracking():
    store = ZnodeStore()
    store.apply_create("/e1", b"", 1, 1.0, ephemeral_owner=7)
    store.apply_create("/e2", b"", 2, 2.0, ephemeral_owner=7)
    assert store.ephemerals[7] == {"/e1", "/e2"}
    store.apply_delete("/e1", 3)
    assert store.ephemerals[7] == {"/e2"}
    store.apply_delete("/e2", 4)
    assert 7 not in store.ephemerals


def test_memory_accounting_grows_and_shrinks():
    store = ZnodeStore()
    base = store.approx_memory_bytes
    store.apply_create("/m", b"x" * 100, 1, 1.0)
    grown = store.approx_memory_bytes
    assert grown > base + 100
    store.apply_delete("/m", 2)
    assert store.approx_memory_bytes == base


def test_memory_accounting_tracks_set_data():
    store, _ = make_store_with("/m")
    before = store.approx_memory_bytes
    store.apply_set_data("/m", b"y" * 50, 2, 2.0)
    assert store.approx_memory_bytes == before + 50


def test_apply_txn_records():
    store = ZnodeStore()
    store.apply(("create", "/t", b"d", 0, False), 1, 1.0)
    store.apply(("set", "/t", b"e"), 2, 2.0)
    assert store.get("/t")[0] == b"e"
    store.apply(("multi", (("create", "/u", b"", 0, False),
                           ("delete", "/t"))), 3, 3.0)
    assert store.exists("/t") is None
    assert store.exists("/u") is not None


def test_apply_inconsistency_is_assertion():
    store = ZnodeStore()
    with pytest.raises(AssertionError):
        store.apply_delete("/ghost", 1)
    with pytest.raises(AssertionError):
        store.apply_set_data("/ghost", b"", 1, 1.0)
    with pytest.raises(AssertionError):
        store.apply_create("/a/b/c", b"", 1, 1.0)  # parent missing


def test_snapshot_roundtrip():
    store, _ = make_store_with("/a", "/a/b", "/c")
    store.apply_set_data("/a/b", b"payload", 10, 4.0)
    store.apply_create("/e", b"", 11, 5.0, ephemeral_owner=3)
    clone = ZnodeStore.from_snapshot(store.snapshot())
    assert clone.fingerprint() == store.fingerprint()
    assert clone.get("/a/b")[0] == b"payload"
    assert clone.ephemerals == store.ephemerals
    assert len(clone) == len(store)
    assert clone.approx_memory_bytes == store.approx_memory_bytes


def test_fingerprint_detects_divergence():
    a, _ = make_store_with("/x")
    b, _ = make_store_with("/x")
    assert a.fingerprint() == b.fingerprint()
    b.apply_set_data("/x", b"diff", 5, 5.0)
    assert a.fingerprint() != b.fingerprint()


def test_walk_paths_depth_first():
    store, _ = make_store_with("/a", "/a/b", "/c")
    assert list(store.walk_paths()) == ["/", "/a", "/a/b", "/c"]
