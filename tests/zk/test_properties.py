"""Property-based tests for the znode store and replica convergence."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.zk.data import ZnodeStore
from repro.zk.errors import ZKError

# Small path alphabet so ops collide often (collisions exercise the
# interesting error paths).
names = st.sampled_from(["a", "b", "c"])
paths = st.lists(names, min_size=1, max_size=3).map(lambda cs: "/" + "/".join(cs))

ops = st.one_of(
    st.tuples(st.just("create"), paths, st.binary(max_size=8)),
    st.tuples(st.just("delete"), paths),
    st.tuples(st.just("set"), paths, st.binary(max_size=8)),
)


class ModelFS:
    """Oracle: dict-of-paths model of the namespace."""

    def __init__(self):
        self.nodes = {"/": b""}

    def parent(self, p):
        return p.rsplit("/", 1)[0] or "/"

    def children(self, p):
        return [q for q in self.nodes
                if q != "/" and self.parent(q) == p]

    def create(self, p, data):
        if p in self.nodes:
            raise KeyError("exists")
        if self.parent(p) not in self.nodes:
            raise KeyError("noparent")
        self.nodes[p] = data

    def delete(self, p):
        if p not in self.nodes or p == "/":
            raise KeyError("missing")
        if self.children(p):
            raise KeyError("children")
        del self.nodes[p]

    def set(self, p, data):
        if p not in self.nodes:
            raise KeyError("missing")
        self.nodes[p] = data


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(ops, max_size=40))
def test_store_matches_dict_model(op_list):
    store = ZnodeStore()
    model = ModelFS()
    zxid = 0
    for op in op_list:
        zxid += 1
        kind = op[0]
        store_err = model_err = None
        try:
            if kind == "create":
                path = store.check_create(op[1])
                store.apply_create(path, op[2], zxid, float(zxid))
            elif kind == "delete":
                store.check_delete(op[1])
                store.apply_delete(op[1], zxid)
            else:
                store.check_set_data(op[1])
                store.apply_set_data(op[1], op[2], zxid, float(zxid))
        except ZKError as e:
            store_err = type(e).__name__
        try:
            if kind == "create":
                model.create(op[1], op[2])
            elif kind == "delete":
                model.delete(op[1])
            else:
                model.set(op[1], op[2])
        except KeyError as e:
            model_err = str(e)
        assert (store_err is None) == (model_err is None), (op, store_err, model_err)
    # Final states agree.
    store_paths = set(store.walk_paths())
    assert store_paths == set(model.nodes)
    for p in model.nodes:
        if p != "/":
            assert store.get(p)[0] == model.nodes[p]


@settings(max_examples=60, deadline=None)
@given(st.lists(ops, min_size=1, max_size=30))
def test_txn_replay_is_deterministic(op_list):
    """Applying the same validated txn log to two replicas converges."""
    leader = ZnodeStore()
    log = []
    zxid = 0
    for op in op_list:
        zxid += 1
        try:
            if op[0] == "create":
                path = leader.check_create(op[1])
                txn = ("create", path, op[2], 0, False)
            elif op[0] == "delete":
                leader.check_delete(op[1])
                txn = ("delete", op[1])
            else:
                leader.check_set_data(op[1])
                txn = ("set", op[1], op[2])
        except ZKError:
            continue
        leader.apply(txn, zxid, float(zxid))
        log.append((zxid, txn))
    replica = ZnodeStore()
    for zxid, txn in log:
        replica.apply(txn, zxid, float(zxid))
    assert replica.fingerprint() == leader.fingerprint()
    assert replica.approx_memory_bytes == leader.approx_memory_bytes


@settings(max_examples=40, deadline=None)
@given(st.lists(ops, min_size=1, max_size=20))
def test_snapshot_restore_after_any_history(op_list):
    store = ZnodeStore()
    zxid = 0
    for op in op_list:
        zxid += 1
        try:
            if op[0] == "create":
                path = store.check_create(op[1])
                store.apply_create(path, op[2], zxid, float(zxid))
            elif op[0] == "delete":
                store.check_delete(op[1])
                store.apply_delete(op[1], zxid)
            else:
                store.check_set_data(op[1])
                store.apply_set_data(op[1], op[2], zxid, float(zxid))
        except ZKError:
            continue
    clone = ZnodeStore.from_snapshot(store.snapshot())
    assert clone.fingerprint() == store.fingerprint()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_replicas_converge_under_concurrent_random_clients(seed):
    """End-to-end: random concurrent writers, all replicas identical after."""
    import random

    from .conftest import ZKHarness

    h = ZKHarness(n_servers=3, seed=seed)
    rng = random.Random(seed)
    clients = [h.client(prefer_index=i % 3) for i in range(4)]

    def worker(cli, rng_seed):
        r = random.Random(rng_seed)
        for _ in range(25):
            p = "/" + "/".join(r.choices("ab", k=r.randint(1, 2)))
            kind = r.choice(["create", "delete", "set"])
            try:
                if kind == "create":
                    yield from cli.create(p, b"d")
                elif kind == "delete":
                    yield from cli.delete(p)
                else:
                    yield from cli.set_data(p, bytes([r.randint(0, 255)]))
            except ZKError:
                pass

    h.run_all(*(worker(c, rng.randint(0, 10**9)) for c in clients))
    h.settle(0.5)
    assert h.ensemble.converged()
