"""ZKClient plumbing: failover rotation, retries, watch plumbing."""

import pytest

from repro.sim import Cluster
from repro.zk import ZKClient
from repro.zk.errors import ConnectionLossError



def test_client_requires_servers():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    with pytest.raises(ValueError):
        ZKClient(node, [])


def test_prefer_must_be_known():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    with pytest.raises(ValueError):
        ZKClient(node, ["zk0"], prefer="zk9")


def test_fail_over_rotates_through_servers():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    cli = ZKClient(node, ["a", "b", "c"], prefer="b")
    assert cli.server == "b"
    cli._fail_over()
    assert cli.server == "c"
    cli._fail_over()
    assert cli.server == "a"
    cli._fail_over()
    assert cli.server == "b"


def test_timeout_without_retries_maps_to_connection_loss(zk3):
    cli = zk3.client(request_timeout=0.2, max_retries=0)
    zk3.ensemble.servers[0].node.crash()  # cli prefers zk0

    def main():
        try:
            yield from cli.get("/x")
        except ConnectionLossError:
            return "loss"

    assert zk3.run(main()) == "loss"


def test_retries_fail_over_to_live_server(zk3):
    cli = zk3.client(prefer_index=1, request_timeout=0.3, max_retries=3)

    def seed():
        yield from cli.create("/alive", b"yes")

    zk3.run(seed())
    zk3.ensemble.servers[1].node.crash()  # the preferred server dies

    def main():
        data, _ = yield from cli.get("/alive")
        return data, cli.server

    data, server = zk3.run(main())
    assert data == b"yes"
    assert server != zk3.ensemble.endpoints[1]


def test_default_watcher_receives_all_events(zk3):
    cli = zk3.client()
    seen = []
    cli.default_watcher = seen.append

    def main():
        yield from cli.create("/w", b"")
        yield from cli.get("/w", watch=True)  # boolean watch, no callback
        yield from cli.set_data("/w", b"x")
        yield zk3.cluster.sim.timeout(0.1)

    zk3.run(main())
    assert [(e.kind, e.path) for e in seen] == [("changed", "/w")]


def test_watch_callback_and_default_watcher_both_fire(zk3):
    cli = zk3.client()
    cb_events, default_events = [], []
    cli.default_watcher = default_events.append

    def main():
        yield from cli.create("/w", b"")
        yield from cli.get("/w", watch=cb_events.append)
        yield from cli.delete("/w")
        yield zk3.cluster.sim.timeout(0.1)

    zk3.run(main())
    assert len(cb_events) == 1
    assert len(default_events) == 1


def test_connect_close_lifecycle(zk3):
    cli = zk3.client()

    def main():
        session = yield from cli.connect()
        assert cli.session == session
        yield from cli.close()
        return cli.session

    assert zk3.run(main()) is None
