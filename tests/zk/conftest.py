"""Shared fixtures for ZooKeeper tests."""

import pytest

from repro.models.params import ZKParams
from repro.sim import Cluster
from repro.zk import ZKClient, build_ensemble


class ZKHarness:
    """A cluster, an ensemble, and helpers to run client coroutines."""

    def __init__(self, n_servers=3, n_nodes=3, seed=0, params=None,
                 static_leader=0, extra_client_nodes=1):
        self.cluster = Cluster(seed=seed)
        self.nodes = [self.cluster.add_node(f"zknode{i}") for i in range(n_nodes)]
        self.client_nodes = [self.cluster.add_node(f"cli{i}")
                             for i in range(extra_client_nodes)]
        self.params = params or ZKParams()
        self.ensemble = build_ensemble(self.cluster, self.nodes, n_servers,
                                       params=self.params,
                                       static_leader=static_leader)
        self._cli_count = 0

    def client(self, prefer_index=0, node=None, **kwargs) -> ZKClient:
        node = node or self.client_nodes[0]
        return ZKClient(node, self.ensemble.endpoints,
                        prefer=self.ensemble.endpoints[prefer_index], **kwargs)

    def run(self, gen, node=None):
        """Drive one client coroutine to completion, return its value."""
        node = node or self.client_nodes[0]
        proc = node.spawn(gen)
        return self.cluster.sim.run(until=proc)

    def run_all(self, *gens):
        procs = [self.client_nodes[0].spawn(g) for g in gens]
        self.cluster.run()
        return [p.value for p in procs]

    def settle(self, duration=1.0):
        self.cluster.sim.run(until=self.cluster.sim.now + duration)


@pytest.fixture
def zk3():
    return ZKHarness(n_servers=3)


@pytest.fixture
def zk1():
    return ZKHarness(n_servers=1, n_nodes=1)


@pytest.fixture
def zk5_elect():
    params = ZKParams(failure_detection=True)
    h = ZKHarness(n_servers=5, n_nodes=5, params=params, static_leader=None)
    return h
