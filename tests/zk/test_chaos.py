"""Chaos: random single-server crash/recover cycles during writes.

The core ZAB guarantee, stress-tested: every write the client saw succeed
must exist on every live replica afterwards, whatever the failure schedule
(leader or follower, any timing), as long as a quorum survives at each
moment.
"""

import random

import pytest

from repro.models.params import ZKParams
from repro.zk.errors import NodeExistsError, ZKError

from .conftest import ZKHarness
from .test_failures import wait_for_leader


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 7, 23])
def test_acknowledged_writes_survive_random_crashes(seed):
    params = ZKParams(failure_detection=True)
    h = ZKHarness(n_servers=3, n_nodes=3, seed=seed, params=params,
                  static_leader=None)
    wait_for_leader(h)
    cli = h.client(request_timeout=1.5, max_retries=10)
    rng = random.Random(seed)
    acknowledged = []

    def writer():
        for i in range(24):
            try:
                yield from cli.create(f"/chaos-{i}", b"v")
                acknowledged.append(i)
            except NodeExistsError:
                # A retried create whose first attempt landed: it exists,
                # so it still counts as acknowledged.
                acknowledged.append(i)
            except ZKError:
                pass  # unacknowledged; may or may not exist
            yield h.cluster.sim.timeout(0.05)

    def chaos():
        for _ in range(3):
            yield h.cluster.sim.timeout(rng.uniform(0.2, 0.5))
            victim = rng.choice(h.ensemble.servers)
            if victim.node.down:
                continue
            victim.node.crash()
            yield h.cluster.sim.timeout(rng.uniform(0.8, 1.5))
            victim.node.recover()

    w = h.client_nodes[0].spawn(writer())
    c = h.client_nodes[0].spawn(chaos())
    h.cluster.sim.run(until=h.cluster.sim.now + 20.0)
    assert w.triggered and c.triggered
    h.settle(5.0)

    live = [s for s in h.ensemble.servers if not s.node.down]
    assert len(live) == 3
    assert len(acknowledged) >= 12, "chaos starved the writer entirely"
    for s in live:
        for i in acknowledged:
            assert s.store.exists(f"/chaos-{i}") is not None, \
                (seed, s.sid, i)
    assert h.ensemble.converged()
