"""zoo_sync semantics and session liveness / ephemeral expiry."""


from repro.models.params import ZKParams

from .conftest import ZKHarness


def test_sync_returns_commit_index(zk3):
    cli = zk3.client(prefer_index=1)

    def main():
        yield from cli.create("/s1")
        yield from cli.create("/s2")
        idx = yield from cli.sync()
        return idx

    idx = zk3.run(main())
    assert idx >= 2


def test_sync_gives_read_your_writes_across_servers(zk3):
    """Write via server 1, sync server 2, then read from server 2 — the
    write must be visible (the guarantee plain reads don't carry)."""
    writer = zk3.client(prefer_index=1)
    reader = zk3.client(prefer_index=2)

    def main():
        yield from writer.create("/ryw", b"v")
        yield from reader.sync()
        data, _ = yield from reader.get("/ryw")
        return data

    assert zk3.run(main()) == b"v"


def test_sync_on_leader_is_trivial(zk3):
    cli = zk3.client(prefer_index=0)  # the static leader

    def main():
        yield from cli.create("/x")
        return (yield from cli.sync())

    assert zk3.run(main()) >= 1


def test_session_expiry_deletes_ephemerals():
    params = ZKParams(session_tracking=True, session_timeout=0.5)
    h = ZKHarness(n_servers=3, params=params)
    cli = h.client()

    def main():
        yield from cli.connect()
        yield from cli.create("/eph", b"", ephemeral=True)
        yield from cli.create("/perm", b"")

    h.run(main())
    # No keepalive running -> the session times out and /eph vanishes.
    h.settle(2.0)
    store = h.ensemble.servers[0].store
    assert store.exists("/eph") is None
    assert store.exists("/perm") is not None


def test_keepalive_preserves_session():
    params = ZKParams(session_tracking=True, session_timeout=0.5)
    h = ZKHarness(n_servers=3, params=params)
    cli = h.client()

    def main():
        yield from cli.connect()
        yield from cli.create("/eph", b"", ephemeral=True)

    h.run(main())
    h.client_nodes[0].spawn(cli.keepalive(interval=0.1))
    h.settle(2.0)
    assert h.ensemble.servers[0].store.exists("/eph") is not None


def test_client_node_crash_expires_session_eventually():
    """The ephemeral-cleanup story end to end: the client machine dies,
    its heartbeats stop, the server reclaims the ephemerals."""
    params = ZKParams(session_tracking=True, session_timeout=0.5)
    h = ZKHarness(n_servers=3, params=params, extra_client_nodes=2)
    cli = h.client(node=h.client_nodes[1])

    def main():
        yield from cli.connect()
        yield from cli.create("/lock", b"holder=1", ephemeral=True)

    proc = h.client_nodes[1].spawn(main())
    h.cluster.sim.run(until=proc)
    h.client_nodes[1].spawn(cli.keepalive(interval=0.1))
    h.settle(1.0)
    assert h.ensemble.servers[0].store.exists("/lock") is not None
    h.client_nodes[1].crash()  # heartbeats die with the node
    h.settle(2.0)
    assert h.ensemble.servers[0].store.exists("/lock") is None
