"""Watch semantics: one-shot notifications on data/child/existence changes."""

from repro.models.params import ZKParams

from .conftest import ZKHarness


def test_data_watch_fires_on_set(zk3):
    cli = zk3.client()
    events = []

    def main():
        yield from cli.create("/w", b"0")
        yield from cli.get("/w", watch=events.append)
        yield from cli.set_data("/w", b"1")
        yield zk3.cluster.sim.timeout(0.05)

    zk3.run(main())
    assert [(e.kind, e.path) for e in events] == [("changed", "/w")]


def test_data_watch_fires_on_delete(zk3):
    cli = zk3.client()
    events = []

    def main():
        yield from cli.create("/w", b"0")
        yield from cli.get("/w", watch=events.append)
        yield from cli.delete("/w")
        yield zk3.cluster.sim.timeout(0.05)

    zk3.run(main())
    assert [(e.kind, e.path) for e in events] == [("deleted", "/w")]


def test_watch_is_one_shot(zk3):
    cli = zk3.client()
    events = []

    def main():
        yield from cli.create("/w", b"0")
        yield from cli.get("/w", watch=events.append)
        yield from cli.set_data("/w", b"1")
        yield from cli.set_data("/w", b"2")  # no watch registered anymore
        yield zk3.cluster.sim.timeout(0.05)

    zk3.run(main())
    assert len(events) == 1


def test_exists_watch_fires_on_create(zk3):
    cli = zk3.client()
    events = []

    def main():
        st = yield from cli.exists("/future", watch=events.append)
        assert st is None
        yield from cli.create("/future")
        yield zk3.cluster.sim.timeout(0.05)

    zk3.run(main())
    assert [(e.kind, e.path) for e in events] == [("created", "/future")]


def test_child_watch_fires_on_child_create_and_delete(zk3):
    cli = zk3.client()
    events = []

    def main():
        yield from cli.create("/p")
        yield from cli.get_children("/p", watch=events.append)
        yield from cli.create("/p/c")
        yield zk3.cluster.sim.timeout(0.05)
        yield from cli.get_children("/p", watch=events.append)
        yield from cli.delete("/p/c")
        yield zk3.cluster.sim.timeout(0.05)

    zk3.run(main())
    assert [(e.kind, e.path) for e in events] == [("child", "/p"), ("child", "/p")]


def test_watch_fires_for_writes_from_other_client(zk3):
    watcher = zk3.client(prefer_index=1)
    writer = zk3.client(prefer_index=2)
    events = []

    def w():
        yield from watcher.create("/shared", b"")
        yield from watcher.get("/shared", watch=events.append)
        yield zk3.cluster.sim.timeout(0.5)

    def m():
        yield zk3.cluster.sim.timeout(0.1)
        yield from writer.set_data("/shared", b"remote")

    zk3.run_all(w(), m())
    assert [(e.kind, e.path) for e in events] == [("changed", "/shared")]


def test_watch_on_read_error_not_registered(zk3):
    from repro.zk.errors import NoNodeError
    cli = zk3.client()
    events = []

    def main():
        try:
            yield from cli.get("/missing", watch=events.append)
        except NoNodeError:
            pass
        yield from cli.create("/missing")
        yield zk3.cluster.sim.timeout(0.05)

    zk3.run(main())
    assert events == []  # get() on a missing node registers nothing


def test_watch_delivered_after_triggering_write_is_visible(zk3):
    """Ordering: when the watch callback runs, a read through the watching
    client already observes the new state — the server notifies only after
    applying the committed txn, so a cache invalidated by the event can
    never refill with the pre-write value."""
    watcher = zk3.client(prefer_index=1)
    writer = zk3.client(prefer_index=2)
    seen = []

    def on_event(event):
        def check():
            data, _ = yield from watcher.get(event.path)
            seen.append(data)
        zk3.client_nodes[0].spawn(check())

    def w():
        yield from watcher.create("/ord", b"old")
        yield from watcher.get("/ord", watch=on_event)
        yield zk3.cluster.sim.timeout(0.5)

    def m():
        yield zk3.cluster.sim.timeout(0.1)
        yield from writer.set_data("/ord", b"new")

    zk3.run_all(w(), m())
    assert seen == [b"new"]


def test_server_crash_drops_watches_and_notifies_loss():
    """A crashed server loses its watch tables: the pending watch never
    fires, the client's fail-over raises the watch-loss hook, and a watch
    re-registered at the live server works. This is the contract the
    client metadata cache's flush-on-failover relies on."""
    h = ZKHarness(n_servers=3, extra_client_nodes=1)
    cli = h.client(prefer_index=1, request_timeout=0.3, max_retries=5)
    losses, ev1, ev2 = [], [], []
    cli.watch_loss_listeners.append(losses.append)

    def part1():
        yield from cli.create("/w", b"0")
        yield from cli.get("/w", watch=ev1.append)
        h.ensemble.servers[1].node.crash()
        # This write times out at the dead server and fails over.
        yield from cli.set_data("/w", b"1")
        yield h.cluster.sim.timeout(0.3)

    h.run(part1())
    assert "failover" in losses
    assert ev1 == []            # the crash silently dropped the watch

    def part2():
        yield from cli.get("/w", watch=ev2.append)   # re-register, live srv
        yield from cli.set_data("/w", b"2")
        yield h.cluster.sim.timeout(0.3)

    h.run(part2())
    assert [(e.kind, e.path) for e in ev2] == [("changed", "/w")]


def test_watch_reregistration_after_session_reestablishment():
    """An expired session is transparently re-established by the client;
    the watch-loss hook reports it, and a watch registered afterwards
    fires normally."""
    params = ZKParams(session_tracking=True, session_timeout=0.4)
    h = ZKHarness(n_servers=3, params=params)
    cli = h.client()
    losses, events = [], []
    cli.watch_loss_listeners.append(losses.append)

    def part1():
        yield from cli.connect()
        yield from cli.create("/w", b"0")

    h.run(part1())
    old_session = cli.session
    h.settle(1.0)               # no keepalive -> server expires the session

    def part2():
        # The ephemeral create bounces with SessionExpired; the client
        # reconnects, notifies watch loss, rebinds and retries.
        yield from cli.create("/eph", b"", ephemeral=True)
        yield from cli.get("/w", watch=events.append)
        yield from cli.set_data("/w", b"1")
        yield h.cluster.sim.timeout(0.1)

    h.run(part2())
    assert losses == ["session"]
    assert cli.session != old_session
    assert [(e.kind, e.path) for e in events] == [("changed", "/w")]
