"""Watch semantics: one-shot notifications on data/child/existence changes."""


def test_data_watch_fires_on_set(zk3):
    cli = zk3.client()
    events = []

    def main():
        yield from cli.create("/w", b"0")
        yield from cli.get("/w", watch=events.append)
        yield from cli.set_data("/w", b"1")
        yield zk3.cluster.sim.timeout(0.05)

    zk3.run(main())
    assert [(e.kind, e.path) for e in events] == [("changed", "/w")]


def test_data_watch_fires_on_delete(zk3):
    cli = zk3.client()
    events = []

    def main():
        yield from cli.create("/w", b"0")
        yield from cli.get("/w", watch=events.append)
        yield from cli.delete("/w")
        yield zk3.cluster.sim.timeout(0.05)

    zk3.run(main())
    assert [(e.kind, e.path) for e in events] == [("deleted", "/w")]


def test_watch_is_one_shot(zk3):
    cli = zk3.client()
    events = []

    def main():
        yield from cli.create("/w", b"0")
        yield from cli.get("/w", watch=events.append)
        yield from cli.set_data("/w", b"1")
        yield from cli.set_data("/w", b"2")  # no watch registered anymore
        yield zk3.cluster.sim.timeout(0.05)

    zk3.run(main())
    assert len(events) == 1


def test_exists_watch_fires_on_create(zk3):
    cli = zk3.client()
    events = []

    def main():
        st = yield from cli.exists("/future", watch=events.append)
        assert st is None
        yield from cli.create("/future")
        yield zk3.cluster.sim.timeout(0.05)

    zk3.run(main())
    assert [(e.kind, e.path) for e in events] == [("created", "/future")]


def test_child_watch_fires_on_child_create_and_delete(zk3):
    cli = zk3.client()
    events = []

    def main():
        yield from cli.create("/p")
        yield from cli.get_children("/p", watch=events.append)
        yield from cli.create("/p/c")
        yield zk3.cluster.sim.timeout(0.05)
        yield from cli.get_children("/p", watch=events.append)
        yield from cli.delete("/p/c")
        yield zk3.cluster.sim.timeout(0.05)

    zk3.run(main())
    assert [(e.kind, e.path) for e in events] == [("child", "/p"), ("child", "/p")]


def test_watch_fires_for_writes_from_other_client(zk3):
    watcher = zk3.client(prefer_index=1)
    writer = zk3.client(prefer_index=2)
    events = []

    def w():
        yield from watcher.create("/shared", b"")
        yield from watcher.get("/shared", watch=events.append)
        yield zk3.cluster.sim.timeout(0.5)

    def m():
        yield zk3.cluster.sim.timeout(0.1)
        yield from writer.set_data("/shared", b"remote")

    zk3.run_all(w(), m())
    assert [(e.kind, e.path) for e in events] == [("changed", "/shared")]


def test_watch_on_read_error_not_registered(zk3):
    from repro.zk.errors import NoNodeError
    cli = zk3.client()
    events = []

    def main():
        try:
            yield from cli.get("/missing", watch=events.append)
        except NoNodeError:
            pass
        yield from cli.create("/missing")
        yield zk3.cluster.sim.timeout(0.05)

    zk3.run(main())
    assert events == []  # get() on a missing node registers nothing
