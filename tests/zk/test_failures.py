"""Reliability: crashes, recovery, elections, quorum loss, partitions.

These exercise the paper's claim #3 — that a coordination-service-based
metadata layer maintains consistency and availability through failures
(as long as a majority of servers survives).
"""


from repro.models.params import ZKParams
from repro.zk.errors import ConnectionLossError

from .conftest import ZKHarness


def elect_harness(n=3, seed=0):
    params = ZKParams(failure_detection=True)
    return ZKHarness(n_servers=n, n_nodes=n, seed=seed, params=params,
                     static_leader=None)


def wait_for_leader(h, timeout=5.0):
    sim = h.cluster.sim
    deadline = sim.now + timeout
    while sim.now < deadline:
        sim.run(until=min(sim.now + 0.1, deadline))
        leaders = [s for s in h.ensemble.servers
                   if s.role == "leading" and s.activated and not s.node.down]
        if leaders:
            return leaders
    return [s for s in h.ensemble.servers
            if s.role == "leading" and s.activated and not s.node.down]


def test_initial_election_converges():
    h = elect_harness(3)
    leaders = wait_for_leader(h)
    assert len(leaders) == 1
    followers = [s for s in h.ensemble.servers if s.role == "following"]
    assert len(followers) == 2
    assert all(f.leader_sid == leaders[0].sid for f in followers)


def test_election_picks_highest_zxid():
    """A server with more logged history must win."""
    h = elect_harness(3)
    # Seed server 0 with a longer log before anyone votes... easiest:
    # let the ensemble elect, write, crash the leader, and check the
    # replacement has everything (next test does that). Here instead we
    # verify the (zxid, sid) tiebreak: with empty logs the highest sid wins.
    leaders = wait_for_leader(h)
    assert leaders[0].sid == 2


def test_writes_work_after_election():
    h = elect_harness(3)
    wait_for_leader(h)
    cli = h.client(prefer_index=0, request_timeout=2.0, max_retries=3)

    def main():
        yield from cli.create("/post-election", b"ok")
        return (yield from cli.get("/post-election"))

    data, _ = h.run(main())
    assert data == b"ok"


def test_leader_crash_failover_preserves_committed_writes():
    h = elect_harness(5, seed=3)
    wait_for_leader(h)
    cli = h.client(prefer_index=0, request_timeout=2.0, max_retries=8)

    def phase1():
        for i in range(5):
            yield from cli.create(f"/pre{i}", b"x")

    h.run(phase1())
    old_leader = next(s for s in h.ensemble.servers if s.role == "leading")
    old_leader.node.crash()

    leaders = wait_for_leader(h, timeout=10.0)
    assert len(leaders) == 1
    assert leaders[0].sid != old_leader.sid
    # All committed writes survive on the new leader.
    for i in range(5):
        assert leaders[0].store.exists(f"/pre{i}") is not None

    def phase2():
        yield from cli.create("/post", b"y")
        return (yield from cli.get("/post"))

    data, _ = h.run(phase2())
    assert data == b"y"


def test_crashed_follower_recovers_and_catches_up():
    h = elect_harness(3, seed=1)
    wait_for_leader(h)
    cli = h.client(request_timeout=2.0, max_retries=5)
    victim = next(s for s in h.ensemble.servers if s.role == "following")
    victim.node.crash()

    def writes():
        for i in range(8):
            yield from cli.create(f"/during{i}", b"")

    h.run(writes())
    victim.node.recover()
    h.settle(3.0)
    assert victim.role == "following"
    for i in range(8):
        assert victim.store.exists(f"/during{i}") is not None
    assert h.ensemble.converged()


def test_minority_partition_cannot_commit():
    h = elect_harness(3, seed=5)
    wait_for_leader(h)
    leader = next(s for s in h.ensemble.servers if s.role == "leading")
    # Partition the leader alone.
    others = [s.node.name for s in h.ensemble.servers if s is not leader]
    h.cluster.network.partition([[leader.node.name,
                                  h.client_nodes[0].name], others])
    cli = h.client(prefer_index=leader.sid, request_timeout=1.0, max_retries=0)

    def try_write():
        try:
            yield from cli.create("/lost", b"")
            return "committed"
        except ConnectionLossError:
            return "refused"

    assert h.run(try_write()) == "refused"
    # The isolated leader must never have applied the write.
    assert leader.store.exists("/lost") is None


def test_majority_side_elects_new_leader_and_heals():
    h = elect_harness(5, seed=7)
    wait_for_leader(h)
    old = next(s for s in h.ensemble.servers if s.role == "leading")
    majority = [s.node.name for s in h.ensemble.servers if s is not old]
    h.cluster.network.partition(
        [[old.node.name], majority + [h.client_nodes[0].name]])
    h.settle(3.0)
    leaders = [s for s in h.ensemble.servers
               if s.role == "leading" and s.activated and s.sid != old.sid]
    assert len(leaders) == 1
    cli = h.client(prefer_index=leaders[0].sid, request_timeout=2.0,
                   max_retries=5)

    def write():
        yield from cli.create("/healed", b"")

    h.run(write())
    # Heal: the old leader rejoins as a follower and converges.
    h.cluster.network.heal()
    h.settle(4.0)
    assert old.role != "leading"
    assert old.store.exists("/healed") is not None


def test_full_restart_from_checkpoint():
    """Paper §IV-I: all servers can fail and restart from disk state."""
    h = ZKHarness(n_servers=3)  # static roles
    cli = h.client()

    def writes():
        for i in range(6):
            yield from cli.create(f"/persist{i}", bytes([i]))

    h.run(writes())
    h.settle(0.2)
    for s in h.ensemble.servers:
        s.checkpoint()
    # Snapshot + truncated log is enough to rebuild the full tree.
    for s in h.ensemble.servers:
        s._on_crash()
        s._rebuild_from_disk()
        for i in range(6):
            assert s.store.exists(f"/persist{i}") is not None, (s.sid, i)


def test_checkpointed_leader_can_sync_fresh_follower():
    h = elect_harness(3, seed=11)
    wait_for_leader(h)
    cli = h.client(request_timeout=2.0, max_retries=5)

    def writes(a, b):
        for i in range(a, b):
            yield from cli.create(f"/ck{i}", b"")

    h.run(writes(0, 5))
    h.settle(0.5)
    victim = next(s for s in h.ensemble.servers if s.role == "following")
    victim.node.crash()
    h.run(writes(5, 10))
    leader = next(s for s in h.ensemble.servers
                  if s.role == "leading" and not s.node.down)
    leader.checkpoint()  # truncates the log the victim would need
    victim.node.recover()
    h.settle(3.0)
    for i in range(10):
        assert victim.store.exists(f"/ck{i}") is not None, i
    assert h.ensemble.converged()


def test_static_mode_follower_recovery():
    h = ZKHarness(n_servers=3, seed=2)
    cli = h.client(request_timeout=2.0, max_retries=5)
    victim = h.ensemble.servers[2]
    victim.node.crash()

    def writes():
        for i in range(4):
            yield from cli.create(f"/s{i}", b"")

    h.run(writes())
    victim.node.recover()
    h.settle(2.0)
    for i in range(4):
        assert victim.store.exists(f"/s{i}") is not None
