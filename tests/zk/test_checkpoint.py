"""Checkpointing: explicit and automatic snapshot + log truncation
(paper §IV-I: "although each ZooKeeper server keeps all its data in
memory, it is periodically checkpointed on disk")."""


from repro.models.params import ZKParams

from .conftest import ZKHarness


def test_explicit_checkpoint_truncates_log(zk3):
    cli = zk3.client()

    def writes():
        for i in range(10):
            yield from cli.create(f"/c{i}")

    zk3.run(writes())
    zk3.settle(0.2)
    leader = zk3.ensemble.servers[0]
    assert len(leader.log) == 10
    leader.checkpoint()
    assert len(leader.log) == 0
    assert leader._snapshot_zxid == leader.commit_index
    # The tree is intact and rebuilds from the snapshot.
    leader._on_crash()
    leader._rebuild_from_disk()
    for i in range(10):
        assert leader.store.exists(f"/c{i}") is not None


def test_auto_checkpoint_loop_truncates_periodically():
    params = ZKParams(checkpoint_interval=0.5)
    h = ZKHarness(n_servers=3, params=params)
    cli = h.client()

    def writes():
        for i in range(20):
            yield from cli.create(f"/a{i}")

    h.run(writes())
    before = [len(s.log) for s in h.ensemble.servers]
    h.settle(1.5)  # at least one checkpoint tick on every server
    after = [len(s.log) for s in h.ensemble.servers]
    assert all(a < b for a, b in zip(after, before)), (before, after)
    for s in h.ensemble.servers:
        assert s._snapshot is not None
        assert s._snapshot_zxid > 0


def test_writes_survive_auto_checkpoint_plus_crash():
    params = ZKParams(checkpoint_interval=0.3)
    h = ZKHarness(n_servers=3, params=params, seed=4)
    cli = h.client(request_timeout=2.0, max_retries=5)

    def phase(a, b):
        def gen():
            for i in range(a, b):
                yield from cli.create(f"/p{i}")
        return gen()

    h.run(phase(0, 8))
    h.settle(0.8)  # checkpoint happens
    victim = h.ensemble.servers[1]
    victim.node.crash()
    h.run(phase(8, 16))
    victim.node.recover()
    h.settle(2.0)
    for i in range(16):
        assert victim.store.exists(f"/p{i}") is not None, i
    assert h.ensemble.converged()
