"""Election edge cases: observers, partitions during votes, rejoins."""


import pytest

from repro.models.params import ZKParams
from repro.sim import Cluster
from repro.zk import build_ensemble
from repro.zk.election import vote_order

from .test_failures import elect_harness, wait_for_leader


def test_vote_order_prefers_zxid_then_sid():
    assert vote_order(10, 0) > vote_order(9, 5)
    assert vote_order(10, 5) > vote_order(10, 0)


def test_observer_never_becomes_leader_through_failures():
    params = ZKParams(failure_detection=True)
    cluster = Cluster(seed=9)
    nodes = [cluster.add_node(f"n{i}") for i in range(5)]
    cluster.add_node("cli")
    ens = build_ensemble(cluster, nodes, 3, params=params,
                         static_leader=None, n_observers=2)
    # Let the voters elect.
    cluster.sim.run(until=3.0)
    leaders = [s for s in ens.servers if s.role == "leading"]
    assert len(leaders) == 1 and not leaders[0].observer
    # Crash the leader; the replacement must again be a voter.
    leaders[0].node.crash()
    cluster.sim.run(until=cluster.sim.now + 5.0)
    leaders = [s for s in ens.servers
               if s.role == "leading" and not s.node.down]
    assert len(leaders) == 1
    assert not leaders[0].observer


def test_partition_during_election_resolves_after_heal():
    h = elect_harness(5, seed=21)
    # Partition BEFORE any leader exists: 2-node side can never elect.
    hosts = [s.node.name for s in h.ensemble.servers]
    h.cluster.network.partition([hosts[:2],
                                 hosts[2:] + [h.client_nodes[0].name]])
    h.settle(3.0)
    minority_leaders = [s for s in h.ensemble.servers[:2]
                        if s.role == "leading" and s.activated]
    assert not minority_leaders
    majority_leaders = [s for s in h.ensemble.servers[2:]
                        if s.role == "leading" and s.activated]
    assert len(majority_leaders) == 1
    # Heal: the stranded pair joins the established leader.
    h.cluster.network.heal()
    h.settle(4.0)
    assert all(s.role == "following" for s in h.ensemble.servers[:2])
    assert all(s.leader_sid == majority_leaders[0].sid
               for s in h.ensemble.servers[:2])


@pytest.mark.slow
def test_two_crash_recover_cycles_preserve_data():
    h = elect_harness(3, seed=33)
    wait_for_leader(h)
    cli = h.client(request_timeout=2.0, max_retries=8)

    def write(tag):
        def gen():
            yield from cli.create(f"/cycle-{tag}", b"")
        return gen()

    h.run(write("a"))
    for cycle in range(2):
        leader = next(s for s in h.ensemble.servers
                      if s.role == "leading" and not s.node.down)
        leader.node.crash()
        wait_for_leader(h, timeout=8.0)
        h.run(write(f"b{cycle}"))
        leader.node.recover()
        h.settle(3.0)
    h.settle(2.0)
    live = [s for s in h.ensemble.servers if not s.node.down]
    assert len(live) == 3
    for s in live:
        for tag in ("a", "b0", "b1"):
            assert s.store.exists(f"/cycle-{tag}") is not None, (s.sid, tag)
    assert h.ensemble.converged()
