"""RpcTimeout plumbing: late replies, recycled waiters, client tracing."""

import pytest

from repro.sim import Cluster, RpcAgent, RpcTimeout
from repro.svc import TraceBus, instrument_client


def build_pair():
    cluster = Cluster(seed=1)
    server_node = cluster.add_node("server", cores=2)
    client_node = cluster.add_node("client", cores=2)
    server = RpcAgent(server_node, "svc")
    client = RpcAgent(client_node, "cli")
    return cluster, server_node, client_node, server, client


def test_handler_outliving_caller_deadline_times_out_caller():
    cluster, snode, cnode, server, client = build_pair()
    finished = []

    def slow(src, args):
        yield cluster.sim.timeout(1.0)
        finished.append(cluster.sim.now)
        return "late"

    server.register("slow", slow)
    log = []

    def caller():
        try:
            yield from client.call("svc", "slow",
                                   deadline=cluster.sim.now + 0.1)
        except RpcTimeout:
            log.append(cluster.sim.now)

    cnode.spawn(caller())
    cluster.run()
    assert log == [pytest.approx(0.1)]
    # Raw RpcAgent handlers have no kernel to cancel them: the handler
    # runs to completion, but its reply goes nowhere.
    assert len(finished) == 1


def test_late_response_is_discarded_not_misdelivered():
    """After a timeout the rpc_id's waiter is gone; the late ``_Response``
    must be dropped, never delivered to a newer call's waiter."""
    cluster, snode, cnode, server, client = build_pair()

    def slow(src, args):
        yield cluster.sim.timeout(1.0)
        return "stale"

    def fast(src, args):
        yield cluster.sim.timeout(0.01)
        return "fresh"

    server.register("slow", slow)
    server.register("fast", fast)
    results = []

    def caller():
        try:
            yield from client.call("svc", "slow", timeout=0.1)
        except RpcTimeout:
            results.append("timeout")
        # Immediately reuse the agent while the stale reply is in flight.
        value = yield from client.call("svc", "fast", timeout=5.0)
        results.append(value)
        yield cluster.sim.timeout(2.0)     # let the stale reply land

    proc = cnode.spawn(caller())
    cluster.run()
    assert proc.ok
    assert results == ["timeout", "fresh"]
    assert client._pending == {}           # no leaked waiters either


def test_timeout_leaves_no_pending_waiter():
    cluster, snode, cnode, server, client = build_pair()

    def slow(src, args):
        yield cluster.sim.timeout(3.0)

    server.register("slow", slow)

    def caller():
        with pytest.raises(RpcTimeout):
            yield from client.call("svc", "slow", timeout=0.05)
        assert client._pending == {}

    cluster.sim.run(until=cnode.spawn(caller()))


def test_instrumented_client_counts_timeout_retry_not_success():
    """An op that times out once and retries must trace as ONE op with
    one retry — the timed-out attempt is never recorded as a success."""
    cluster, snode, cnode, server, client = build_pair()

    def slow_then_any(src, args):
        yield cluster.sim.timeout(0.5)
        return "pong"

    server.register("ping", slow_then_any)
    bus = TraceBus()

    class Lib:
        def __init__(self, node, agent):
            self.sim = node.sim
            self.agent = agent
            self.last_retries = 0

        def ping(self):
            self.last_retries = 0
            for attempt in range(2):
                try:                       # first attempt cannot finish
                    timeout = 0.1 if attempt == 0 else 5.0
                    result = yield from self.agent.call("svc", "ping",
                                                        timeout=timeout)
                    return result
                except RpcTimeout:
                    self.last_retries += 1
            raise RpcTimeout("ping", "svc", 0.1)

    lib = Lib(cnode, client)
    instrument_client(lib, ("ping",), bus, deployment="t", endpoint="c0",
                      retries_of=lambda: lib.last_retries)

    def caller():
        return (yield from lib.ping())

    assert cluster.sim.run(until=cnode.spawn(caller())) == "pong"
    key = "t/c0.ping"
    assert bus.ops.get(key) == 1           # one logical op, not two
    assert bus.retries.get(key) == 1       # the timed-out attempt
    assert bus.errors.get(key) in (None, 0)
