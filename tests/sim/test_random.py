"""Named deterministic random streams."""


from repro.sim import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(7).stream("x").random()
    b = RandomStreams(7).stream("x").random()
    assert a == b


def test_different_names_independent():
    rs = RandomStreams(7)
    xs = [rs.stream("a").random() for _ in range(5)]
    # Drawing from "b" must not perturb "a"'s sequence.
    rs2 = RandomStreams(7)
    ys = []
    for i in range(5):
        rs2.stream("b").random()
        ys.append(rs2.stream("a").random())
    assert xs == ys


def test_stream_cached_not_reseeded():
    rs = RandomStreams(1)
    s1 = rs.stream("s")
    s2 = rs.stream("s")
    assert s1 is s2
    a, b = s1.random(), s2.random()
    assert a != b  # sequential draws, not a reset


def test_uniform_bounds():
    rs = RandomStreams(3)
    for _ in range(100):
        v = rs.uniform("u", 2.0, 5.0)
        assert 2.0 <= v <= 5.0


def test_expovariate_positive():
    rs = RandomStreams(3)
    assert all(rs.expovariate("e", 100.0) > 0 for _ in range(50))


def test_jitter_zero_cv_is_exact():
    rs = RandomStreams(3)
    assert rs.jitter("j", 0.01, cv=0.0) == 0.01


def test_jitter_bounded_and_positive():
    rs = RandomStreams(3)
    mean = 1e-3
    vals = [rs.jitter("j", mean, cv=0.2) for _ in range(300)]
    assert all(v > 0 for v in vals)
    assert min(vals) >= mean * (1 - 1.7 * 0.2) - 1e-12
    assert max(vals) <= mean * (1 + 1.7 * 0.2) + 1e-12
    avg = sum(vals) / len(vals)
    assert abs(avg - mean) / mean < 0.1
