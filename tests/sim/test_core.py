"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()
    done = []

    def proc():
        yield sim.timeout(1.5)
        done.append(sim.now)
        yield sim.timeout(0.5)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [1.5, 2.0]


def test_timeout_value_passed_to_process():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(1.0, value="tick")
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["tick"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_zero_delay_fires_in_fifo_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(0)
        order.append(tag)

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.process(proc("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_resumes_waiter():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        got.append((yield ev))

    def trigger():
        yield sim.timeout(3)
        ev.succeed(42)

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert got == [42]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield sim.timeout(1)
        ev.fail(RuntimeError("boom"))

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert caught == ["boom"]


def test_double_trigger_is_error():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_unhandled_failure_propagates_in_strict_mode():
    sim = Simulator(strict=True)

    def bad():
        yield sim.timeout(1)
        raise ValueError("kaput")

    sim.process(bad())
    with pytest.raises(ValueError, match="kaput"):
        sim.run()


def test_nonstrict_mode_records_failure_on_process_event():
    sim = Simulator(strict=False)

    def bad():
        yield sim.timeout(1)
        raise ValueError("kaput")

    proc = sim.process(bad())
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, ValueError)


def test_process_return_value():
    sim = Simulator()

    def inner():
        yield sim.timeout(2)
        return "result"

    def outer(results):
        value = yield sim.process(inner())
        results.append(value)

    results = []
    sim.process(outer(results))
    sim.run()
    assert results == ["result"]


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(5)
        return 99

    p = sim.process(proc())
    assert sim.run(until=p) == 99
    assert sim.now == 5


def test_run_until_timeout_event_waits_for_fire():
    sim = Simulator()
    sim.run(until=sim.timeout(7))
    assert sim.now == 7


def test_run_until_deadline_stops_clock_exactly():
    sim = Simulator()
    ticks = []

    def clock():
        while True:
            yield sim.timeout(1)
            ticks.append(sim.now)

    sim.process(clock())
    sim.run(until=3.5)
    assert ticks == [1, 2, 3]
    assert sim.now == 3.5


def test_run_until_past_deadline_rejected():
    sim = Simulator()
    sim.run(until=2.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_run_until_event_starved_schedule_is_error():
    sim = Simulator()
    ev = sim.event()  # nobody will ever trigger it
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_yield_non_event_fails_process():
    sim = Simulator(strict=False)

    def bad():
        yield 42  # type: ignore[misc]

    proc = sim.process(bad())
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    got = []

    def proc():
        yield sim.timeout(1)  # ensure ev is processed by now
        got.append((yield ev))
        got.append(sim.now)

    sim.process(proc())
    sim.run()
    assert got == ["early", 1]


def test_interrupt_raises_in_process():
    sim = Simulator()
    seen = []

    def victim():
        try:
            yield sim.timeout(100)
        except Interrupt as i:
            seen.append((i.cause, sim.now))

    def attacker(p):
        yield sim.timeout(2)
        p.interrupt("die")

    p = sim.process(victim())
    sim.process(attacker(p))
    sim.run()
    assert seen == [("die", 2)]


def test_interrupt_then_original_event_does_not_double_resume():
    sim = Simulator()
    resumed = []

    def victim():
        try:
            yield sim.timeout(5)
            resumed.append("timeout")
        except Interrupt:
            resumed.append("interrupt")
            yield sim.timeout(100)
            resumed.append("after")

    def attacker(p):
        yield sim.timeout(1)
        p.interrupt()

    p = sim.process(victim())
    sim.process(attacker(p))
    sim.run(until=50)
    assert resumed == ["interrupt"]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    p.interrupt()  # must not raise
    sim.run()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    done = []

    def proc():
        t1, t2 = sim.timeout(2, "a"), sim.timeout(5, "b")
        result = yield AllOf(sim, (t1, t2))
        done.append((sim.now, sorted(result.values())))

    sim.process(proc())
    sim.run()
    assert done == [(5, ["a", "b"])]


def test_any_of_fires_on_first():
    sim = Simulator()
    done = []

    def proc():
        t1, t2 = sim.timeout(2, "fast"), sim.timeout(5, "slow")
        yield AnyOf(sim, (t1, t2))
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [2]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    done = []

    def proc():
        yield AllOf(sim, ())
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [0]


def test_determinism_same_seed_same_trace():
    def build():
        sim = Simulator()
        trace = []

        def worker(k):
            for i in range(3):
                yield sim.timeout(0.5 * (k + 1))
                trace.append((round(sim.now, 6), k, i))

        for k in range(4):
            sim.process(worker(k))
        sim.run()
        return trace

    assert build() == build()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4)
    assert sim.peek() == 0 or sim.peek() == 4  # init-free timeout queues at 4
    sim.run()
    assert sim.peek() == float("inf")
