"""Unit tests for nodes and the RPC layer, including failure injection."""

import pytest

from repro.errors import ENOENT, FSError
from repro.sim import Cluster, Reply, RpcAgent, RpcTimeout


def build_pair():
    cluster = Cluster(seed=1)
    server_node = cluster.add_node("server", cores=2)
    client_node = cluster.add_node("client", cores=2)
    server = RpcAgent(server_node, "svc")
    client = RpcAgent(client_node, "cli")
    return cluster, server_node, client_node, server, client


def test_basic_call_roundtrip():
    cluster, snode, cnode, server, client = build_pair()

    def echo(src, args):
        yield from snode.cpu_work(0.001)
        return ("echo", args)

    server.register("echo", echo)
    results = []

    def caller():
        value = yield from client.call("svc", "echo", {"x": 1})
        results.append((value, cluster.sim.now))

    cnode.spawn(caller())
    cluster.run()
    assert results[0][0] == ("echo", {"x": 1})
    assert results[0][1] > 0.001  # cpu + 2 network hops


def test_handler_exception_reraised_at_caller():
    cluster, snode, cnode, server, client = build_pair()

    def failing(src, args):
        yield from snode.cpu_work(0.0001)
        raise FSError(ENOENT, "/missing")

    server.register("stat", failing)
    caught = []

    def caller():
        try:
            yield from client.call("svc", "stat", "/missing")
        except FSError as e:
            caught.append(e.err)

    cnode.spawn(caller())
    cluster.run()
    assert caught == [ENOENT]


def test_missing_handler_raises_remote_error():
    from repro.sim import RemoteError

    cluster, snode, cnode, server, client = build_pair()
    caught = []

    def caller():
        try:
            yield from client.call("svc", "nope")
        except RemoteError:
            caught.append(True)

    cnode.spawn(caller())
    cluster.run()
    assert caught == [True]


def test_reply_sets_response_size():
    cluster, snode, cnode, server, client = build_pair()

    def bulk(src, args):
        yield from snode.cpu_work(0.0001)
        return Reply(b"data", size=1_000_000)

    server.register("read", bulk)
    times = []

    def caller():
        yield from client.call("svc", "read")
        times.append(cluster.sim.now)

    cnode.spawn(caller())
    cluster.run()
    # 1 MB at ~117 MB/s dominates: response must take > 8 ms
    assert times[0] > 0.008


def test_concurrent_calls_on_shared_cpu_saturate():
    cluster = Cluster(seed=2)
    snode = cluster.add_node("server", cores=1)
    cnode = cluster.add_node("client", cores=8)
    server = RpcAgent(snode, "svc")

    def work(src, args):
        yield from snode.cpu_work(0.010)
        return None

    server.register("op", work)
    done = []

    def caller(agent):
        for _ in range(5):
            yield from agent.call("svc", "op")
            done.append(cluster.sim.now)

    for i in range(4):
        cnode.spawn(caller(RpcAgent(cnode, f"cli{i}")))
    cluster.run()
    # 20 ops x 10 ms on one core -> at least 200 ms of busy time.
    assert max(done) >= 0.200


def test_call_timeout_raises():
    cluster, snode, cnode, server, client = build_pair()

    def slow(src, args):
        yield cluster.sim.timeout(10.0)
        return None

    server.register("slow", slow)
    caught = []

    def caller():
        try:
            yield from client.call("svc", "slow", timeout=0.5)
        except RpcTimeout:
            caught.append(cluster.sim.now)

    cnode.spawn(caller())
    cluster.run()
    assert caught == [pytest.approx(0.5)]


def test_server_crash_causes_timeout_then_recovery_works():
    cluster, snode, cnode, server, client = build_pair()

    def op(src, args):
        yield from snode.cpu_work(0.001)
        return "ok"

    server.register("op", op)
    log = []

    def caller():
        try:
            yield from client.call("svc", "op", timeout=0.2)
            log.append("first-ok")
        except RpcTimeout:
            log.append("timeout")
        yield cluster.sim.timeout(1.0)
        value = yield from client.call("svc", "op", timeout=0.2)
        log.append(value)

    def chaos():
        snode.crash()
        yield cluster.sim.timeout(0.5)
        snode.recover()

    cnode.spawn(caller())
    cnode.spawn(chaos())
    cluster.run()
    assert log == ["timeout", "ok"]


def test_crash_kills_in_flight_handler():
    cluster, snode, cnode, server, client = build_pair()
    started = []

    def op(src, args):
        started.append(True)
        yield cluster.sim.timeout(5.0)
        return "should-not-happen"

    server.register("op", op)
    log = []

    def caller():
        try:
            yield from client.call("svc", "op", timeout=1.0)
            log.append("ok")
        except RpcTimeout:
            log.append("timeout")

    def chaos():
        yield cluster.sim.timeout(0.1)  # after handler starts
        snode.crash()

    cnode.spawn(caller())
    cnode.spawn(chaos())
    cluster.run()
    assert started == [True]
    assert log == ["timeout"]


def test_cast_is_one_way():
    cluster, snode, cnode, server, client = build_pair()
    got = []

    def notify(src, args):
        yield from snode.cpu_work(0.0001)
        got.append((src, args))

    server.register("notify", notify)
    client.cast("svc", "notify", {"n": 1})
    cluster.run()
    assert got == [("cli", {"n": 1})]


def test_node_disk_serializes():
    cluster = Cluster(seed=3)
    node = cluster.add_node("n", cores=8, disk_concurrency=1)
    finish = []

    def txn():
        yield from node.disk_io(0.005)
        finish.append(cluster.sim.now)

    for _ in range(4):
        node.spawn(txn())
    cluster.run()
    assert finish == [pytest.approx(0.005 * (i + 1)) for i in range(4)]
