"""Unit tests for the network fabric: latency, FIFO, failures, partitions."""

import pytest

from repro.sim import Cluster, Simulator
from repro.sim.network import GIGE_BANDWIDTH, GIGE_LATENCY, Network


def make_net():
    sim = Simulator()
    net = Network(sim)
    net.register("a", host="hostA")
    net.register("b", host="hostB")
    return sim, net


def test_small_message_latency():
    sim, net = make_net()
    got = []

    def receiver():
        msg = yield net.inbox("b").get()
        got.append((msg.payload, sim.now))

    sim.process(receiver())
    net.send("a", "b", "hello", size=0)
    sim.run()
    assert got == [("hello", pytest.approx(GIGE_LATENCY))]


def test_bandwidth_term_scales_with_size():
    sim, net = make_net()
    size = 1_000_000
    got = []

    def receiver():
        yield net.inbox("b").get()
        got.append(sim.now)

    sim.process(receiver())
    net.send("a", "b", "bulk", size=size)
    sim.run()
    assert got[0] == pytest.approx(GIGE_LATENCY + size / GIGE_BANDWIDTH)


def test_loopback_is_cheaper_than_wire():
    sim = Simulator()
    net = Network(sim)
    net.register("a", host="h1")
    net.register("a2", host="h1")
    assert net.delay_for("a", "a2", 128) < net.delay_for("a", "b", 128)


def test_fifo_per_pair_even_with_size_inversion():
    """A huge message sent first must not be overtaken by a tiny one."""
    sim, net = make_net()
    got = []

    def receiver():
        for _ in range(2):
            msg = yield net.inbox("b").get()
            got.append(msg.payload)

    sim.process(receiver())
    net.send("a", "b", "big", size=5_000_000)
    net.send("a", "b", "small", size=1)
    sim.run()
    assert got == ["big", "small"]


def test_unknown_endpoint_rejected():
    sim, net = make_net()
    with pytest.raises(KeyError):
        net.send("a", "nope", "x")


def test_down_destination_drops():
    sim, net = make_net()
    net.set_down("b")
    net.send("a", "b", "x")
    sim.run()
    assert net.stats.dropped == 1
    assert len(net.inbox("b")) == 0


def test_crash_mid_flight_drops_message():
    sim, net = make_net()

    def killer():
        yield sim.timeout(GIGE_LATENCY / 2)
        net.set_down("b")

    sim.process(killer())
    net.send("a", "b", "x")
    sim.run()
    assert net.stats.dropped == 1


def test_recovery_allows_delivery_again():
    sim, net = make_net()
    net.set_down("b")
    net.send("a", "b", "lost")
    net.set_down("b", False)
    net.send("a", "b", "kept")
    sim.run()
    assert [m.payload for m in net.inbox("b").items] == ["kept"]


def test_partition_blocks_cross_group_only():
    sim = Simulator()
    net = Network(sim)
    for ep, host in [("a", "h1"), ("b", "h2"), ("c", "h3")]:
        net.register(ep, host=host)
    net.partition([["h1", "h2"], ["h3"]])
    net.send("a", "b", "ok")
    net.send("a", "c", "blocked")
    sim.run()
    assert [m.payload for m in net.inbox("b").items] == ["ok"]
    assert len(net.inbox("c")) == 0
    net.heal()
    net.send("a", "c", "after-heal")
    sim.run()
    assert [m.payload for m in net.inbox("c").items] == ["after-heal"]


def test_same_host_traffic_survives_partition():
    sim = Simulator()
    net = Network(sim)
    net.register("a", host="h1")
    net.register("a2", host="h1")
    net.partition([["h1"], ["h2"]])
    net.send("a", "a2", "local")
    sim.run()
    assert [m.payload for m in net.inbox("a2").items] == ["local"]


def test_stats_accumulate():
    sim, net = make_net()
    net.send("a", "b", "x", size=100)
    net.send("a", "b", "y", size=50)
    sim.run()
    assert net.stats.messages == 2
    assert net.stats.bytes == 150


def test_cluster_wires_everything_together():
    cluster = Cluster(seed=7)
    n1 = cluster.add_node("n1", cores=4)
    assert cluster.node("n1") is n1
    with pytest.raises(ValueError):
        cluster.add_node("n1")
    # named streams are deterministic per seed
    a = Cluster(seed=7).streams.stream("x").random()
    b = Cluster(seed=7).streams.stream("x").random()
    c = Cluster(seed=8).streams.stream("x").random()
    assert a == b != c
