"""Measurement helpers: counters, latency summaries, op logs."""

import pytest

from repro.sim import Counter, Histogram, LatencyRecorder, OpLog, \
    ThroughputWindow, percentile


def test_counter_inc_and_get():
    c = Counter()
    c.inc("ops")
    c.inc("ops", 4)
    assert c.get("ops") == 5
    assert c.get("missing") == 0
    assert c.as_dict() == {"ops": 5}


def test_latency_recorder_summary():
    r = LatencyRecorder()
    for i in range(1, 101):
        r.record("stat", i / 1000.0)
    s = r.summary("stat")
    assert s.count == 100
    assert s.mean == pytest.approx(0.0505)
    # Linear interpolation between ranks: p * (n - 1) = 49.5 for p50.
    assert s.p50 == pytest.approx(0.0505)
    assert s.p95 == pytest.approx(0.09505)
    assert s.p99 == pytest.approx(0.09901)
    assert s.max == pytest.approx(0.100)


def test_percentile_interpolates_between_ranks():
    xs = [1.0, 2.0, 3.0, 4.0]
    assert percentile(xs, 0.0) == 1.0
    assert percentile(xs, 1.0) == 4.0
    assert percentile(xs, 0.5) == pytest.approx(2.5)
    assert percentile(xs, 0.25) == pytest.approx(1.75)
    assert percentile([7.0], 0.99) == 7.0


def test_latency_recorder_empty_key():
    assert LatencyRecorder().summary("none") is None


def test_latency_recorder_histogram():
    r = LatencyRecorder()
    for v in (0.5, 1.5, 1.6, 9.0):
        r.record("op", v)
    h = r.histogram("op", edges=[1.0, 2.0, 4.0])
    assert isinstance(h, Histogram)
    assert h.total == 4
    assert h.counts == [1, 2, 0, 1]  # <=1, (1,2], (2,4], >4
    d = h.as_dict()
    assert sum(d["counts"]) == 4 and d["edges"] == [1.0, 2.0, 4.0]
    assert "≤" in h.render() or "<=" in h.render()


def test_latency_recorder_histogram_empty():
    assert LatencyRecorder().histogram("none") is None


def test_latency_recorder_keys_sorted():
    r = LatencyRecorder()
    r.record("b", 1.0)
    r.record("a", 1.0)
    assert r.keys() == ["a", "b"]


def test_throughput_window():
    w = ThroughputWindow(start=1.0, end=3.0, count=100)
    assert w.throughput() == 50.0
    assert ThroughputWindow(1.0, 1.0, 5).throughput() == 0.0


def test_oplog_window():
    log = OpLog()
    for t in (1.0, 1.5, 2.0):
        log.record("mkdir", t)
    log.record("stat", 2.5)
    assert log.count == 4
    assert log.by_op == {"mkdir": 3, "stat": 1}
    w = log.window(start=0.5)
    assert w.count == 4
    assert w.throughput() == pytest.approx(4 / 2.0)


def test_oplog_empty_window():
    w = OpLog().window(start=1.0)
    assert w.count == 0 and w.throughput() == 0.0
