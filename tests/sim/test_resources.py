"""Unit tests for Resource / PriorityResource / Store."""

import pytest

from repro.sim import PriorityResource, Resource, Simulator, Store


def test_resource_capacity_enforced():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    active = []
    peak = []

    def worker(k):
        with res.request() as req:
            yield req
            active.append(k)
            peak.append(len(res.users))
            yield sim.timeout(1)
            active.remove(k)

    for k in range(5):
        sim.process(worker(k))
    sim.run()
    assert max(peak) == 2
    assert active == []


def test_resource_fifo_grant_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(k):
        with res.request() as req:
            yield req
            order.append(k)
            yield sim.timeout(1)

    for k in range(4):
        sim.process(worker(k))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_resource_release_is_idempotent():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)  # second release must be harmless

    sim.process(worker())
    sim.run()
    assert res.count == 0


def test_resource_queued_request_can_be_cancelled():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    got = []

    def holder():
        with res.request() as req:
            yield req
            yield sim.timeout(10)

    def impatient():
        yield sim.timeout(1)
        req = res.request()  # queued behind holder
        res.release(req)  # cancel before grant
        got.append("cancelled")

    def third():
        yield sim.timeout(2)
        with res.request() as req:
            yield req
            got.append(("granted", sim.now))

    sim.process(holder())
    sim.process(impatient())
    sim.process(third())
    sim.run()
    assert got == ["cancelled", ("granted", 10)]


def test_resource_rejects_zero_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_throughput_saturates_at_capacity_over_service():
    """A 4-way server with 10 ms ops completes ~400 ops/s regardless of load."""
    sim = Simulator()
    res = Resource(sim, capacity=4)
    done = []

    def client():
        while sim.now < 10.0:
            with res.request() as req:
                yield req
                yield sim.timeout(0.010)
            done.append(sim.now)

    for _ in range(64):
        sim.process(client())
    sim.run(until=10.0)
    rate = len(done) / 10.0
    assert rate == pytest.approx(400, rel=0.02)


def test_priority_resource_orders_by_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield sim.timeout(5)

    def contender(k, prio, delay):
        yield sim.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(k)
            yield sim.timeout(1)

    sim.process(holder())
    sim.process(contender("low", 5, 1))
    sim.process(contender("high", 1, 2))  # arrives later, wins anyway
    sim.run()
    assert order == ["high", "low"]


def test_priority_resource_fifo_within_same_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield sim.timeout(5)

    def contender(k, delay):
        yield sim.timeout(delay)
        with res.request(priority=3) as req:
            yield req
            order.append(k)
            yield sim.timeout(1)

    sim.process(holder())
    for i in range(3):
        sim.process(contender(i, 1 + 0.1 * i))
    sim.run()
    assert order == [0, 1, 2]


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        got.append((yield store.get()))

    store.put("x")
    sim.process(consumer())
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(4)
        store.put("y")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("y", 4)]


def test_store_fifo_across_consumers():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(k):
        item = yield store.get()
        got.append((k, item))

    sim.process(consumer(0))
    sim.process(consumer(1))

    def producer():
        yield sim.timeout(1)
        store.put("a")
        store.put("b")

    sim.process(producer())
    sim.run()
    assert got == [(0, "a"), (1, "b")]


def test_store_len_counts_buffered_items():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
