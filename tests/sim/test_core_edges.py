"""Kernel edge cases: condition failures, interrupts vs resources, timing."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    Resource,
    SimulationError,
    Simulator,
)


def test_all_of_fails_if_member_fails():
    sim = Simulator()
    ok = sim.timeout(5)
    bad = sim.event()
    caught = []

    def waiter():
        try:
            yield AllOf(sim, (ok, bad))
        except RuntimeError as e:
            caught.append((str(e), sim.now))

    def failer():
        yield sim.timeout(2)
        bad.fail(RuntimeError("member died"))

    sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert caught == [("member died", 2)]


def test_any_of_failure_propagates():
    sim = Simulator()
    slow = sim.timeout(100)
    bad = sim.event()
    caught = []

    def waiter():
        try:
            yield AnyOf(sim, (slow, bad))
        except ValueError:
            caught.append(sim.now)

    def failer():
        yield sim.timeout(1)
        bad.fail(ValueError())

    sim.process(waiter())
    sim.process(failer())
    sim.run(until=10)
    assert caught == [1]


def test_condition_rejects_cross_simulator_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        AllOf(sim1, (sim1.timeout(1), sim2.timeout(1)))


def test_interrupt_while_holding_resource_releases_via_finally():
    sim = Simulator()
    res = Resource(sim, 1)
    order = []

    def holder():
        req = res.request()
        try:
            yield req
            order.append("held")
            yield sim.timeout(100)
        except Interrupt:
            order.append("interrupted")
        finally:
            res.release(req)

    def contender():
        yield sim.timeout(2)
        with res.request() as req:
            yield req
            order.append(("acquired", sim.now))

    p = sim.process(holder())

    def attacker():
        yield sim.timeout(1)
        p.interrupt()

    sim.process(attacker())
    sim.process(contender())
    sim.run()
    assert order == ["held", "interrupted", ("acquired", 2)]


def test_process_is_alive_lifecycle():
    sim = Simulator()

    def quick():
        yield sim.timeout(3)

    p = sim.process(quick())
    assert p.is_alive
    sim.run()
    assert not p.is_alive
    assert p.ok


def test_multiple_interrupts_queue():
    sim = Simulator()
    causes = []

    def victim():
        for _ in range(2):
            try:
                yield sim.timeout(100)
            except Interrupt as i:
                causes.append(i.cause)

    p = sim.process(victim())

    def attacker():
        yield sim.timeout(1)
        p.interrupt("first")
        p.interrupt("second")

    sim.process(attacker())
    sim.run(until=50)
    assert causes == ["first", "second"]


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_timeout_ordering_is_stable_for_equal_times():
    sim = Simulator()
    order = []

    def w(tag, delay):
        yield sim.timeout(delay)
        order.append(tag)

    for tag in "abcd":
        sim.process(w(tag, 1.0))
    sim.run()
    assert order == list("abcd")


def test_run_until_event_failure_propagates():
    sim = Simulator(strict=False)

    def boom():
        yield sim.timeout(1)
        raise RuntimeError("until-event failed")

    proc = sim.process(boom())
    with pytest.raises(RuntimeError, match="until-event failed"):
        sim.run(until=proc)
    assert sim.now == 1


def test_interrupt_before_first_step_kills_cleanly():
    # Interrupting a freshly spawned process before the kernel has run
    # its first step kills it without ever entering the body: a throw
    # would surface at the generator's first line (outside any try), so
    # the kernel closes the generator and completes the process with
    # ``None`` instead of crashing the init bootstrap.
    sim = Simulator()
    log = []

    def victim():
        log.append("started")
        try:
            yield sim.timeout(100)
        except Interrupt as i:
            log.append(("interrupted", i.cause))

    p = sim.process(victim())
    p.interrupt("early")
    sim.run()
    assert log == []
    assert p.triggered and p.ok and p.value is None


def test_peek_and_idle_deadline_advance():
    sim = Simulator()
    sim.timeout(10)
    assert sim.peek() == 10  # staged (pre-merge) events are visible
    sim.run(until=3.0)       # idle gap: no events before the deadline
    assert sim.now == 3.0
    assert sim.peek() == 10
    sim.run(until=10.0)
    assert sim.now == 10.0
    assert sim.peek() == float("inf")


def test_same_time_lane_fifo_vs_heap_tiebreak():
    # Events scheduled *for now* ride the FIFO lane; events popped from
    # the heap at equal times tie-break by creation id. Both orders must
    # agree: strictly creation order within one instant.
    sim = Simulator()
    order = []

    def waker(tag, delay):
        yield sim.timeout(delay)
        order.append(tag)

    for k in range(4):                      # heap path: equal future times
        sim.process(waker(f"heap{k}", 5.0))

    def now_burst():
        yield sim.timeout(5.0)
        for k in range(4):                  # lane path: same-instant wakeups
            sim.process(waker(f"lane{k}", 0.0))

    sim.process(now_burst())
    sim.run()
    assert order == [f"heap{k}" for k in range(4)] + \
        [f"lane{k}" for k in range(4)]


def test_condition_detaches_and_drops_refs_on_completion():
    sim = Simulator()
    fast = sim.timeout(1)
    slow = sim.timeout(1000)
    cond = AnyOf(sim, (fast, slow))
    assert cond.events == (fast, slow)
    sim.run(until=2.0)
    assert cond.triggered and fast in cond.value
    # The straggler no longer holds the condition's callback, and the
    # condition no longer pins its constituents.
    assert cond.events == ()
    assert not any(cb.__self__ is cond
                   for cb in (slow.callbacks or [])
                   if hasattr(cb, "__self__"))
