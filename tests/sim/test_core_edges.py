"""Kernel edge cases: condition failures, interrupts vs resources, timing."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    Resource,
    SimulationError,
    Simulator,
)


def test_all_of_fails_if_member_fails():
    sim = Simulator()
    ok = sim.timeout(5)
    bad = sim.event()
    caught = []

    def waiter():
        try:
            yield AllOf(sim, (ok, bad))
        except RuntimeError as e:
            caught.append((str(e), sim.now))

    def failer():
        yield sim.timeout(2)
        bad.fail(RuntimeError("member died"))

    sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert caught == [("member died", 2)]


def test_any_of_failure_propagates():
    sim = Simulator()
    slow = sim.timeout(100)
    bad = sim.event()
    caught = []

    def waiter():
        try:
            yield AnyOf(sim, (slow, bad))
        except ValueError:
            caught.append(sim.now)

    def failer():
        yield sim.timeout(1)
        bad.fail(ValueError())

    sim.process(waiter())
    sim.process(failer())
    sim.run(until=10)
    assert caught == [1]


def test_condition_rejects_cross_simulator_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        AllOf(sim1, (sim1.timeout(1), sim2.timeout(1)))


def test_interrupt_while_holding_resource_releases_via_finally():
    sim = Simulator()
    res = Resource(sim, 1)
    order = []

    def holder():
        req = res.request()
        try:
            yield req
            order.append("held")
            yield sim.timeout(100)
        except Interrupt:
            order.append("interrupted")
        finally:
            res.release(req)

    def contender():
        yield sim.timeout(2)
        with res.request() as req:
            yield req
            order.append(("acquired", sim.now))

    p = sim.process(holder())

    def attacker():
        yield sim.timeout(1)
        p.interrupt()

    sim.process(attacker())
    sim.process(contender())
    sim.run()
    assert order == ["held", "interrupted", ("acquired", 2)]


def test_process_is_alive_lifecycle():
    sim = Simulator()

    def quick():
        yield sim.timeout(3)

    p = sim.process(quick())
    assert p.is_alive
    sim.run()
    assert not p.is_alive
    assert p.ok


def test_multiple_interrupts_queue():
    sim = Simulator()
    causes = []

    def victim():
        for _ in range(2):
            try:
                yield sim.timeout(100)
            except Interrupt as i:
                causes.append(i.cause)

    p = sim.process(victim())

    def attacker():
        yield sim.timeout(1)
        p.interrupt("first")
        p.interrupt("second")

    sim.process(attacker())
    sim.run(until=50)
    assert causes == ["first", "second"]


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_timeout_ordering_is_stable_for_equal_times():
    sim = Simulator()
    order = []

    def w(tag, delay):
        yield sim.timeout(delay)
        order.append(tag)

    for tag in "abcd":
        sim.process(w(tag, 1.0))
    sim.run()
    assert order == list("abcd")
