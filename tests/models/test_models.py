"""Parameter bundles and the memory model."""

import pytest

from repro.models.memory import (
    MemoryModel,
    ZK_BASELINE_MB,
    ZNODE_BYTES_PER_MILLION_MB,
)
from repro.models.params import (
    DUFSParams,
    FUSEParams,
    LustreParams,
    PVFSParams,
    SimParams,
    ZKParams,
)


def test_simparams_bundles_all_submodels():
    p = SimParams()
    assert isinstance(p.zk, ZKParams)
    assert isinstance(p.lustre, LustreParams)
    assert isinstance(p.pvfs, PVFSParams)
    assert isinstance(p.fuse, FUSEParams)
    assert isinstance(p.dufs, DUFSParams)
    assert p.node_cores == 8  # dual Xeon E5335


def test_with_overrides_replaces_submodel():
    p = SimParams()
    q = p.with_overrides(lustre=LustreParams(dlm_enabled=False))
    assert q.lustre.dlm_enabled is False
    assert p.lustre.dlm_enabled is True  # original untouched
    assert q.zk is p.zk


def test_default_instances_are_independent():
    a, b = SimParams(), SimParams()
    a.lustre.mkdir_cpu = 123.0
    assert b.lustre.mkdir_cpu != 123.0


def test_all_service_times_positive():
    for model in (ZKParams(), LustreParams(), PVFSParams(), FUSEParams(),
                  DUFSParams()):
        for name, value in vars(model).items():
            if name.endswith(("_cpu", "_delay", "_txn", "_coef")) and \
                    isinstance(value, float):
                assert value >= 0, (type(model).__name__, name)


def test_memory_model_slope_matches_paper():
    model = MemoryModel()
    per_million_mb = model.bytes_per_znode  # B/znode == MB/M znodes
    assert abs(per_million_mb - ZNODE_BYTES_PER_MILLION_MB) < 25


def test_zookeeper_memory_linear():
    model = MemoryModel()
    m1 = model.zookeeper_mb(1_000_000)
    m2 = model.zookeeper_mb(2_000_000)
    m3 = model.zookeeper_mb(3_000_000)
    assert m2 - m1 == pytest.approx(m3 - m2)
    assert model.zookeeper_mb(0) == ZK_BASELINE_MB


def test_client_memory_flat():
    model = MemoryModel()
    assert model.dufs_client_mb(0) == model.dufs_client_mb(10**7)
    assert model.dummy_fuse_mb(0) == model.dummy_fuse_mb(10**7)
    # more mounts -> slightly more client memory
    assert model.dufs_client_mb(0, n_mounts=4) > \
        model.dufs_client_mb(0, n_mounts=2)


def test_memory_model_agrees_with_znode_store_accounting():
    """The store's tracked bytes equal the model for same-shape znodes."""
    from repro.zk.data import ZnodeStore

    model = MemoryModel(avg_path_len=20, avg_data_len=10)
    store = ZnodeStore()
    path = "/" + "x" * 19          # 20 chars
    store.apply_create(path, b"d" * 10, 1, 0.0)
    delta = store.approx_memory_bytes - ZnodeStore().approx_memory_bytes
    assert delta == pytest.approx(model.bytes_per_znode, abs=1)
