"""Shared retry machinery: token-bucket budget + decorrelated jitter."""

import pytest

from repro.resilience import RetryBudget, RetryPolicy
from repro.sim.random import RandomStreams


def test_budget_disabled_is_unlimited():
    budget = RetryBudget(cap=0.0)
    assert not budget.enabled
    assert all(budget.try_spend() for _ in range(100))
    assert budget.spent == 0 and budget.denied == 0


def test_budget_spends_and_denies():
    budget = RetryBudget(cap=2.0, refill=0.5)
    assert budget.try_spend()
    assert budget.try_spend()
    assert not budget.try_spend()        # bucket empty
    assert budget.spent == 2 and budget.denied == 1


def test_budget_refills_on_success_up_to_cap():
    budget = RetryBudget(cap=1.0, refill=0.5)
    assert budget.try_spend()
    assert not budget.try_spend()
    budget.on_success()                  # +0.5: still under a whole token
    assert not budget.try_spend()
    budget.on_success()                  # +0.5: one token available again
    assert budget.try_spend()
    for _ in range(10):                  # refill never exceeds the cap
        budget.on_success()
    assert budget.try_spend()
    assert not budget.try_spend()


def test_policy_exhausts_on_max_retries():
    pol = RetryPolicy(RandomStreams(0), "s", max_retries=2)
    state = pol.begin(0.0)
    for expected in (False, False, True):
        state.attempt += 1
        assert pol.exhausted(state, now=0.0) is expected


def test_policy_exhausts_on_op_budget_deadline():
    pol = RetryPolicy(RandomStreams(0), "s", max_retries=100, op_budget=5.0)
    state = pol.begin(10.0)
    state.attempt += 1
    assert not pol.exhausted(state, now=14.9)
    assert pol.exhausted(state, now=15.0)


def test_policy_exhausts_when_budget_denies():
    budget = RetryBudget(cap=1.0, refill=0.1)
    pol = RetryPolicy(RandomStreams(0), "s", max_retries=100, budget=budget)
    state = pol.begin(0.0)
    state.attempt += 1
    assert not pol.exhausted(state, now=0.0)   # spends the only token
    state.attempt += 1
    assert pol.exhausted(state, now=0.0)       # bucket empty -> give up
    assert budget.denied == 1


def test_backoff_matches_decorrelated_jitter_replay():
    """The policy must draw exactly the legacy sequence: uniform(base,
    3*prev) clamped to the cap, prev floored at base, one draw per sleep,
    all from the named stream."""
    streams = RandomStreams(7)
    pol = RetryPolicy(streams, "zk.client.x", max_retries=9,
                      backoff_base=0.05, backoff_cap=0.4)
    state = pol.begin(0.0)
    sleeps = [pol.next_backoff(state) for _ in range(5)]

    rng = RandomStreams(7).stream("zk.client.x")
    prev = 0.05
    expected = []
    for _ in range(5):
        s = min(0.4, rng.uniform(0.05, 3.0 * prev))
        expected.append(s)
        prev = max(s, 0.05)
    assert sleeps == pytest.approx(expected)
    assert all(s <= 0.4 for s in sleeps)


def test_zero_base_backoff_never_draws():
    """backoff_base == 0 (the Lustre/PVFS default) must consume nothing
    from the stream — the replay-identical guarantee."""
    streams = RandomStreams(3)
    pol = RetryPolicy(streams, "lustre.client.c0", max_retries=4)
    state = pol.begin(0.0)
    assert [pol.next_backoff(state) for _ in range(4)] == [0.0] * 4
    # The stream is untouched: its next draw equals a fresh stream's first.
    assert streams.stream("lustre.client.c0").random() == \
        RandomStreams(3).stream("lustre.client.c0").random()


def test_policy_success_refills_budget():
    budget = RetryBudget(cap=1.0, refill=1.0)
    pol = RetryPolicy(RandomStreams(0), "s", max_retries=9, budget=budget)
    state = pol.begin(0.0)
    state.attempt += 1
    assert not pol.exhausted(state, now=0.0)
    pol.on_success()
    state2 = pol.begin(1.0)
    state2.attempt += 1
    assert not pol.exhausted(state2, now=1.0)  # token restored
