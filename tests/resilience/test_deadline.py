"""Deadline propagation end-to-end: caller -> RPC -> kernel shedding."""

import pytest

from repro.models.params import ResilienceParams
from repro.sim import Cluster, RpcAgent, RpcTimeout
from repro.svc import BoundedAdmission, Service, TraceBus


def make_cluster():
    cluster = Cluster(seed=1)
    server = cluster.add_node("server")
    client = cluster.add_node("client")
    return cluster, server, client


def test_child_process_inherits_ambient_deadline():
    cluster, server, client = make_cluster()
    seen = []

    def child():
        seen.append(cluster.sim._active.deadline)
        yield cluster.sim.timeout(0)

    def parent():
        cluster.sim._active.deadline = 3.5
        client.spawn(child())
        yield cluster.sim.timeout(0.01)

    client.spawn(parent())
    cluster.run()
    assert seen == [3.5]


def test_deadline_caps_rpc_timeout():
    cluster, server, client = make_cluster()
    svc = Service(server, "srv", deployment="d")
    svc.expose("slow", lambda s, a: iter([cluster.sim.timeout(10.0)]))
    agent = RpcAgent(client, "cli")
    caught = []

    def caller():
        try:
            yield from agent.call("srv", "slow", timeout=5.0,
                                  deadline=cluster.sim.now + 0.25)
        except RpcTimeout:
            caught.append(cluster.sim.now)

    client.spawn(caller())
    cluster.run()
    assert caught == [pytest.approx(0.25)]


def test_expired_deadline_raises_before_sending():
    cluster, server, client = make_cluster()
    runs = []
    svc = Service(server, "srv")
    svc.expose("op", lambda s, a: iter(runs.append(True) or ()))
    agent = RpcAgent(client, "cli")
    caught = []

    def caller():
        yield cluster.sim.timeout(1.0)
        try:
            yield from agent.call("srv", "op", deadline=0.5)
        except RpcTimeout:
            caught.append(cluster.sim.now)

    client.spawn(caller())
    cluster.run()
    assert caught == [pytest.approx(1.0)]   # failed fast, no waiting
    assert runs == []                       # nothing ever hit the wire


def test_dead_on_arrival_request_is_shed_at_admission():
    """A deadline tighter than the one-way network latency expires in
    flight: the kernel drops it before the handler runs and counts it."""
    cluster, server, client = make_cluster()
    bus = TraceBus()
    ran = []
    svc = Service(server, "srv", deployment="d", bus=bus)

    def h(src, args):
        ran.append(True)
        yield cluster.sim.timeout(1e-5)

    svc.expose("op", h)
    agent = RpcAgent(client, "cli")
    caught = []

    def caller():
        try:                                # 20us < the 60us network hop
            yield from agent.call("srv", "op",
                                  deadline=cluster.sim.now + 20e-6)
        except RpcTimeout:
            caught.append(True)

    client.spawn(caller())
    cluster.run()
    assert caught == [True] and ran == []
    assert bus.expired.get("d/srv.op") == 1
    assert not bus.ops.get("d/srv.op")      # shed, not a served op


def test_mid_service_cancel_for_reads():
    cluster, server, client = make_cluster()
    bus = TraceBus()
    finished = []
    svc = Service(server, "srv", deployment="d", bus=bus)

    def h_read(src, args):
        yield cluster.sim.timeout(0.5)
        finished.append("read")

    svc.expose("read", h_read)
    agent = RpcAgent(client, "cli")
    caught = []

    def caller():
        try:
            yield from agent.call("srv", "read",
                                  deadline=cluster.sim.now + 0.1)
        except RpcTimeout:
            caught.append(cluster.sim.now)

    client.spawn(caller())
    cluster.run()
    assert caught == [pytest.approx(0.1)]
    assert finished == []                   # handler was cancelled mid-run
    assert bus.expired.get("d/srv.read") == 1
    assert svc.inflight == 0


def test_writes_are_never_cancelled_mid_service():
    """Cancelling an in-flight mutation could lose acknowledged state:
    write handlers run to completion even past the caller's deadline."""
    cluster, server, client = make_cluster()
    bus = TraceBus()
    finished = []
    svc = Service(server, "srv", deployment="d", bus=bus)

    def h_put(src, args):
        yield cluster.sim.timeout(0.3)
        finished.append(cluster.sim.now)

    svc.expose("put", h_put, write=True)
    agent = RpcAgent(client, "cli")
    caught = []

    def caller():
        try:
            yield from agent.call("srv", "put",
                                  deadline=cluster.sim.now + 0.1)
        except RpcTimeout:
            caught.append(cluster.sim.now)

    client.spawn(caller())
    cluster.run()
    assert caught == [pytest.approx(0.1)]   # caller gave up...
    assert len(finished) == 1               # ...but the write completed
    assert not bus.expired.get("d/srv.put")


def test_expired_admission_wait_releases_no_token():
    """A request whose deadline passes while queued for admission must
    leave the queue clean: counted expired, token returned, depth -> 0."""
    cluster, server, client = make_cluster()
    bus = TraceBus()
    policy = BoundedAdmission(cluster.sim, 1)
    svc = Service(server, "srv", deployment="d", policy=policy, bus=bus)

    def h(src, args):
        yield cluster.sim.timeout(0.5)
        return "done"

    svc.expose("op", h)
    agent = RpcAgent(client, "cli")
    outcomes = []

    def first():
        outcomes.append((yield from agent.call("srv", "op")))

    def second():
        yield cluster.sim.timeout(0.01)     # queue behind the first
        try:
            yield from agent.call("srv", "op",
                                  deadline=cluster.sim.now + 0.1)
        except RpcTimeout:
            outcomes.append("expired-in-queue")

    def third():
        yield cluster.sim.timeout(0.7)      # after the first drains
        outcomes.append((yield from agent.call("srv", "op")))

    client.spawn(first())
    client.spawn(second())
    client.spawn(third())
    cluster.run()
    assert outcomes == ["expired-in-queue", "done", "done"]
    assert bus.expired.get("d/srv.op") == 1
    assert bus.ops.get("d/srv.op") == 2
    assert policy.depth == 0


def test_default_off_runs_are_replay_identical():
    """All resilience knobs parked (features off) must not shift a single
    completion time, whatever the inert tuning fields say."""
    from repro.core import build_dufs_deployment

    def run_once(resilience):
        dep = build_dufs_deployment(n_zk=3, n_backends=1, n_client_nodes=2,
                                    backend="local", seed=11,
                                    resilience=resilience)
        times = []

        def workload():
            yield from dep.mounts[0].mkdir("/d")
            times.append(dep.cluster.sim.now)
            for i in range(5):
                yield from dep.mounts[0].create(f"/d/f{i}")
                times.append(dep.cluster.sim.now)
            yield from dep.mounts[1].stat("/d/f0")
            times.append(dep.cluster.sim.now)

        dep.cluster.sim.run(until=dep.client_nodes[0].spawn(workload()))
        return times

    default = run_once(ResilienceParams())
    # Different inert settings; every feature gate still off.
    parked = run_once(ResilienceParams(op_deadline=9.9, retry_refill=0.7,
                                       breaker_threshold=1,
                                       breaker_cooldown=9.0,
                                       hedge_delay=0.001, hedge_window=4))
    assert default == parked
