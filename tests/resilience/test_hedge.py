"""Hedged execution: delayed duplicate, first success wins, loser dies."""

import pytest

from repro.resilience import LatencyTracker, hedged
from repro.sim import Cluster
from repro.sim.core import Interrupt


def build():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    return cluster, node


def attempt(sim, delay, value, log, fail=False):
    def gen():
        try:
            yield sim.timeout(delay)
            if fail:
                raise RuntimeError(f"{value} failed")
            log.append(value)
            return value
        except Interrupt:
            log.append(f"{value}-cancelled")
            raise
    return gen


def drive(cluster, node, gen):
    out = []

    def runner():
        out.append((yield from gen))
    node.spawn(runner())
    cluster.run()
    return out[0]


def test_fast_primary_never_spawns_hedge():
    cluster, node = build()
    log = []
    result = drive(cluster, node, hedged(
        node, attempt(cluster.sim, 0.01, "p", log),
        attempt(cluster.sim, 0.01, "s", log), delay=0.05))
    assert result == ("p", False)
    assert log == ["p"]                       # secondary never started


def test_hedge_wins_and_primary_is_cancelled():
    cluster, node = build()
    log = []
    out = []

    def runner():
        result = yield from hedged(
            node, attempt(cluster.sim, 1.0, "p", log),
            attempt(cluster.sim, 0.01, "s", log), delay=0.05)
        out.append((result, cluster.sim.now))

    node.spawn(runner())
    cluster.run()
    result, done_at = out[0]
    assert result == ("s", True)
    assert done_at == pytest.approx(0.06)           # delay + hedge latency
    assert log == ["s", "p-cancelled"]


def test_primary_failure_falls_through_to_hedge():
    cluster, node = build()
    log = []
    result = drive(cluster, node, hedged(
        node, attempt(cluster.sim, 0.2, "p", log, fail=True),
        attempt(cluster.sim, 0.3, "s", log), delay=0.05))
    assert result == ("s", True)


def test_both_failures_raise_primary_error():
    cluster, node = build()
    caught = []

    def runner():
        try:
            yield from hedged(
                node, attempt(cluster.sim, 0.1, "p", [], fail=True),
                attempt(cluster.sim, 0.1, "s", [], fail=True), delay=0.01)
        except RuntimeError as exc:
            caught.append(str(exc))
    node.spawn(runner())
    cluster.run()
    assert caught == ["p failed"]


def test_tracker_uses_default_until_warm():
    tr = LatencyTracker(window=8, quantile=0.5, min_samples=4,
                        default_delay=0.07)
    tr.record(1.0)
    assert tr.delay() == 0.07
    for v in (0.1, 0.2, 0.3):
        tr.record(v)
    assert tr.delay() != 0.07            # warmed up: percentile of window


def test_tracker_percentile_over_rolling_window():
    tr = LatencyTracker(window=4, quantile=0.95, min_samples=2)
    for v in (0.1, 0.2, 0.3, 0.4, 9.9):  # 0.1 evicted by the window
        tr.record(v)
    assert tr.delay() == 9.9
    assert list(tr.samples) == [0.2, 0.3, 0.4, 9.9]
