"""Circuit breaker state machine: closed -> open -> half-open -> ..."""

from repro.resilience import BreakerBoard, CircuitBreaker


class Clock:
    """Breakers only read ``sim.now`` — a bare clock is enough."""

    def __init__(self):
        self.now = 0.0


def test_breaker_trips_after_consecutive_failures():
    clk = Clock()
    br = CircuitBreaker(clk, threshold=3, cooldown=1.0)
    assert br.allow()
    br.on_failure()
    br.on_failure()
    assert br.allow()                  # still closed at 2/3
    br.on_failure()
    assert br.state == "open" and br.trips == 1
    assert not br.allow()              # fast-fail while open


def test_success_resets_consecutive_failure_count():
    clk = Clock()
    br = CircuitBreaker(clk, threshold=3)
    br.on_failure()
    br.on_failure()
    br.on_success()                    # streak broken
    br.on_failure()
    br.on_failure()
    assert br.state == "closed"


def test_half_open_admits_one_probe_then_closes_on_success():
    clk = Clock()
    br = CircuitBreaker(clk, threshold=1, cooldown=1.0)
    br.on_failure()
    assert br.state == "open"
    clk.now = 0.5
    assert not br.allow()              # cooldown not elapsed
    clk.now = 1.0
    assert br.allow()                  # the single half-open probe
    assert br.state == "half_open"
    assert not br.allow()              # second concurrent probe refused
    br.on_success()
    assert br.state == "closed"
    assert br.allow()


def test_half_open_probe_failure_reopens():
    clk = Clock()
    br = CircuitBreaker(clk, threshold=1, cooldown=1.0)
    br.on_failure()
    clk.now = 1.0
    assert br.allow()
    br.on_failure()                    # probe failed
    assert br.state == "open" and br.trips == 2
    assert not br.allow()              # new cooldown starts at the re-trip
    clk.now = 2.0
    assert br.allow()


def test_board_tracks_endpoints_independently():
    clk = Clock()
    board = BreakerBoard(clk, threshold=1, cooldown=1.0)
    board.on_failure("a")
    assert not board.allow("a")
    assert board.allow("b")            # unrelated endpoint stays closed
    assert board.open_endpoints() == ["a"]
    assert board.trips() == 1


def test_disabled_board_is_inert():
    clk = Clock()
    board = BreakerBoard(clk, threshold=1, cooldown=1.0, enabled=False)
    for _ in range(10):
        board.on_failure("a")
    assert board.allow("a")
    assert board.breakers == {}        # nothing even allocated
    assert board.trips() == 0 and board.open_endpoints() == []
