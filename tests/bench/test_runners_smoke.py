"""Tiny-scale smoke tests for every figure runner (fast unit coverage;
the benchmarks/ suite runs them at quick scale with shape assertions)."""


from repro.bench.figures import (
    run_ablations,
    run_cmd_comparison,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_single_dir,
)
from repro.workloads.mdtest import ALL_PHASES


def series_complete(fig, expected_panels, variants):
    for panel in expected_panels:
        for variant in variants:
            name = f"{panel}/{variant}"
            assert name in fig.series, name
            assert all(y > 0 for _, y in fig.series[name]), name


def test_fig7_tiny():
    fig = run_fig7("tiny", ensembles=(1, 3))
    series_complete(fig, ("zoo_create", "zoo_get", "zoo_set", "zoo_delete"),
                    ("zk1", "zk3"))


def test_fig8_tiny():
    fig = run_fig8("tiny", ensembles=(3,))
    series_complete(fig, ALL_PHASES, ("lustre", "zk3"))


def test_fig9_tiny():
    fig = run_fig9("tiny", backend_counts=(2,))
    series_complete(fig, ("file_create", "file_stat", "file_remove"),
                    ("lustre", "backends2"))


def test_fig10_tiny():
    fig = run_fig10("tiny")
    series_complete(fig, ALL_PHASES,
                    ("lustre", "dufs-lustre", "pvfs", "dufs-pvfs"))
    assert fig.wall_seconds > 0


def test_single_dir_tiny():
    fig = run_single_dir("tiny")
    series_complete(fig, ("file_create", "file_stat", "file_remove"),
                    ("lustre", "dufs-lustre"))


def test_cmd_tiny():
    fig = run_cmd_comparison("tiny")
    series_complete(fig, ("dir_create", "dir_stat", "dir_remove"),
                    ("cmd2", "cmd4", "dufs", "lustre"))


def test_ablations_tiny():
    fig = run_ablations("tiny")
    assert any(k.startswith("zk_write/") for k in fig.series)
    assert any(k.startswith("dufs_file_create/") for k in fig.series)
