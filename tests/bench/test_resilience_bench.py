"""Resilience overload campaign: arm harness + regression gate logic."""

from repro.bench import check_resilience_regression, \
    render_resilience_overload
from repro.bench.resilience_bench import GOODPUT_FLOOR, _run_arm


def make_cell(goodput_off, goodput_on, load=2.0):
    def arm(goodput, resilient):
        return {
            "load": load, "resilient": resilient, "offered_ops_s": 1000.0,
            "issued": 4000, "ok": int(goodput * 4), "err": 0,
            "goodput_ops_s": goodput, "success_rate": goodput / 1000.0,
            "latency_p95": 0.05,
            "server": {"served": 100, "expired": 5, "rejected": 0},
            "clients": {"retry_tokens_spent": 10, "retries_denied": 3,
                        "breaker_trips": 2, "breaker_fastfails": 7},
        }
    return {"off": arm(goodput_off, False), "on": arm(goodput_on, True)}


def make_doc(goodput_off=100.0, goodput_on=300.0):
    return {
        "benchmark": "resilience_overload", "scale": "quick", "seed": 0,
        "duration": 4.0, "n_clients": 4, "capacity_ops_s": 500.0,
        "fault": {}, "resilience_on": {},
        "loads": {"2.0": make_cell(goodput_off, goodput_on)},
        "gate": {"load": "2.0", "goodput_off": goodput_off,
                 "goodput_on": goodput_on,
                 "on_over_off": goodput_on / goodput_off,
                 "floor": GOODPUT_FLOOR},
    }


def test_gate_passes_above_floor():
    assert check_resilience_regression(make_doc(100.0, 300.0)) == []


def test_gate_fails_below_floor():
    failures = check_resilience_regression(make_doc(100.0, 120.0))
    assert len(failures) == 1 and "floor" in failures[0]


def test_baseline_regression_detected_per_cell():
    baseline = make_doc(100.0, 300.0)
    current = make_doc(100.0, 200.0)       # on-arm lost a third
    failures = check_resilience_regression(current, baseline,
                                           tolerance=0.25)
    assert len(failures) == 1
    assert "on @ 2.0x" in failures[0]
    # Within tolerance: clean.
    assert check_resilience_regression(make_doc(95.0, 290.0), baseline,
                                       tolerance=0.25) == []


def test_baseline_missing_cell_is_flagged():
    baseline = make_doc()
    current = make_doc()
    current["loads"]["3.0"] = make_cell(50.0, 150.0, load=3.0)
    failures = check_resilience_regression(current, baseline)
    assert any("no entry for load 3.0x" in f for f in failures)


def test_render_mentions_gate_and_arms():
    text = render_resilience_overload(make_doc())
    assert "gate:" in text and " off " in text and " on " in text
    assert "3.00x" in text                 # the on/off ratio


def test_arm_harness_structure_and_baseline_health():
    """A short real run of one arm: structural keys + sanity. At a load
    well under the knee every issued op must succeed in either arm."""
    r = _run_arm(load=0.3, resilient=False, duration=0.5, n_clients=2,
                 seed=0)
    assert r["issued"] > 0 and r["ok"] == r["issued"]
    assert r["success_rate"] == 1.0
    assert r["server"]["served"] >= r["ok"]
    on = _run_arm(load=0.3, resilient=True, duration=0.5, n_clients=2,
                  seed=0)
    # Below the knee the resilience layer must not change the outcome.
    assert on["ok"] == r["ok"] and on["latency_p95"] == r["latency_p95"]
    assert on["clients"]["breaker_trips"] == 0
