"""The write-behind ablation and its CI regression gate."""

import json

from repro.bench import (check_async_regression, render_async_ablation,
                         run_async_ablation, write_async_bench_json)
from repro.bench.async_bench import CREATE_FLOOR, PHASES


def test_async_ablation_meets_the_acceptance_floor():
    doc = run_async_ablation(scale="quick", seed=0)
    # ISSUE acceptance: async-on mdtest file_create >= 2x sync (CI
    # floor; the observed quick-scale speedup is >= 3x).
    assert doc["speedup"]["file_create"] >= 3.0
    assert doc["speedup"]["file_create"] >= CREATE_FLOOR
    w = doc["on"]["wblog"]
    assert w["rejected"] == 0
    assert w["committed"] == w["acked"]     # drain=True: all committed
    assert doc["on"]["drain_batches"]["flushes"] > 0
    # The off arm runs no write-behind machinery at all.
    assert doc["off"]["wblog"]["acked"] == 0
    # Ack latency is orders of magnitude under the sync commit latency.
    off_lat = doc["off"]["latency_us"]["file_create"]["mean"]
    on_lat = doc["on"]["latency_us"]["file_create"]["mean"]
    assert on_lat < off_lat / 5
    out = render_async_ablation(doc)
    assert "file_create" in out and "speedup" in out


def test_async_ablation_is_deterministic():
    a = run_async_ablation(scale="quick", seed=0)
    b = run_async_ablation(scale="quick", seed=0)
    assert a == b


def test_async_bench_json_round_trip(tmp_path):
    doc = run_async_ablation(scale="quick", seed=0)
    path = write_async_bench_json(doc, str(tmp_path / "BENCH_async.json"))
    with open(path) as fh:
        assert json.load(fh) == doc
    assert check_async_regression(doc, doc) == []


# -- the gate on synthetic documents ------------------------------------------
def _doc(ops=5000.0, speedup=5.0, rejected=0):
    phases = {n: {"ops_per_s": ops} for n in PHASES}
    return {"on": {"phases": phases,
                   "wblog": {"rejected": rejected, "stalls": 0}},
            "speedup": {n: speedup for n in PHASES}}


def test_async_gate_passes_against_identical_baseline():
    assert check_async_regression(_doc(), _doc()) == []


def test_async_gate_flags_throughput_drop():
    failures = check_async_regression(_doc(ops=2000.0), _doc(ops=5000.0))
    assert len(failures) == len(PHASES)
    assert "below baseline" in failures[0]


def test_async_gate_enforces_the_create_floor():
    failures = check_async_regression(_doc(speedup=1.5), _doc())
    assert any("acceptance floor" in f for f in failures)


def test_async_gate_flags_rejected_ops():
    failures = check_async_regression(_doc(rejected=3), _doc())
    assert any("rejected" in f for f in failures)


def test_async_gate_reports_missing_baseline_phase_not_keyerror():
    baseline = _doc()
    del baseline["on"]["phases"]["file_remove"]
    failures = check_async_regression(_doc(), baseline)
    assert len(failures) == 1
    assert "file_remove" in failures[0]
    assert "regenerate" in failures[0]


def test_async_gate_tolerates_empty_baseline_document():
    failures = check_async_regression(_doc(), {})
    assert len(failures) == len(PHASES)
    assert all("missing from baseline" in f for f in failures)
