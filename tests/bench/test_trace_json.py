"""``repro trace --json``: machine-readable per-endpoint/per-shard rows."""

import json

from repro.bench.trace_cli import run_trace


def test_trace_json_document():
    out = run_trace(scale="quick", phases=("dir_create",), json_path="-")
    doc = json.loads(out)                      # "-" returns JSON, no table
    assert doc["benchmark"] == "trace"
    assert doc["n_shards"] == 1
    assert "dir_create" in doc["phases"]
    assert doc["phases"]["dir_create"]["ops"] > 0
    assert doc["rows"], "expected per-endpoint rows"
    row = doc["rows"][0]
    for key in ("deployment", "endpoint", "method", "ops", "shard"):
        assert key in row


def test_trace_json_file_and_shard_tags(tmp_path):
    path = tmp_path / "trace.json"
    table = run_trace(scale="quick", phases=("dir_create",), shards=2,
                      json_path=str(path))
    assert "[json]" in table                   # table still rendered
    doc = json.loads(path.read_text())
    assert doc["n_shards"] == 2
    shards = {r["shard"] for r in doc["rows"]
              if r["endpoint"].startswith("s1zk")}
    assert shards == {1}, "shard-1 server rows must carry their shard id"
