"""The CI regression gates: graceful on malformed/stale baselines."""

from repro.bench import (check_regression, check_resolve_regression,
                         check_shard_regression)
from repro.bench.cache_bench import PHASES as CACHE_PHASES
from repro.bench.resolve_bench import PHASES as RESOLVE_PHASES
from repro.bench.shard_bench import CREATE_PHASE, PHASES as SHARD_PHASES


def cache_doc(ops=1000.0):
    phases = {n: {"ops_per_s": ops} for n in CACHE_PHASES}
    return {"on": {"phases": phases},
            "speedup": {n: 3.0 for n in CACHE_PHASES}}


def test_cache_gate_passes_against_identical_baseline():
    assert check_regression(cache_doc(), cache_doc()) == []


def test_cache_gate_flags_throughput_drop():
    failures = check_regression(cache_doc(ops=500.0), cache_doc(ops=1000.0))
    assert len(failures) == len(CACHE_PHASES)
    assert "below baseline" in failures[0]


def test_cache_gate_reports_missing_baseline_phase_not_keyerror():
    baseline = cache_doc()
    del baseline["on"]["phases"]["ls_l"]          # stale pre-ls_l file
    failures = check_regression(cache_doc(), baseline)
    assert len(failures) == 1
    assert "ls_l" in failures[0]
    assert "missing from baseline" in failures[0]
    assert "regenerate" in failures[0]


def test_cache_gate_tolerates_empty_baseline_document():
    failures = check_regression(cache_doc(), {})
    assert len(failures) == len(CACHE_PHASES)
    assert all("missing from baseline" in f for f in failures)


def shard_doc(create_4=4000.0):
    def run(n, ops):
        return {"n_shards": n,
                "phases": {p: {"ops_per_s": ops} for p in SHARD_PHASES}}
    doc = {"shards": {"1": run(1, 2000.0), "4": run(4, create_4)},
           "speedup_vs_1": {
               "1": {p: 1.0 for p in SHARD_PHASES},
               "4": {p: create_4 / 2000.0 for p in SHARD_PHASES}}}
    return doc


def test_shard_gate_enforces_the_scaling_floor():
    assert check_shard_regression(shard_doc()) == []      # 2.0x >= 1.5x
    failures = check_shard_regression(shard_doc(create_4=2400.0))
    assert len(failures) == 1
    assert CREATE_PHASE in failures[0]
    assert "floor" in failures[0]


def test_shard_gate_reports_missing_baseline_entries():
    baseline = shard_doc()
    del baseline["shards"]["4"]
    failures = check_shard_regression(shard_doc(), baseline)
    assert any("no entry for 4 shard(s)" in f for f in failures)
    assert all("regenerate" in f for f in failures)

    baseline = shard_doc()
    del baseline["shards"]["4"]["phases"][CREATE_PHASE]
    failures = check_shard_regression(shard_doc(), baseline)
    assert any(CREATE_PHASE in f and "regenerate" in f for f in failures)


def test_shard_gate_flags_per_configuration_drop():
    failures = check_shard_regression(shard_doc(create_4=3000.0),
                                      shard_doc(create_4=4100.0))
    assert any("below baseline" in f for f in failures)


def resolve_doc(ops=1000.0, deep_speedup=5.0):
    phases = {n: {"ops_per_s": ops} for n in RESOLVE_PHASES}
    speedup = {n: 1.0 for n in RESOLVE_PHASES}
    speedup["deep_stat"] = deep_speedup
    return {"depth": 8, "on": {"phases": phases}, "speedup": speedup}


def test_resolve_gate_passes_against_identical_baseline():
    assert check_resolve_regression(resolve_doc(), resolve_doc()) == []


def test_resolve_gate_enforces_the_deep_stat_floor():
    failures = check_resolve_regression(resolve_doc(deep_speedup=2.4),
                                        resolve_doc())
    assert len(failures) == 1
    assert "deep_stat" in failures[0] and "floor" in failures[0]


def test_resolve_gate_flags_throughput_drop():
    failures = check_resolve_regression(resolve_doc(ops=500.0),
                                        resolve_doc(ops=1000.0))
    assert len(failures) == len(RESOLVE_PHASES)
    assert all("below baseline" in f for f in failures)


def test_resolve_gate_reports_missing_baseline_phase_not_keyerror():
    baseline = resolve_doc()
    del baseline["on"]["phases"]["deep_stat"]
    failures = check_resolve_regression(resolve_doc(), baseline)
    assert len(failures) == 1
    assert "deep_stat" in failures[0]
    assert "missing from baseline" in failures[0]
    assert "regenerate" in failures[0]
