"""Bench harness plumbing: figure results, rendering, paper data, CLI."""

import pytest

from repro.bench.figures import FigureResult, SCALES, run_fig11
from repro.bench.paper_data import PAPER_CURVES, TEXT_CLAIMS
from repro.bench.report import render_figure, render_headline


def test_figure_result_add_and_at():
    fig = FigureResult("figX", "t", "x")
    fig.add("a/s1", 64, 100.0)
    fig.add("a/s1", 128, 200.0)
    fig.add("b/s2", 64, 5.0)
    assert fig.at("a/s1", 128) == 200.0
    assert fig.at("a/s1", 999) is None
    assert fig.at("missing", 64) is None


def test_render_figure_groups_panels():
    fig = FigureResult("figX", "Demo", "procs")
    fig.add("op1/sysA", 64, 1000.0)
    fig.add("op1/sysB", 64, 2000.0)
    fig.add("op2/sysA", 64, 3.14)
    fig.notes.append("hello note")
    text = render_figure(fig)
    assert "-- op1 --" in text and "-- op2 --" in text
    assert "sysA" in text and "sysB" in text
    assert "1,000" in text and "2,000" in text
    assert "3.14" in text
    assert "note: hello note" in text


def test_render_headline_contains_all_claims():
    measured = {
        "procs": 256,
        "dir_create_speedup_vs_lustre": 2.0,
        "dir_create_speedup_vs_pvfs": 24.0,
        "file_stat_speedup_vs_lustre": 1.4,
        "file_stat_speedup_vs_pvfs": 2.9,
    }
    text = render_headline(measured)
    assert "1.9x" in text and "23.0x" in text
    assert "2.00x" in text and "24.00x" in text


def test_paper_data_sanity():
    assert TEXT_CLAIMS["dir_create_speedup_vs_pvfs_256"] == 23.0
    assert TEXT_CLAIMS["zk_mb_per_million_znodes"] == 417.0
    fig10 = PAPER_CURVES["fig10_256procs"]
    # The paper's own ordering relations hold in the digitized data.
    assert fig10["dufs-lustre"]["dir_create"] > fig10["lustre"]["dir_create"]
    assert fig10["lustre"]["dir_create"] > 10 * fig10["pvfs"]["dir_create"]
    assert fig10["dufs-lustre"]["dir_create"] == \
        fig10["dufs-pvfs"]["dir_create"]  # backend-independent


def test_scales_are_increasing():
    q, m, f = SCALES["quick"], SCALES["medium"], SCALES["full"]
    assert max(q[0]) <= max(m[0]) <= max(f[0])
    assert q[1] <= m[1] <= f[1]


def test_fig11_runner_smoke():
    fig = run_fig11(scale="quick", points_millions=(1.0, 2.0),
                    calibrate_n=2000)
    zk = dict(fig.series["zookeeper"])
    assert zk[2.0] > zk[1.0] > 0
    assert dict(fig.series["dufs"])[1.0] < 60
    assert any("calibration" in n for n in fig.notes)


def test_cli_fig11(capsys):
    from repro.cli import main

    assert main(["fig11", "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "fig11" in out and "zookeeper" in out


def test_cli_rejects_unknown_target():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["fig99"])
