"""CSV export and ASCII chart rendering."""

import pytest

from repro.bench.chart import render_figure_charts, render_panel
from repro.bench.export import figure_to_csv, write_figure_csv
from repro.bench.figures import FigureResult


@pytest.fixture
def fig():
    f = FigureResult("figX", "Demo", "procs")
    for x, y in [(64, 1000.0), (128, 2000.0), (256, 4000.0)]:
        f.add("op/a", x, y)
        f.add("op/b", x, y / 2)
    return f


def test_csv_long_format(fig):
    text = figure_to_csv(fig)
    lines = text.strip().splitlines()
    assert lines[0] == "figure,panel,variant,x,value"
    assert len(lines) == 1 + 6
    assert "figX,op,a,64,1000" in text
    assert "figX,op,b,256,2000" in text


def test_csv_write_to_dir(tmp_path, fig):
    path = write_figure_csv(fig, tmp_path / "out")
    assert path.exists()
    assert path.name == "figX.csv"
    assert "figure,panel" in path.read_text()


def test_panel_chart_contains_markers_and_axis(fig):
    text = render_panel("op", {"a": fig.series["op/a"],
                               "b": fig.series["op/b"]})
    assert "o" in text and "x" in text  # two series markers
    assert "o=a" in text and "x=b" in text
    assert "4.2k" in text or "4.1k" in text  # ymax label ~4000*1.05
    assert "256" in text  # x axis label


def test_panel_chart_empty():
    assert "no data" in render_panel("op", {})


def test_figure_charts_all_panels(fig):
    fig.add("other/a", 64, 10.0)
    text = render_figure_charts(fig)
    assert text.count("(y max") == 2
    assert "figX" in text


def test_chart_handles_single_point():
    f = FigureResult("f", "t", "x")
    f.add("p/s", 64, 100.0)
    text = render_panel("p", {"s": dict(f.series)["p/s"]})
    assert "o" in text


def test_cli_chart_flag(capsys):
    from repro.cli import main

    assert main(["fig11", "--scale", "quick", "--chart"]) == 0
    out = capsys.readouterr().out
    assert "(y max" in out
