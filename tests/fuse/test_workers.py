"""FUSE worker-thread pool: the per-mount concurrency bound."""

import pytest

from repro.fuse import FuseMount, OperationTable
from repro.models.params import FUSEParams
from repro.sim import Cluster


def make_mount(max_workers, handler_delay):
    cluster = Cluster(seed=0)
    node = cluster.add_node("n0", cores=64)  # CPU never the constraint

    def slow_getattr(path):
        yield cluster.sim.timeout(handler_delay)
        return path

    mount = FuseMount(node, OperationTable({"getattr": slow_getattr}),
                      params=FUSEParams(max_workers=max_workers))
    return cluster, node, mount


def test_worker_pool_bounds_concurrency():
    cluster, node, mount = make_mount(max_workers=2, handler_delay=1.0)
    done = []

    def caller(k):
        yield from mount.stat(f"/f{k}")
        done.append((k, round(cluster.sim.now, 3)))

    for k in range(6):
        node.spawn(caller(k))
    cluster.run()
    # 6 requests, 2 workers, 1 s each -> waves at ~1, ~2, ~3 s.
    times = sorted(t for _, t in done)
    assert times[1] < 1.1
    assert times[2] > 1.9
    assert times[-1] > 2.9


def test_throughput_equals_workers_over_latency():
    cluster, node, mount = make_mount(max_workers=4, handler_delay=0.01)
    count = [0]

    def spinner():
        while cluster.sim.now < 2.0:
            yield from mount.stat("/x")
            count[0] += 1

    for _ in range(32):
        node.spawn(spinner())
    cluster.sim.run(until=2.0)
    rate = count[0] / 2.0
    assert rate == pytest.approx(4 / 0.0102, rel=0.1)


def test_errors_release_workers():
    from repro.errors import ENOENT, FSError

    cluster = Cluster(seed=0)
    node = cluster.add_node("n0")

    def failing(path):
        yield cluster.sim.timeout(0.001)
        raise FSError(ENOENT, path)

    mount = FuseMount(node, OperationTable({"getattr": failing}),
                      params=FUSEParams(max_workers=1))
    failures = []

    def caller(k):
        try:
            yield from mount.stat(f"/{k}")
        except FSError:
            failures.append(k)

    for k in range(5):
        node.spawn(caller(k))
    cluster.run()
    assert len(failures) == 5      # the single worker was never leaked
    assert mount.workers.count == 0
