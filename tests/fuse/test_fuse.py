"""FUSE layer: dispatch, crossing costs, ENOSYS, dummy passthrough."""

import pytest

from repro.errors import ENOENT, ENOSYS, FSError
from repro.fuse import DummyFS, FuseMount, OperationTable
from repro.fuse.ops import FUSE_OPERATIONS
from repro.sim import Cluster


@pytest.fixture
def dummy():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n0")
    return cluster, node, DummyFS(node)


def run(cluster, node, gen):
    proc = node.spawn(gen)
    return cluster.sim.run(until=proc)


def test_operation_table_rejects_unknown():
    with pytest.raises(ValueError):
        OperationTable({"frobnicate": lambda: None})


def test_operation_table_implemented_list(dummy):
    _, _, fs = dummy
    ops = fs.ops.implemented()
    for required in ("getattr", "mkdir", "create", "unlink", "rename"):
        assert required in ops


def test_unimplemented_op_is_enosys():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n0")
    mount = FuseMount(node, OperationTable({}))

    def main():
        try:
            yield from mount.stat("/x")
        except FSError as e:
            return e.err

    assert run(cluster, node, main()) == ENOSYS


def test_passthrough_roundtrip(dummy):
    cluster, node, fs = dummy

    def main():
        yield from fs.mkdir("/d")
        yield from fs.create("/d/f")
        st = yield from fs.stat("/d/f")
        entries = yield from fs.readdir("/d")
        return st.is_file, [e.name for e in entries]

    is_file, names = run(cluster, node, main())
    assert is_file and names == ["f"]


def test_crossing_cost_charged(dummy):
    cluster, node, fs = dummy
    p = fs.params

    def main():
        t0 = cluster.sim.now
        yield from fs.mkdir("/d")
        return cluster.sim.now - t0

    elapsed = run(cluster, node, main())
    assert elapsed >= p.crossing_cpu + p.completion_cpu


def test_errors_propagate_with_errno(dummy):
    cluster, node, fs = dummy

    def main():
        try:
            yield from fs.stat("/missing")
        except FSError as e:
            return e.err

    assert run(cluster, node, main()) == ENOENT
    assert fs.stats["errors"] == 1


def test_call_counter(dummy):
    cluster, node, fs = dummy

    def main():
        yield from fs.mkdir("/a")
        yield from fs.stat("/a")
        yield from fs.access("/a")

    run(cluster, node, main())
    assert fs.stats["calls"] == 3


def test_dummy_memory_is_flat(dummy):
    cluster, node, fs = dummy

    def main():
        for i in range(50):
            yield from fs.mkdir(f"/d{i}")

    before = fs.memory_mb()
    run(cluster, node, main())
    assert fs.memory_mb() == before


def test_read_write_passthrough(dummy):
    cluster, node, fs = dummy

    def main():
        yield from fs.create("/f")
        n = yield from fs.write("/f", 0, b"abcdef")
        data = yield from fs.read("/f", 2, 3)
        return n, data

    n, data = run(cluster, node, main())
    assert n == 6
    assert data == b"cde"


def test_symlink_ops(dummy):
    cluster, node, fs = dummy

    def main():
        yield from fs.create("/t")
        yield from fs.symlink("/t", "/l")
        return (yield from fs.readlink("/l"))

    assert run(cluster, node, main()) == "/t"


def test_all_fuse_operations_are_strings():
    assert all(isinstance(op, str) for op in FUSE_OPERATIONS)
    assert len(set(FUSE_OPERATIONS)) == len(FUSE_OPERATIONS)
