"""Fig. 7 — raw ZooKeeper throughput for basic operations.

Paper claims reproduced here:
- write ops (create/set/delete) get *slower* as servers are added
  (quorum replication overhead),
- zoo_get gets *faster* (each server answers reads locally).
"""

from repro.bench import render_figure, run_fig7

from .conftest import run_once


def test_fig7_zookeeper_throughput(benchmark):
    fig = run_once(benchmark, run_fig7, scale="quick")
    print()
    print(render_figure(fig))
    procs = max(x for x, _ in fig.series["zoo_get/zk1"])

    # Reads scale out with ensemble size.
    assert fig.at(f"zoo_get/zk8", procs) > 2.5 * fig.at(f"zoo_get/zk1", procs)
    assert fig.at(f"zoo_get/zk4", procs) > 1.5 * fig.at(f"zoo_get/zk1", procs)

    # Writes degrade with ensemble size.
    for op in ("zoo_create", "zoo_set", "zoo_delete"):
        assert fig.at(f"{op}/zk8", procs) < fig.at(f"{op}/zk1", procs)

    # The Fig. 7a-vs-7b asymmetry: creates outrun deletes at 1 server.
    assert fig.at("zoo_create/zk1", procs) > 1.4 * fig.at("zoo_delete/zk1",
                                                          procs)


def test_fig7_read_write_gap_at_scale(benchmark):
    """At 8 servers the read:write gap is more than an order of magnitude
    (the property DUFS's dir-stat numbers inherit)."""
    fig = run_once(benchmark, run_fig7, scale="quick", ensembles=(8,))
    procs = max(x for x, _ in fig.series["zoo_get/zk8"])
    assert fig.at("zoo_get/zk8", procs) > 10 * fig.at("zoo_create/zk8", procs)
