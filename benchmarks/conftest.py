"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs one figure (or one representative slice of it) at
``quick`` scale through pytest-benchmark, printing the regenerated series
and asserting the qualitative claims the paper makes about that figure —
who wins, in which direction curves move. Absolute-value comparisons
against the digitized paper numbers live in EXPERIMENTS.md, produced by
``python -m repro all --scale full``.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-figure simulation exactly once under pytest-benchmark
    (rounds>1 would multiply minutes of simulation for no extra signal)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
