"""Client metadata-cache ablation: cache-on vs cache-off, same workload.

Claims asserted here (the cache PR's acceptance bar):
- the hot stat phase is at least 2x faster with the cache on (repeat
  lookups of a warm working set are served client-locally),
- the shared stat phase is at least 2x faster AND actually coalesces
  (concurrent same-path misses on one node share one in-flight RPC),
- ``ls -l`` re-sweeps win from listing + piggybacked-stat caching,
- cache-on resolves the workload with far fewer ZooKeeper reads.

The run also refreshes ``BENCH_mdcache.json`` next to this file when the
``REPRO_WRITE_BENCH_JSON`` environment variable is set; the committed
copy is the CI regression baseline (``scripts/check_regression.py
--suite mdcache``).
"""

import json
import os
import pathlib

from repro.bench import (render_cache_ablation, run_cache_ablation,
                         write_cache_bench_json)

from .conftest import run_once

BASELINE = pathlib.Path(__file__).with_name("BENCH_mdcache.json")


def test_cache_ablation(benchmark):
    doc = run_once(benchmark, run_cache_ablation, scale="quick", seed=0)
    print()
    print(render_cache_ablation(doc))

    # ≥2x simulated stat-phase throughput with the cache on.
    assert doc["speedup"]["stat_hot"] >= 2.0
    assert doc["speedup"]["stat_shared"] >= 2.0
    assert doc["speedup"]["ls_l"] >= 2.0

    # The mechanism, not just the outcome: hits dominate, misses bounded
    # by the working-set size, concurrent cold lookups coalesced.
    on = doc["on"]
    assert on["hit_rate"] > 0.5
    assert on["cache"]["coalesced"] > 0
    assert on["cache"]["listing_hits"] > 0
    assert on["zk_reads"] < doc["off"]["zk_reads"] / 3

    # Cache-off side must report a completely cold cache (default policy
    # records nothing — the byte-identity guarantee's visible face).
    assert all(v == 0 for v in doc["off"]["cache"].values())

    if os.environ.get("REPRO_WRITE_BENCH_JSON"):
        write_cache_bench_json(doc, str(BASELINE))

    # Determinism guard: same seed on a fresh process must reproduce the
    # committed baseline exactly (simulated time, not wall clock).
    if BASELINE.exists():
        base = json.loads(BASELINE.read_text())
        if base.get("scale") == "quick" and base.get("seed") == 0:
            assert doc["on"]["phases"] == base["on"]["phases"]
            assert doc["off"]["phases"] == base["off"]["phases"]
