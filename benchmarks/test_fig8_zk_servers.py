"""Fig. 8 — DUFS operation throughput vs number of ZooKeeper servers,
against Basic Lustre (2 Lustre back-ends).

Paper claims reproduced:
- stat-type (read) operations improve significantly with more ZK servers,
- the effect on mutation ops is much smaller,
- DUFS's directory stat dwarfs Basic Lustre's.
"""

from repro.bench import render_figure, run_fig8

from .conftest import run_once


def test_fig8_zk_server_scaling(benchmark):
    fig = run_once(benchmark, run_fig8, scale="quick", ensembles=(1, 8))
    print()
    print(render_figure(fig))
    procs = max(x for x, _ in fig.series["dir_stat/zk1"])

    # Reads benefit from servers...
    assert fig.at("dir_stat/zk8", procs) > 1.8 * fig.at("dir_stat/zk1", procs)
    # ...mutations do not (quorum overhead roughly offsets the spreading).
    create_gain = fig.at("dir_create/zk8", procs) / fig.at("dir_create/zk1",
                                                           procs)
    assert create_gain < 1.3

    # DUFS dir stat crushes Basic Lustre even at quick scale.
    assert fig.at("dir_stat/zk8", procs) > 2 * fig.at("dir_stat/lustre",
                                                      procs)
