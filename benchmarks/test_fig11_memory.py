"""Fig. 11 — memory usage of ZooKeeper vs DUFS vs a dummy FUSE filesystem.

Paper claims reproduced:
- ZooKeeper memory grows linearly with created directories at
  ~417 MB per million znodes,
- DUFS client and dummy-FUSE memory stay flat (bounded),
- the byte-accounting model agrees with an actually-populated znode store.
"""

import pytest

from repro.bench import render_figure, run_fig11
from repro.bench.paper_data import TEXT_CLAIMS
from repro.models.memory import MemoryModel

from .conftest import run_once


def test_fig11_memory_curves(benchmark):
    fig = run_once(benchmark, run_fig11, scale="quick")
    print()
    print(render_figure(fig))
    zk = dict(fig.series["zookeeper"])
    dufs = dict(fig.series["dufs"])
    fuse = dict(fig.series["dummy-fuse"])

    # Linear ZooKeeper growth at the paper's slope (417 MB / M znodes).
    slope = (zk[2.5] - zk[0.5]) / 2.0
    paper_slope = TEXT_CLAIMS["zk_mb_per_million_znodes"]
    assert abs(slope - paper_slope) / paper_slope < 0.10

    # Clients are flat.
    assert max(dufs.values()) == min(dufs.values())
    assert max(fuse.values()) == min(fuse.values())
    # And orders of magnitude below ZooKeeper at 2.5 M dirs.
    assert zk[2.5] > 15 * max(dufs.values())


def test_model_agrees_with_real_store(benchmark):
    """Create real znodes and compare tracked bytes with the model."""
    from repro.zk.data import ZnodeStore

    model = MemoryModel()

    def populate():
        store = ZnodeStore()
        payload = b"D:755:0:0".ljust(model.avg_data_len, b" ")
        for i in range(30000):
            # ~40-char paths like the mdtest tree produces
            path = f"/mdtest/d.{i % 10}/d.{(i // 10) % 10}/sub.{i:012d}"
            if store.exists(path):
                continue
            parent = path.rsplit("/", 1)[0]
            for anc in ("/mdtest", f"/mdtest/d.{i % 10}", parent):
                if not store.exists(anc):
                    store.apply_create(anc, payload, i + 1, 0.0)
            store.apply_create(path, payload, i + 1, 0.0)
        return store

    store = run_once(benchmark, populate)
    per_node = store.approx_memory_bytes / len(store)
    print(f"\nreal store: {len(store)} znodes, {per_node:.0f} B/znode; "
          f"model: {model.bytes_per_znode:.0f} B/znode")
    assert abs(per_node - model.bytes_per_znode) / model.bytes_per_znode < 0.12


def test_tracemalloc_sanity(benchmark):
    """The pure-Python store is NOT the JVM; this documents (not asserts
    tightly) that our accounting is the modelled JVM cost, while actual
    Python overhead per znode is the same order of magnitude."""
    import tracemalloc

    from repro.zk.data import ZnodeStore

    def measure():
        tracemalloc.start()
        store = ZnodeStore()
        base, _ = tracemalloc.get_traced_memory()
        for i in range(20000):
            store.apply_create(f"/n{i:08d}", b"D:755:0:0", i + 1, 0.0)
        now, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return (now - base) / 20000

    per_node = run_once(benchmark, measure)
    print(f"\npython bytes/znode (tracemalloc): {per_node:.0f}")
    assert 50 < per_node < 2000
