"""Fig. 9 — file-operation throughput vs number of back-end storages.

Paper claims reproduced:
- adding back-ends helps file stat (reads distribute over more MDS/OSS),
- file create/remove barely move (the ZooKeeper write dominates),
- at 256 procs the stat gain exceeds 37% (asserted by the full-scale
  harness in EXPERIMENTS.md; here at quick scale we assert the ordering).
"""

from repro.bench import render_figure, run_fig9
from repro.bench.figures import _run_dufs
from repro.workloads.mdtest import FILE_PHASES

from .conftest import run_once


def test_fig9_backend_scaling(benchmark):
    fig = run_once(benchmark, run_fig9, scale="quick")
    print()
    print(render_figure(fig))
    procs = max(x for x, _ in fig.series["file_stat/lustre"])

    # More back-ends never hurts file stat; create/remove stay flat.
    assert fig.at("file_stat/backends4", procs) >= \
        0.97 * fig.at("file_stat/backends2", procs)
    create_ratio = fig.at("file_create/backends4", procs) / \
        fig.at("file_create/backends2", procs)
    assert 0.8 < create_ratio < 1.25


def test_fig9_stat_gain_at_contention(benchmark):
    """At 256 procs (the paper's operating point) 4 back-ends beat 2 by
    >25% on file stat — the §V-C '37%' effect."""

    def point(n_backends):
        res = _run_dufs("lustre", 256, 10, 0, n_backends=n_backends,
                        phases=FILE_PHASES)
        return res.throughput("file_stat")

    def both():
        return point(2), point(4)

    two, four = run_once(benchmark, both)
    print(f"\nfile_stat @256 procs: 2 backends={two:,.0f} "
          f"4 backends={four:,.0f} (+{four / two - 1:.0%})")
    assert four > 1.25 * two
