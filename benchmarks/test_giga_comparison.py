"""GIGA+ vs DUFS on one huge directory (related work, §VI).

The paper positions GIGA+ as the point design for million-file directories
("more relevant in workloads where the directories have a huge fan-out
factor") and criticizes its availability ("if the server or the partition
goes down ... the files are not accessible anymore"). Both halves,
measured.
"""

import pytest

from repro.core import build_dufs_deployment
from repro.pfs.giga import build_giga
from repro.sim import Cluster
from repro.workloads.driver import run_phase
from repro.workloads.mdtest import MdtestConfig, run_mdtest
from repro.workloads.treegen import TreeSpec

from .conftest import run_once


def giga_insert_throughput(procs=64, items=20, seed=0):
    cluster = Cluster(seed=seed)
    nodes = [cluster.add_node(f"client{i}") for i in range(8)]
    svc = build_giga(cluster, n_servers=4, split_threshold=400)
    clients = [svc.client(nodes[i % 8]) for i in range(procs)]

    def worker(p):
        for i in range(items):
            yield from clients[p].insert(f"f.{p}.{i}")

    res = run_phase(cluster.sim, "insert",
                    [nodes[i % 8] for i in range(procs)],
                    [worker(p) for p in range(procs)], items)
    return res.throughput, svc


def dufs_single_dir_create_throughput(procs=64, items=20, seed=0):
    dep = build_dufs_deployment(n_zk=8, n_backends=2, n_client_nodes=8,
                                backend="lustre", seed=seed)
    cfg = MdtestConfig(n_procs=procs, items_per_proc=items,
                       tree=TreeSpec(10, 2), single_dir=True,
                       phases=("file_create",))
    res = run_mdtest(dep.cluster, dep.mount_for, dep.node_for, cfg)
    return res.throughput("file_create")


def test_giga_wins_raw_huge_directory_inserts(benchmark):
    def measure():
        giga, svc = giga_insert_throughput()
        dufs = dufs_single_dir_create_throughput()
        return giga, dufs, svc

    giga, dufs, svc = run_once(benchmark, measure)
    print(f"\nsingle huge directory, 64 procs: GIGA+ inserts={giga:,.0f} "
          f"ops/s vs DUFS file creates={dufs:,.0f} ops/s")
    # No consistency protocol, no quorum, 4 unshackled servers: GIGA+ is
    # much faster at raw inserts — as the paper concedes.
    assert giga > 3 * dufs
    # And it spread the load (splits happened across servers).
    assert len([n for n in svc.partitions_per_server() if n]) >= 3


def test_giga_loses_availability(benchmark):
    """Crash one GIGA+ server: a slice of the directory disappears.
    Crash one ZooKeeper server under DUFS: nothing is lost."""
    from repro.errors import FSError
    from repro.sim.rpc import RpcTimeout

    def measure():
        # --- GIGA+ ---
        cluster = Cluster(seed=1)
        node = cluster.add_node("c0")
        svc = build_giga(cluster, n_servers=4, split_threshold=30)
        cli = svc.client(node)

        def fill():
            for i in range(400):
                yield from cli.insert(f"g{i}")

        p = node.spawn(fill())
        cluster.sim.run(until=p)
        svc.servers[1].node.crash()
        cli.rpc_timeout = 0.3
        lost = [0]

        def probe():
            for i in range(0, 400, 5):
                try:
                    yield from cli.lookup(f"g{i}")
                except (RpcTimeout, FSError):
                    lost[0] += 1

        p = node.spawn(probe())
        cluster.sim.run(until=p)

        # --- DUFS ---
        dep = build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=2,
                                    backend="local", seed=1,
                                    co_locate_zk=False,  # crash ZK, not us
                                    zk_request_timeout=0.5, zk_max_retries=4)
        m = dep.mounts[0]

        def fill2():
            yield from m.mkdir("/huge")
            for i in range(80):
                yield from m.create(f"/huge/d{i}")

        dep.call(lambda: fill2())
        dep.ensemble.servers[2].node.crash()  # a follower
        missing = [0]

        def probe2():
            for i in range(80):
                try:
                    yield from m.stat(f"/huge/d{i}")
                except FSError:
                    missing[0] += 1

        dep.call(lambda: probe2())
        return lost[0], missing[0]

    giga_lost, dufs_missing = run_once(benchmark, measure)
    print(f"\nafter one server crash: GIGA+ unreachable={giga_lost}/80 "
          f"probes, DUFS missing={dufs_missing}/80")
    assert giga_lost > 0       # GIGA+: part of the namespace is gone
    assert dufs_missing == 0   # DUFS: quorum replication shrugs it off
