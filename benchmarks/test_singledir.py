"""The paper's side experiment (§V): many files created in ONE directory.

This is the worst case for directory-lock designs (related work §VI:
"significant bottlenecks for concurrent create workloads, especially from
many clients working on one single directory" — the GIGA+ motivation).
Lustre serializes same-directory mutations on the directory mutex; DUFS
funnels them through the ZooKeeper write pipeline, which doesn't care that
the parent znode is shared.
"""

from repro.bench import render_figure, run_single_dir

from .conftest import run_once


def test_single_shared_directory(benchmark):
    fig = run_once(benchmark, run_single_dir, scale="quick")
    print()
    print(render_figure(fig))
    xs = sorted(x for x, _ in fig.series["file_create/lustre"])
    lo, hi = xs[0], xs[-1]

    # Lustre's single-dir create rate decays with concurrency (the dir
    # mutex serializes); DUFS's rate must not decay.
    lustre_trend = fig.at("file_create/lustre", hi) / \
        fig.at("file_create/lustre", lo)
    dufs_trend = fig.at("file_create/dufs-lustre", hi) / \
        fig.at("file_create/dufs-lustre", lo)
    assert dufs_trend > lustre_trend

    # Stats are unaffected by the shared directory on both systems.
    assert fig.at("file_stat/lustre", hi) > 5 * fig.at("file_create/lustre",
                                                       hi)
