"""DUFS vs Lustre CMD — the design alternative the paper argues against.

§II: "one metadata operation may need to update several different MDSs
... a global lock has to be in place to synchronize the updates and to
maintain consistency. This might hurt the throughput of metadata
operations." §VI adds that CMD's coordination still depends on a central
master. This benchmark quantifies both points.
"""

from repro.bench import render_figure, run_cmd_comparison

from .conftest import run_once


def test_cmd_global_lock_hurts_mutations(benchmark):
    fig = run_once(benchmark, run_cmd_comparison, scale="quick")
    print()
    print(render_figure(fig))
    procs = max(x for x, _ in fig.series["dir_create/dufs"])

    # The paper's critique: despite multiple ACTIVE MDSes, CMD's mutation
    # throughput is pinned by the global lock...
    assert fig.at("dir_create/dufs", procs) > \
        3 * fig.at("dir_create/cmd2", procs)
    # ...and ADDING MDSes makes it worse (more cross-server updates).
    assert fig.at("dir_create/cmd4", procs) < \
        1.05 * fig.at("dir_create/cmd2", procs)
    assert fig.at("global_locks/cmd4", procs) > \
        fig.at("global_locks/cmd2", procs)

    # Reads (no lock) DO scale with MDS count — CMD is fine for stats.
    assert fig.at("dir_stat/cmd4", procs) > \
        1.5 * fig.at("dir_stat/cmd2", procs)
