"""Fig. 10 — DUFS vs native Lustre and PVFS2, all six mdtest operations.

Paper claims reproduced:
- directory operations under DUFS are back-end independent (ZK only),
- PVFS2's mutation throughput is orders of magnitude below everyone,
- DUFS with PVFS back-end beats Basic PVFS everywhere,
- at 256 procs DUFS outperforms Lustre on ALL six ops, with the stated
  headline speedups (checked by test_headline_claims at medium scale).
"""

import pytest

from repro.bench import (
    render_figure,
    render_headline,
    run_fig10,
    run_headline_claims,
)
from repro.bench.paper_data import TEXT_CLAIMS

from .conftest import run_once


def test_fig10_system_comparison(benchmark):
    fig = run_once(benchmark, run_fig10, scale="quick")
    print()
    print(render_figure(fig))
    procs = max(x for x, _ in fig.series["dir_create/lustre"])

    # Directory ops are back-end independent under DUFS (ZooKeeper-only).
    for op in ("dir_create", "dir_stat", "dir_remove"):
        a = fig.at(f"{op}/dufs-lustre", procs)
        b = fig.at(f"{op}/dufs-pvfs", procs)
        assert abs(a - b) / a < 0.15, (op, a, b)

    # PVFS2 mutations are brutal; DUFS rescues its directory ops entirely.
    assert fig.at("dir_create/pvfs", procs) < 400
    assert fig.at("dir_create/dufs-pvfs", procs) > \
        10 * fig.at("dir_create/pvfs", procs)

    # DUFS-PVFS beats Basic PVFS (paper: "clearly better"). The two
    # disk-txn-bound mutations only pull ahead at 256 procs (covered by
    # the medium-scale headline test); at quick scale they must at least
    # be competitive.
    for op in ("dir_create", "dir_stat", "dir_remove", "file_stat"):
        assert fig.at(f"{op}/dufs-pvfs", procs) > fig.at(f"{op}/pvfs", procs)
    for op in ("file_create", "file_remove"):
        assert fig.at(f"{op}/dufs-pvfs", procs) > \
            0.8 * fig.at(f"{op}/pvfs", procs)

    # File ops: DUFS-Lustre way ahead of DUFS-PVFS (disk-bound back-end).
    assert fig.at("file_create/dufs-lustre", procs) > \
        5 * fig.at("file_create/dufs-pvfs", procs)


@pytest.mark.slow
def test_headline_claims(benchmark):
    """The §V-D speedups at 256 client processes, within tolerance."""
    measured = run_once(benchmark, run_headline_claims, scale="medium")
    print()
    print(render_headline(measured))
    # Each measured speedup within ~35% of the stated one, and in every
    # case DUFS must actually win.
    checks = [
        ("dir_create_speedup_vs_lustre", TEXT_CLAIMS[
            "dir_create_speedup_vs_lustre_256"]),
        ("dir_create_speedup_vs_pvfs", TEXT_CLAIMS[
            "dir_create_speedup_vs_pvfs_256"]),
        ("file_stat_speedup_vs_lustre", TEXT_CLAIMS[
            "file_stat_speedup_vs_lustre_256"]),
        ("file_stat_speedup_vs_pvfs", TEXT_CLAIMS[
            "file_stat_speedup_vs_pvfs_256"]),
    ]
    for key, paper in checks:
        got = measured[key]
        assert got > 1.0, key
        assert 0.65 * paper <= got <= 1.45 * paper, (key, got, paper)


def test_lustre_declines_dufs_holds(benchmark):
    """The scalability story: Lustre's throughput drops as processes grow;
    DUFS maintains (or improves) — the crossover that motivates the paper."""

    def run():
        return run_fig10(scale="quick")

    fig = run_once(benchmark, run)
    xs = sorted(x for x, _ in fig.series["dir_create/lustre"])
    lo, hi = xs[0], xs[-1]
    lustre_trend = fig.at("dir_create/lustre", hi) / \
        fig.at("dir_create/lustre", lo)
    dufs_trend = fig.at("dir_create/dufs-lustre", hi) / \
        fig.at("dir_create/dufs-lustre", lo)
    assert dufs_trend > lustre_trend  # DUFS scales better with procs
