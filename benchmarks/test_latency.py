"""Per-operation latency distributions (not in the paper, which reports
only throughput — latency is where the architectural differences show
up most directly)."""

import pytest

from repro.bench.figures import _run_basic, _run_dufs
from repro.workloads.mdtest import ALL_PHASES

from .conftest import run_once


def test_latency_profile_dufs_vs_lustre(benchmark):
    def measure():
        lustre = _run_basic("lustre", 64, 12, 0)
        dufs = _run_dufs("lustre", 64, 12, 0)
        return lustre, dufs

    lustre, dufs = run_once(benchmark, measure)
    print("\nper-op latency (64 procs), Basic Lustre vs DUFS(2x Lustre):")
    print(f"{'phase':>14} {'lustre p50':>12} {'lustre p99':>12} "
          f"{'dufs p50':>10} {'dufs p99':>10}")
    for phase in ALL_PHASES:
        ls = lustre.latency(phase)
        ds = dufs.latency(phase)
        print(f"{phase:>14} {ls.p50 * 1e3:>10.2f}ms {ls.p99 * 1e3:>10.2f}ms "
              f"{ds.p50 * 1e3:>8.2f}ms {ds.p99 * 1e3:>8.2f}ms")

    # Directory stats through ZooKeeper are far quicker than through the
    # MDS under load...
    assert dufs.latency("dir_stat").p50 < lustre.latency("dir_stat").p50
    # ...while DUFS mutations pay the quorum round (higher p50 than a
    # single-server intent RPC at this modest load).
    assert dufs.latency("dir_create").p50 > \
        lustre.latency("dir_create").p50 * 0.5
    # Sanity: every phase produced full summaries.
    for res in (lustre, dufs):
        for phase in ALL_PHASES:
            s = res.latency(phase)
            assert s is not None and s.p99 >= s.p50 > 0


def test_lustre_tail_grows_with_load(benchmark):
    """Lustre's p99 inflates disproportionately at 256 procs (queueing +
    thrash); this is the latency view of the Fig. 10 decline."""

    def measure():
        lo = _run_basic("lustre", 32, 12, 0)
        hi = _run_basic("lustre", 256, 12, 0)
        return lo, hi

    lo, hi = run_once(benchmark, measure)
    lo_p99 = lo.latency("dir_create").p99
    hi_p99 = hi.latency("dir_create").p99
    print(f"\nlustre dir_create p99: 32 procs={lo_p99 * 1e3:.2f}ms "
          f"256 procs={hi_p99 * 1e3:.2f}ms ({hi_p99 / lo_p99:.1f}x)")
    assert hi_p99 > 3 * lo_p99
