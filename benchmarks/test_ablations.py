"""Ablations of the design choices DESIGN.md calls out.

Not paper figures — these isolate *why* the curves look the way they do:
1. ZAB quorum cost is what slows writes as the ensemble grows.
2. Lustre's DLM callbacks are a real part of its concurrent-create cost.
3. DUFS's physical-path layout matters: the verbatim Fig.-4 layout mints a
   fresh directory chain per file and collapses file-op throughput.
4. Co-locating ZooKeeper with the clients (the paper's deployment) trades
   client CPU for lower read latency.
5. Consistent hashing (future work §VII) bounds relocation where
   MD5-mod-N cannot grow at all.
"""

import pytest

from repro.bench import render_figure, run_ablations
from repro.core.fid import make_fid
from repro.core.mapping import MappingFunction

from .conftest import run_once


def test_design_ablations(benchmark):
    fig = run_once(benchmark, run_ablations, scale="quick")
    print()
    print(render_figure(fig))

    def val(name):
        series = fig.series[name]
        return series[-1][1]

    # 1. quorum cost: writes at 8 servers slower than at 1.
    assert val("zoo_create/zk8") < val("zoo_create/zk1")

    # 2. DLM callbacks: the mechanism fires under concurrent creates
    # (revocations + forced re-lookups), even though throughput moves
    # little — the blocking waits don't occupy the MDS CPU.
    assert val("lustre_revocations/dlm=on") > 100
    assert val("lustre_revocations/dlm=off") == 0
    assert val("lustre_lookup_rpcs/dlm=on") > \
        val("lustre_lookup_rpcs/dlm=off")

    # 3. layout: the verbatim paper layout pays an extra mkdir per create.
    assert val("dufs_file_create/layout=amortized") > 1.3 * \
        val("dufs_file_create/layout=paper")

    # 4. both placements work; record the trade-off.
    assert val("dufs_dir_stat/colocated=True") > 0
    assert val("dufs_dir_stat/colocated=False") > 0

    # 5. observers (beyond the paper): same 8 machines, 3 voting — writes
    # speed up, reads keep the full fan-out.
    assert val("zk_write/3voters+5obs") > 1.2 * val("zk_write/8voters")
    assert val("zk_read/3voters+5obs") > 0.85 * val("zk_read/8voters")


def test_consistent_hashing_vs_modn(benchmark):
    """Future-work mapping: growing the mount set relocates ~1/(N+1) of
    files under consistent hashing; MD5-mod-N would relocate ~N/(N+1)."""

    def relocation_fraction():
        ring = MappingFunction(4, strategy="consistent")
        fids = [make_fid(3, i) for i in range(4000)]
        before = {f: ring.backend_for(f) for f in fids}
        ring.add_backend()
        moved = sum(1 for f in fids if ring.backend_for(f) != before[f])
        # What mod-N rehashing would have moved:
        mod4 = [f % 4 for f in fids]
        mod5 = [f % 5 for f in fids]
        modn_moved = sum(1 for a, b in zip(mod4, mod5) if a != b)
        return moved / len(fids), modn_moved / len(fids)

    ring_frac, modn_frac = run_once(benchmark, relocation_fraction)
    print(f"\nrelocated: consistent={ring_frac:.1%} vs mod-N={modn_frac:.1%}")
    assert ring_frac < 0.33
    assert modn_frac > 0.6
