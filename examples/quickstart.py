#!/usr/bin/env python
"""Quickstart: build a small DUFS deployment and use it like a filesystem.

Builds the full simulated stack — a 3-server ZooKeeper ensemble co-located
with 2 client nodes, merging 2 back-end mounts — and runs a handful of
POSIX operations through the FUSE mount, printing what happens at each
layer.

Run:  python examples/quickstart.py
"""

from repro.core import build_dufs_deployment
from repro.core.mapping import physical_path


def main():
    dep = build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=2,
                                backend="local")
    mount = dep.mounts[0]
    client = dep.clients[0]

    def workload():
        print("mkdir /experiments")
        yield from mount.mkdir("/experiments")
        print("mkdir /experiments/run-1")
        yield from mount.mkdir("/experiments/run-1")

        print("create /experiments/run-1/results.csv")
        yield from mount.create("/experiments/run-1/results.csv")
        n = yield from mount.write("/experiments/run-1/results.csv", 0,
                                   b"step,value\n1,3.14\n")
        print(f"  wrote {n} bytes")

        st = yield from mount.stat("/experiments/run-1/results.csv")
        print(f"  stat: file={st.is_file} size={st.st_size}B "
              f"mode={oct(st.st_mode & 0o7777)}")

        st = yield from mount.stat("/experiments")
        print(f"stat /experiments: dir={st.is_dir} nlink={st.st_nlink} "
              f"(answered by ZooKeeper, no back-end contact)")

        print("rename run-1 -> final  (atomic ZooKeeper multi; "
              "no data moves)")
        yield from mount.rename("/experiments/run-1", "/experiments/final")
        data = yield from mount.read("/experiments/final/results.csv", 0, 64)
        print(f"  read back {data!r}")

        entries = yield from mount.readdir("/experiments")
        print(f"readdir /experiments -> {[e.name for e in entries]}")

    dep.call(lambda: workload())

    fid = client.fidgen.client_id << 64  # the FID of the file we created
    backend = client.mapping.backend_for(fid)
    print()
    print("Where things actually live:")
    print(f"  FID of results.csv       : {fid:032x}")
    print(f"  deterministic mapping    : MD5(fid) mod 2 -> back-end "
          f"#{backend}")
    print(f"  physical path            : "
          f"{physical_path(fid, client.layout)}")
    print(f"  znodes in ZooKeeper      : "
          f"{len(dep.ensemble.servers[0].store) - 1}")
    print(f"  files on back-end 0 / 1  : "
          f"{[be.ns.count_files() for be in dep.backends]}")
    print(f"  replicas converged       : {dep.ensemble.converged()}")
    print(f"  DUFS client stats        : {client.stats}")


if __name__ == "__main__":
    main()
