#!/usr/bin/env python
"""Availability under metadata-server failure: DUFS/ZooKeeper vs Lustre.

The paper's §IV-I argues the decentralized layer improves reliability: a
ZooKeeper ensemble keeps serving while a majority is alive, whereas a
Lustre MDS failure stalls *all* metadata until the standby takes over.
This experiment measures both service gaps directly: a client issues one
metadata op every 10 ms while a declarative :class:`ChaosSchedule` injects
the failure, and we report how long the op stream stalled.

Run:  python examples/availability_comparison.py
"""

from repro.chaos import ChaosEngine, ChaosSchedule
from repro.core import build_dufs_deployment
from repro.errors import FSError
from repro.models.params import LustreParams, SimParams, ZKParams
from repro.pfs.lustre import build_lustre
from repro.sim import Cluster


def measure_gaps(sim, completions):
    gaps = [b - a for a, b in zip(completions, completions[1:])]
    return max(gaps) if gaps else 0.0


def op_stream(cluster, client, completions):
    yield from client.mkdir("/d")
    for i in range(600):
        try:
            yield from client.create(f"/d/f{i}")
            completions.append(cluster.sim.now)
        except FSError:
            pass
        yield cluster.sim.timeout(0.01)


def lustre_failover_gap():
    params = LustreParams(client_rpc_timeout=0.5, failover_takeover_delay=2.0)
    cluster = Cluster(seed=1)
    node = cluster.add_node("client")
    fs = build_lustre(cluster, "ha", params=params, with_standby=True)
    cli = fs.client(node)
    completions = []

    schedule = ChaosSchedule().failover(1.5, "fs")

    def on_event(spec, resolved):
        print("   [chaos] primary MDS crashes; standby takes over "
              f"after {params.failover_takeover_delay}s")

    engine = ChaosEngine(cluster, schedule, resolve=lambda s: fs,
                         on_event=on_event)
    engine.start()
    node.spawn(op_stream(cluster, cli, completions))
    cluster.sim.run(until=10.0)
    return measure_gaps(cluster.sim, completions), len(completions)


def dufs_zk_failover_gap():
    params = SimParams()
    params.zk = ZKParams(failure_detection=True, ping_interval=0.1,
                         ping_timeout=0.3, election_tick=0.05)
    dep = build_dufs_deployment(n_zk=5, n_backends=2, n_client_nodes=2,
                                backend="local", params=params,
                                co_locate_zk=False,
                                zk_request_timeout=0.4, zk_max_retries=10)
    dep.cluster.sim.run(until=1.0)  # settle
    mount = dep.mounts[0]
    completions = []

    schedule = ChaosSchedule().crash(1.5, "zk:leader")

    def resolve(symbol):
        leader = next(s for s in dep.ensemble.servers if s.role == "leading")
        return leader.node

    def on_event(spec, resolved):
        leader = next(s for s in dep.ensemble.servers if s.role == "leading")
        print(f"   [chaos] ZooKeeper LEADER zk{leader.sid} crashes; "
              "the ensemble re-elects")

    engine = ChaosEngine(dep.cluster, schedule, resolve=resolve,
                         on_event=on_event)
    engine.start()
    dep.client_nodes[0].spawn(op_stream(dep.cluster, mount, completions))
    dep.cluster.sim.run(until=11.0)
    return measure_gaps(dep.cluster.sim, completions), len(completions)


def main():
    print("-- Lustre: primary MDS crash, active/standby failover --")
    gap, done = lustre_failover_gap()
    print(f"   longest metadata stall: {gap * 1000:,.0f} ms "
          f"({done} ops completed)\n")

    print("-- DUFS: ZooKeeper LEADER crash, quorum re-election --")
    gap2, done2 = dufs_zk_failover_gap()
    print(f"   longest metadata stall: {gap2 * 1000:,.0f} ms "
          f"({done2} ops completed)\n")

    print(f"ZooKeeper's quorum failover is {gap / max(gap2, 1e-9):.1f}x "
          "shorter than the MDS standby takeover — and a *follower* crash "
          "(the common case, 4 of 5 servers) costs DUFS nothing at all, "
          "while Lustre has only the one active MDS to lose.")


if __name__ == "__main__":
    main()
