#!/usr/bin/env python
"""A mini evaluation campaign: DUFS vs Basic Lustre vs Basic PVFS2.

Runs the mdtest workload (the paper's benchmark: shared fan-out-10 tree,
six barrier-separated phases) against three systems at a configurable
process count and prints a Fig.-10-style comparison table.

Run:  python examples/mdtest_campaign.py [--procs 64] [--items 12]
"""

import argparse

from repro.core import build_dufs_deployment
from repro.pfs.lustre import build_lustre
from repro.pfs.pvfs import build_pvfs
from repro.sim import Cluster
from repro.workloads.mdtest import ALL_PHASES, MdtestConfig, run_mdtest
from repro.workloads.treegen import TreeSpec


def run_basic(kind, procs, items, seed=0):
    cluster = Cluster(seed=seed)
    nodes = [cluster.add_node(f"client{i}") for i in range(8)]
    fs = (build_lustre(cluster, "lustre") if kind == "lustre"
          else build_pvfs(cluster, "pvfs"))
    cfg = MdtestConfig(n_procs=procs, items_per_proc=items,
                       tree=TreeSpec(10, 2))
    return run_mdtest(cluster, lambda i: fs.client(nodes[i % 8]),
                      lambda i: nodes[i % 8], cfg)


def run_dufs(procs, items, seed=0):
    dep = build_dufs_deployment(n_zk=8, n_backends=2, n_client_nodes=8,
                                backend="lustre", seed=seed)
    cfg = MdtestConfig(n_procs=procs, items_per_proc=items,
                       tree=TreeSpec(10, 2))
    return run_mdtest(dep.cluster, dep.mount_for, dep.node_for, cfg)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--procs", type=int, default=64)
    parser.add_argument("--items", type=int, default=12)
    args = parser.parse_args()

    print(f"mdtest: {args.procs} client processes x {args.items} items, "
          f"shared tree fanout=10 depth=2\n")
    results = {
        "Basic Lustre": run_basic("lustre", args.procs, args.items),
        "DUFS (2x Lustre)": run_dufs(args.procs, args.items),
        "Basic PVFS2": run_basic("pvfs", args.procs, args.items),
    }
    width = 18
    print(f"{'operation':>14} " + "".join(f"{name:>{width}}"
                                          for name in results))
    for phase in ALL_PHASES:
        row = f"{phase:>14} "
        for name, res in results.items():
            row += f"{res.throughput(phase):>{width - 6},.0f} ops/s"
        print(row)
    print()
    dufs = results["DUFS (2x Lustre)"]
    lustre = results["Basic Lustre"]
    pvfs = results["Basic PVFS2"]
    print("speedups (DUFS vs ...):")
    for phase in ALL_PHASES:
        print(f"  {phase:>14}: {dufs.throughput(phase) / lustre.throughput(phase):5.2f}x Lustre   "
              f"{dufs.throughput(phase) / pvfs.throughput(phase):7.2f}x PVFS2")
    print("\n(the paper's headline numbers are at 256 processes: "
          "run with --procs 256)")


if __name__ == "__main__":
    main()
