#!/usr/bin/env python
"""The paper's Fig. 1 consistency problem — and how DUFS avoids it.

Two clients race: client 1 repeatedly creates directory ``/d1`` while
client 2 renames ``/d1`` to ``/d2``. With two *uncoordinated* metadata
servers (the strawman of §III-B), the servers can apply the operations in
different orders and end up inconsistent. Through ZooKeeper's atomic
broadcast every replica applies the same total order, so all replicas
converge — even while we crash and recover a ZooKeeper server mid-race.

Run:  python examples/consistency_demo.py
"""

from repro.core import build_dufs_deployment
from repro.errors import FSError
from repro.models.params import SimParams, ZKParams
from repro.zk.data import ZnodeStore


def strawman():
    """§III-B: two metadata servers applied in different orders diverge."""
    print("-- strawman: two UNcoordinated metadata servers --")
    mds1, mds2 = ZnodeStore(), ZnodeStore()
    # client 1: mkdir /d1 ; client 2: mv /d1 /d2 — arriving in different
    # orders at the two servers (Fig. 1b).
    mds1.apply(("create", "/d1", b"", 0, False), 1, 1.0)       # mkdir first
    mds1.apply(("multi", (("create", "/d2", b"", 0, False),
                          ("delete", "/d1"))), 2, 2.0)         # then rename
    mds2.apply(("create", "/d1", b"", 0, False), 1, 1.0)       # rename lost
    print(f"   MDS1 state: d1={mds1.exists('/d1') is not None} "
          f"d2={mds1.exists('/d2') is not None}")
    print(f"   MDS2 state: d1={mds2.exists('/d1') is not None} "
          f"d2={mds2.exists('/d2') is not None}")
    print(f"   consistent? {mds1.fingerprint() == mds2.fingerprint()}\n")


def dufs_race():
    print("-- DUFS: same race through the coordination service --")
    params = SimParams()
    params.zk = ZKParams(failure_detection=True)
    # Dedicated ZooKeeper nodes so crashing one doesn't take a DUFS client
    # with it; clients fail over to the next server and retry.
    dep = build_dufs_deployment(n_zk=5, n_backends=2, n_client_nodes=2,
                                backend="local", params=params,
                                co_locate_zk=False,
                                zk_request_timeout=0.5, zk_max_retries=6)
    # Wait for the initial election to settle.
    dep.cluster.sim.run(until=2.0)
    m0, m1 = dep.mounts[0], dep.mounts[1]
    sim = dep.cluster.sim
    outcomes = {"mkdir": 0, "rename": 0, "conflict": 0}

    def creator():
        for _ in range(30):
            try:
                yield from m0.mkdir("/d1")
                outcomes["mkdir"] += 1
            except FSError:
                outcomes["conflict"] += 1
            yield sim.timeout(0.002)

    def renamer():
        for _ in range(30):
            try:
                yield from m1.rename("/d1", "/d2")
                outcomes["rename"] += 1
                yield from m1.rmdir("/d2")
            except FSError:
                outcomes["conflict"] += 1
            yield sim.timeout(0.002)

    def chaos():
        # Crash a ZooKeeper follower mid-race, recover it later.
        yield sim.timeout(0.02)
        victim = next(s for s in dep.ensemble.servers
                      if s.role == "following")
        print(f"   [chaos] crashing ZooKeeper server zk{victim.sid}")
        victim.node.crash()
        yield sim.timeout(0.5)
        print(f"   [chaos] recovering zk{victim.sid}")
        victim.node.recover()

    dep.client_nodes[0].spawn(creator())
    dep.client_nodes[1].spawn(renamer())
    dep.client_nodes[0].spawn(chaos())
    dep.cluster.sim.run(until=dep.cluster.sim.now + 5.0)

    print(f"   outcomes: {outcomes}")
    store = dep.ensemble.servers[0].store
    print(f"   final namespace: d1={store.exists('/d1') is not None} "
          f"d2={store.exists('/d2') is not None}")
    fps = dep.ensemble.fingerprints()
    print(f"   replica fingerprints: {[hex(f)[:10] for f in fps]}")
    print(f"   all replicas consistent? {dep.ensemble.converged()}")


if __name__ == "__main__":
    strawman()
    dufs_race()
