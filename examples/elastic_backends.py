#!/usr/bin/env python
"""The paper's future work (§VII): consistent hashing for elastic mounts.

The production mapping ``MD5(fid) mod N`` is perfectly balanced but cannot
change N without relocating nearly every file. This example runs DUFS with
the consistent-hashing mapping, populates files, then *adds a back-end
mount* and shows that only ~1/(N+1) of the files need to move — and
actually migrates them.

Run:  python examples/elastic_backends.py
"""

from collections import Counter

from repro.core import build_dufs_deployment


def main():
    n_files = 300
    dep = build_dufs_deployment(n_zk=3, n_backends=3, n_client_nodes=2,
                                backend="local", mapping_strategy="consistent")
    mount = dep.mounts[0]
    client = dep.clients[0]

    def populate():
        yield from mount.mkdir("/data")
        for i in range(n_files):
            yield from mount.create(f"/data/f{i:04d}")

    dep.call(lambda: populate())
    fids = [((client.fidgen.client_id << 64) | i) for i in range(n_files)]
    before = {fid: client.mapping.backend_for(fid) for fid in fids}
    load = Counter(before.values())
    print(f"{n_files} files over 3 mounts (consistent hashing): "
          f"{dict(sorted(load.items()))}")

    # ---- grow the mount set (library API: repro.core.rebalance) --------
    print("\nadding back-end mount #3 and rebalancing ...")
    from repro.core.rebalance import rebalance_after_add
    from repro.pfs.localfs import LocalFS

    new_node = dep.cluster.add_node("local-new")
    new_fs = LocalFS(new_node)
    dep.backends.append(new_fs)

    def go():
        result = yield from rebalance_after_add(
            dep.clients, lambda c: new_fs.client())
        return result

    new_idx, moved_count, total = dep.call(lambda: go())
    print(f"files that had to relocate: {moved_count}/{total} "
          f"({moved_count / total:.1%}; mod-N would have moved ~75%)")
    counts = [be.ns.count_files() for be in dep.backends]
    print(f"files per mount after migration: {counts}")

    # every virtual file still resolves
    def verify():
        ok = 0
        for i in range(n_files):
            st = yield from mount.stat(f"/data/f{i:04d}")
            ok += st.is_file
        return ok

    ok = dep.call(lambda: verify())
    print(f"virtual files still reachable: {ok}/{n_files}")


if __name__ == "__main__":
    main()
