#!/usr/bin/env python
"""Fig. 11 memory analysis: what does the namespace cost ZooKeeper?

Reproduces the paper's memory study: ZooKeeper's resident size grows
linearly (~417 MB per million znodes) because the whole namespace lives in
memory, while the DUFS client and a dummy passthrough FUSE filesystem stay
flat. Also sizes a few real-world namespaces with the model, echoing the
paper's conclusion that memory is the design's main drawback.

Run:  python examples/memory_analysis.py
"""

from repro.models.memory import MemoryModel
from repro.zk.data import ZnodeStore


def main():
    model = MemoryModel()
    print(f"model: {model.bytes_per_znode:.0f} bytes per znode "
          f"(paper: 417 MB / 1e6 = 417 B)\n")

    print(f"{'M dirs':>8} {'ZooKeeper MB':>14} {'DUFS MB':>9} "
          f"{'dummy FUSE MB':>15}")
    for millions in (0.5, 1.0, 1.5, 2.0, 2.5):
        n = int(millions * 1e6)
        print(f"{millions:>8} {model.zookeeper_mb(n):>14,.0f} "
              f"{model.dufs_client_mb(n):>9,.0f} "
              f"{model.dummy_fuse_mb(n):>15,.0f}")

    # Cross-check the model against a real (simulated) znode store.
    store = ZnodeStore()
    payload = b"D:755:0:0".ljust(model.avg_data_len, b" ")
    n = 50_000
    for i in range(n):
        store.apply_create(f"/dirs-{i:031d}"[:model.avg_path_len],
                           payload, i + 1, 0.0)
    per = store.approx_memory_bytes / len(store)
    print(f"\ncross-check: {n} real znodes tracked at {per:.0f} B/znode")

    print("\nWhat this means for real namespaces:")
    for label, count in [("a scratch filesystem (10 M files)", 10e6),
                         ("a mid-size HPC center (100 M files)", 100e6),
                         ("a 2011-era petascale archive (1 B files)", 1e9)]:
        mb = model.zookeeper_mb(int(count))
        print(f"  {label:<42} -> {mb / 1024:,.1f} GB of ZooKeeper heap")
    print("\n(the paper's §VII names this the design's main drawback; the "
          "namespace is bounded by ensemble memory)")


if __name__ == "__main__":
    main()
