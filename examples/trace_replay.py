#!/usr/bin/env python
"""Replay an application-shaped operation trace against DUFS.

The mdtest benchmark only measures homogeneous phases; real applications
mix operations. This example synthesizes a stat-heavy mixed trace (or
loads one from a file in the documented text format), replays it against a
DUFS deployment, and prints throughput plus per-op latency percentiles.

Run:  python examples/trace_replay.py [--ops 2000] [--procs 16]
                                      [--trace FILE]
"""

import argparse

from repro.core import build_dufs_deployment
from repro.workloads.trace import (
    format_trace,
    parse_trace,
    replay_trace,
    synthesize_trace,
)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--ops", type=int, default=2000)
    parser.add_argument("--procs", type=int, default=16)
    parser.add_argument("--trace", type=str, default=None,
                        help="replay this trace file instead of synthesizing")
    parser.add_argument("--dump", type=str, default=None,
                        help="write the synthesized trace to a file")
    args = parser.parse_args()

    if args.trace:
        ops = parse_trace(open(args.trace).read())
        print(f"loaded {len(ops)} ops from {args.trace}")
    else:
        ops = synthesize_trace(args.procs, args.ops, seed=11)
        print(f"synthesized {len(ops)} ops for {args.procs} processes "
              "(stat-heavy mix: 8 stat : 4 create : 2 unlink : ...)")
    if args.dump:
        open(args.dump, "w").write(format_trace(ops))
        print(f"trace written to {args.dump}")

    dep = build_dufs_deployment(n_zk=4, n_backends=2, n_client_nodes=4,
                                backend="lustre")
    res = replay_trace(dep.cluster, dep.mount_for, dep.node_for, ops)

    print(f"\nreplayed {res.total_ops} ops in {res.duration:.3f}s simulated "
          f"-> {res.throughput:,.0f} ops/s ({res.errors} errors)")
    print(f"\n{'op':>10} {'count':>7} {'p50':>9} {'p95':>9} {'p99':>9}")
    for op in sorted(res.by_op):
        s = res.latencies.summary(op)
        print(f"{op:>10} {res.by_op[op]:>7} {s.p50 * 1e3:>7.2f}ms "
              f"{s.p95 * 1e3:>7.2f}ms {s.p99 * 1e3:>7.2f}ms")

    print("\nmetadata-only ops (mkdir/stat of dirs/readdir) never touched "
          "the Lustre back-ends;")
    print("file ops were spread over both instances: "
          + str([be.mds.stats['ops'] for be in dep.backends])
          + " MDS requests each")


if __name__ == "__main__":
    main()
