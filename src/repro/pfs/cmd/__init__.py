"""Lustre CMD (Clustered Metadata) model — the paper's foil (§II, §VI).

The Lustre community's proposed alternative to a metadata *service layer*:
multiple active MDSes partition the namespace by directory hash. The
catch, per the paper: "one metadata operation may need to update several
different MDSs. To maintain the consistency of the filesystem, this
update must be atomic. ... a global lock has to be in place to synchronize
the updates. This might hurt the throughput of metadata operations."

This package implements exactly that: hash-partitioned directory servers,
single-server fast paths, and a **global lock server** serializing every
cross-MDS mutation — so the benchmark can quantify the paper's critique
against DUFS's coordination-service approach.
"""

from .fs import CMDFS, build_cmd

__all__ = ["CMDFS", "build_cmd"]
