"""CMD client: single-server fast paths, global lock for cross-MDS ops.

mkdir and rmdir touch two metadata servers whenever the new directory
hashes to a different MDS than its parent — those updates are made atomic
by holding the global lock across both RPCs, per the CMD design the paper
critiques. File creates/unlinks touch only the parent's MDS (fast path).
Renames always take the global lock.
"""

from __future__ import annotations

import itertools
from typing import Generator, Tuple

from ...errors import EIO, FSError
from ...sim.node import Node
from ...sim.rpc import RpcAgent
from ..base import normalize_path, path_components
from .server import owner_index

_client_seq = itertools.count()


class CMDClient:
    def __init__(self, fs: "CMDFS", node: Node):  # noqa: F821
        self.fs = fs
        self.node = node
        self.sim = node.sim
        self.agent = RpcAgent(
            node, f"{fs.name}-cli-{node.name}-{next(_client_seq)}")
        self.stats = {"ops": 0, "global_locks": 0}

    # -- plumbing ------------------------------------------------------------
    def _owner_ep(self, dirpath: str) -> str:
        return self.fs.server_endpoints[
            owner_index(dirpath, len(self.fs.server_endpoints))]

    def _call(self, endpoint: str, method: str, args, size: int = 144) -> Generator:
        result = yield from self.agent.call(endpoint, method, args, size=size)
        return result

    def _split(self, path: str) -> Tuple[str, str]:
        path = normalize_path(path)
        comps = path_components(path)
        if not comps:
            raise FSError(EIO, path, "cannot operate on /")
        return ("/" + "/".join(comps[:-1])) or "/", comps[-1]

    def _global_lock(self) -> Generator:
        self.stats["global_locks"] += 1
        token = yield from self._call(self.fs.lock_endpoint, "acquire", None)
        return token

    def _global_unlock(self, token: int) -> None:
        self.agent.cast(self.fs.lock_endpoint, "release", token, size=48)

    # -- operations ------------------------------------------------------------
    def mkdir(self, path: str, mode: int = 0o755) -> Generator:
        self.stats["ops"] += 1
        path = normalize_path(path)
        parent, name = self._split(path)
        n = len(self.fs.server_endpoints)
        same_server = owner_index(parent, n) == owner_index(path, n)
        token = None
        if not same_server:
            # Atomic two-server update: hold the global lock throughout.
            token = yield from self._global_lock()
        try:
            yield from self._call(self._owner_ep(parent), "insert",
                                  (parent, name, True, mode))
            try:
                yield from self._call(self._owner_ep(path), "adopt_dir",
                                      (path,))
            except FSError:
                yield from self._call(self._owner_ep(parent), "remove",
                                      (parent, name, True))
                raise
        finally:
            if token is not None:
                self._global_unlock(token)
        return True

    def rmdir(self, path: str) -> Generator:
        self.stats["ops"] += 1
        path = normalize_path(path)
        parent, name = self._split(path)
        n = len(self.fs.server_endpoints)
        same_server = owner_index(parent, n) == owner_index(path, n)
        token = None
        if not same_server:
            token = yield from self._global_lock()
        try:
            yield from self._call(self._owner_ep(path), "drop_dir", (path,))
            yield from self._call(self._owner_ep(parent), "remove",
                                  (parent, name, True))
        finally:
            if token is not None:
                self._global_unlock(token)
        return True

    def create(self, path: str, mode: int = 0o644) -> Generator:
        self.stats["ops"] += 1
        parent, name = self._split(path)
        yield from self._call(self._owner_ep(parent), "insert",
                              (parent, name, False, mode))
        return True

    def unlink(self, path: str) -> Generator:
        self.stats["ops"] += 1
        parent, name = self._split(path)
        yield from self._call(self._owner_ep(parent), "remove",
                              (parent, name, False))
        return True

    def stat(self, path: str) -> Generator:
        self.stats["ops"] += 1
        path = normalize_path(path)
        if path == "/":
            st = yield from self._call(self._owner_ep("/"), "getattr_entry",
                                       ("/", ""))
            return st
        parent, name = self._split(path)
        st = yield from self._call(self._owner_ep(parent), "getattr_entry",
                                   (parent, name))
        return st

    def readdir(self, path: str) -> Generator:
        self.stats["ops"] += 1
        path = normalize_path(path)
        entries = yield from self._call(self._owner_ep(path), "readdir", path)
        return entries

    def rename(self, src: str, dst: str) -> Generator:
        """Always a global-lock operation in CMD (dirents may live on two
        different servers and the update must appear atomic)."""
        self.stats["ops"] += 1
        sparent, sname = self._split(src)
        dparent, dname = self._split(dst)
        token = yield from self._global_lock()
        try:
            is_dir = yield from self._call(self._owner_ep(sparent), "lookup",
                                           (sparent, sname))
            if is_dir:
                raise FSError(EIO, src, "CMD prototype: dir rename "
                              "unsupported (needs subtree migration)")
            yield from self._call(self._owner_ep(dparent), "insert",
                                  (dparent, dname, False, 0o644))
            yield from self._call(self._owner_ep(sparent), "remove",
                                  (sparent, sname, False))
        finally:
            self._global_unlock(token)
        return True

    def chmod(self, path: str, mode: int) -> Generator:
        self.stats["ops"] += 1
        parent, name = self._split(path)
        yield from self._call(self._owner_ep(parent), "set_mode",
                              (parent, name, mode))
        return True

    def truncate(self, path: str, size: int) -> Generator:
        self.stats["ops"] += 1
        parent, name = self._split(path)
        yield from self._call(self._owner_ep(parent), "set_size",
                              (parent, name, size))
        return True

    def access(self, path: str, mode: int = 0) -> Generator:
        yield from self.stat(path)
        return True
