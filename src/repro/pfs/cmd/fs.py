"""CMD filesystem assembly: N metadata servers + the global lock server."""

from __future__ import annotations

from typing import Dict, List, Optional

from ...models.params import LustreParams
from ...sim.node import Cluster, Node
from ...svc import TraceBus
from .client import CMDClient
from .server import CMDServer, GlobalLockServer


class CMDFS:
    def __init__(self, cluster: Cluster, name: str, server_nodes: List[Node],
                 lock_node: Node, params: Optional[LustreParams] = None,
                 bus: Optional[TraceBus] = None):
        self.cluster = cluster
        self.name = name
        self.params = params or LustreParams()
        self.bus = bus
        self.server_endpoints = [f"{name}-mds{i}"
                                 for i in range(len(server_nodes))]
        self.servers = [CMDServer(node, ep, i, len(server_nodes), self.params,
                                  bus=bus)
                        for i, (node, ep) in
                        enumerate(zip(server_nodes, self.server_endpoints))]
        self.lock_endpoint = f"{name}-glock"
        self.lock_server = GlobalLockServer(lock_node, self.lock_endpoint,
                                            self.params, bus=bus)
        self._clients: Dict[str, CMDClient] = {}

    def client(self, node: Node) -> CMDClient:
        cli = self._clients.get(node.name)
        if cli is None:
            cli = CMDClient(self, node)
            self._clients[node.name] = cli
        return cli

    def total_dirs(self) -> int:
        return sum(len(s.dirs) for s in self.servers)


def build_cmd(
    cluster: Cluster,
    name: str = "cmd",
    n_mds: int = 2,
    params: Optional[LustreParams] = None,
    bus: Optional[TraceBus] = None,
) -> CMDFS:
    """N active MDSes plus the (master) global-lock node — the paper notes
    CMD still depends on a central node for coordination."""
    params = params or LustreParams()
    nodes = [cluster.add_node(f"{name}-mdsnode{i}", cores=params.mds_cores)
             for i in range(n_mds)]
    lock_node = cluster.add_node(f"{name}-master", cores=params.mds_cores)
    return CMDFS(cluster, name, nodes, lock_node, params, bus=bus)
