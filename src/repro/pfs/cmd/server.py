"""CMD metadata servers and the global lock server.

Each directory (its entry table and its children's attributes) lives on
the MDS selected by a deterministic hash of the directory path. Operations
confined to one server take the fast path; operations spanning servers
(a mkdir whose new directory hashes elsewhere than its parent, renames
across directories) must hold the **global lock** for the duration of the
multi-server update — the serialization the paper predicts will "hurt the
throughput of metadata operations".
"""

from __future__ import annotations

import zlib
from typing import Dict, Generator, Optional, Tuple

from ...errors import (
    EEXIST,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    FSError,
)
from ...models.params import LustreParams
from ...sim.node import Node
from ...sim.resources import Resource
from ...sim.rpc import Reply
from ...svc import Service, TraceBus
from ..base import DEFAULT_DIR_MODE, S_IFDIR, S_IFREG, DirEntry, StatResult


def owner_index(path: str, n: int) -> int:
    """Deterministic directory-to-MDS placement."""
    return zlib.crc32(path.encode()) % n


class _Dirent:
    __slots__ = ("is_dir", "mode", "size", "mtime", "ctime", "nlink")

    def __init__(self, is_dir: bool, mode: int, now: float):
        self.is_dir = is_dir
        self.mode = mode
        self.size = 0
        self.mtime = self.ctime = now
        self.nlink = 2 if is_dir else 1


class GlobalLockServer:
    """The CMD design's global lock: one resource, cluster-wide."""

    def __init__(self, node: Node, endpoint: str, params: LustreParams,
                 bus: Optional[TraceBus] = None):
        self.node = node
        self.sim = node.sim
        self.params = params
        self.lock = Resource(self.sim, 1)
        self.svc = Service(node, endpoint, deployment="cmd", bus=bus)
        self.agent = self.svc.agent
        self.svc.expose("acquire", self._h_acquire,
                        cost=params.lock_grant_cpu)
        self.svc.expose_fast("release", self._f_release)
        self._held: Dict[int, object] = {}
        self._next_token = 0
        self.stats = {"acquisitions": 0}

    def _h_acquire(self, src: str, args) -> Generator:
        yield from self.node.cpu_work(self.params.lock_grant_cpu)
        req = self.lock.request()
        yield req
        self._next_token += 1
        token = self._next_token
        self._held[token] = req
        self.stats["acquisitions"] += 1
        return token

    def _f_release(self, src: str, token: int) -> None:
        req = self._held.pop(token, None)
        if req is not None:
            self.lock.release(req)


class CMDServer:
    """One clustered-MDS member: owns the directories that hash to it."""

    def __init__(self, node: Node, endpoint: str, index: int, n_servers: int,
                 params: LustreParams, bus: Optional[TraceBus] = None):
        self.node = node
        self.sim = node.sim
        self.endpoint = endpoint
        self.index = index
        self.n_servers = n_servers
        self.params = params
        # dir path -> {name: _Dirent}; attributes live with the parent.
        self.dirs: Dict[str, Dict[str, _Dirent]] = {}
        if index == owner_index("/", n_servers):
            self.dirs["/"] = {}
        self.stats = {"ops": 0}
        self.svc = s = Service(node, endpoint, deployment="cmd", bus=bus,
                               op_stats=self.stats)
        self.agent = self.svc.agent
        p = params
        s.expose("lookup", self._h_lookup, cost=p.lookup_cpu)
        s.expose("getattr_entry", self._h_getattr_entry, cost=p.getattr_cpu)
        s.expose("readdir", self._h_readdir, cost=p.readdir_cpu_base)
        s.expose("insert", self._h_insert, write=True, cost=p.create_cpu)
        s.expose("remove", self._h_remove, write=True, cost=p.unlink_cpu)
        s.expose("adopt_dir", self._h_adopt_dir, write=True,
                 cost=p.mkdir_cpu * 0.5)
        s.expose("drop_dir", self._h_drop_dir, write=True,
                 cost=p.rmdir_cpu * 0.5)
        s.expose("set_mode", self._h_set_mode, write=True,
                 cost=p.setattr_cpu)
        s.expose("set_size", self._h_set_size, write=True,
                 cost=p.setattr_cpu)

    def _charge(self, cost: float) -> Generator:
        thrash = 1.0 + self.params.thrash_coef * \
            (len(self.node.cpu.queue) + len(self.node.cpu.users)) / \
            self.params.thrash_norm / self.n_servers
        yield from self.node.cpu_work(cost * thrash)

    def _table(self, dirpath: str) -> Dict[str, _Dirent]:
        table = self.dirs.get(dirpath)
        if table is None:
            raise FSError(ENOENT, dirpath)
        return table

    # -- read ops -----------------------------------------------------------
    def _h_lookup(self, src: str, args: Tuple[str, str]) -> Generator:
        dirpath, name = args
        yield from self._charge(self.params.lookup_cpu)
        ent = self._table(dirpath).get(name)
        if ent is None:
            raise FSError(ENOENT, f"{dirpath}/{name}")
        return ent.is_dir

    def _h_getattr_entry(self, src: str, args: Tuple[str, str]) -> Generator:
        dirpath, name = args
        yield from self._charge(self.params.getattr_cpu)
        if name == "":
            if dirpath not in self.dirs:
                raise FSError(ENOENT, dirpath)
            return Reply(StatResult(st_mode=DEFAULT_DIR_MODE, st_nlink=2),
                         size=144)
        ent = self._table(dirpath).get(name)
        if ent is None:
            raise FSError(ENOENT, f"{dirpath}/{name}")
        mode = (S_IFDIR if ent.is_dir else S_IFREG) | (ent.mode & 0o7777)
        return Reply(StatResult(st_mode=mode, st_size=ent.size,
                                st_nlink=ent.nlink, st_mtime=ent.mtime,
                                st_ctime=ent.ctime), size=144)

    def _h_readdir(self, src: str, dirpath: str) -> Generator:
        table = self._table(dirpath)
        yield from self._charge(self.params.readdir_cpu_base
                                + self.params.readdir_cpu_per_entry
                                * len(table))
        out = [DirEntry(name, ent.is_dir) for name, ent in
               sorted(table.items())]
        return Reply(out, size=96 + 24 * len(out))

    # -- mutations ------------------------------------------------------------
    def _h_insert(self, src: str, args) -> Generator:
        dirpath, name, is_dir, mode = args
        yield from self._charge(self.params.create_cpu)
        table = self._table(dirpath)
        if name in table:
            raise FSError(EEXIST, f"{dirpath}/{name}")
        table[name] = _Dirent(is_dir, mode, self.sim.now)
        yield self.sim.timeout(self.params.journal_delay)
        return True

    def _h_remove(self, src: str, args) -> Generator:
        dirpath, name, want_dir = args
        yield from self._charge(self.params.unlink_cpu)
        table = self._table(dirpath)
        ent = table.get(name)
        if ent is None:
            raise FSError(ENOENT, f"{dirpath}/{name}")
        if want_dir and not ent.is_dir:
            raise FSError(ENOTDIR, f"{dirpath}/{name}")
        if not want_dir and ent.is_dir:
            raise FSError(EISDIR, f"{dirpath}/{name}")
        del table[name]
        yield self.sim.timeout(self.params.journal_delay)
        return True

    def _h_adopt_dir(self, src: str, args) -> Generator:
        """Create the directory object for a path this server owns."""
        (dirpath,) = args
        yield from self._charge(self.params.mkdir_cpu * 0.5)
        if dirpath in self.dirs:
            raise FSError(EEXIST, dirpath)
        self.dirs[dirpath] = {}
        yield self.sim.timeout(self.params.journal_delay)
        return True

    def _h_drop_dir(self, src: str, args) -> Generator:
        (dirpath,) = args
        yield from self._charge(self.params.rmdir_cpu * 0.5)
        table = self.dirs.get(dirpath)
        if table is None:
            raise FSError(ENOENT, dirpath)
        if table:
            raise FSError(ENOTEMPTY, dirpath)
        del self.dirs[dirpath]
        yield self.sim.timeout(self.params.journal_delay)
        return True

    def _h_set_mode(self, src: str, args) -> Generator:
        dirpath, name, mode = args
        yield from self._charge(self.params.setattr_cpu)
        ent = self._table(dirpath).get(name)
        if ent is None:
            raise FSError(ENOENT, f"{dirpath}/{name}")
        ent.mode = mode & 0o7777
        yield self.sim.timeout(self.params.journal_delay)
        return True

    def _h_set_size(self, src: str, args) -> Generator:
        dirpath, name, size = args
        yield from self._charge(self.params.setattr_cpu)
        ent = self._table(dirpath).get(name)
        if ent is None:
            raise FSError(ENOENT, f"{dirpath}/{name}")
        ent.size = size
        ent.mtime = self.sim.now
        yield self.sim.timeout(self.params.journal_delay)
        return True
