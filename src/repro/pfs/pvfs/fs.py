"""PVFS2 filesystem instance assembly."""

from __future__ import annotations

from typing import Dict, List, Optional

from ...models.params import PVFSParams
from ...sim.node import Cluster, Node
from ...svc import TraceBus
from .client import PVFSClient
from .server import DIR_T, PVFSServer, _Obj


class PVFSFS:
    def __init__(self, cluster: Cluster, name: str, server_nodes: List[Node],
                 params: Optional[PVFSParams] = None,
                 bus: Optional[TraceBus] = None):
        self.cluster = cluster
        self.name = name
        self.params = params or PVFSParams()
        self.bus = bus
        self.server_endpoints = [f"{name}-srv{i}"
                                 for i in range(len(server_nodes))]
        self.servers = [PVFSServer(node, ep, i, self.params, bus=bus)
                        for i, (node, ep) in
                        enumerate(zip(server_nodes, self.server_endpoints))]
        # Root directory lives on server 0.
        root = _Obj(self.servers[0].alloc_handle(), DIR_T, 0.0, 0o755)
        self.servers[0].objects[root.handle] = root
        self.root_handle = root.handle
        self._clients: Dict[str, PVFSClient] = {}

    def client(self, node: Node) -> PVFSClient:
        cli = self._clients.get(node.name)
        if cli is None:
            cli = PVFSClient(self, node)
            self._clients[node.name] = cli
        return cli

    def total_objects(self) -> int:
        return sum(len(s.objects) for s in self.servers)


def build_pvfs(
    cluster: Cluster,
    name: str = "pvfs",
    n_servers: Optional[int] = None,
    params: Optional[PVFSParams] = None,
    bus: Optional[TraceBus] = None,
) -> PVFSFS:
    params = params or PVFSParams()
    n = n_servers if n_servers is not None else params.n_servers
    nodes = [cluster.add_node(f"{name}-srvnode{i}") for i in range(n)]
    return PVFSFS(cluster, name, nodes, params, bus=bus)
