"""PVFS2-like parallel filesystem: handle-partitioned distributed metadata.

Captures the behaviours behind PVFS2's curves in the paper:

- metadata objects (directories, metafiles, datafiles) are spread over
  servers by handle ranges — some metadata parallelism (paper §III), but
- **no client caching**: every path resolution walks component-by-
  component, one lookup RPC per component, every time; and
- **synchronous metadata transactions**: each mutation is a Berkeley-DB
  style txn with an fdatasync on the owning server, and a file create
  additionally allocates a datafile on *every* I/O server — the reasons
  PVFS2 create throughput is two orders of magnitude below DUFS (Fig. 10).
"""

from .client import PVFSClient
from .fs import PVFSFS, build_pvfs

__all__ = ["PVFSClient", "PVFSFS", "build_pvfs"]
