"""PVFS2 server: owns a handle range of directory/metafile/datafile objects.

Mutations are synchronous disk transactions (trove/dbpf + fdatasync),
coalesced only up to ``disk_batch_max`` per sync — the dominant cost of
PVFS2 metadata writes. Request processing parallelism is limited
(``server_cores``), modeling the event-loop architecture of the era.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator, List, Optional, Tuple

from ...errors import EEXIST, EISDIR, ENOENT, ENOTDIR, ENOTEMPTY, FSError
from ...models.params import PVFSParams
from ...sim.core import Event, Interrupt
from ...sim.node import Node
from ...sim.resources import Resource, Store
from ...sim.rpc import Reply, RpcAgent

DIR_T = "dir"
META_T = "meta"
DFILE_T = "dfile"


class _Obj:
    __slots__ = ("handle", "kind", "entries", "dfiles", "mode", "size",
                 "atime", "mtime", "ctime", "target")

    def __init__(self, handle: int, kind: str, now: float, mode: int = 0o755):
        self.handle = handle
        self.kind = kind
        self.entries: Optional[Dict[str, int]] = {} if kind == DIR_T else None
        self.dfiles: Tuple[int, ...] = ()
        self.mode = mode
        self.size = 0
        self.atime = self.mtime = self.ctime = now
        self.target: Optional[str] = None   # symlink target


class PVFSServer:
    def __init__(self, node: Node, endpoint: str, index: int,
                 params: PVFSParams):
        self.node = node
        self.sim = node.sim
        self.endpoint = endpoint
        self.index = index
        self.params = params
        self.objects: Dict[int, _Obj] = {}
        self._next_handle = (index << 48) + 1
        # Bounded request parallelism, separate from node cores.
        self.workers = Resource(self.sim, params.server_cores)
        # Group-committed sync txns.
        self._txn_queue: deque[Event] = deque()
        self._txn_kick = Store(self.sim)
        node.spawn(self._txn_loop(), f"{endpoint}.txn")
        node.on_crash(self._on_crash)
        node.on_recover(self._on_recover)
        self.agent = RpcAgent(node, endpoint)
        self.stats = {"ops": 0, "txns": 0}
        a = self.agent
        for method in ("lookup", "getattr", "mkdir", "crdirent", "rmdirent",
                       "create_meta", "create_dfile", "remove_obj", "readdir",
                       "setattr", "dfile_size", "symlink_obj", "readlink",
                       "truncate_dfile"):
            a.register(method, getattr(self, f"_h_{method}"))

    # -- infrastructure -----------------------------------------------------
    def alloc_handle(self) -> int:
        h = self._next_handle
        self._next_handle += 1
        return h

    def _work(self, cpu: float) -> Generator:
        """Request processing under bounded server parallelism."""
        req = self.workers.request()
        try:
            yield req
            yield from self.node.cpu_work(cpu)
        finally:
            self.workers.release(req)
        self.stats["ops"] += 1

    def _sync_txn(self) -> Generator:
        """Wait until this mutation's group-committed fdatasync completes."""
        done = self.sim.event()
        self._txn_queue.append(done)
        self._txn_kick.put(True)
        yield done

    def _txn_loop(self) -> Generator:
        try:
            yield from self._txn_body()
        except Interrupt:
            return

    def _txn_body(self) -> Generator:
        while True:
            got = yield self._txn_kick.get()
            if got is None:
                return
            while self._txn_queue:
                batch = []
                while self._txn_queue and len(batch) < self.params.disk_batch_max:
                    batch.append(self._txn_queue.popleft())
                yield from self.node.disk_io(self.params.disk_txn)
                self.stats["txns"] += 1
                for ev in batch:
                    if not ev.triggered:
                        ev.succeed()

    def _on_crash(self) -> None:
        # In-flight (un-synced) transactions die with the server; their
        # requesters were interrupted or will time out.
        self._txn_queue.clear()

    def _on_recover(self) -> None:
        # Fresh kick store + txn loop, so a recovered server serves
        # mutations again (objects/handles persist: trove is on disk).
        self._txn_kick = Store(self.sim)
        self.node.spawn(self._txn_loop(), f"{self.endpoint}.txn")

    def _get(self, handle: int) -> _Obj:
        obj = self.objects.get(handle)
        if obj is None:
            raise FSError(ENOENT, msg=f"handle {handle:#x}")
        return obj

    # -- handlers -----------------------------------------------------------
    def _h_lookup(self, src: str, args: Tuple[int, str]) -> Generator:
        dir_handle, name = args
        yield from self._work(self.params.lookup_cpu)
        obj = self._get(dir_handle)
        if obj.kind != DIR_T:
            raise FSError(ENOTDIR, name)
        h = obj.entries.get(name)
        if h is None:
            raise FSError(ENOENT, name)
        return h

    def _h_getattr(self, src: str, handle: int) -> Generator:
        yield from self._work(self.params.getattr_cpu)
        obj = self._get(handle)
        return Reply((obj.kind, obj.mode, obj.size, obj.atime, obj.mtime,
                      obj.ctime, obj.dfiles,
                      len(obj.entries) if obj.entries is not None else 0),
                     size=144)

    def _h_mkdir(self, src: str, mode: int) -> Generator:
        yield from self._work(self.params.mkdir_cpu)
        h = self.alloc_handle()
        self.objects[h] = _Obj(h, DIR_T, self.sim.now, mode)
        yield from self._sync_txn()
        return h

    def _h_symlink_obj(self, src: str, target: str) -> Generator:
        yield from self._work(self.params.create_meta_cpu)
        h = self.alloc_handle()
        obj = _Obj(h, META_T, self.sim.now, 0o777)
        obj.target = target
        obj.size = len(target)
        self.objects[h] = obj
        yield from self._sync_txn()
        return h

    def _h_readlink(self, src: str, handle: int) -> Generator:
        yield from self._work(self.params.getattr_cpu)
        obj = self._get(handle)
        if obj.target is None:
            raise FSError(ENOENT, msg="not a symlink")
        return obj.target

    def _h_crdirent(self, src: str, args: Tuple[int, str, int]) -> Generator:
        parent_handle, name, handle = args
        yield from self._work(self.params.crdirent_cpu)
        parent = self._get(parent_handle)
        if parent.kind != DIR_T:
            raise FSError(ENOTDIR, name)
        if name in parent.entries:
            raise FSError(EEXIST, name)
        parent.entries[name] = handle
        parent.mtime = parent.ctime = self.sim.now
        yield from self._sync_txn()
        return True

    def _h_rmdirent(self, src: str, args: Tuple[int, str, bool]) -> Generator:
        parent_handle, name, must_be_dir = args
        yield from self._work(self.params.crdirent_cpu)
        parent = self._get(parent_handle)
        h = parent.entries.get(name)
        if h is None:
            raise FSError(ENOENT, name)
        del parent.entries[name]
        parent.mtime = parent.ctime = self.sim.now
        yield from self._sync_txn()
        return h

    def _h_create_meta(self, src: str, args) -> Generator:
        mode, dfiles = args if isinstance(args, tuple) else (args, ())
        yield from self._work(self.params.create_meta_cpu)
        h = self.alloc_handle()
        obj = _Obj(h, META_T, self.sim.now, mode)
        obj.dfiles = tuple(dfiles)
        self.objects[h] = obj
        yield from self._sync_txn()
        return h

    def _h_create_dfile(self, src: str, args) -> Generator:
        # Datafile handle allocation is lazily persisted (no fdatasync on
        # the create path) — only metafile and dirent txns are synchronous.
        yield from self._work(self.params.create_dfile_cpu)
        h = self.alloc_handle()
        self.objects[h] = _Obj(h, DFILE_T, self.sim.now)
        return h

    def _h_remove_obj(self, src: str, handle: int) -> Generator:
        yield from self._work(self.params.remove_cpu)
        obj = self.objects.get(handle)
        if obj is not None and obj.kind == DIR_T and obj.entries:
            raise FSError(ENOTEMPTY, msg=f"handle {handle:#x}")
        kind = obj.kind if obj is not None else DFILE_T
        self.objects.pop(handle, None)
        if kind != DFILE_T:
            # Datafile reclamation is deferred (like allocation); only
            # directory/metafile removals are synchronous txns.
            yield from self._sync_txn()
        return True

    def _h_readdir(self, src: str, handle: int) -> Generator:
        obj = self._get(handle)
        if obj.kind != DIR_T:
            raise FSError(ENOTDIR, msg=f"handle {handle:#x}")
        n = len(obj.entries)
        yield from self._work(self.params.readdir_cpu_base
                              + self.params.readdir_cpu_per_entry * n)
        return Reply(sorted(obj.entries.items()), size=96 + 24 * n)

    def _h_setattr(self, src: str, args: Tuple[int, int]) -> Generator:
        handle, mode = args
        yield from self._work(self.params.setattr_cpu)
        obj = self._get(handle)
        obj.mode = (obj.mode & ~0o7777) | (mode & 0o7777)
        obj.ctime = self.sim.now
        yield from self._sync_txn()
        return True

    def _h_dfile_size(self, src: str, handle: int) -> Generator:
        yield from self._work(self.params.getattr_dfile_cpu)
        obj = self._get(handle)
        return obj.size

    def _h_truncate_dfile(self, src: str, args: Tuple[int, int]) -> Generator:
        handle, size = args
        yield from self._work(self.params.setattr_cpu)
        obj = self._get(handle)
        obj.size = size
        obj.mtime = self.sim.now
        yield from self._sync_txn()
        return True
