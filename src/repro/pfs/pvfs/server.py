"""PVFS2 server: owns a handle range of directory/metafile/datafile objects.

Mutations are synchronous disk transactions (trove/dbpf + fdatasync),
coalesced only up to ``disk_batch_max`` per sync — the dominant cost of
PVFS2 metadata writes. Request processing parallelism is limited
(``server_cores``), modeling the event-loop architecture of the era.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ...errors import EEXIST, ENOENT, ENOTDIR, ENOTEMPTY, FSError
from ...models.params import PVFSParams
from ...sim.node import Node
from ...sim.rpc import Reply
from ...svc import Batcher, BoundedAdmission, Service, TraceBus

DIR_T = "dir"
META_T = "meta"
DFILE_T = "dfile"


class _Obj:
    __slots__ = ("handle", "kind", "entries", "dfiles", "mode", "size",
                 "atime", "mtime", "ctime", "target")

    def __init__(self, handle: int, kind: str, now: float, mode: int = 0o755):
        self.handle = handle
        self.kind = kind
        self.entries: Optional[Dict[str, int]] = {} if kind == DIR_T else None
        self.dfiles: Tuple[int, ...] = ()
        self.mode = mode
        self.size = 0
        self.atime = self.mtime = self.ctime = now
        self.target: Optional[str] = None   # symlink target


class PVFSServer:
    def __init__(self, node: Node, endpoint: str, index: int,
                 params: PVFSParams, bus: Optional[TraceBus] = None):
        self.node = node
        self.sim = node.sim
        self.endpoint = endpoint
        self.index = index
        self.params = params
        self.objects: Dict[int, _Obj] = {}
        self._next_handle = (index << 48) + 1
        # Bounded request-processing parallelism, separate from node cores.
        # The gate covers only the CPU phase (the event-loop model: a
        # request never holds a slot while waiting on trove), so it is
        # taken inside :meth:`_work` rather than as the Service admission
        # policy, which would pin slots across the sync-txn disk wait.
        self.workers = BoundedAdmission(self.sim, params.server_cores)
        # Group-committed sync txns (trove/dbpf + fdatasync).
        self._txn = Batcher(node, f"{endpoint}.txn", self._flush_txns,
                            max_batch=params.disk_batch_max,
                            bus=bus, deployment="pvfs")
        node.on_crash(self._on_crash)
        node.on_recover(self._on_recover)
        self.stats = {"ops": 0, "txns": 0}
        self.svc = s = Service(node, endpoint, deployment="pvfs", bus=bus,
                               op_stats=self.stats)
        self.agent = self.svc.agent
        p = params
        s.expose("lookup", self._h_lookup, cost=p.lookup_cpu)
        s.expose("getattr", self._h_getattr, cost=p.getattr_cpu)
        s.expose("readdir", self._h_readdir, cost=p.readdir_cpu_base)
        s.expose("readlink", self._h_readlink, cost=p.getattr_cpu)
        s.expose("dfile_size", self._h_dfile_size, cost=p.getattr_dfile_cpu)
        s.expose("mkdir", self._h_mkdir, write=True, cost=p.mkdir_cpu)
        s.expose("crdirent", self._h_crdirent, write=True,
                 cost=p.crdirent_cpu)
        s.expose("rmdirent", self._h_rmdirent, write=True,
                 cost=p.crdirent_cpu)
        s.expose("create_meta", self._h_create_meta, write=True,
                 cost=p.create_meta_cpu)
        s.expose("create_dfile", self._h_create_dfile, write=True,
                 cost=p.create_dfile_cpu)
        s.expose("remove_obj", self._h_remove_obj, write=True,
                 cost=p.remove_cpu)
        s.expose("setattr", self._h_setattr, write=True, cost=p.setattr_cpu)
        s.expose("symlink_obj", self._h_symlink_obj, write=True,
                 cost=p.create_meta_cpu)
        s.expose("truncate_dfile", self._h_truncate_dfile, write=True,
                 cost=p.setattr_cpu)

    # -- infrastructure -----------------------------------------------------
    def alloc_handle(self) -> int:
        h = self._next_handle
        self._next_handle += 1
        return h

    def _work(self, cpu: float) -> Generator:
        """Request processing under bounded server parallelism."""
        req = self.workers.admit("work")
        try:
            yield req
            yield from self.node.cpu_work(cpu)
        finally:
            self.workers.release(req)

    def _sync_txn(self) -> Generator:
        """Wait until this mutation's group-committed fdatasync completes."""
        done = self.sim.event()
        self._txn.submit(done)
        yield done

    def _flush_txns(self, batch: List) -> Generator:
        yield from self.node.disk_io(self.params.disk_txn)
        self.stats["txns"] += 1
        for ev in batch:
            if not ev.triggered:
                ev.succeed()

    def _on_crash(self) -> None:
        # In-flight (un-synced) transactions die with the server; their
        # requesters were interrupted or will time out.
        self._txn.clear()

    def _on_recover(self) -> None:
        # Fresh kick store + txn loop, so a recovered server serves
        # mutations again (objects/handles persist: trove is on disk).
        self._txn.restart()

    def _get(self, handle: int) -> _Obj:
        obj = self.objects.get(handle)
        if obj is None:
            raise FSError(ENOENT, msg=f"handle {handle:#x}")
        return obj

    # -- handlers -----------------------------------------------------------
    def _h_lookup(self, src: str, args: Tuple[int, str]) -> Generator:
        dir_handle, name = args
        yield from self._work(self.params.lookup_cpu)
        obj = self._get(dir_handle)
        if obj.kind != DIR_T:
            raise FSError(ENOTDIR, name)
        h = obj.entries.get(name)
        if h is None:
            raise FSError(ENOENT, name)
        return h

    def _h_getattr(self, src: str, handle: int) -> Generator:
        yield from self._work(self.params.getattr_cpu)
        obj = self._get(handle)
        return Reply((obj.kind, obj.mode, obj.size, obj.atime, obj.mtime,
                      obj.ctime, obj.dfiles,
                      len(obj.entries) if obj.entries is not None else 0),
                     size=144)

    def _h_mkdir(self, src: str, mode: int) -> Generator:
        yield from self._work(self.params.mkdir_cpu)
        h = self.alloc_handle()
        self.objects[h] = _Obj(h, DIR_T, self.sim.now, mode)
        yield from self._sync_txn()
        return h

    def _h_symlink_obj(self, src: str, target: str) -> Generator:
        yield from self._work(self.params.create_meta_cpu)
        h = self.alloc_handle()
        obj = _Obj(h, META_T, self.sim.now, 0o777)
        obj.target = target
        obj.size = len(target)
        self.objects[h] = obj
        yield from self._sync_txn()
        return h

    def _h_readlink(self, src: str, handle: int) -> Generator:
        yield from self._work(self.params.getattr_cpu)
        obj = self._get(handle)
        if obj.target is None:
            raise FSError(ENOENT, msg="not a symlink")
        return obj.target

    def _h_crdirent(self, src: str, args: Tuple[int, str, int]) -> Generator:
        parent_handle, name, handle = args
        yield from self._work(self.params.crdirent_cpu)
        parent = self._get(parent_handle)
        if parent.kind != DIR_T:
            raise FSError(ENOTDIR, name)
        if name in parent.entries:
            raise FSError(EEXIST, name)
        parent.entries[name] = handle
        parent.mtime = parent.ctime = self.sim.now
        yield from self._sync_txn()
        return True

    def _h_rmdirent(self, src: str, args: Tuple[int, str, bool]) -> Generator:
        parent_handle, name, must_be_dir = args
        yield from self._work(self.params.crdirent_cpu)
        parent = self._get(parent_handle)
        h = parent.entries.get(name)
        if h is None:
            raise FSError(ENOENT, name)
        del parent.entries[name]
        parent.mtime = parent.ctime = self.sim.now
        yield from self._sync_txn()
        return h

    def _h_create_meta(self, src: str, args) -> Generator:
        mode, dfiles = args if isinstance(args, tuple) else (args, ())
        yield from self._work(self.params.create_meta_cpu)
        h = self.alloc_handle()
        obj = _Obj(h, META_T, self.sim.now, mode)
        obj.dfiles = tuple(dfiles)
        self.objects[h] = obj
        yield from self._sync_txn()
        return h

    def _h_create_dfile(self, src: str, args) -> Generator:
        # Datafile handle allocation is lazily persisted (no fdatasync on
        # the create path) — only metafile and dirent txns are synchronous.
        yield from self._work(self.params.create_dfile_cpu)
        h = self.alloc_handle()
        self.objects[h] = _Obj(h, DFILE_T, self.sim.now)
        return h

    def _h_remove_obj(self, src: str, handle: int) -> Generator:
        yield from self._work(self.params.remove_cpu)
        obj = self.objects.get(handle)
        if obj is not None and obj.kind == DIR_T and obj.entries:
            raise FSError(ENOTEMPTY, msg=f"handle {handle:#x}")
        kind = obj.kind if obj is not None else DFILE_T
        self.objects.pop(handle, None)
        if kind != DFILE_T:
            # Datafile reclamation is deferred (like allocation); only
            # directory/metafile removals are synchronous txns.
            yield from self._sync_txn()
        return True

    def _h_readdir(self, src: str, handle: int) -> Generator:
        obj = self._get(handle)
        if obj.kind != DIR_T:
            raise FSError(ENOTDIR, msg=f"handle {handle:#x}")
        n = len(obj.entries)
        yield from self._work(self.params.readdir_cpu_base
                              + self.params.readdir_cpu_per_entry * n)
        return Reply(sorted(obj.entries.items()), size=96 + 24 * n)

    def _h_setattr(self, src: str, args: Tuple[int, int]) -> Generator:
        handle, mode = args
        yield from self._work(self.params.setattr_cpu)
        obj = self._get(handle)
        obj.mode = (obj.mode & ~0o7777) | (mode & 0o7777)
        obj.ctime = self.sim.now
        yield from self._sync_txn()
        return True

    def _h_dfile_size(self, src: str, handle: int) -> Generator:
        yield from self._work(self.params.getattr_dfile_cpu)
        obj = self._get(handle)
        return obj.size

    def _h_truncate_dfile(self, src: str, args: Tuple[int, int]) -> Generator:
        handle, size = args
        yield from self._work(self.params.setattr_cpu)
        obj = self._get(handle)
        obj.size = size
        obj.mtime = self.sim.now
        yield from self._sync_txn()
        return True
