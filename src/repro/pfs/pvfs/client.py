"""PVFS2 system-interface client.

No caching whatsoever (PVFS2 semantics): every operation resolves the path
component-by-component with one lookup RPC per component to the owning
server, then performs its object operations. File stats fan out to all
datafile servers in parallel to compute the size, as the 2.8-era sysint
getattr did.
"""

from __future__ import annotations

import itertools
from typing import Generator, List, Tuple

from ...errors import EEXIST, EIO, EISDIR, ENOENT, ENOTDIR, FSError
from ...resilience import BreakerBoard, RetryBudget, RetryPolicy
from ...sim.core import AllOf
from ...sim.node import Node
from ...sim.rpc import RpcAgent, RpcTimeout
from ...svc.queue import AdmissionReject
from ..base import (
    DirEntry,
    S_IFDIR,
    S_IFLNK,
    S_IFREG,
    StatResult,
    normalize_path,
    path_components,
)
from .server import DIR_T, META_T

_client_seq = itertools.count()


class PVFSClient:
    def __init__(self, fs: "PVFSFS", node: Node):  # noqa: F821
        self.fs = fs
        self.node = node
        self.sim = node.sim
        self.agent = RpcAgent(
            node, f"{fs.name}-cli-{node.name}-{next(_client_seq)}")
        self.stats = {"ops": 0, "rpcs": 0}
        # Shared resilience policy (inert at the defaults); breakers are
        # per server endpoint — PVFS talks to many.
        r = fs.params.resilience
        self.resilience = r
        self.retry = RetryPolicy(
            node.cluster.streams, f"pvfs.client.{self.agent.endpoint}",
            backoff_base=r.backoff_base, backoff_cap=r.backoff_cap,
            budget=RetryBudget(r.retry_budget, r.retry_refill))
        self.breakers = BreakerBoard(self.sim, r.breaker_threshold,
                                     r.breaker_cooldown,
                                     enabled=r.breaker_enabled)
        self.breaker_fastfails = 0

    # -- plumbing ------------------------------------------------------------
    def _owner(self, handle: int) -> str:
        return self.fs.server_endpoints[handle >> 48]

    def _call(self, endpoint: str, method: str, args, size: int = 144) -> Generator:
        self.stats["rpcs"] += 1
        timeout = self.fs.params.client_rpc_timeout
        r = self.resilience
        policy = self.retry
        # ``is not None`` (not truthiness): a configured timeout of 0 must
        # enable retries exactly like any other timeout — this disagreed
        # with the Lustre client for years.
        policy.max_retries = 4 if timeout is not None else 0
        state = policy.begin(self.sim.now)
        kw: dict = {}
        if r.deadline_propagation and r.op_deadline > 0:
            kw["deadline"] = self.sim.now + r.op_deadline
        while True:
            if not self.breakers.allow(endpoint):
                self.breaker_fastfails += 1
                state.attempt += 1
                if policy.exhausted(state, self.sim.now):
                    raise FSError(
                        EIO, msg=f"PVFS server unreachable: {method}"
                    ) from None
                sleep = policy.next_backoff(state)
                if sleep > 0:
                    yield self.sim.timeout(sleep)
                continue
            try:
                result = yield from self.agent.call(endpoint, method, args,
                                                    size=size, timeout=timeout,
                                                    **kw)
                self.breakers.on_success(endpoint)
                policy.on_success()
                return result
            except (RpcTimeout, AdmissionReject):
                self.breakers.on_failure(endpoint)
                state.attempt += 1
                if policy.exhausted(state, self.sim.now):
                    raise FSError(
                        EIO, msg=f"PVFS server unreachable: {method}"
                    ) from None
                sleep = policy.next_backoff(state)
                if sleep > 0:
                    yield self.sim.timeout(sleep)

    def _pcall(self, calls: List[Tuple[str, str, object]]) -> Generator:
        """Run several server calls in parallel, return results in order."""
        procs = [self.node.spawn(self._call(ep, m, a))
                 for ep, m, a in calls]
        yield AllOf(self.sim, procs)
        return [p.value for p in procs]

    def _resolve(self, path: str) -> Generator:
        """Path -> handle, one lookup RPC per component, no cache."""
        handle = self.fs.root_handle
        for comp in path_components(path):
            handle = yield from self._call(self._owner(handle), "lookup",
                                           (handle, comp),
                                           size=128 + len(comp))
        return handle

    def _resolve_parent(self, path: str) -> Generator:
        comps = path_components(path)
        if not comps:
            raise FSError(EISDIR, path, "cannot operate on /")
        parent = "/" + "/".join(comps[:-1])
        handle = yield from self._resolve(parent)
        return handle, comps[-1]

    def _server_for_new(self, parent_handle: int, name: str) -> str:
        # Stable across processes (Python's str hash is salted).
        import zlib
        key = zlib.crc32(f"{parent_handle}/{name}".encode())
        return self.fs.server_endpoints[key % len(self.fs.server_endpoints)]

    # -- operations ------------------------------------------------------------
    def mkdir(self, path: str, mode: int = 0o755) -> Generator:
        self.stats["ops"] += 1
        path = normalize_path(path)
        parent_handle, name = yield from self._resolve_parent(path)
        new_handle = yield from self._call(
            self._server_for_new(parent_handle, name), "mkdir", mode)
        try:
            yield from self._call(self._owner(parent_handle), "crdirent",
                                  (parent_handle, name, new_handle),
                                  size=144 + len(name))
        except FSError:
            # Racing create: garbage-collect the orphan dir object.
            yield from self._call(self._owner(new_handle), "remove_obj",
                                  new_handle)
            raise
        return True

    def create(self, path: str, mode: int = 0o644) -> Generator:
        self.stats["ops"] += 1
        path = normalize_path(path)
        parent_handle, name = yield from self._resolve_parent(path)
        # One datafile on every I/O server, allocated in parallel, then the
        # metafile referencing them (the sys-create msgpairarray pattern).
        dfiles = yield from self._pcall(
            [(ep, "create_dfile", None) for ep in self.fs.server_endpoints])
        meta_handle = yield from self._call(
            self._server_for_new(parent_handle, name), "create_meta",
            (mode, tuple(dfiles)))
        try:
            yield from self._call(self._owner(parent_handle), "crdirent",
                                  (parent_handle, name, meta_handle),
                                  size=144 + len(name))
        except FSError:
            removals = [(self._owner(h), "remove_obj", h)
                        for h in (meta_handle, *dfiles)]
            yield from self._pcall(removals)
            raise
        return True

    def _getattr(self, handle: int) -> Generator:
        attrs = yield from self._call(self._owner(handle), "getattr", handle)
        return attrs

    def stat(self, path: str) -> Generator:
        self.stats["ops"] += 1
        path = normalize_path(path)
        handle = yield from self._resolve(path)
        kind, mode, size, atime, mtime, ctime, dfiles, nent = \
            yield from self._getattr(handle)
        if kind == DIR_T:
            st_mode = S_IFDIR | (mode & 0o7777)
            nlink = 2 + nent
        else:
            st_mode = (S_IFLNK | 0o777) if self._is_symlink(handle, kind) \
                else S_IFREG | (mode & 0o7777)
            nlink = 1
        st = StatResult(st_mode=st_mode, st_ino=handle, st_nlink=nlink,
                        st_size=size, st_atime=atime, st_mtime=mtime,
                        st_ctime=ctime)
        if kind == META_T and dfiles:
            sizes = yield from self._pcall(
                [(self._owner(h), "dfile_size", h) for h in dfiles])
            st.st_size = sum(sizes)
        return st

    def _is_symlink(self, handle: int, kind: str) -> bool:
        obj = self.fs.servers[handle >> 48].objects.get(handle)
        return obj is not None and obj.target is not None

    def unlink(self, path: str) -> Generator:
        self.stats["ops"] += 1
        path = normalize_path(path)
        parent_handle, name = yield from self._resolve_parent(path)
        # Must not unlink a directory.
        child = yield from self._call(self._owner(parent_handle), "lookup",
                                      (parent_handle, name),
                                      size=128 + len(name))
        kind = (yield from self._getattr(child))[0]
        if kind == DIR_T:
            raise FSError(EISDIR, path)
        handle = yield from self._call(self._owner(parent_handle), "rmdirent",
                                       (parent_handle, name, False),
                                       size=144 + len(name))
        _, _, _, _, _, _, dfiles, _ = yield from self._getattr(handle)
        removals = [(self._owner(h), "remove_obj", h)
                    for h in (handle, *dfiles)]
        yield from self._pcall(removals)
        return True

    def rmdir(self, path: str) -> Generator:
        self.stats["ops"] += 1
        path = normalize_path(path)
        parent_handle, name = yield from self._resolve_parent(path)
        handle = yield from self._call(self._owner(parent_handle), "lookup",
                                       (parent_handle, name),
                                       size=128 + len(name))
        kind, _, _, _, _, _, _, nent = yield from self._getattr(handle)
        if kind != DIR_T:
            raise FSError(ENOTDIR, path)
        if nent:
            from ...errors import ENOTEMPTY
            raise FSError(ENOTEMPTY, path)
        yield from self._call(self._owner(parent_handle), "rmdirent",
                              (parent_handle, name, True),
                              size=144 + len(name))
        yield from self._call(self._owner(handle), "remove_obj", handle)
        return True

    def readdir(self, path: str) -> Generator:
        self.stats["ops"] += 1
        path = normalize_path(path)
        handle = yield from self._resolve(path)
        items = yield from self._call(self._owner(handle), "readdir", handle)
        out = []
        for name, h in items:
            obj = self.fs.servers[h >> 48].objects.get(h)
            out.append(DirEntry(name, obj is not None and obj.kind == DIR_T, h))
        return out

    def rename(self, src: str, dst: str) -> Generator:
        """Two dirent updates; NOT atomic (PVFS2 semantics)."""
        self.stats["ops"] += 1
        src, dst = normalize_path(src), normalize_path(dst)
        sp_handle, sname = yield from self._resolve_parent(src)
        dp_handle, dname = yield from self._resolve_parent(dst)
        handle = yield from self._call(self._owner(sp_handle), "rmdirent",
                                       (sp_handle, sname, False),
                                       size=144 + len(sname))
        try:
            yield from self._call(self._owner(dp_handle), "crdirent",
                                  (dp_handle, dname, handle),
                                  size=144 + len(dname))
        except FSError as e:
            if e.err == EEXIST:
                # Overwrite: drop the old target (and its datafiles), then
                # retry the insert.
                old = yield from self._call(self._owner(dp_handle), "rmdirent",
                                            (dp_handle, dname, False),
                                            size=144 + len(dname))
                old_attrs = yield from self._getattr(old)
                removals = [(self._owner(h), "remove_obj", h)
                            for h in (old, *old_attrs[6])]
                yield from self._pcall(removals)
                yield from self._call(self._owner(dp_handle), "crdirent",
                                      (dp_handle, dname, handle),
                                      size=144 + len(dname))
            else:
                raise
        return True

    def chmod(self, path: str, mode: int) -> Generator:
        self.stats["ops"] += 1
        handle = yield from self._resolve(normalize_path(path))
        yield from self._call(self._owner(handle), "setattr", (handle, mode))
        return True

    def truncate(self, path: str, size: int) -> Generator:
        self.stats["ops"] += 1
        handle = yield from self._resolve(normalize_path(path))
        _, _, _, _, _, _, dfiles, _ = yield from self._getattr(handle)
        if dfiles:
            per = size // len(dfiles)
            yield from self._pcall(
                [(self._owner(h), "truncate_dfile", (h, per)) for h in dfiles])
        return True

    def access(self, path: str, mode: int = 0) -> Generator:
        yield from self.stat(path)
        return True

    def symlink(self, target: str, linkpath: str) -> Generator:
        self.stats["ops"] += 1
        linkpath = normalize_path(linkpath)
        parent_handle, name = yield from self._resolve_parent(linkpath)
        h = yield from self._call(self._server_for_new(parent_handle, name),
                                  "symlink_obj", target,
                                  size=144 + len(target))
        yield from self._call(self._owner(parent_handle), "crdirent",
                              (parent_handle, name, h), size=144 + len(name))
        return True

    def readlink(self, path: str) -> Generator:
        self.stats["ops"] += 1
        handle = yield from self._resolve(normalize_path(path))
        target = yield from self._call(self._owner(handle), "readlink", handle)
        return target

    def open(self, path: str, flags: int = 0) -> Generator:
        handle = yield from self._resolve(normalize_path(path))
        return handle

    def read(self, path: str, offset: int, size: int) -> Generator:
        st = yield from self.stat(path)
        return max(0, min(size, st.st_size - offset))

    def write(self, path: str, offset: int, data: bytes) -> Generator:
        self.stats["ops"] += 1
        handle = yield from self._resolve(normalize_path(path))
        _, _, _, _, _, _, dfiles, _ = yield from self._getattr(handle)
        if not dfiles:
            raise FSError(ENOENT, path, "no datafiles")
        per = (offset + len(data)) // len(dfiles)
        yield from self._pcall(
            [(self._owner(h), "truncate_dfile", (h, per)) for h in dfiles])
        return len(data)
