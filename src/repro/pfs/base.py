"""Common filesystem types: stat results, dir entries, the client interface.

Every filesystem client in this package (Lustre, PVFS, local, DUFS) is
*duck-typed* against :class:`FileSystemClient`: each operation is a
generator driven inside a simulation process (``yield from client.mkdir(p)``)
that returns its result or raises :class:`repro.errors.FSError` with a
POSIX errno — the same contract a FUSE operation table has.
"""

from __future__ import annotations

import stat as statmod
from dataclasses import dataclass
from typing import Generator, List, Protocol

S_IFDIR = statmod.S_IFDIR
S_IFREG = statmod.S_IFREG
S_IFLNK = statmod.S_IFLNK

DEFAULT_DIR_MODE = S_IFDIR | 0o755
DEFAULT_FILE_MODE = S_IFREG | 0o644


@dataclass
class StatResult:
    """POSIX ``struct stat`` (the fields mdtest and DUFS care about)."""

    st_mode: int = DEFAULT_FILE_MODE
    st_ino: int = 0
    st_nlink: int = 1
    st_uid: int = 0
    st_gid: int = 0
    st_size: int = 0
    st_atime: float = 0.0
    st_mtime: float = 0.0
    st_ctime: float = 0.0

    @property
    def is_dir(self) -> bool:
        return statmod.S_ISDIR(self.st_mode)

    @property
    def is_file(self) -> bool:
        return statmod.S_ISREG(self.st_mode)

    @property
    def is_symlink(self) -> bool:
        return statmod.S_ISLNK(self.st_mode)


@dataclass(frozen=True)
class DirEntry:
    name: str
    is_dir: bool
    ino: int = 0


@dataclass
class StatVFS:
    """``statfs`` result: inode and capacity accounting. The paper's
    testbed disks were 250 GB SATA drives; capacities default to that."""

    f_files: int = 0            # inodes in use
    f_dirs: int = 0
    f_bytes_used: int = 0
    f_capacity: int = 250 * 10**9

    def merge(self, other: "StatVFS") -> "StatVFS":
        return StatVFS(self.f_files + other.f_files,
                       self.f_dirs + other.f_dirs,
                       self.f_bytes_used + other.f_bytes_used,
                       self.f_capacity + other.f_capacity)


class FileSystemClient(Protocol):
    """The POSIX-ish operation set (all methods are generators).

    ``mkdir``/``rmdir``/``create``/``unlink``/``stat``/``readdir``/
    ``rename``/``chmod``/``truncate``/``access``/``symlink``/``readlink``/
    ``open``/``read``/``write`` — mirroring the operations the DUFS
    prototype implements (paper §IV-C).
    """

    def mkdir(self, path: str, mode: int = 0o755) -> Generator: ...
    def rmdir(self, path: str) -> Generator: ...
    def create(self, path: str, mode: int = 0o644) -> Generator: ...
    def unlink(self, path: str) -> Generator: ...
    def stat(self, path: str) -> Generator: ...
    def readdir(self, path: str) -> Generator: ...
    def rename(self, src: str, dst: str) -> Generator: ...
    def chmod(self, path: str, mode: int) -> Generator: ...
    def truncate(self, path: str, size: int) -> Generator: ...
    def access(self, path: str, mode: int = 0) -> Generator: ...
    def symlink(self, target: str, linkpath: str) -> Generator: ...
    def readlink(self, path: str) -> Generator: ...
    def open(self, path: str, flags: int = 0) -> Generator: ...
    def read(self, path: str, offset: int, size: int) -> Generator: ...
    def write(self, path: str, offset: int, data: bytes) -> Generator: ...


def normalize_path(path: str) -> str:
    """Collapse redundant separators; keep it absolute."""
    if not path.startswith("/"):
        raise ValueError(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    return "/" + "/".join(parts)


def path_components(path: str) -> List[str]:
    return [p for p in path.split("/") if p]
