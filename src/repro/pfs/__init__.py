"""Parallel-filesystem substrates: Lustre-like, PVFS2-like, and a local FS.

All filesystems expose the same generator-based POSIX client interface
(:class:`repro.pfs.base.FileSystemClient`), so DUFS, the FUSE layer, and
the benchmark driver are back-end agnostic — exactly how the paper swaps
Lustre and PVFS2 under the same DUFS prototype.
"""

from .base import DirEntry, FileSystemClient, StatResult
from .localfs import LocalFS, LocalFSClient
from .namespace import Namespace

__all__ = [
    "DirEntry", "FileSystemClient", "StatResult", "Namespace",
    "LocalFS", "LocalFSClient",
]
