"""In-memory POSIX namespace engine.

Shared by the local filesystem and the Lustre MDS: an inode table plus a
directory tree, implementing the POSIX error semantics (ENOENT, EEXIST,
ENOTDIR, EISDIR, ENOTEMPTY, EXDEV-free rename, symlinks) that the test
oracle and DUFS both rely on. It is *pure data* — all timing/contention is
modeled by the servers that own a Namespace.
"""

from __future__ import annotations

import stat as statmod
from typing import Dict, List, Optional, Tuple

from ..errors import (
    EEXIST,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    FSError,
)
from .base import (
    DEFAULT_DIR_MODE,
    S_IFDIR,
    S_IFLNK,
    S_IFREG,
    DirEntry,
    StatResult,
    path_components,
)


class Inode:
    __slots__ = ("ino", "mode", "uid", "gid", "size", "atime", "mtime",
                 "ctime", "nlink", "entries", "symlink_target", "layout",
                 "data")

    def __init__(self, ino: int, mode: int, now: float):
        self.ino = ino
        self.mode = mode
        self.uid = 0
        self.gid = 0
        self.size = 0
        self.atime = now
        self.mtime = now
        self.ctime = now
        self.nlink = 2 if statmod.S_ISDIR(mode) else 1
        self.entries: Optional[Dict[str, int]] = (
            {} if statmod.S_ISDIR(mode) else None)
        self.symlink_target: Optional[str] = None
        self.layout: Tuple = ()      # (oss_index, object_id) pairs (Lustre)
        self.data = b""              # small-file contents (local fs)

    @property
    def is_dir(self) -> bool:
        return self.entries is not None

    def to_stat(self) -> StatResult:
        return StatResult(st_mode=self.mode, st_ino=self.ino,
                          st_nlink=self.nlink, st_uid=self.uid,
                          st_gid=self.gid, st_size=self.size,
                          st_atime=self.atime, st_mtime=self.mtime,
                          st_ctime=self.ctime)


class Namespace:
    """Inode table + directory tree with POSIX semantics."""

    def __init__(self):
        self._next_ino = 1
        self.inodes: Dict[int, Inode] = {}
        self.root = self._alloc(DEFAULT_DIR_MODE, 0.0)

    def _alloc(self, mode: int, now: float) -> Inode:
        ino = self._next_ino
        self._next_ino += 1
        inode = Inode(ino, mode, now)
        self.inodes[ino] = inode
        return inode

    def __len__(self) -> int:
        return len(self.inodes)

    # -- resolution ---------------------------------------------------------
    def lookup(self, path: str, follow: bool = False) -> Inode:
        """Resolve an absolute path to an inode (no symlink chasing unless
        ``follow``; symlinks mid-path are always followed, one level)."""
        inode = self.root
        comps = path_components(path)
        for i, comp in enumerate(comps):
            if not inode.is_dir:
                raise FSError(ENOTDIR, path)
            nxt = inode.entries.get(comp)
            if nxt is None:
                raise FSError(ENOENT, path)
            inode = self.inodes[nxt]
            if inode.symlink_target is not None and (follow or i < len(comps) - 1):
                inode = self.lookup(inode.symlink_target, follow=True)
        return inode

    def lookup_parent(self, path: str) -> Tuple[Inode, str]:
        comps = path_components(path)
        if not comps:
            raise FSError(EINVAL, path, "cannot operate on /")
        parent_path = "/" + "/".join(comps[:-1])
        parent = self.lookup(parent_path)
        if not parent.is_dir:
            raise FSError(ENOTDIR, path)
        return parent, comps[-1]

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except FSError:
            return False

    # -- mutations -----------------------------------------------------------
    def mkdir(self, path: str, mode: int, now: float) -> Inode:
        parent, name = self.lookup_parent(path)
        if name in parent.entries:
            raise FSError(EEXIST, path)
        inode = self._alloc(S_IFDIR | (mode & 0o7777), now)
        parent.entries[name] = inode.ino
        parent.nlink += 1
        parent.mtime = parent.ctime = now
        return inode

    def create(self, path: str, mode: int, now: float) -> Inode:
        parent, name = self.lookup_parent(path)
        if name in parent.entries:
            raise FSError(EEXIST, path)
        inode = self._alloc(S_IFREG | (mode & 0o7777), now)
        parent.entries[name] = inode.ino
        parent.mtime = parent.ctime = now
        return inode

    def symlink(self, target: str, linkpath: str, now: float) -> Inode:
        parent, name = self.lookup_parent(linkpath)
        if name in parent.entries:
            raise FSError(EEXIST, linkpath)
        inode = self._alloc(S_IFLNK | 0o777, now)
        inode.symlink_target = target
        inode.size = len(target)
        parent.entries[name] = inode.ino
        parent.mtime = parent.ctime = now
        return inode

    def readlink(self, path: str) -> str:
        inode = self.lookup(path)
        if inode.symlink_target is None:
            raise FSError(EINVAL, path, "not a symlink")
        return inode.symlink_target

    def rmdir(self, path: str, now: float) -> Inode:
        parent, name = self.lookup_parent(path)
        ino = parent.entries.get(name)
        if ino is None:
            raise FSError(ENOENT, path)
        inode = self.inodes[ino]
        if not inode.is_dir:
            raise FSError(ENOTDIR, path)
        if inode.entries:
            raise FSError(ENOTEMPTY, path)
        del parent.entries[name]
        del self.inodes[ino]
        parent.nlink -= 1
        parent.mtime = parent.ctime = now
        return inode

    def unlink(self, path: str, now: float) -> Inode:
        parent, name = self.lookup_parent(path)
        ino = parent.entries.get(name)
        if ino is None:
            raise FSError(ENOENT, path)
        inode = self.inodes[ino]
        if inode.is_dir:
            raise FSError(EISDIR, path)
        del parent.entries[name]
        inode.nlink -= 1
        if inode.nlink <= 0:
            del self.inodes[ino]
        parent.mtime = parent.ctime = now
        return inode

    def rename(self, src: str, dst: str, now: float) -> None:
        sparent, sname = self.lookup_parent(src)
        ino = sparent.entries.get(sname)
        if ino is None:
            raise FSError(ENOENT, src)
        inode = self.inodes[ino]
        dparent, dname = self.lookup_parent(dst)
        # Moving a directory under itself is invalid.
        if inode.is_dir and (dst + "/").startswith(src + "/"):
            raise FSError(EINVAL, dst, "rename into own subtree")
        existing_ino = dparent.entries.get(dname)
        if existing_ino is not None:
            existing = self.inodes[existing_ino]
            if existing.is_dir:
                if not inode.is_dir:
                    raise FSError(EISDIR, dst)
                if existing.entries:
                    raise FSError(ENOTEMPTY, dst)
                dparent.nlink -= 1
                del self.inodes[existing_ino]
            else:
                if inode.is_dir:
                    raise FSError(ENOTDIR, dst)
                existing.nlink -= 1
                if existing.nlink <= 0:
                    del self.inodes[existing_ino]
        del sparent.entries[sname]
        dparent.entries[dname] = ino
        if inode.is_dir:
            sparent.nlink -= 1
            dparent.nlink += 1
        sparent.mtime = sparent.ctime = now
        dparent.mtime = dparent.ctime = now
        inode.ctime = now

    def chmod(self, path: str, mode: int, now: float) -> Inode:
        inode = self.lookup(path)
        inode.mode = (inode.mode & ~0o7777) | (mode & 0o7777)
        inode.ctime = now
        return inode

    def truncate(self, path: str, size: int, now: float) -> Inode:
        inode = self.lookup(path)
        if inode.is_dir:
            raise FSError(EISDIR, path)
        inode.size = size
        inode.data = inode.data[:size].ljust(size, b"\0") if size else b""
        inode.mtime = inode.ctime = now
        return inode

    def readdir(self, path: str) -> List[DirEntry]:
        inode = self.lookup(path)
        if not inode.is_dir:
            raise FSError(ENOTDIR, path)
        out = []
        for name in sorted(inode.entries):
            child = self.inodes[inode.entries[name]]
            out.append(DirEntry(name, child.is_dir, child.ino))
        return out

    def stat(self, path: str) -> StatResult:
        return self.lookup(path).to_stat()

    # -- bookkeeping -----------------------------------------------------------
    def count_dirs(self) -> int:
        return sum(1 for i in self.inodes.values() if i.is_dir)

    def count_files(self) -> int:
        return sum(1 for i in self.inodes.values()
                   if not i.is_dir and i.symlink_target is None)
