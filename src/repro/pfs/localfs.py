"""Local in-memory filesystem.

The cheapest back-end: a :class:`Namespace` accessed through the standard
client interface with a small fixed CPU cost per call (VFS + page-cache
path of a local ext3). Used as the target of the *dummy FUSE* filesystem in
the Fig. 11 memory experiment and as a fast oracle in tests.
"""

from __future__ import annotations

from typing import Generator

from ..errors import EACCES, FSError
from ..sim.node import Node
from .base import StatVFS, normalize_path
from .namespace import Namespace

LOCAL_OP_CPU = 4e-6


class LocalFS:
    """The shared on-node filesystem state."""

    def __init__(self, node: Node):
        self.node = node
        self.ns = Namespace()

    def client(self) -> "LocalFSClient":
        return LocalFSClient(self)


class LocalFSClient:
    """Generator-based client for a :class:`LocalFS` on the same node."""

    def __init__(self, fs: LocalFS):
        self.fs = fs
        self.node = fs.node
        self.sim = fs.node.sim

    def _charge(self) -> Generator:
        yield from self.node.cpu_work(LOCAL_OP_CPU)

    # -- namespace ops -------------------------------------------------------
    def mkdir(self, path: str, mode: int = 0o755) -> Generator:
        yield from self._charge()
        self.fs.ns.mkdir(normalize_path(path), mode, self.sim.now)
        return True

    def rmdir(self, path: str) -> Generator:
        yield from self._charge()
        self.fs.ns.rmdir(normalize_path(path), self.sim.now)
        return True

    def create(self, path: str, mode: int = 0o644) -> Generator:
        yield from self._charge()
        self.fs.ns.create(normalize_path(path), mode, self.sim.now)
        return True

    def unlink(self, path: str) -> Generator:
        yield from self._charge()
        self.fs.ns.unlink(normalize_path(path), self.sim.now)
        return True

    def stat(self, path: str) -> Generator:
        yield from self._charge()
        return self.fs.ns.stat(normalize_path(path))

    def readdir(self, path: str) -> Generator:
        yield from self._charge()
        return self.fs.ns.readdir(normalize_path(path))

    def rename(self, src: str, dst: str) -> Generator:
        yield from self._charge()
        self.fs.ns.rename(normalize_path(src), normalize_path(dst), self.sim.now)
        return True

    def chmod(self, path: str, mode: int) -> Generator:
        yield from self._charge()
        self.fs.ns.chmod(normalize_path(path), mode, self.sim.now)
        return True

    def truncate(self, path: str, size: int) -> Generator:
        yield from self._charge()
        self.fs.ns.truncate(normalize_path(path), size, self.sim.now)
        return True

    def access(self, path: str, mode: int = 0) -> Generator:
        yield from self._charge()
        inode = self.fs.ns.lookup(normalize_path(path))
        if mode and not (inode.mode & mode):
            raise FSError(EACCES, path)
        return True

    def symlink(self, target: str, linkpath: str) -> Generator:
        yield from self._charge()
        self.fs.ns.symlink(target, normalize_path(linkpath), self.sim.now)
        return True

    def readlink(self, path: str) -> Generator:
        yield from self._charge()
        return self.fs.ns.readlink(normalize_path(path))

    def statfs(self) -> Generator:
        yield from self._charge()
        ns = self.fs.ns
        used = sum(len(i.data) for i in ns.inodes.values())
        return StatVFS(f_files=ns.count_files(), f_dirs=ns.count_dirs(),
                       f_bytes_used=used)

    def open(self, path: str, flags: int = 0) -> Generator:
        yield from self._charge()
        inode = self.fs.ns.lookup(normalize_path(path))
        return inode.ino

    def read(self, path: str, offset: int, size: int) -> Generator:
        yield from self._charge()
        inode = self.fs.ns.lookup(normalize_path(path))
        return inode.data[offset:offset + size]

    def write(self, path: str, offset: int, data: bytes) -> Generator:
        yield from self._charge()
        inode = self.fs.ns.lookup(normalize_path(path))
        buf = bytearray(inode.data.ljust(offset + len(data), b"\0"))
        buf[offset:offset + len(data)] = data
        inode.data = bytes(buf)
        inode.size = max(inode.size, offset + len(data))
        inode.mtime = self.sim.now
        return len(data)
