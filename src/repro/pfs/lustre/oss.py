"""Object storage server: holds file data objects, answers glimpse RPCs.

mdtest files are zero-byte, so the OSS's role in the metadata benchmarks is
the *glimpse* (file-size) RPC that every file stat() pays, plus async
object precreate/destroy casts from the MDS.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from ...errors import ENOENT, FSError
from ...models.params import LustreParams
from ...sim.node import Node
from ...sim.rpc import Reply
from ...svc import Service, TraceBus


class ObjectStorageServer:
    def __init__(self, node: Node, endpoint: str, params: LustreParams,
                 bus: Optional[TraceBus] = None):
        self.node = node
        self.endpoint = endpoint
        self.params = params
        self.objects: Dict[int, int] = {}   # object id -> size
        self.svc = s = Service(node, endpoint, deployment="lustre", bus=bus)
        self.agent = self.svc.agent
        p = params
        s.expose("glimpse", self._h_glimpse, cost=p.glimpse_cpu)
        s.expose("punch", self._h_punch, write=True,
                 cost=p.object_create_cpu)
        s.expose("write", self._h_write, write=True,
                 cost=p.object_create_cpu)
        s.expose("read", self._h_read, cost=p.object_create_cpu)
        s.expose("precreate", self._h_precreate, write=True,
                 cost=p.object_create_cpu)
        s.expose("destroy", self._h_destroy, write=True,
                 cost=p.object_destroy_cpu)

    def _h_precreate(self, src: str, object_id: int) -> Generator:
        yield from self.node.cpu_work(self.params.object_create_cpu)
        self.objects.setdefault(object_id, 0)

    def _h_destroy(self, src: str, object_id: int) -> Generator:
        yield from self.node.cpu_work(self.params.object_destroy_cpu)
        self.objects.pop(object_id, None)

    def _h_glimpse(self, src: str, object_id: int) -> Generator:
        yield from self.node.cpu_work(self.params.glimpse_cpu)
        return Reply(self.objects.get(object_id, 0), size=64)

    def _h_punch(self, src: str, args: Tuple[int, int]) -> Generator:
        object_id, size = args
        yield from self.node.cpu_work(self.params.object_create_cpu)
        self.objects[object_id] = size

    def _h_write(self, src: str, args: Tuple[int, int, int]) -> Generator:
        object_id, offset, length = args
        yield from self.node.cpu_work(self.params.object_create_cpu)
        yield from self.node.disk_io(64e-6 + length / 60e6)
        self.objects[object_id] = max(self.objects.get(object_id, 0),
                                      offset + length)
        return length

    def _h_read(self, src: str, args: Tuple[int, int, int]) -> Generator:
        object_id, offset, length = args
        if object_id not in self.objects:
            raise FSError(ENOENT, msg=f"object {object_id}")
        yield from self.node.cpu_work(self.params.object_create_cpu)
        size = self.objects[object_id]
        n = max(0, min(length, size - offset))
        return Reply(n, size=96 + n)
