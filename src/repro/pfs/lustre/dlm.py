"""Distributed lock manager (server side).

Tracks which client nodes hold cached read locks on each directory
resource. A namespace mutation under a directory must revoke every other
holder's lock via a blocking callback before it proceeds — the mechanism
behind Lustre's concurrent-create slowdown.
"""

from __future__ import annotations

from typing import Dict, List, Set


class LockManager:
    def __init__(self):
        # resource (directory path) -> set of client endpoints holding a
        # cached read lock
        self._granted: Dict[str, Set[str]] = {}
        self.stats = {"grants": 0, "revokes": 0}

    @property
    def resident_locks(self) -> int:
        return sum(len(s) for s in self._granted.values())

    def grant(self, resource: str, client: str) -> None:
        holders = self._granted.setdefault(resource, set())
        if client not in holders:
            holders.add(client)
            self.stats["grants"] += 1

    def holders(self, resource: str) -> Set[str]:
        return set(self._granted.get(resource, ()))

    def conflicting(self, resource: str, requester: str) -> List[str]:
        """Clients whose cached lock must be revoked before a mutation."""
        return [c for c in self._granted.get(resource, ()) if c != requester]

    def release(self, resource: str, client: str) -> None:
        holders = self._granted.get(resource)
        if holders is not None:
            holders.discard(client)
            if not holders:
                self._granted.pop(resource, None)

    def revoke_all(self, resource: str, keep: str) -> List[str]:
        """Drop every holder except ``keep``; returns the revoked clients."""
        revoked = self.conflicting(resource, keep)
        kept = self._granted.get(resource, set()) & {keep}
        if kept:
            self._granted[resource] = kept
        else:
            self._granted.pop(resource, None)
        self.stats["revokes"] += len(revoked)
        return revoked

    def drop_client(self, client: str) -> None:
        """Forget every lock a (crashed) client held."""
        for resource in list(self._granted):
            self.release(resource, client)
