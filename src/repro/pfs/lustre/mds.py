"""The Lustre metadata server.

One MDS owns the whole namespace (paper §II-A). Operations are intent-based
single RPCs (mkdir/create/unlink carry everything the server needs), the
journal is group-committed (pipelined latency, not a throughput cap), and
the DLM revokes other clients' cached directory locks before mutations.

Service-time model per request::

    cpu = (base_op_cost + dirent_coef*ln(1+entries) + lock_table_term)
          * thrash_multiplier(inflight)

``thrash_multiplier`` grows with the request queue (Lustre 1.8's fixed
service-thread pool degrades under deep queues); it is what bends the
curves downward at 256 client processes.
"""

from __future__ import annotations

import math
from typing import Generator, List, Optional, Tuple

from ...errors import ENOENT, FSError
from ...core.paths import parent_dir
from ...models.params import LustreParams
from ...sim.core import AllOf
from ...sim.node import Node
from ...sim.resources import Resource
from ...sim.rpc import Reply
from ...svc import Service, TraceBus
from ..namespace import Namespace
from .dlm import LockManager


class MetadataServer:
    def __init__(self, node: Node, endpoint: str, params: LustreParams,
                 n_oss: int, oss_endpoints: List[str],
                 ns: Optional[Namespace] = None,
                 bus: Optional[TraceBus] = None):
        self.node = node
        self.sim = node.sim
        self.endpoint = endpoint
        self.params = params
        self.n_oss = n_oss
        self.oss_endpoints = oss_endpoints
        # ``ns`` is the MDT backing store; a standby MDS taking over after
        # a failover attaches to the same (shared-disk) namespace.
        self.ns = ns if ns is not None else Namespace()
        self.dlm = LockManager()
        self._next_object = 0
        self._next_revoke_token = 0
        self._pending_cancels: dict = {}   # token -> Event
        # Per-directory mutation mutex (ldiskfs i_mutex: Lustre 1.8 has no
        # parallel dirops — concurrent creates in ONE directory serialize).
        self._dir_mutexes: dict = {}
        self.stats = {"ops": 0, "revoke_waits": 0}
        # The kernel counts every completion (into stats["ops"]) and tracks
        # in-flight depth, which the thrash model keys off: the depth of
        # the whole service queue (CPU + dir mutexes + lock callbacks),
        # like the real server's thread pool.
        self.svc = s = Service(node, endpoint, deployment="lustre", bus=bus,
                               op_stats=self.stats)
        self.agent = self.svc.agent
        p = params
        s.expose("lookup", self._h_lookup, cost=p.lookup_cpu)
        s.expose("getattr", self._h_getattr, cost=p.getattr_cpu)
        s.expose("readdir", self._h_readdir, cost=p.readdir_cpu_base)
        s.expose("readlink", self._h_readlink, cost=p.lookup_cpu)
        s.expose("statfs", self._h_statfs, cost=p.getattr_cpu)
        s.expose("mkdir", self._h_mkdir, write=True, cost=p.mkdir_cpu)
        s.expose("rmdir", self._h_rmdir, write=True, cost=p.rmdir_cpu)
        s.expose("create", self._h_create, write=True, cost=p.create_cpu)
        s.expose("unlink", self._h_unlink, write=True, cost=p.unlink_cpu)
        s.expose("rename", self._h_rename, write=True, cost=p.rename_cpu)
        s.expose("setattr", self._h_setattr, write=True, cost=p.setattr_cpu)
        s.expose("symlink", self._h_symlink, write=True, cost=p.create_cpu)
        s.expose_fast("lock_cancel", self._f_lock_cancel)

    # -- cost model -------------------------------------------------------
    def _inflight(self) -> int:
        return self.svc.inflight

    def _charge(self, base: float, dir_entries: int = 0,
                read: bool = False) -> Generator:
        p = self.params
        cost = base
        if dir_entries:
            cost += p.dirent_cpu_coef * math.log1p(dir_entries)
        if p.dlm_enabled:
            cost += p.lock_table_cpu_coef * math.log1p(
                self.dlm.resident_locks / 1024)
        # Mutations take the journal + DLM write path and suffer far more
        # from deep request queues than lockless cached getattrs do.
        coef = p.thrash_read_coef if read else p.thrash_coef
        thrash = 1.0 + coef * self._inflight() / p.thrash_norm
        yield from self.node.cpu_work(cost * thrash)

    def _parent_entries(self, path: str) -> int:
        try:
            parent, _ = self.ns.lookup_parent(path)
            return len(parent.entries or ())
        except FSError:
            return 0

    # -- DLM integration -----------------------------------------------------
    def _revoke_conflicts(self, resource: str, requester: str) -> Generator:
        """Blocking-callback round: revoke other clients' cached locks."""
        if not self.params.dlm_enabled:
            return
        victims = self.dlm.revoke_all(resource, keep=requester)
        if not victims:
            return
        self.stats["revoke_waits"] += 1
        yield from self.node.cpu_work(self.params.revoke_cpu * len(victims))
        waits = []
        for client in victims:
            self._next_revoke_token += 1
            token = self._next_revoke_token
            ev = self.sim.event()
            self._pending_cancels[token] = ev
            self.agent.cast(client, "lock_revoke", (resource, token), size=96)
            waits.append(ev)
        yield AllOf(self.sim, waits)

    def _f_lock_cancel(self, src: str, token: int) -> None:
        ev = self._pending_cancels.pop(token, None)
        if ev is not None and not ev.triggered:
            ev.succeed()

    def _dir_mutex(self, path: str) -> Resource:
        res = self._dir_mutexes.get(path)
        if res is None:
            res = Resource(self.sim, 1)
            self._dir_mutexes[path] = res
        return res

    def _grant(self, resource: str, client: str) -> None:
        if self.params.dlm_enabled:
            self.dlm.grant(resource, client)

    @staticmethod
    def _dir_of(path: str) -> str:
        return parent_dir(path)

    # -- read ops -----------------------------------------------------------
    def _h_lookup(self, src: str, args: Tuple[str]) -> Generator:
        (path,) = args
        yield from self._charge(self.params.lookup_cpu, read=True)
        inode = self.ns.lookup(path)
        self._grant(self._dir_of(path), src)
        if self.params.dlm_enabled:
            yield from self.node.cpu_work(self.params.lock_grant_cpu)
        return (inode.ino, inode.is_dir)

    def _h_getattr(self, src: str, args: Tuple[str]) -> Generator:
        (path,) = args
        inode_peek = None
        try:
            inode_peek = self.ns.lookup(path)
        except FSError:
            pass
        base = (self.params.getattr_cpu
                if inode_peek is not None and inode_peek.is_dir
                else self.params.getattr_file_cpu)
        yield from self._charge(base, read=True)
        inode = self.ns.lookup(path)  # raises ENOENT properly
        self._grant(self._dir_of(path), src)
        st = inode.to_stat()
        return Reply((st, inode.layout), size=144)

    def _h_readdir(self, src: str, args: Tuple[str]) -> Generator:
        (path,) = args
        entries = self.ns.readdir(path)
        yield from self._charge(
            self.params.readdir_cpu_base
            + self.params.readdir_cpu_per_entry * len(entries), read=True)
        self._grant(path, src)
        return Reply(entries, size=96 + 24 * len(entries))

    def _h_statfs(self, src: str, args) -> Generator:
        from ..base import StatVFS

        yield from self._charge(self.params.getattr_cpu, read=True)
        used = sum(i.size for i in self.ns.inodes.values())
        return Reply(StatVFS(f_files=self.ns.count_files(),
                             f_dirs=self.ns.count_dirs(),
                             f_bytes_used=used,
                             f_capacity=self.n_oss * 250 * 10**9), size=96)

    def _h_readlink(self, src: str, args: Tuple[str]) -> Generator:
        (path,) = args
        yield from self._charge(self.params.lookup_cpu, read=True)
        return self.ns.readlink(path)

    # -- mutations ------------------------------------------------------------
    def _h_mkdir(self, src: str, args: Tuple[str, int]) -> Generator:
        path, mode = args
        parent = self._dir_of(path)
        with self._dir_mutex(parent).request() as mutex:
            yield mutex
            yield from self._charge(self.params.mkdir_cpu,
                                    self._parent_entries(path))
            yield from self._revoke_conflicts(parent, src)
            self.ns.mkdir(path, mode, self.sim.now)
            self._grant(parent, src)
        yield self.sim.timeout(self.params.journal_delay)
        return True

    def _h_rmdir(self, src: str, args: Tuple[str]) -> Generator:
        (path,) = args
        parent = self._dir_of(path)
        with self._dir_mutex(parent).request() as mutex:
            yield mutex
            yield from self._charge(self.params.rmdir_cpu,
                                    self._parent_entries(path))
            yield from self._revoke_conflicts(parent, src)
            yield from self._revoke_conflicts(path, src)
            self.ns.rmdir(path, self.sim.now)
            self._dir_mutexes.pop(path, None)
        yield self.sim.timeout(self.params.journal_delay)
        return True

    def _h_create(self, src: str, args: Tuple[str, int]) -> Generator:
        path, mode = args
        parent = self._dir_of(path)
        with self._dir_mutex(parent).request() as mutex:
            yield mutex
            yield from self._charge(self.params.create_cpu,
                                    self._parent_entries(path))
            yield from self._revoke_conflicts(parent, src)
            inode = self.ns.create(path, mode, self.sim.now)
            # Attach a precreated object on one OSS (EA layout);
            # precreation is batched/async, not serializing the create.
            oss_index = self._next_object % max(1, self.n_oss)
            self._next_object += 1
            inode.layout = ((oss_index, self._next_object),)
            self.agent.cast(self.oss_endpoints[oss_index], "precreate",
                            self._next_object, size=64)
            self._grant(parent, src)
        yield self.sim.timeout(self.params.journal_delay)
        return inode.ino

    def _h_unlink(self, src: str, args: Tuple[str]) -> Generator:
        (path,) = args
        parent = self._dir_of(path)
        with self._dir_mutex(parent).request() as mutex:
            yield mutex
            yield from self._charge(self.params.unlink_cpu,
                                    self._parent_entries(path))
            yield from self._revoke_conflicts(parent, src)
            inode = self.ns.unlink(path, self.sim.now)
            for oss_index, object_id in inode.layout:
                self.agent.cast(self.oss_endpoints[oss_index], "destroy",
                                object_id, size=64)
        yield self.sim.timeout(self.params.journal_delay)
        return True

    def _h_rename(self, src: str, args: Tuple[str, str]) -> Generator:
        spath, dpath = args
        sparent, dparent = self._dir_of(spath), self._dir_of(dpath)
        # Lock both parents in canonical order (deadlock avoidance).
        locks = [self._dir_mutex(d) for d in sorted({sparent, dparent})]
        reqs = []
        try:
            for lock in locks:
                req = lock.request()
                reqs.append((lock, req))
                yield req
            yield from self._charge(self.params.rename_cpu,
                                    self._parent_entries(spath))
            yield from self._revoke_conflicts(sparent, src)
            if dparent != sparent:
                yield from self._revoke_conflicts(dparent, src)
            self.ns.rename(spath, dpath, self.sim.now)
        finally:
            for lock, req in reversed(reqs):
                lock.release(req)
        yield self.sim.timeout(self.params.journal_delay)
        return True

    def _h_setattr(self, src: str, args: Tuple[str, str, int]) -> Generator:
        path, what, value = args
        yield from self._charge(self.params.setattr_cpu)
        if what == "mode":
            self.ns.chmod(path, value, self.sim.now)
        elif what == "size":
            self.ns.truncate(path, value, self.sim.now)
        else:
            raise FSError(ENOENT, path, f"bad setattr {what!r}")
        yield self.sim.timeout(self.params.journal_delay)
        return True

    def _h_symlink(self, src: str, args: Tuple[str, str]) -> Generator:
        target, linkpath = args
        parent = self._dir_of(linkpath)
        with self._dir_mutex(parent).request() as mutex:
            yield mutex
            yield from self._charge(self.params.create_cpu,
                                    self._parent_entries(linkpath))
            yield from self._revoke_conflicts(parent, src)
            self.ns.symlink(target, linkpath, self.sim.now)
        yield self.sim.timeout(self.params.journal_delay)
        return True
