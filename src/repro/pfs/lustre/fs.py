"""Lustre filesystem instance assembly.

``build_lustre`` provisions one MDS node and ``n_oss`` OSS nodes on the
cluster (matching the paper's dedicated Lustre server nodes) and hands out
one :class:`LustreClient` per client node (the kernel module is per-node,
shared by every process on it).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...models.params import LustreParams
from ...sim.node import Cluster, Node
from ...svc import TraceBus
from .client import LustreClient
from .mds import MetadataServer
from .oss import ObjectStorageServer


class LustreFS:
    def __init__(self, cluster: Cluster, name: str, mds_node: Node,
                 oss_nodes: List[Node], params: Optional[LustreParams] = None,
                 standby_node: Optional[Node] = None,
                 bus: Optional[TraceBus] = None):
        self.cluster = cluster
        self.name = name
        self.params = params or LustreParams()
        self.bus = bus
        self.mds_endpoint = f"{name}-mds"
        self.oss_endpoints = [f"{name}-oss{i}" for i in range(len(oss_nodes))]
        self.mds = MetadataServer(mds_node, self.mds_endpoint, self.params,
                                  len(oss_nodes), self.oss_endpoints, bus=bus)
        self.oss = [ObjectStorageServer(node, ep, self.params, bus=bus)
                    for node, ep in zip(oss_nodes, self.oss_endpoints)]
        self.standby_node = standby_node
        self._failover_count = 0
        self._clients: Dict[str, LustreClient] = {}

    def client(self, node: Node) -> LustreClient:
        """The per-node client instance (created on first use)."""
        cli = self._clients.get(node.name)
        if cli is None:
            cli = LustreClient(self, node)
            self._clients[node.name] = cli
        return cli

    def failover(self):
        """Active/standby MDS failover (paper §III-A: "a fail-over MDS
        that becomes operational if the primary becomes nonfunctional").

        The standby mounts the shared MDT (same namespace), replays the
        journal, and starts serving at its own endpoint after the takeover
        delay; clients drop their caches and reconnect. Only one MDS is
        ever operational. Returns the spawned takeover process.
        """
        if self.standby_node is None:
            raise RuntimeError(f"{self.name} has no standby MDS configured")
        old = self.mds
        old.node.crash()
        self._failover_count += 1
        new_endpoint = f"{self.name}-mds-fo{self._failover_count}"

        def takeover():
            yield self.cluster.sim.timeout(self.params.failover_takeover_delay)
            self.mds = MetadataServer(self.standby_node, new_endpoint,
                                      self.params, len(self.oss_endpoints),
                                      self.oss_endpoints, ns=old.ns,
                                      bus=self.bus)
            self.mds_endpoint = new_endpoint
            for cli in self._clients.values():
                cli.on_mds_failover(new_endpoint)

        return self.standby_node.spawn(takeover(), f"{self.name}.takeover")


def build_lustre(
    cluster: Cluster,
    name: str = "lustre",
    n_oss: int = 2,
    params: Optional[LustreParams] = None,
    mds_cores: Optional[int] = None,
    with_standby: bool = False,
    bus: Optional[TraceBus] = None,
) -> LustreFS:
    params = params or LustreParams()
    mds_node = cluster.add_node(f"{name}-mdsnode",
                                cores=mds_cores or params.mds_cores)
    oss_nodes = [cluster.add_node(f"{name}-ossnode{i}", cores=params.oss_cores)
                 for i in range(n_oss)]
    standby = cluster.add_node(f"{name}-mds-standby",
                               cores=mds_cores or params.mds_cores) \
        if with_standby else None
    return LustreFS(cluster, name, mds_node, oss_nodes, params,
                    standby_node=standby, bus=bus)
