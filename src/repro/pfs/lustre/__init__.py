"""Lustre-like parallel filesystem: single MDS + DLM + object storage.

The model captures the three behaviours the paper's evaluation turns on:

1. **Single-MDS bottleneck** — every namespace operation is an RPC to one
   metadata server with bounded CPU; aggregate metadata throughput cannot
   exceed what that one server sustains (paper §III-A).
2. **DLM lock ping-pong** — client nodes cache directory lookup locks;
   namespace changes by other clients revoke them (blocking callbacks),
   so concurrent-update workloads pay growing revocation and re-resolution
   traffic (paper §VI's "client caching … disabled during concurrent
   update workloads").
3. **Server-side overhead growth** — per-request service time inflates
   with request-queue pressure (thread thrashing / lock-table pressure),
   which bends Lustre's curves downward beyond ~128 client processes as in
   Figs. 8 and 10.
"""

from .client import LustreClient
from .fs import LustreFS, build_lustre

__all__ = ["LustreClient", "LustreFS", "build_lustre"]
