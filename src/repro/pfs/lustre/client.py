"""Lustre client (the per-node kernel module, shared by all processes).

Holds the dentry cache guarded by DLM locks: path resolution of components
whose parent-directory lock is cached costs nothing; uncached components
pay a lookup RPC each. Lock revocations from the MDS (other clients
mutating a directory) invalidate the cached entries under that directory —
producing the re-resolution traffic that loads the MDS under concurrent
updates.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, Set

from ...core.paths import parent_dir
from ...errors import EIO, ENOENT, FSError
from ...models.params import LustreParams
from ...resilience import BreakerBoard, RetryBudget, RetryPolicy
from ...sim.node import Node
from ...sim.rpc import RpcAgent
from ...svc.queue import AdmissionReject
from ..base import normalize_path, path_components

_client_seq = itertools.count()


class LustreClient:
    def __init__(self, fs: "LustreFS", node: Node):  # noqa: F821
        self.fs = fs
        self.node = node
        self.sim = node.sim
        self.params: LustreParams = fs.params
        self.mds = fs.mds_endpoint
        self.agent = RpcAgent(
            node, f"{fs.name}-cli-{node.name}-{next(_client_seq)}")
        self.agent.register_fast("lock_revoke", self._f_lock_revoke)
        # dentry cache: dir path -> ino, valid while we hold the lock on
        # its parent; locked_dirs = resources we hold a read lock on.
        self.dentries: Dict[str, int] = {"/": 1}
        self.locked_dirs: Set[str] = set()
        self.stats = {"lookups": 0, "revocations": 0, "ops": 0}
        # Shared resilience policy (inert at the defaults: no backoff
        # events, unlimited retry budget, breakers off).
        r = self.params.resilience
        self.resilience = r
        self.retry = RetryPolicy(
            node.cluster.streams, f"lustre.client.{self.agent.endpoint}",
            backoff_base=r.backoff_base, backoff_cap=r.backoff_cap,
            budget=RetryBudget(r.retry_budget, r.retry_refill))
        self.breakers = BreakerBoard(self.sim, r.breaker_threshold,
                                     r.breaker_cooldown,
                                     enabled=r.breaker_enabled)
        self.breaker_fastfails = 0

    # -- DLM client side ------------------------------------------------------
    def _f_lock_revoke(self, src: str, args) -> None:
        resource, token = args
        self.stats["revocations"] += 1
        self.locked_dirs.discard(resource)
        for path in list(self.dentries):
            if path != "/" and parent_dir(path) == resource:
                del self.dentries[path]
        # Cancel immediately (we model no in-flight pinning).
        self.agent.cast(src, "lock_cancel", token, size=64)

    def _note_lock(self, resource: str) -> None:
        self.locked_dirs.add(resource)

    # -- path resolution ---------------------------------------------------------
    def _resolve_dir(self, dirpath: str) -> Generator:
        """Ensure every component of ``dirpath`` is in the dentry cache,
        paying lookup RPCs for uncached components."""
        dirpath = normalize_path(dirpath)
        if dirpath in self.dentries and self._covered(dirpath):
            return
        comps = path_components(dirpath)
        cur = ""
        for comp in comps:
            parent = cur or "/"
            cur = f"{cur}/{comp}"
            if cur in self.dentries and parent in self.locked_dirs:
                continue
            self.stats["lookups"] += 1
            ino, is_dir = yield from self._call("lookup", (cur,),
                                                size=128 + len(cur))
            self.dentries[cur] = ino
            self._note_lock(parent)

    def _covered(self, dirpath: str) -> bool:
        return dirpath == "/" or parent_dir(dirpath) in self.locked_dirs

    def _parent_of(self, path: str) -> str:
        return parent_dir(normalize_path(path))

    def on_mds_failover(self, new_endpoint: str) -> None:
        """The filesystem failed over: all cached dentries and locks are
        stale (the new MDS has an empty lock table); reconnect."""
        self.mds = new_endpoint
        self.dentries = {"/": 1}
        self.locked_dirs = set()

    # -- operations (each: resolve parents from cache, then 1 intent RPC) ------
    def _call(self, method: str, args, size: int = 160) -> Generator:
        from ...sim.rpc import RpcTimeout

        self.stats["ops"] += 1
        timeout = self.params.client_rpc_timeout
        r = self.resilience
        policy = self.retry
        # Legacy semantics: 5 attempts when a timeout is configured
        # (timeout=None would otherwise hang forever, so never retried).
        policy.max_retries = 4 if timeout is not None else 0
        state = policy.begin(self.sim.now)
        kw: dict = {}
        if r.deadline_propagation and r.op_deadline > 0:
            kw["deadline"] = self.sim.now + r.op_deadline
        while True:
            self.mds = self.fs.mds_endpoint  # track failovers
            if not self.breakers.allow(self.mds):
                self.breaker_fastfails += 1
                state.attempt += 1
                if policy.exhausted(state, self.sim.now):
                    raise FSError(EIO, msg=f"MDS unreachable: {method}")
                sleep = policy.next_backoff(state)
                if sleep > 0:
                    yield self.sim.timeout(sleep)
                continue
            try:
                result = yield from self.agent.call(self.mds, method, args,
                                                    size=size, timeout=timeout,
                                                    **kw)
                self.breakers.on_success(self.mds)
                policy.on_success()
                return result
            except (RpcTimeout, AdmissionReject):
                self.breakers.on_failure(self.mds)
                state.attempt += 1
                if policy.exhausted(state, self.sim.now):
                    raise FSError(EIO, msg=f"MDS unreachable: {method}")
                sleep = policy.next_backoff(state)
                if sleep > 0:
                    yield self.sim.timeout(sleep)

    def mkdir(self, path: str, mode: int = 0o755) -> Generator:
        path = normalize_path(path)
        yield from self._resolve_dir(self._parent_of(path))
        yield from self._call("mkdir", (path, mode), size=144 + len(path))
        self.dentries[path] = -1  # known to exist; ino refreshed on lookup
        self._note_lock(self._parent_of(path))
        return True

    def rmdir(self, path: str) -> Generator:
        path = normalize_path(path)
        yield from self._resolve_dir(self._parent_of(path))
        yield from self._call("rmdir", (path,), size=128 + len(path))
        self.dentries.pop(path, None)
        self.locked_dirs.discard(path)
        return True

    def create(self, path: str, mode: int = 0o644) -> Generator:
        path = normalize_path(path)
        yield from self._resolve_dir(self._parent_of(path))
        ino = yield from self._call("create", (path, mode),
                                    size=144 + len(path))
        self._note_lock(self._parent_of(path))
        return ino

    def unlink(self, path: str) -> Generator:
        path = normalize_path(path)
        yield from self._resolve_dir(self._parent_of(path))
        yield from self._call("unlink", (path,), size=128 + len(path))
        return True

    def stat(self, path: str) -> Generator:
        path = normalize_path(path)
        if path != "/":
            yield from self._resolve_dir(self._parent_of(path))
        st, layout = yield from self._call("getattr", (path,),
                                           size=128 + len(path))
        if st.is_file and layout:
            # Glimpse the object size from the OSS (mdtest's file stat cost).
            oss_index, object_id = layout[0]
            size = yield from self.agent.call(
                self.fs.oss_endpoints[oss_index], "glimpse", object_id,
                size=96)
            st.st_size = max(st.st_size, size)
        return st

    def readdir(self, path: str) -> Generator:
        path = normalize_path(path)
        if path != "/":
            yield from self._resolve_dir(self._parent_of(path))
        entries = yield from self._call("readdir", (path,),
                                        size=128 + len(path))
        self._note_lock(path)
        return entries

    def rename(self, src: str, dst: str) -> Generator:
        src, dst = normalize_path(src), normalize_path(dst)
        yield from self._resolve_dir(self._parent_of(src))
        yield from self._resolve_dir(self._parent_of(dst))
        yield from self._call("rename", (src, dst),
                              size=144 + len(src) + len(dst))
        self.dentries.pop(src, None)
        return True

    def chmod(self, path: str, mode: int) -> Generator:
        path = normalize_path(path)
        yield from self._resolve_dir(self._parent_of(path))
        yield from self._call("setattr", (path, "mode", mode),
                              size=128 + len(path))
        return True

    def truncate(self, path: str, size: int) -> Generator:
        path = normalize_path(path)
        yield from self._resolve_dir(self._parent_of(path))
        yield from self._call("setattr", (path, "size", size),
                              size=128 + len(path))
        return True

    def access(self, path: str, mode: int = 0) -> Generator:
        yield from self.stat(path)
        return True

    def symlink(self, target: str, linkpath: str) -> Generator:
        linkpath = normalize_path(linkpath)
        yield from self._resolve_dir(self._parent_of(linkpath))
        yield from self._call("symlink", (target, linkpath),
                              size=144 + len(target) + len(linkpath))
        return True

    def readlink(self, path: str) -> Generator:
        path = normalize_path(path)
        yield from self._resolve_dir(self._parent_of(path))
        target = yield from self._call("readlink", (path,),
                                       size=128 + len(path))
        return target

    def statfs(self) -> Generator:
        result = yield from self._call("statfs", None, size=96)
        return result

    def open(self, path: str, flags: int = 0) -> Generator:
        st = yield from self.stat(path)
        return st.st_ino

    def read(self, path: str, offset: int, size: int) -> Generator:
        st, layout = yield from self._call("getattr", (normalize_path(path),),
                                           size=128 + len(path))
        if not layout:
            return 0
        oss_index, object_id = layout[0]
        n = yield from self.agent.call(self.fs.oss_endpoints[oss_index],
                                       "read", (object_id, offset, size),
                                       size=96, resp_size=96 + size)
        return n

    def write(self, path: str, offset: int, data: bytes) -> Generator:
        st, layout = yield from self._call("getattr", (normalize_path(path),),
                                           size=128 + len(path))
        if not layout:
            raise FSError(ENOENT, path, "no object layout")
        oss_index, object_id = layout[0]
        n = yield from self.agent.call(self.fs.oss_endpoints[oss_index],
                                       "write", (object_id, offset, len(data)),
                                       size=96 + len(data))
        return n
