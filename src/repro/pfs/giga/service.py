"""GIGA+ core: extensible hashing with incremental partition splits.

Addressing follows the GIGA+ radix scheme. A filename hashes to a bit
string ``b0 b1 b2 …``. Partitions form a binary split tree over those
bits: partition *P* at depth *d* holds every name whose first *d* hash
bits match P's id (little-endian: ``id = Σ b_k << k`` for ``k < d``).
Splitting P at depth d creates child ``P | (1 << d)`` and moves the names
with ``b_d == 1`` there; the child lands on the next server round-robin.

Clients address from a *stale* bitmap copy and learn about splits lazily
when a server bounces a wrongly-addressed request — GIGA+'s defining
"no synchronization" property. The flip side the paper calls out — no
replication, so a dead server makes its partitions unreachable — is
modeled faithfully and measured by the bench.
"""

from __future__ import annotations

import itertools
import zlib
from typing import Dict, Generator, List, Optional, Set

from ...errors import EEXIST, EIO, ENOENT, FSError
from ...models.params import PVFSParams
from ...sim.node import Cluster, Node
from ...sim.rpc import Reply, RpcAgent

_client_seq = itertools.count()

MAX_DEPTH = 24


def hash_bits(name: str) -> int:
    """Stable 32-bit hash; bit k of the result is split bit b_k."""
    return zlib.crc32(name.encode()) & 0xFFFFFFFF


def bit(h: int, k: int) -> int:
    return (h >> k) & 1


def prefix_id(h: int, depth: int) -> int:
    """The partition id a hash belongs to at a given depth."""
    return h & ((1 << depth) - 1)


def partition_for(h: int, bitmap: Set[int]) -> int:
    """Walk the split tree as deep as the (possibly stale) bitmap knows."""
    pid, depth = 0, 0
    while depth < MAX_DEPTH:
        child = pid | (1 << depth)
        if child not in bitmap:
            break
        if bit(h, depth):
            pid = child
        depth += 1
    return pid


class GigaServer:
    def __init__(self, node: Node, endpoint: str, index: int,
                 params: PVFSParams, split_threshold: int):
        self.node = node
        self.sim = node.sim
        self.endpoint = endpoint
        self.index = index
        self.params = params
        self.split_threshold = split_threshold
        self.partitions: Dict[int, Dict[str, int]] = {}   # pid -> name -> h
        self.partition_depth: Dict[int, int] = {}
        self.agent = RpcAgent(node, endpoint)
        self.stats = {"inserts": 0, "splits": 0, "wrong_addr": 0}
        self.service: Optional["GigaDirectory"] = None
        a = self.agent
        a.register("insert", self._h_insert)
        a.register("lookup", self._h_lookup)
        a.register("remove", self._h_remove)
        a.register("list_partition", self._h_list_partition)

    def _check(self, pid: int, h: int) -> None:
        """Reject requests addressed with a stale bitmap."""
        depth = self.partition_depth.get(pid)
        if depth is None or prefix_id(h, depth) != pid:
            self.stats["wrong_addr"] += 1
            raise FSError(EIO, msg=f"wrong partition {pid:#x}")

    def _h_insert(self, src: str, args) -> Generator:
        pid, name, h = args
        yield from self.node.cpu_work(self.params.crdirent_cpu)
        self._check(pid, h)
        table = self.partitions[pid]
        if name in table:
            raise FSError(EEXIST, name)
        table[name] = h
        self.stats["inserts"] += 1
        if len(table) > self.split_threshold and \
                self.partition_depth[pid] < MAX_DEPTH and \
                self.service is not None:
            yield from self.service.split(self, pid)
        return True

    def _h_lookup(self, src: str, args) -> Generator:
        pid, name, h = args
        yield from self.node.cpu_work(self.params.lookup_cpu)
        self._check(pid, h)
        if name not in self.partitions[pid]:
            raise FSError(ENOENT, name)
        return True

    def _h_remove(self, src: str, args) -> Generator:
        pid, name, h = args
        yield from self.node.cpu_work(self.params.crdirent_cpu)
        self._check(pid, h)
        table = self.partitions[pid]
        if name not in table:
            raise FSError(ENOENT, name)
        del table[name]
        return True

    def _h_list_partition(self, src: str, pid: int) -> Generator:
        yield from self.node.cpu_work(self.params.readdir_cpu_base)
        table = self.partitions.get(pid)
        if table is None:
            raise FSError(ENOENT, msg=f"partition {pid:#x}")
        return Reply(sorted(table), size=96 + 16 * len(table))


class GigaDirectory:
    """One huge GIGA+ directory spread over N servers."""

    def __init__(self, cluster: Cluster, name: str, server_nodes: List[Node],
                 params: Optional[PVFSParams] = None,
                 split_threshold: int = 200):
        self.cluster = cluster
        self.name = name
        self.params = params or PVFSParams()
        self.split_threshold = split_threshold
        self.server_endpoints = [f"{name}-g{i}"
                                 for i in range(len(server_nodes))]
        self.servers = [GigaServer(node, ep, i, self.params, split_threshold)
                        for i, (node, ep) in
                        enumerate(zip(server_nodes, self.server_endpoints))]
        for s in self.servers:
            s.service = self
        # Authoritative split bitmap. Unreplicated, per GIGA+: clients hold
        # stale copies and refresh only after addressing errors.
        self.bitmap: Set[int] = set()
        self.partition_owner: Dict[int, int] = {0: 0}
        self.servers[0].partitions[0] = {}
        self.servers[0].partition_depth[0] = 0
        self._next_server = 1
        self._splitting: Set[int] = set()
        self.stats = {"splits": 0}

    def split(self, server: GigaServer, pid: int) -> Generator:
        """Move the b_d == 1 half of partition pid to a new partition on
        the next server; involves only the two servers (no global lock).

        Concurrent inserts keep landing in the parent while the split's
        CPU work is underway; the migration snapshot is taken *after* it,
        atomically with the bitmap/depth updates, so nothing is stranded.
        """
        depth = server.partition_depth[pid]
        child = pid | (1 << depth)
        if child in self.bitmap or child in self._splitting or \
                depth >= MAX_DEPTH:
            return
        self._splitting.add(child)
        try:
            target = self.servers[self._next_server % len(self.servers)]
            self._next_server += 1
            # Migration cost: proportional to roughly half the partition.
            yield from server.node.cpu_work(
                self.params.crdirent_cpu
                * max(1, self.split_threshold // 16))
            # ---- atomic section (no yields) -----------------------------
            table = server.partitions[pid]
            moved = {n: h for n, h in table.items() if bit(h, depth)}
            for n in moved:
                del table[n]
            target.partitions[child] = moved
            target.partition_depth[child] = depth + 1
            server.partition_depth[pid] = depth + 1
            self.partition_owner[child] = target.index
            self.bitmap.add(child)
            self.stats["splits"] += 1
            server.stats["splits"] += 1
        finally:
            self._splitting.discard(child)

    def client(self, node: Node) -> "GigaClient":
        return GigaClient(self, node)

    def total_entries(self) -> int:
        return sum(len(t) for s in self.servers
                   for t in s.partitions.values())

    def partitions_per_server(self) -> List[int]:
        return [len(s.partitions) for s in self.servers]


class GigaClient:
    """Addresses partitions from a stale bitmap; refreshes on bounces."""

    def __init__(self, service: GigaDirectory, node: Node):
        self.service = service
        self.node = node
        self.agent = RpcAgent(
            node, f"{service.name}-gcli-{node.name}-{next(_client_seq)}")
        self.bitmap: Set[int] = set()       # stale copy
        self.stats = {"ops": 0, "retries": 0}
        self.rpc_timeout: Optional[float] = None

    def _op(self, method: str, name: str) -> Generator:
        self.stats["ops"] += 1
        h = hash_bits(name)
        for _ in range(MAX_DEPTH + 1):
            pid = partition_for(h, self.bitmap)
            owner = self.service.partition_owner.get(pid, 0)
            ep = self.service.server_endpoints[owner]
            try:
                result = yield from self.agent.call(
                    ep, method, (pid, name, h), size=128 + len(name),
                    timeout=self.rpc_timeout)
                return result
            except FSError as exc:
                if exc.err != EIO:
                    raise
                self.stats["retries"] += 1
                self.bitmap = set(self.service.bitmap)
        raise FSError(EIO, name, "bitmap never converged")

    def insert(self, name: str) -> Generator:
        result = yield from self._op("insert", name)
        return result

    def lookup(self, name: str) -> Generator:
        result = yield from self._op("lookup", name)
        return result

    def remove(self, name: str) -> Generator:
        result = yield from self._op("remove", name)
        return result


def build_giga(cluster: Cluster, name: str = "giga", n_servers: int = 4,
               params: Optional[PVFSParams] = None,
               split_threshold: int = 200) -> GigaDirectory:
    nodes = [cluster.add_node(f"{name}-node{i}") for i in range(n_servers)]
    return GigaDirectory(cluster, name, nodes, params, split_threshold)
