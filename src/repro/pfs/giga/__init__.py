"""GIGA+-style distributed directory service — the other foil (§VI).

"There has been some work in the area of designing a distributed indexing
scheme, GIGA+, in order to build directories with millions/trillions of
files with a high degree of concurrency. ... every server only keeps a
local view of the partitions it manages, and this state is not shared.
Hence, there are no synchronization and consistency bottlenecks. But, if
the server or the partition goes down, or if the root level directory gets
corrupted, then the files are not accessible anymore."

This package implements that design for a single huge directory: entries
hash into partitions that *split* when they exceed a threshold, partitions
spread over servers with no replication and no coordination. The bench
quantifies both halves of the paper's characterization: unbeatable
concurrent-insert scaling, zero availability under server loss (contrast
with DUFS, whose ZooKeeper quorum survives minority failures).
"""

from .service import GigaDirectory, build_giga

__all__ = ["GigaDirectory", "build_giga"]
