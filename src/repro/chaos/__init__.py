"""Chaos-injection subsystem: declarative fault schedules, an engine that
replays them against any simulated deployment, and a post-fault namespace
auditor.

The paper's reliability argument (§IV-I) is qualitative; this package makes
it testable. A :class:`ChaosSchedule` lists timed :class:`FaultSpec` events
(crashes, partitions, degraded/lossy links, slow disks, dead back-ends);
:class:`ChaosEngine` replays them on a live cluster; :func:`audit_dufs`
fsck-checks the surviving DUFS namespace against the back-end physical
files; :func:`run_chaos` packages the whole loop for DUFS, Lustre and PVFS
deployments so their degradation behaviour is directly comparable.
"""

from .audit import AuditReport, Violation, audit_dufs
from .engine import ChaosEngine
from .runner import ChaosRunResult, run_chaos
from .schedule import ChaosSchedule, FaultSpec, RandomChaos

__all__ = [
    "AuditReport",
    "ChaosEngine",
    "ChaosRunResult",
    "ChaosSchedule",
    "FaultSpec",
    "RandomChaos",
    "Violation",
    "audit_dufs",
    "run_chaos",
]
