"""End-to-end chaos runs against the three metadata services.

``run_chaos`` builds a deployment (DUFS over ZooKeeper, single-MDS Lustre
with a standby, or PVFS), drives a steady metadata op stream through it
while a :class:`~repro.chaos.schedule.ChaosSchedule` replays, and reports
how the service degraded: ops completed/failed, the longest stall in the
op stream (the paper's availability metric), the chaos event trace, and —
for DUFS — the post-fault namespace audit.

The symbolic target vocabulary is shared across deployments so one
schedule can be compared apples-to-apples:

- ``meta:<i>`` — the i-th metadata server node (ZK server / the MDS / the
  i-th PVFS server)
- ``zk:<i>`` / ``zk:leader`` — a specific ZooKeeper server (DUFS only;
  with a sharded metadata plane the index runs over all shards' servers
  in shard order)
- ``shard:<k>`` — the current leader of metadata shard ``k``'s ensemble
  (DUFS with ``shards > 1``): per-shard fault targeting, so a schedule
  can kill exactly one namespace slice's quorum
- ``client:<i>`` — the i-th client node
- ``backend:<i>`` — DUFS back-end index (degraded mode)
- ``fs`` — the filesystem object itself (``failover`` events)
- ``migration:src`` / ``migration:dst`` — the source/destination shard
  leader of the currently in-flight subtree migration (DUFS with
  ``elastic``): resolved lazily at fire time, so a schedule can crash a
  shard *mid-copy* and the audit proves the torn migration rolls forward
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import FSError
from ..models.params import (AsyncParams, CacheParams, ElasticParams,
                             LustreParams, PVFSParams, ResilienceParams,
                             SimParams, ZKParams)
from ..sim.node import Cluster
from .audit import AuditReport, audit_dufs
from .engine import ChaosEngine
from .schedule import ChaosSchedule, FaultSpec, RandomChaos

DEPLOYMENTS = ("dufs", "lustre", "pvfs")


@dataclass
class ChaosRunResult:
    deployment: str
    completed: int
    failed: int
    max_stall: float
    elapsed: float
    issued: int = 0
    trace: List[str] = field(default_factory=list)
    audit: Optional[AuditReport] = None

    def summary(self) -> str:
        in_flight = self.issued - self.completed - self.failed
        counts = f"  ops completed: {self.completed}   failed: {self.failed}"
        if in_flight > 0:
            # The run window closed before the stream drained: the audit
            # legitimately sees the in-flight op's physical residue.
            counts += (f"   (window closed with {in_flight} op in flight,"
                       f" {self.issued} issued)")
        lines = [
            f"chaos run: {self.deployment} "
            f"({len(self.trace)} fault events over {self.elapsed:.1f}s)",
            counts,
            f"  longest metadata stall: {self.max_stall * 1000:,.0f} ms",
        ]
        for line in self.trace:
            lines.append(f"  [chaos] {line}")
        if self.audit is not None:
            lines.append("  " + self.audit.to_text().replace("\n", "\n  "))
        return "\n".join(lines)


def max_gap(completions: List[float]) -> float:
    gaps = [b - a for a, b in zip(completions, completions[1:])]
    return max(gaps) if gaps else 0.0


def default_schedule(deployment: str, duration: float,
                     seed: int = 0) -> ChaosSchedule:
    """A representative schedule per deployment: DUFS gets random minority
    ZK crashes, Lustre an MDS failover, PVFS one metadata-server outage."""
    if deployment == "dufs":
        targets = [f"zk:{i}" for i in range(5)]
        return RandomChaos(targets, duration, seed=seed, rate=0.6,
                           mean_downtime=0.8).schedule()
    if deployment == "lustre":
        return ChaosSchedule().failover(duration * 0.3, "fs")
    if deployment == "pvfs":
        sched = ChaosSchedule()
        sched.crash(duration * 0.3, "meta:1")
        sched.recover(duration * 0.6, "meta:1")
        return sched
    raise ValueError(f"unknown deployment {deployment!r}")


# -- deployment adapters ----------------------------------------------------
def _build_dufs(seed: int, cache: Optional[CacheParams] = None,
                shards: int = 1,
                resilience: Optional[ResilienceParams] = None,
                elastic: Optional[ElasticParams] = None,
                awrite: Optional[AsyncParams] = None):
    from ..core import build_dufs_deployment

    params = SimParams()
    params.zk = ZKParams(failure_detection=True, session_tracking=True,
                         ping_interval=0.1, ping_timeout=0.3,
                         election_tick=0.05)
    # shards == 1 keeps the historical 5-server build; sharded chaos runs
    # give each shard a 3-server quorum (crash one and its slice elects).
    n_zk = 5 if shards <= 1 else 3 * shards
    dep = build_dufs_deployment(n_zk=n_zk, n_backends=2, n_client_nodes=2,
                                backend="local", params=params,
                                co_locate_zk=False, seed=seed,
                                zk_request_timeout=0.4, zk_max_retries=10,
                                cache=cache, n_shards=shards,
                                resilience=resilience, autoscale=elastic,
                                awrite=awrite)
    flat_servers = [s for ens in dep.ensembles for s in ens.servers]

    def resolve(symbol: str):
        kind, _, arg = symbol.partition(":")
        if kind == "zk" and arg == "leader":
            leader = dep.ensemble.leader
            if leader is None:
                raise RuntimeError("no ZooKeeper leader to crash")
            return leader.node
        if kind == "shard":
            ens = dep.ensembles[int(arg) % len(dep.ensembles)]
            target = ens.leader or ens.servers[0]
            return target.node
        if kind == "migration":
            # Lazily resolved at fire time: the shard currently serving
            # the source (or destination) of the in-flight migration.
            if dep.registry is None or not dep.registry.migrations:
                raise RuntimeError("no in-flight migration to target")
            mig = dep.registry.migrations[0]
            shard = mig.src if arg == "src" else mig.dst
            ens = dep.ensembles[shard]
            target = ens.leader or ens.servers[0]
            return target.node
        if kind in ("zk", "meta"):
            return flat_servers[int(arg)].node
        if kind == "client":
            return dep.client_nodes[int(arg)]
        if kind == "backend":
            return int(arg)
        return dep.cluster.nodes[symbol]

    def apply_backend(index: int, down: bool) -> None:
        for cli in dep.clients:
            if down:
                cli.mark_backend_down(index)
            else:
                cli.mark_backend_up(index)

    client = dep.mounts[0]
    return dep.cluster, dep, client, dep.client_nodes[0], resolve, \
        apply_backend


def _build_lustre(seed: int):
    from ..pfs.lustre import build_lustre

    params = LustreParams(client_rpc_timeout=0.5,
                          failover_takeover_delay=2.0)
    cluster = Cluster(seed=seed)
    node = cluster.add_node("client")
    fs = build_lustre(cluster, "ha", params=params, with_standby=True)

    def resolve(symbol: str):
        kind, _, arg = symbol.partition(":")
        if kind == "meta" or symbol == "mds":
            return fs.mds.node
        if symbol == "fs":
            return fs
        if kind == "client":
            return node
        return cluster.nodes[symbol]

    return cluster, fs, fs.client(node), node, resolve, None


def _build_pvfs(seed: int):
    from ..pfs.pvfs import build_pvfs

    params = PVFSParams(client_rpc_timeout=0.5)
    cluster = Cluster(seed=seed)
    node = cluster.add_node("client")
    fs = build_pvfs(cluster, "pv", n_servers=4, params=params)

    def resolve(symbol: str):
        kind, _, arg = symbol.partition(":")
        if kind == "meta":
            return fs.servers[int(arg) % len(fs.servers)].node
        if kind == "client":
            return node
        return cluster.nodes[symbol]

    return cluster, fs, fs.client(node), node, resolve, None


_BUILDERS = {"dufs": _build_dufs, "lustre": _build_lustre,
             "pvfs": _build_pvfs}


def run_chaos(
    deployment: str = "dufs",
    schedule: Optional[ChaosSchedule] = None,
    seed: int = 0,
    ops: int = 400,
    op_interval: float = 0.01,
    settle: float = 1.0,
    tail: float = 3.0,
    audit: bool = True,
    on_event: Optional[Callable[[FaultSpec, tuple], None]] = None,
    cache: Optional[CacheParams] = None,
    shards: int = 1,
    resilience: Optional[ResilienceParams] = None,
    elastic: Optional[ElasticParams] = None,
    awrite: Optional[AsyncParams] = None,
) -> ChaosRunResult:
    """One chaos experiment: op stream + schedule replay + (DUFS) audit.

    The op stream issues one ``create`` every ``op_interval`` seconds and
    tolerates failures (each is counted, never fatal) — exactly the
    availability measurement of the paper's reliability discussion. The
    schedule starts when the op stream does, after ``settle`` seconds of
    warm-up. ``cache`` (DUFS only) runs the clients with the coherent
    metadata cache enabled, so the audit doubles as a coherence check
    under faults. ``shards`` (DUFS only) runs the sharded metadata plane
    (3 ZK servers per shard) and unlocks ``shard:<k>`` targets; the audit
    then exercises the merged-view intent reconciliation. ``resilience``
    (DUFS only) runs the clients under the given request-lifecycle policy
    (deadlines / retry budget / breakers / hedged reads), so a chaos
    campaign can prove hedging and fast-fails never corrupt the namespace.
    ``elastic`` (DUFS only, needs ``shards >= 2``) runs the elastic
    metadata plane and unlocks the ``migration:src`` / ``migration:dst``
    targets for crash-during-migration experiments. ``awrite`` (DUFS
    only) runs the clients in write-behind mode — the audit then proves
    crash losses stay confined to the acked-but-uncommitted window
    (counted as ``lost_unacked``, never as namespace damage).
    """
    if deployment not in DEPLOYMENTS:
        raise ValueError(f"unknown deployment {deployment!r}")
    if cache is not None and deployment != "dufs":
        raise ValueError("cache is a DUFS-only option")
    if shards != 1 and deployment != "dufs":
        raise ValueError("shards is a DUFS-only option")
    if resilience is not None and deployment != "dufs":
        raise ValueError("resilience is a DUFS-only option")
    if elastic is not None and deployment != "dufs":
        raise ValueError("elastic is a DUFS-only option")
    if awrite is not None and deployment != "dufs":
        raise ValueError("awrite is a DUFS-only option")
    builder = _BUILDERS[deployment]
    built = builder(seed, cache=cache, shards=shards,
                    resilience=resilience, elastic=elastic,
                    awrite=awrite) \
        if deployment == "dufs" else builder(seed)
    cluster, dep, client, node, resolve, apply_backend = built
    duration = ops * op_interval
    if schedule is None:
        schedule = default_schedule(deployment, duration, seed=seed)

    completions: List[float] = []
    failures: List[float] = []
    issued = [0]

    def workload():
        yield from client.mkdir("/d")
        for i in range(ops):
            issued[0] += 1
            try:
                yield from client.create(f"/d/f{i}")
                completions.append(cluster.sim.now)
            except FSError:
                failures.append(cluster.sim.now)
            yield cluster.sim.timeout(op_interval)

    cluster.sim.run(until=settle)
    engine = ChaosEngine(cluster, schedule, resolve=resolve,
                         on_event=on_event, apply_backend=apply_backend)
    engine.start()
    node.spawn(workload())
    cluster.sim.run(until=settle + duration + tail)

    report = None
    if audit and deployment == "dufs":
        report = audit_dufs(dep)
    return ChaosRunResult(
        deployment=deployment,
        completed=len(completions),
        failed=len(failures),
        max_stall=max_gap(completions),
        elapsed=cluster.sim.now - settle,
        issued=issued[0],
        trace=list(engine.trace),
        audit=report,
    )
