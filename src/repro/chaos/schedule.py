"""Declarative fault schedules.

A schedule is an ordered list of :class:`FaultSpec` events, each naming a
*symbolic* target (``"zk:0"``, ``"zk:leader"``, ``"meta:1"``, a node name,
...). Symbols are resolved only when the schedule is replayed, so the same
schedule can be thrown at a DUFS deployment, a Lustre filesystem and a
PVFS instance and the outcomes compared — the point of the reliability
experiments.

:class:`RandomChaos` draws reproducible crash/recover schedules from the
simulation's named random streams: the same seed always emits the same
schedule, never perturbing any other stream's draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..sim.random import RandomStreams

#: Event kinds understood by :class:`~repro.chaos.engine.ChaosEngine`.
KINDS = ("crash", "recover", "partition", "heal", "degrade_link",
         "restore_link", "drop", "slow_disk", "restore_disk",
         "backend_down", "backend_up", "failover")


@dataclass(frozen=True)
class FaultSpec:
    """One timed fault event.

    ``at`` is seconds relative to engine start; ``target`` holds the
    symbolic operand(s) — one name for node events, a ``(src, dst)`` host
    pair for link events (``"*"`` wildcards allowed), nothing for
    ``heal``. The remaining fields parameterize link degradation
    (``factor``/``bandwidth`` multiply latency / divide bandwidth,
    ``probability``/``duplicate`` are per-message chances) and
    ``slow_disk`` (``factor`` stretches every disk transaction).
    """

    at: float
    kind: str
    target: Tuple[str, ...] = ()
    factor: float = 1.0
    bandwidth: float = 1.0
    probability: float = 0.0
    duplicate: float = 0.0
    groups: Tuple[Tuple[str, ...], ...] = ()

    def describe(self) -> str:
        parts = [f"t+{self.at:.3f}s {self.kind}"]
        if self.target:
            parts.append(",".join(self.target))
        if self.groups:
            parts.append("|".join("+".join(g) for g in self.groups))
        if self.kind in ("degrade_link", "slow_disk") and self.factor != 1.0:
            parts.append(f"x{self.factor:g}")
        if self.kind == "drop":
            parts.append(f"loss={self.probability:g}")
            if self.duplicate:
                parts.append(f"dup={self.duplicate:g}")
        return " ".join(parts)


class ChaosSchedule:
    """Builder for an ordered fault timeline (methods chain)."""

    def __init__(self, events: Optional[Iterable[FaultSpec]] = None):
        self._events: List[FaultSpec] = list(events or ())

    def _add(self, spec: FaultSpec) -> "ChaosSchedule":
        if spec.kind not in KINDS:
            raise ValueError(f"unknown fault kind {spec.kind!r}")
        if spec.at < 0:
            raise ValueError(f"negative event time {spec.at}")
        self._events.append(spec)
        return self

    # -- node faults -----------------------------------------------------
    def crash(self, at: float, target: str) -> "ChaosSchedule":
        return self._add(FaultSpec(at, "crash", (target,)))

    def recover(self, at: float, target: str) -> "ChaosSchedule":
        return self._add(FaultSpec(at, "recover", (target,)))

    def slow_disk(self, at: float, target: str,
                  factor: float = 10.0) -> "ChaosSchedule":
        return self._add(FaultSpec(at, "slow_disk", (target,), factor=factor))

    def restore_disk(self, at: float, target: str) -> "ChaosSchedule":
        return self._add(FaultSpec(at, "restore_disk", (target,)))

    # -- network faults --------------------------------------------------
    def partition(self, at: float,
                  groups: Sequence[Sequence[str]]) -> "ChaosSchedule":
        return self._add(FaultSpec(
            at, "partition", (), groups=tuple(tuple(g) for g in groups)))

    def heal(self, at: float) -> "ChaosSchedule":
        return self._add(FaultSpec(at, "heal"))

    def degrade_link(self, at: float, src: str = "*", dst: str = "*",
                     factor: float = 1.0,
                     bandwidth: float = 1.0) -> "ChaosSchedule":
        return self._add(FaultSpec(at, "degrade_link", (src, dst),
                                   factor=factor, bandwidth=bandwidth))

    def drop(self, at: float, src: str = "*", dst: str = "*",
             probability: float = 0.0,
             duplicate: float = 0.0) -> "ChaosSchedule":
        return self._add(FaultSpec(at, "drop", (src, dst),
                                   probability=probability,
                                   duplicate=duplicate))

    def restore_link(self, at: float, src: str = "*",
                     dst: str = "*") -> "ChaosSchedule":
        return self._add(FaultSpec(at, "restore_link", (src, dst)))

    # -- service faults --------------------------------------------------
    def backend_down(self, at: float, target: str) -> "ChaosSchedule":
        """DUFS degraded mode: the named back-end index goes dark."""
        return self._add(FaultSpec(at, "backend_down", (target,)))

    def backend_up(self, at: float, target: str) -> "ChaosSchedule":
        return self._add(FaultSpec(at, "backend_up", (target,)))

    def failover(self, at: float, target: str = "fs") -> "ChaosSchedule":
        """Active/standby takeover of the resolved filesystem (Lustre)."""
        return self._add(FaultSpec(at, "failover", (target,)))

    # -- access ----------------------------------------------------------
    def events(self) -> List[FaultSpec]:
        """Events in replay order (stable sort by time)."""
        return sorted(self._events, key=lambda s: s.at)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self.events())

    def describe(self) -> str:
        return "\n".join(s.describe() for s in self.events())


class RandomChaos:
    """Reproducible crash/recover schedule generator.

    Crash arrivals are Poisson (``rate`` per second over ``duration``);
    each victim is drawn uniformly from ``targets`` and stays down for an
    exponential time with mean ``mean_downtime``. At most
    ``max_concurrent_down`` targets are ever down together — the default
    keeps a strict majority of the targets alive, so a ZooKeeper ensemble
    under this generator retains quorum (the paper's availability claim is
    about minority failures).

    All draws come from one named stream of a :class:`RandomStreams`, so
    the same ``(seed, name)`` always yields the same schedule.
    """

    def __init__(
        self,
        targets: Sequence[str],
        duration: float,
        seed: int = 0,
        rate: float = 0.5,
        mean_downtime: float = 1.0,
        max_concurrent_down: Optional[int] = None,
        streams: Optional[RandomStreams] = None,
        name: str = "chaos.random",
    ):
        if not targets:
            raise ValueError("need at least one target")
        self.targets = list(targets)
        self.duration = duration
        self.rate = rate
        self.mean_downtime = mean_downtime
        if max_concurrent_down is None:
            max_concurrent_down = max(1, (len(self.targets) - 1) // 2)
        self.max_concurrent_down = max_concurrent_down
        self.streams = streams or RandomStreams(seed)
        self.name = name

    def schedule(self) -> ChaosSchedule:
        rng = self.streams.stream(self.name)
        sched = ChaosSchedule()
        down: dict[str, float] = {}          # target -> recovery time
        t = 0.0
        while True:
            t += rng.expovariate(self.rate)
            if t >= self.duration:
                break
            for victim in [v for v, back in down.items() if back <= t]:
                del down[victim]
            if len(down) >= self.max_concurrent_down:
                continue
            candidates = [x for x in self.targets if x not in down]
            if not candidates:
                continue
            victim = candidates[rng.randrange(len(candidates))]
            downtime = rng.expovariate(1.0 / self.mean_downtime)
            sched.crash(t, victim)
            # Clamp the paired recover into the run window: a crash landing
            # within ``downtime`` of the end must not leave the node
            # permanently down in the generated schedule.
            sched.recover(min(t + downtime, self.duration), victim)
            down[victim] = t + downtime
        return sched
