"""Schedule replay: drive a :class:`ChaosSchedule` against a live cluster.

The engine runs as a plain *simulation* process (``sim.process``, not
``node.spawn``), so it survives the very crashes it injects. Symbolic
targets are turned into concrete objects by a per-deployment ``resolve``
callable; the engine itself only knows how to poke the generic APIs
(``Node.crash``/``recover``, ``Network.partition``/``degrade_link``,
``disk_factor``, a filesystem's ``failover()``) plus two optional hooks
for deployment-specific faults (DUFS back-end down/up).

Every dispatched event is appended to :attr:`ChaosEngine.trace` as a fixed
-format line — the determinism regression compares these byte-for-byte.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim.node import Cluster, Node
from .schedule import ChaosSchedule, FaultSpec


class ChaosEngine:
    """Replays a schedule; one instance per run.

    ``resolve(symbol)`` maps a symbolic target to a :class:`Node` (node
    events), a host name (link/partition events), an object with a
    ``failover()`` method, or an ``int`` back-end index. The default
    resolver looks names up in ``cluster.nodes``. ``on_event(spec,
    resolved)`` fires just before each dispatch (progress prints);
    ``apply_backend(index, down)`` implements ``backend_down``/``up``.
    """

    def __init__(
        self,
        cluster: Cluster,
        schedule: ChaosSchedule,
        resolve: Optional[Callable[[str], object]] = None,
        on_event: Optional[Callable[[FaultSpec, tuple], None]] = None,
        apply_backend: Optional[Callable[[int, bool], None]] = None,
    ):
        self.cluster = cluster
        self.schedule = schedule
        self.resolve = resolve or self._default_resolve
        self.on_event = on_event
        self.apply_backend = apply_backend
        self.trace: List[str] = []
        self.t0: Optional[float] = None
        self.proc = None

    # -- lifecycle -------------------------------------------------------
    def start(self):
        """Launch the replay process; returns the simulation Process."""
        self.proc = self.cluster.sim.process(self._run(), "chaos-engine")
        return self.proc

    def _run(self):
        sim = self.cluster.sim
        self.t0 = sim.now
        for spec in self.schedule.events():
            due = self.t0 + spec.at
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            self._dispatch(spec)

    # -- resolution ------------------------------------------------------
    def _default_resolve(self, symbol: str) -> object:
        return self.cluster.nodes[symbol]

    def _node(self, symbol: str) -> Node:
        obj = self.resolve(symbol)
        if not isinstance(obj, Node):
            raise TypeError(f"{symbol!r} resolved to {obj!r}, need a Node")
        return obj

    def _host(self, symbol: str) -> str:
        if symbol == "*":
            return "*"
        obj = self.resolve(symbol)
        return obj.name if isinstance(obj, Node) else str(obj)

    # -- dispatch --------------------------------------------------------
    def _dispatch(self, spec: FaultSpec) -> None:
        resolved = tuple(self.resolve(t) if t != "*" else "*"
                         for t in spec.target)
        if self.on_event is not None:
            self.on_event(spec, resolved)
        net = self.cluster.network
        kind = spec.kind
        if kind == "crash":
            self._node(spec.target[0]).crash()
        elif kind == "recover":
            self._node(spec.target[0]).recover()
        elif kind == "slow_disk":
            self._node(spec.target[0]).disk_factor = spec.factor
        elif kind == "restore_disk":
            self._node(spec.target[0]).disk_factor = 1.0
        elif kind == "partition":
            net.partition([[self._host(m) for m in group]
                           for group in spec.groups])
        elif kind == "heal":
            net.heal()
        elif kind == "degrade_link":
            net.degrade_link(self._host(spec.target[0]),
                             self._host(spec.target[1]),
                             latency_factor=spec.factor,
                             bandwidth_factor=spec.bandwidth)
        elif kind == "drop":
            net.degrade_link(self._host(spec.target[0]),
                             self._host(spec.target[1]),
                             loss=spec.probability,
                             duplicate=spec.duplicate)
        elif kind == "restore_link":
            net.restore_link(self._host(spec.target[0]),
                             self._host(spec.target[1]))
        elif kind == "backend_down" or kind == "backend_up":
            if self.apply_backend is None:
                raise RuntimeError(f"{kind} needs an apply_backend hook")
            self.apply_backend(int(spec.target[0]), kind == "backend_down")
        elif kind == "failover":
            fs = self.resolve(spec.target[0])
            fs.failover()
        else:  # pragma: no cover - ChaosSchedule validates kinds
            raise ValueError(f"unknown fault kind {kind!r}")
        self.trace.append(
            f"{self.cluster.sim.now - self.t0:.6f} {kind} "
            f"{','.join(spec.target)}")
