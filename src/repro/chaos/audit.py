"""Post-fault namespace auditor (fsck for DUFS).

After a chaos run, the ZooKeeper znode tree *is* the namespace and the
back-end filesystems hold the file contents; faults can tear the two
apart. The auditor cross-checks them directly on the in-memory state (no
simulated I/O — it is an offline oracle, like running fsck on an unmounted
disk):

- ``dangling-mapping`` — a file znode whose FID has no physical file on
  the back-end it maps to (the *dangerous* kind: open() will fail).
- ``orphan-fid`` — a physical file no znode references (leaked space; the
  benign direction, which is why the client's rollback logic prefers it).
- ``duplicate-fid`` — two znodes claiming the same FID.
- ``bad-payload`` — a znode whose data field does not decode.
- ``tree-invariant`` — a child hanging off a non-directory znode (or a
  child whose parent znode is missing altogether — possible only as
  cross-shard crash residue).

Sharded deployments (``deployment.n_shards > 1``) are audited on a
*merged* view: each shard contributes the freshest replica of its
ensemble, only **home copies** are authoritative (child-host anchor
copies and placeholders are routing artifacts and are skipped), and any
surviving cross-shard *intent records* (``/.dufs-intent/…``) are rolled
forward into the view first — exactly the reconciliation a recovery tool
would run, counted in ``AuditReport.repairs``. A crash mid cross-shard
rename therefore audits clean: the intent record deterministically
finishes the operation.

Elastic deployments additionally audit against the **registry's current
shard map** (clients adopt epochs lazily, so their own maps may lag) and
roll surviving *migration markers* (``b"M:"``-prefixed intents) forward:
under current-map authority the merged view is already complete on both
sides of a torn migration's cutover, so the roll-forward retires the
marker and counts one repair.

Write-behind clients (``AsyncParams.enabled``) complicate the diff in a
well-defined way: an op the client acked but never committed (node crash
mid-drain, or the run window closing with the log non-empty) leaves
residue — a lost file create left an unreferenced physical file, a lost
delete left a znode mapping to an already-unlinked file. The auditor
matches each such residue against the clients' :meth:`lost_ops` windows
and counts it as ``AuditReport.lost_unacked`` instead of a violation:
bounded loss is the mode's contract, damage is not.

The report is machine-readable (:meth:`AuditReport.to_dict`) and
deterministic: violations are sorted, so two runs with the same seed and
schedule produce byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.mapping import physical_path
from ..core.paths import parent_dir
from ..core.metadata import DirPayload, FilePayload, SymlinkPayload, \
    decode_payload
from ..zk.data import ZnodeStore


@dataclass(frozen=True)
class Violation:
    kind: str
    path: str
    detail: str = ""

    def __str__(self) -> str:
        s = f"{self.kind}: {self.path}"
        return f"{s} ({self.detail})" if self.detail else s


@dataclass
class AuditReport:
    checked_znodes: int = 0
    checked_files: int = 0
    violations: List[Violation] = field(default_factory=list)
    repairs: int = 0        # intent-record steps rolled forward (sharded)
    # Write-behind residue that is bounded loss, not damage: physical
    # files of acked-but-uncommitted creates and znodes of acked-but-
    # uncommitted deletes, matched against the clients' lost-op windows.
    lost_unacked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def count(self, kind: str) -> int:
        return sum(1 for v in self.violations if v.kind == kind)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "checked_znodes": self.checked_znodes,
            "checked_files": self.checked_files,
            "repairs": self.repairs,
            "lost_unacked": self.lost_unacked,
            "violations": [
                {"kind": v.kind, "path": v.path, "detail": v.detail}
                for v in sorted(self.violations,
                                key=lambda v: (v.kind, v.path, v.detail))
            ],
        }

    def to_text(self) -> str:
        repaired = f", {self.repairs} intent repairs" if self.repairs else ""
        lost = f", {self.lost_unacked} lost-unacked (write-behind window)" \
            if self.lost_unacked else ""
        lines = [f"audit: {self.checked_znodes} znodes, "
                 f"{self.checked_files} physical files{repaired}{lost} -> "
                 f"{'CLEAN' if self.ok else f'{len(self.violations)} violations'}"]
        for v in sorted(self.violations,
                        key=lambda v: (v.kind, v.path, v.detail)):
            lines.append(f"  {v}")
        return "\n".join(lines)


# -- back-end enumeration ---------------------------------------------------
def _namespace_files(ns) -> Set[str]:
    """All regular-file paths of a :class:`~repro.pfs.namespace.Namespace`."""
    out: Set[str] = set()

    def rec(prefix: str, inode) -> None:
        for name, ino in inode.entries.items():
            child = ns.inodes[ino]
            path = f"{prefix}/{name}" if prefix != "/" else f"/{name}"
            if child.is_dir:
                rec(path, child)
            elif child.symlink_target is None:
                out.add(path)

    rec("/", ns.root)
    return out


def _pvfs_files(fs) -> Set[str]:
    """All metafile paths of a PVFS instance, walked from the root dir."""
    from ..pfs.pvfs.server import DIR_T, META_T

    out: Set[str] = set()

    def obj_of(handle: int):
        return fs.servers[handle >> 48].objects.get(handle)

    def rec(prefix: str, handle: int) -> None:
        obj = obj_of(handle)
        if obj is None or obj.kind != DIR_T:
            return
        for name, child_h in obj.entries.items():
            child = obj_of(child_h)
            path = f"{prefix}/{name}" if prefix != "/" else f"/{name}"
            if child is None:
                continue
            if child.kind == DIR_T:
                rec(path, child_h)
            elif child.kind == META_T and child.target is None:
                out.add(path)

    rec("/", fs.root_handle)
    return out


def physical_files(backend_fs) -> Set[str]:
    """Enumerate a back-end's regular files, whatever its type."""
    ns = getattr(backend_fs, "ns", None)               # LocalFS
    if ns is None:
        mds = getattr(backend_fs, "mds", None)          # LustreFS
        if mds is not None:
            ns = mds.ns
    if ns is not None:
        return _namespace_files(ns)
    if hasattr(backend_fs, "root_handle"):              # PVFSFS
        return _pvfs_files(backend_fs)
    raise TypeError(f"cannot enumerate files of {backend_fs!r}")


# -- the audit --------------------------------------------------------------
def freshest_store(ensemble) -> ZnodeStore:
    """The authoritative replica: highest commit index, preferring live
    nodes (a crashed minority may hold a stale tree — that is expected,
    not a violation)."""
    servers = [s for s in ensemble.servers if not s.node.down] \
        or list(ensemble.servers)
    return max(servers, key=lambda s: s.commit_index).store


def merged_namespace_view(deployment) -> Tuple[Dict[str, bytes], int]:
    """The sharded deployment's namespace as one ``{path: data}`` dict.

    Each shard contributes its ensemble's freshest replica; only *home
    copies* are authoritative (child-host anchors/placeholders are routing
    artifacts). Surviving cross-shard intent records are rolled forward
    into the view, reconciling interrupted operations. Returns the view
    and the number of roll-forward repairs applied.
    """
    from ..mds import INTENT_ROOT, apply_intent_to_view, decode_intent, \
        is_migration_marker

    service = deployment.clients[0].zk
    # Elastic deployments: the registry's CURRENT map is the authority,
    # not whatever epoch a client last adopted (adoption is lazy). This
    # is what makes live migration crash-safe — a crash before cutover
    # leaves the old map current (frozen source complete, destination
    # partials invisible); after cutover the new map is current
    # (destination complete, stale source leftovers invisible).
    registry = getattr(deployment, "registry", None)
    shard_map = registry.current if registry is not None else service.map
    view: Dict[str, bytes] = {}
    intents: List[Tuple[str, bytes]] = []
    for k, ensemble in enumerate(deployment.ensembles):
        store = freshest_store(ensemble)
        for path in store.walk_paths():
            if path == "/":
                continue
            if path == INTENT_ROOT or path.startswith(INTENT_ROOT + "/"):
                if path != INTENT_ROOT:
                    intents.append((path, store.get(path)[0]))
                continue
            if shard_map.home_shard(path) == k:
                view[path] = store.get(path)[0]
    repairs = 0
    for _path, data in sorted(intents):
        if is_migration_marker(data):
            # Torn subtree migration. Rolling it forward is retiring the
            # marker: under current-map authority the merged view is
            # already the pre- or post-cutover namespace, whichever the
            # installed epoch says — both complete.
            repairs += 1
            continue
        try:
            steps = decode_intent(data)
        except (ValueError, UnicodeDecodeError):
            continue
        repairs += apply_intent_to_view(view, steps)
    return view, repairs


def audit_dufs(deployment, store: Optional[ZnodeStore] = None) -> AuditReport:
    """Cross-check a DUFS deployment's ZK namespace against its back-ends.

    ``deployment`` is a :class:`~repro.core.fs.DUFSDeployment`; ``store``
    overrides the znode tree to audit (default: the freshest replica of
    each shard's ensemble, merged and intent-reconciled when sharded).
    """
    report = AuditReport()
    if store is not None or getattr(deployment, "n_shards", 1) <= 1:
        store = store or freshest_store(deployment.ensemble)
        view: Dict[str, bytes] = {p: store.get(p)[0]
                                  for p in store.walk_paths() if p != "/"}
    else:
        view, report.repairs = merged_namespace_view(deployment)
    client = deployment.clients[0]
    mapping, layout = client.mapping, client.layout

    # Pass 1: walk the znode tree, decode payloads, compute the expected
    # physical file set, and check structural invariants.
    expected: Dict[Tuple[int, str], str] = {}   # (backend, ppath) -> vpath
    fids: Dict[int, str] = {}
    for path in view:
        report.checked_znodes += 1
        data = view[path]
        parent = parent_dir(path)
        if parent != "/":
            pdata = view.get(parent)
            try:
                ppayload = decode_payload(pdata) if pdata is not None \
                    else None
            except ValueError:
                ppayload = None
            if pdata is None:
                report.violations.append(Violation(
                    "tree-invariant", path,
                    f"parent {parent} znode is missing"))
            elif not isinstance(ppayload, DirPayload):
                report.violations.append(Violation(
                    "tree-invariant", path,
                    f"parent {parent} is not a directory znode"))
        try:
            payload = decode_payload(data)
        except ValueError as exc:
            report.violations.append(Violation("bad-payload", path, str(exc)))
            continue
        if isinstance(payload, (DirPayload, SymlinkPayload)):
            continue
        assert isinstance(payload, FilePayload)
        fid = payload.fid
        if fid in fids:
            report.violations.append(Violation(
                "duplicate-fid", path,
                f"fid {fid:#x} also referenced by {fids[fid]}"))
        else:
            fids[fid] = path
        backend = mapping.backend_for(fid)
        expected[(backend, physical_path(fid, layout))] = path

    # Write-behind residue: ops a client acked but never committed (its
    # node crashed mid-drain, or the run window closed with the log
    # non-empty). A lost file *create* already wrote its physical file —
    # the back-end holds an unreferenced FID; a lost *delete* already
    # unlinked the physical file — the znode still maps to nothing. Both
    # are the mode's advertised bounded loss, not namespace damage.
    lost_create_keys: Dict[Tuple[int, str], str] = {}
    lost_delete_paths: Set[str] = set()
    for cli in deployment.clients:
        wblog = getattr(cli, "wblog", None)
        if wblog is None:
            continue
        for op in wblog.lost_ops():
            if op.kind == "create" and isinstance(op.payload, FilePayload):
                fid = op.payload.fid
                lost_create_keys[(mapping.backend_for(fid),
                                  physical_path(fid, layout))] = op.path
            elif op.kind == "delete" and not op.is_dir:
                lost_delete_paths.add(op.path)

    # Pass 2: enumerate back-end files and diff both directions.
    actual: Set[Tuple[int, str]] = set()
    for i, backend_fs in enumerate(deployment.backends):
        for ppath in physical_files(backend_fs):
            actual.add((i, ppath))
    report.checked_files = len(actual)

    for key in sorted(expected.keys() - actual):
        backend, ppath = key
        if expected[key] in lost_delete_paths:
            report.lost_unacked += 1
            continue
        report.violations.append(Violation(
            "dangling-mapping", expected[key],
            f"no physical file {ppath} on back-end {backend}"))
    for backend, ppath in sorted(actual - expected.keys()):
        if (backend, ppath) in lost_create_keys:
            report.lost_unacked += 1
            continue
        report.violations.append(Violation(
            "orphan-fid", ppath,
            f"back-end {backend} file not referenced by any znode"))
    return report
