"""The znode tree: ZooKeeper's hierarchical in-memory namespace.

This is the replicated state machine underneath ZAB. Transactions
(:func:`ZnodeStore.apply`) are *validated records* produced by the leader;
applying the same sequence to any replica yields a byte-identical tree —
the property the consistency tests and the Fig. 1 reproduction rely on.

Memory accounting (:attr:`ZnodeStore.approx_memory_bytes`) models the
paper's Fig. 11 observation that one million znodes cost ~417 MB in the
JVM: per znode we charge a fixed overhead plus path and data bytes
(see :mod:`repro.models.memory` for the calibrated constants).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import (
    BadArgumentsError,
    BadVersionError,
    NoChildrenForEphemeralsError,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
)

# Calibrated so that ~1e6 typical DUFS znodes ≈ 417 MB (paper Fig. 11):
# JVM DataNode + HashMap entries + watches bookkeeping.
ZNODE_BASE_OVERHEAD = 321
ZNODE_PER_CHILD = 8


@dataclass
class ZnodeStat:
    """Subset of the real ``Stat`` structure (org.apache.zookeeper.data)."""

    czxid: int = 0          # zxid that created the node
    mzxid: int = 0          # zxid of last data modification
    pzxid: int = 0          # zxid of last child-list change
    ctime: float = 0.0      # creation time (sim seconds)
    mtime: float = 0.0      # last-modification time
    version: int = 0        # data version
    cversion: int = 0       # child-list version
    ephemeral_owner: int = 0  # session id, 0 for persistent
    data_length: int = 0
    num_children: int = 0

    def copy(self) -> "ZnodeStat":
        return replace(self)


class _Znode:
    __slots__ = ("name", "data", "children", "stat", "seq_counter")

    def __init__(self, name: str, data: bytes, stat: ZnodeStat):
        self.name = name
        self.data = data
        self.children: Dict[str, "_Znode"] = {}
        self.stat = stat
        self.seq_counter = 0  # next suffix for sequential children


def validate_path(path: str) -> None:
    if not path.startswith("/"):
        raise BadArgumentsError(path, f"path must be absolute: {path!r}")
    if path != "/" and path.endswith("/"):
        raise BadArgumentsError(path, f"trailing slash: {path!r}")
    if "//" in path:
        raise BadArgumentsError(path, f"empty component: {path!r}")
    for comp in path.split("/")[1:]:
        if comp in (".", ".."):
            raise BadArgumentsError(path, f"relative component in {path!r}")


def split_path(path: str) -> Tuple[str, str]:
    """``/a/b/c`` -> (``/a/b``, ``c``)."""
    parent, _, name = path.rpartition("/")
    return (parent or "/", name)


class ZnodeStore:
    """One replica's znode tree plus deterministic txn application."""

    def __init__(self):
        self._root = _Znode("", b"", ZnodeStat())
        self._count = 1
        self._bytes = ZNODE_BASE_OVERHEAD
        # session id -> set of ephemeral paths (for session-expiry cleanup)
        self.ephemerals: Dict[int, set] = {}

    # -- lookup ------------------------------------------------------------
    def _walk(self, path: str) -> Optional[_Znode]:
        if path == "/":
            return self._root
        node = self._root
        for comp in path.split("/")[1:]:
            node = node.children.get(comp)
            if node is None:
                return None
        return node

    def exists(self, path: str) -> Optional[ZnodeStat]:
        node = self._walk(path)
        return node.stat.copy() if node is not None else None

    def get(self, path: str) -> Tuple[bytes, ZnodeStat]:
        node = self._walk(path)
        if node is None:
            raise NoNodeError(path)
        return node.data, node.stat.copy()

    def get_children(self, path: str) -> List[str]:
        node = self._walk(path)
        if node is None:
            raise NoNodeError(path)
        return sorted(node.children)

    def __len__(self) -> int:
        return self._count

    @property
    def approx_memory_bytes(self) -> int:
        return self._bytes

    def walk_paths(self) -> Iterator[str]:
        """Depth-first enumeration of all paths (diagnostics/snapshots)."""

        def rec(prefix: str, node: _Znode) -> Iterator[str]:
            for name in sorted(node.children):
                child = node.children[name]
                p = f"{prefix}/{name}" if prefix != "/" else f"/{name}"
                yield p
                yield from rec(p, child)

        yield "/"
        yield from rec("/", self._root)

    # -- validation (leader side) -------------------------------------------
    def check_create(self, path: str, ephemeral_owner: int = 0,
                     sequential: bool = False) -> str:
        """Validate a create; returns the final path (sequential resolved).

        Called by the leader against its *speculative* store before a txn
        is proposed. Raises the client-visible ZK error on failure.
        """
        validate_path(path)
        parent_path, name = split_path(path)
        if not name:
            raise NodeExistsError(path)  # creating "/"
        parent = self._walk(parent_path)
        if parent is None:
            raise NoNodeError(path)
        if parent.stat.ephemeral_owner:
            raise NoChildrenForEphemeralsError(path)
        if sequential:
            name = f"{name}{parent.seq_counter:010d}"
            path = f"{parent_path}/{name}" if parent_path != "/" else f"/{name}"
        if name in parent.children:
            raise NodeExistsError(path)
        return path

    def check_delete(self, path: str, version: int = -1) -> None:
        validate_path(path)
        if path == "/":
            raise BadArgumentsError(path, "cannot delete root")
        node = self._walk(path)
        if node is None:
            raise NoNodeError(path)
        if node.children:
            raise NotEmptyError(path)
        if version != -1 and node.stat.version != version:
            raise BadVersionError(path)

    def check_set_data(self, path: str, version: int = -1) -> None:
        validate_path(path)
        node = self._walk(path)
        if node is None:
            raise NoNodeError(path)
        if version != -1 and node.stat.version != version:
            raise BadVersionError(path)

    def check_version(self, path: str, version: int) -> None:
        node = self._walk(path)
        if node is None:
            raise NoNodeError(path)
        if version != -1 and node.stat.version != version:
            raise BadVersionError(path)

    # -- mutation (txn application; must never fail on a valid log) ---------
    def apply_create(self, path: str, data: bytes, zxid: int, time: float,
                     ephemeral_owner: int = 0, sequential: bool = False) -> None:
        parent_path, name = split_path(path)
        parent = self._walk(parent_path)
        if parent is None or name in parent.children:
            raise AssertionError(f"inconsistent replica: create {path}")
        stat = ZnodeStat(czxid=zxid, mzxid=zxid, pzxid=zxid, ctime=time,
                         mtime=time, ephemeral_owner=ephemeral_owner,
                         data_length=len(data))
        node = _Znode(name, data, stat)
        parent.children[name] = node
        if sequential:
            parent.seq_counter += 1
        parent.stat.cversion += 1
        parent.stat.pzxid = zxid
        parent.stat.num_children = len(parent.children)
        self._count += 1
        self._bytes += ZNODE_BASE_OVERHEAD + len(path) + len(data) + ZNODE_PER_CHILD
        if ephemeral_owner:
            self.ephemerals.setdefault(ephemeral_owner, set()).add(path)

    def apply_delete(self, path: str, zxid: int) -> None:
        parent_path, name = split_path(path)
        parent = self._walk(parent_path)
        node = parent.children.pop(name, None) if parent else None
        if node is None:
            raise AssertionError(f"inconsistent replica: delete {path}")
        parent.stat.cversion += 1
        parent.stat.pzxid = zxid
        parent.stat.num_children = len(parent.children)
        self._count -= 1
        self._bytes -= ZNODE_BASE_OVERHEAD + len(path) + len(node.data) + ZNODE_PER_CHILD
        if node.stat.ephemeral_owner:
            owned = self.ephemerals.get(node.stat.ephemeral_owner)
            if owned is not None:
                owned.discard(path)
                if not owned:
                    del self.ephemerals[node.stat.ephemeral_owner]

    def apply_set_data(self, path: str, data: bytes, zxid: int, time: float) -> None:
        node = self._walk(path)
        if node is None:
            raise AssertionError(f"inconsistent replica: set {path}")
        self._bytes += len(data) - len(node.data)
        node.data = data
        node.stat.mzxid = zxid
        node.stat.mtime = time
        node.stat.version += 1
        node.stat.data_length = len(data)

    # -- txn records ---------------------------------------------------------
    def apply(self, txn: tuple, zxid: int, time: float) -> None:
        """Apply one validated txn record.

        Records: ``('create', path, data, eph_owner, sequential)``,
        ``('delete', path)``, ``('set', path, data)``,
        ``('multi', (record, ...))``.
        """
        kind = txn[0]
        if kind == "create":
            self.apply_create(txn[1], txn[2], zxid, time, txn[3], txn[4])
        elif kind == "delete":
            self.apply_delete(txn[1], zxid)
        elif kind == "set":
            self.apply_set_data(txn[1], txn[2], zxid, time)
        elif kind == "multi":
            for sub in txn[1]:
                self.apply(sub, zxid, time)
        else:  # pragma: no cover - log corruption guard
            raise AssertionError(f"unknown txn {txn!r}")

    # -- snapshots ------------------------------------------------------------
    def snapshot(self) -> list:
        """Serializable dump (used for checkpoint/restore and leader sync)."""
        rs = self._root.stat
        out = [("/", self._root.data, rs.czxid, rs.mzxid, rs.pzxid,
                rs.ctime, rs.mtime, rs.version, rs.cversion,
                rs.ephemeral_owner, self._root.seq_counter)]

        def rec(prefix: str, node: _Znode) -> None:
            for name in sorted(node.children):
                child = node.children[name]
                p = f"{prefix}/{name}" if prefix != "/" else f"/{name}"
                st = child.stat
                out.append((p, child.data, st.czxid, st.mzxid, st.pzxid,
                            st.ctime, st.mtime, st.version, st.cversion,
                            st.ephemeral_owner, child.seq_counter))
                rec(p, child)

        rec("/", self._root)
        return out

    @classmethod
    def from_snapshot(cls, snap: list) -> "ZnodeStore":
        store = cls()
        for (p, data, czxid, mzxid, pzxid, ctime, mtime, version, cversion,
             eph, seq) in snap:
            if p == "/":
                root = store._root
                root.data = data
                root.seq_counter = seq
                root.stat = ZnodeStat(czxid=czxid, mzxid=mzxid, pzxid=pzxid,
                                      ctime=ctime, mtime=mtime,
                                      version=version, cversion=cversion,
                                      ephemeral_owner=eph,
                                      data_length=len(data))
                continue
            parent_path, name = split_path(p)
            parent = store._walk(parent_path)
            assert parent is not None, f"snapshot out of order at {p}"
            stat = ZnodeStat(czxid=czxid, mzxid=mzxid, pzxid=pzxid,
                             ctime=ctime, mtime=mtime, version=version,
                             cversion=cversion, ephemeral_owner=eph,
                             data_length=len(data))
            node = _Znode(name, data, stat)
            node.seq_counter = seq
            parent.children[name] = node
            parent.stat.num_children = len(parent.children)
            store._count += 1
            store._bytes += ZNODE_BASE_OVERHEAD + len(p) + len(data) + ZNODE_PER_CHILD
            if eph:
                store.ephemerals.setdefault(eph, set()).add(p)
        return store

    def fingerprint(self) -> int:
        """Order-independent digest of the full tree (replica comparison)."""
        acc = 0
        for path in self.walk_paths():
            node = self._walk(path)
            assert node is not None
            item = hash((path, node.data, node.stat.version,
                         node.stat.cversion, node.stat.ephemeral_owner))
            acc ^= item * 2654435761 % (1 << 61)
        return acc
