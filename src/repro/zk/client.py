"""Synchronous ZooKeeper client API (the interface the paper's DUFS uses).

The method set mirrors the C client the authors call out —
``zoo_create`` / ``zoo_get`` / ``zoo_set`` / ``zoo_delete`` plus
``exists`` / ``get_children`` — and adds ``multi`` (atomic multi-op, used
by DUFS rename) and watches. Every method is a generator to be driven with
``yield from`` inside a simulation process.

A client holds a session on one server of the ensemble (like a real ZK
connection). On connection loss it fails over to the next server and
retries with decorrelated-jitter backoff under a per-operation wall-clock
budget (:class:`~repro.models.params.FaultToleranceParams`); an expired
session is transparently re-established. Non-idempotent retries follow the
real client's semantics (the caller may observe ``NodeExistsError`` after
a retried create whose first attempt actually landed) — ``last_retries``
tells callers whether the preceding operation was retried so they can
disambiguate.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Generator, List, Optional, Sequence

from ..models.params import FaultToleranceParams
from ..sim.node import Node
from ..sim.rpc import RpcAgent, RpcTimeout
from ..svc import NULL_BUS, OpTrace, TraceBus
from .errors import ConnectionLossError, NotLeaderError, SessionExpiredError
from .protocol import ReadRequest, WatchEvent, WriteRequest

_client_seq = itertools.count()

_UNSET = object()


class ZKClient:
    """A session-holding client bound to one node of the cluster."""

    def __init__(
        self,
        node: Node,
        servers: Sequence[str],
        prefer: Optional[str] = None,
        request_timeout: Any = _UNSET,
        max_retries: Any = _UNSET,
        name: Optional[str] = None,
        fault: Optional[FaultToleranceParams] = None,
        bus: Optional[TraceBus] = None,
    ):
        if not servers:
            raise ValueError("need at least one server endpoint")
        self.node = node
        self.sim = node.sim
        self.servers = list(servers)
        self.server = prefer if prefer is not None else self.servers[0]
        if self.server not in self.servers:
            raise ValueError(f"prefer {self.server!r} not in server list")
        self.fault = fault or FaultToleranceParams()
        # Explicit per-client values win over the fault-tolerance policy;
        # the defaults (5 s timeout, retries with backoff) mean a single
        # lost message can no longer hang an operation forever.
        self.request_timeout = (self.fault.request_timeout
                                if request_timeout is _UNSET
                                else request_timeout)
        self.max_retries = (self.fault.max_retries if max_retries is _UNSET
                            else max_retries)
        self.session: Optional[int] = None
        self.last_retries = 0       # retries performed by the last request
        self.shard = 0              # metadata shard this client talks to
        self.bus = bus if bus is not None else NULL_BUS
        ident = name or f"zkcli{next(_client_seq)}"
        self._backoff_stream = f"zk.client.{ident}"
        self.agent = RpcAgent(node, ident)
        self.agent.register_fast("watch_event", self._on_watch_event)
        self._watch_callbacks: dict[str, List[Callable[[WatchEvent], None]]] = {}
        self.default_watcher: Optional[Callable[[WatchEvent], None]] = None
        # Invoked with a reason string whenever watches registered through
        # this client may have been silently dropped: the session was
        # re-established ("session"), or requests failed over to another
        # server ("failover", typically because the watch-holding server
        # crashed and lost its watch tables). Coherent caches layered on
        # watches (repro.core.mdcache) subscribe and flush.
        self.watch_loss_listeners: List[Callable[[str], None]] = []

    # -- session -----------------------------------------------------------
    def connect(self) -> Generator:
        self.session = yield from self._request("connect", None)
        return self.session

    def keepalive(self, interval: float = 0.3) -> Generator:
        """Session heartbeat loop; run it as a process on the client's
        node (``node.spawn(client.keepalive())``). Stops when the node
        crashes (taking the session's ephemerals with it, after the
        server-side timeout) or when ``close()`` clears the session."""
        from ..sim.core import Interrupt

        while self.session is not None:
            try:
                yield self.sim.timeout(interval)
            except Interrupt:
                return
            if self.session is not None:
                self.agent.cast(self.server, "session_ping", self.session,
                                size=48)

    def close(self) -> Generator:
        if self.session is not None:
            yield from self._request("close_session", self.session)
            self.session = None
        return None

    # -- plumbing ------------------------------------------------------------
    def _backoff(self, prev: float) -> float:
        """Decorrelated jitter: ``min(cap, uniform(base, 3 * prev))``."""
        f = self.fault
        rng = self.node.cluster.streams.stream(self._backoff_stream)
        return min(f.backoff_cap, rng.uniform(f.backoff_base, 3.0 * prev))

    def _request(self, method: str, args: Any, size: int = 160) -> Generator:
        f = self.fault
        t0 = self.sim.now
        deadline = t0 + f.op_budget if f.op_budget else None
        prev_sleep = f.backoff_base
        reconnects = 0
        attempt = 0
        ok = False
        try:
            while True:
                try:
                    result = yield from self.agent.call(
                        self.server, method, args, size=size,
                        timeout=self.request_timeout)
                    ok = True
                    return result
                except SessionExpiredError:
                    # The server no longer knows our session: re-establish
                    # it and rebind the request, unless the caller opted
                    # out or this *is* session management.
                    reconnects += 1
                    if (not f.reconnect_on_expiry or reconnects > 2
                            or method in ("connect", "close_session")):
                        raise
                    self.session = None
                    yield from self.connect()
                    self._notify_watch_loss("session")
                    if isinstance(args, WriteRequest):
                        args = self._rebind_session(args)
                except (RpcTimeout, ConnectionLossError,
                        NotLeaderError) as exc:
                    attempt += 1
                    exhausted = attempt > self.max_retries or (
                        deadline is not None and self.sim.now >= deadline)
                    if exhausted:
                        if isinstance(exc, RpcTimeout):
                            raise ConnectionLossError(msg=str(exc)) from None
                        raise
                    self._fail_over()
                    sleep = self._backoff(prev_sleep)
                    prev_sleep = max(sleep, f.backoff_base)
                    if sleep > 0:
                        yield self.sim.timeout(sleep)
        finally:
            # Published last so nested connect() calls cannot clobber it;
            # callers use it to disambiguate retried non-idempotent writes.
            self.last_retries = attempt + reconnects
            self.bus.record(OpTrace("zk", self.agent.endpoint, method, t0, t0,
                                    self.sim.now, ok,
                                    retries=self.last_retries,
                                    shard=self.shard))

    def _rebind_session(self, req: WriteRequest) -> WriteRequest:
        session = self.session or 0
        if req.op == "multi":
            ops = tuple(dataclasses.replace(o, session=session)
                        if o.ephemeral else o for o in req.ops)
            return dataclasses.replace(req, ops=ops, session=session)
        return dataclasses.replace(req, session=session)

    def _fail_over(self) -> None:
        idx = self.servers.index(self.server)
        self.server = self.servers[(idx + 1) % len(self.servers)]
        self._notify_watch_loss("failover")

    def _notify_watch_loss(self, reason: str) -> None:
        for fn in self.watch_loss_listeners:
            fn(reason)

    def _watch_flag(self, watch) -> bool:
        if watch is None:
            return False
        if callable(watch):
            return True
        return bool(watch)

    def _register_watch(self, path: str, watch) -> None:
        if callable(watch):
            self._watch_callbacks.setdefault(path, []).append(watch)

    def _on_watch_event(self, src: str, event: WatchEvent) -> None:
        callbacks = self._watch_callbacks.pop(event.path, [])
        for cb in callbacks:
            cb(event)
        if self.default_watcher is not None:
            self.default_watcher(event)

    # -- reads ---------------------------------------------------------------
    def exists(self, path: str, watch=None) -> Generator:
        """Stat if the node exists, else None. ``zoo_exists``."""
        flag = self._watch_flag(watch)
        stat = yield from self._request(
            "read", ReadRequest("exists", path, watch=flag),
            size=120 + len(path))
        if flag:
            self._register_watch(path, watch)
        return stat

    def get(self, path: str, watch=None) -> Generator:
        """(data, stat). ``zoo_get``."""
        flag = self._watch_flag(watch)
        result = yield from self._request(
            "read", ReadRequest("get", path, watch=flag),
            size=120 + len(path))
        if flag:
            self._register_watch(path, watch)
        return result

    def get_children(self, path: str, watch=None) -> Generator:
        flag = self._watch_flag(watch)
        names = yield from self._request(
            "read", ReadRequest("children", path, watch=flag),
            size=120 + len(path))
        if flag:
            self._register_watch(path, watch)
        return names

    # -- writes ----------------------------------------------------------------
    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequential: bool = False) -> Generator:
        """Create a znode; returns the final path. ``zoo_create``."""
        req = WriteRequest(op="create", path=path, data=data,
                           ephemeral=ephemeral, sequential=sequential,
                           session=self.session or 0)
        result = yield from self._request("write", req,
                                          size=140 + len(path) + len(data))
        return result

    def set_data(self, path: str, data: bytes, version: int = -1) -> Generator:
        """``zoo_set``."""
        req = WriteRequest(op="set", path=path, data=data, version=version)
        result = yield from self._request("write", req,
                                          size=140 + len(path) + len(data))
        return result

    def delete(self, path: str, version: int = -1) -> Generator:
        """``zoo_delete``."""
        req = WriteRequest(op="delete", path=path, version=version)
        result = yield from self._request("write", req, size=140 + len(path))
        return result

    def multi(self, ops: Sequence[WriteRequest]) -> Generator:
        """Atomic multi-op; ``ops`` built with the ``op_*`` helpers below."""
        req = WriteRequest(op="multi", ops=tuple(ops),
                           session=self.session or 0)
        size = 140 + sum(len(o.path) + len(o.data) + 16 for o in ops)
        result = yield from self._request("write", req, size=size)
        return result

    def sync(self, path: str = "/") -> Generator:
        """``zoo_sync``: after this returns, reads on this client's server
        observe every write committed before the call."""
        result = yield from self._request("sync", path, size=120 + len(path))
        return result

    # -- multi builders ---------------------------------------------------------
    @staticmethod
    def op_create(path: str, data: bytes = b"", ephemeral: bool = False,
                  session: int = 0) -> WriteRequest:
        return WriteRequest(op="create", path=path, data=data,
                            ephemeral=ephemeral, session=session)

    @staticmethod
    def op_delete(path: str, version: int = -1) -> WriteRequest:
        return WriteRequest(op="delete", path=path, version=version)

    @staticmethod
    def op_set(path: str, data: bytes, version: int = -1) -> WriteRequest:
        return WriteRequest(op="set", path=path, data=data, version=version)

    @staticmethod
    def op_check(path: str, version: int = -1) -> WriteRequest:
        return WriteRequest(op="check", path=path, version=version)
