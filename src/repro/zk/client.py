"""Synchronous ZooKeeper client API (the interface the paper's DUFS uses).

The method set mirrors the C client the authors call out —
``zoo_create`` / ``zoo_get`` / ``zoo_set`` / ``zoo_delete`` plus
``exists`` / ``get_children`` — and adds ``multi`` (atomic multi-op, used
by DUFS rename) and watches. Every method is a generator to be driven with
``yield from`` inside a simulation process.

A client holds a session on one server of the ensemble (like a real ZK
connection). On connection loss it fails over to the next server and
retries with decorrelated-jitter backoff under a per-operation wall-clock
budget (:class:`~repro.models.params.FaultToleranceParams`); an expired
session is transparently re-established. Non-idempotent retries follow the
real client's semantics (the caller may observe ``NodeExistsError`` after
a retried create whose first attempt actually landed) — ``last_retries``
tells callers whether the preceding operation was retried so they can
disambiguate.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Generator, List, Optional, Sequence

from ..models.params import FaultToleranceParams, ResilienceParams
from ..resilience import (BreakerBoard, LatencyTracker, RetryBudget,
                          RetryPolicy, hedged)
from ..sim.node import Node
from ..sim.rpc import RpcAgent, RpcTimeout
from ..svc import NULL_BUS, OpTrace, TraceBus
from ..svc.queue import AdmissionReject
from .errors import ConnectionLossError, NotLeaderError, SessionExpiredError
from .protocol import ReadRequest, WatchEvent, WriteRequest

_client_seq = itertools.count()

_UNSET = object()


class ZKClient:
    """A session-holding client bound to one node of the cluster."""

    def __init__(
        self,
        node: Node,
        servers: Sequence[str],
        prefer: Optional[str] = None,
        request_timeout: Any = _UNSET,
        max_retries: Any = _UNSET,
        name: Optional[str] = None,
        fault: Optional[FaultToleranceParams] = None,
        bus: Optional[TraceBus] = None,
        resilience: Optional[ResilienceParams] = None,
    ):
        if not servers:
            raise ValueError("need at least one server endpoint")
        self.node = node
        self.sim = node.sim
        self.servers = list(servers)
        self.server = prefer if prefer is not None else self.servers[0]
        if self.server not in self.servers:
            raise ValueError(f"prefer {self.server!r} not in server list")
        self.fault = fault or FaultToleranceParams()
        # Explicit per-client values win over the fault-tolerance policy;
        # the defaults (5 s timeout, retries with backoff) mean a single
        # lost message can no longer hang an operation forever.
        self.request_timeout = (self.fault.request_timeout
                                if request_timeout is _UNSET
                                else request_timeout)
        self.max_retries = (self.fault.max_retries if max_retries is _UNSET
                            else max_retries)
        self.session: Optional[int] = None
        self.last_retries = 0       # retries performed by the last request
        self.shard = 0              # metadata shard this client talks to
        # Elastic plane: when set (by ShardedMDS under a live registry),
        # every read/write is stamped with this shard-map epoch so the
        # server-side route guard can bounce requests that routed by a
        # superseded map. None (the default) leaves requests unstamped.
        self.map_epoch: Optional[int] = None
        self.bus = bus if bus is not None else NULL_BUS
        ident = name or f"zkcli{next(_client_seq)}"
        self._backoff_stream = f"zk.client.{ident}"
        # Resilience policy: at the defaults every component below is
        # inert (no events, no RNG draws, no fast-fails), reproducing the
        # legacy retry loop byte-for-byte.
        self.resilience = resilience or ResilienceParams()
        r = self.resilience
        self.retry = RetryPolicy(
            node.cluster.streams, self._backoff_stream,
            max_retries=self.max_retries,
            backoff_base=self.fault.backoff_base,
            backoff_cap=self.fault.backoff_cap,
            op_budget=self.fault.op_budget,
            budget=RetryBudget(r.retry_budget, r.retry_refill))
        self.breakers = BreakerBoard(node.sim, r.breaker_threshold,
                                     r.breaker_cooldown,
                                     enabled=r.breaker_enabled)
        self._hedge_tracker = LatencyTracker(r.hedge_window,
                                             r.hedge_quantile,
                                             r.hedge_min_samples,
                                             r.hedge_delay)
        self.hedges = 0             # secondary reads actually issued
        self.hedges_won = 0         # ops where the hedge replied first
        self.breaker_fastfails = 0  # attempts skipped on an open breaker
        self.agent = RpcAgent(node, ident)
        self.agent.register_fast("watch_event", self._on_watch_event)
        self._watch_callbacks: dict[str, List[Callable[[WatchEvent], None]]] = {}
        self.default_watcher: Optional[Callable[[WatchEvent], None]] = None
        # Invoked with a reason string whenever watches registered through
        # this client may have been silently dropped: the session was
        # re-established ("session"), or requests failed over to another
        # server ("failover", typically because the watch-holding server
        # crashed and lost its watch tables). Coherent caches layered on
        # watches (repro.core.mdcache) subscribe and flush.
        self.watch_loss_listeners: List[Callable[[str], None]] = []

    # -- session -----------------------------------------------------------
    def connect(self) -> Generator:
        self.session = yield from self._request("connect", None)
        return self.session

    def keepalive(self, interval: float = 0.3) -> Generator:
        """Session heartbeat loop; run it as a process on the client's
        node (``node.spawn(client.keepalive())``). Stops when the node
        crashes (taking the session's ephemerals with it, after the
        server-side timeout) or when ``close()`` clears the session."""
        from ..sim.core import Interrupt

        while self.session is not None:
            try:
                yield self.sim.timeout(interval)
            except Interrupt:
                return
            if self.session is not None:
                self.agent.cast(self.server, "session_ping", self.session,
                                size=48)

    def close(self) -> Generator:
        if self.session is not None:
            yield from self._request("close_session", self.session)
            self.session = None
        return None

    # -- plumbing ------------------------------------------------------------
    def _backoff(self, prev: float) -> float:
        """Decorrelated jitter: ``min(cap, uniform(base, 3 * prev))``."""
        f = self.fault
        rng = self.node.cluster.streams.stream(self._backoff_stream)
        return min(f.backoff_cap, rng.uniform(f.backoff_base, 3.0 * prev))

    def _request(self, method: str, args: Any, size: int = 160,
                 trace_as: Optional[str] = None) -> Generator:
        f = self.fault
        r = self.resilience
        t0 = self.sim.now
        if (self.map_epoch is not None
                and isinstance(args, (ReadRequest, WriteRequest))
                and args.map_epoch < 0):
            args = dataclasses.replace(args, map_epoch=self.map_epoch)
        # Sync the policy with any post-construction knob changes (tests
        # and the chaos runner tweak max_retries/fault in place).
        policy = self.retry
        policy.max_retries = self.max_retries
        policy.backoff_base = f.backoff_base
        policy.backoff_cap = f.backoff_cap
        policy.op_budget = f.op_budget
        state = policy.begin(t0)
        # Server-visible absolute deadline, carried on each _Request so
        # the svc kernel can shed the op once we must have given up.
        rpc_deadline = None
        if r.deadline_propagation:
            span = r.op_deadline if r.op_deadline > 0 else f.op_budget
            rpc_deadline = t0 + span if span else None
        reconnects = 0
        ok = False
        try:
            while True:
                server = self.server
                if not self.breakers.allow(server):
                    # Fast-fail: no RPC, no timeout burned on a known-dead
                    # endpoint. Charged like any other failed attempt.
                    self.breaker_fastfails += 1
                    state.attempt += 1
                    if policy.exhausted(state, self.sim.now):
                        raise ConnectionLossError(
                            msg=f"breaker open for {server}") from None
                    self._fail_over()
                    sleep = policy.next_backoff(state)
                    if sleep > 0:
                        yield self.sim.timeout(sleep)
                    continue
                try:
                    result = yield from self._issue(server, method, args,
                                                    size, rpc_deadline)
                    ok = True
                    self.breakers.on_success(server)
                    policy.on_success()
                    return result
                except SessionExpiredError:
                    # The server no longer knows our session: re-establish
                    # it and rebind the request, unless the caller opted
                    # out or this *is* session management.
                    self.breakers.on_success(server)  # endpoint is alive
                    reconnects += 1
                    if (not f.reconnect_on_expiry or reconnects > 2
                            or method in ("connect", "close_session")):
                        raise
                    self.session = None
                    yield from self.connect()
                    self._notify_watch_loss("session")
                    if isinstance(args, WriteRequest):
                        args = self._rebind_session(args)
                except (RpcTimeout, ConnectionLossError, NotLeaderError,
                        AdmissionReject) as exc:
                    self.breakers.on_failure(server)
                    state.attempt += 1
                    if policy.exhausted(state, self.sim.now):
                        if isinstance(exc, (RpcTimeout, AdmissionReject)):
                            raise ConnectionLossError(msg=str(exc)) from None
                        raise
                    self._fail_over()
                    sleep = policy.next_backoff(state)
                    if sleep > 0:
                        yield self.sim.timeout(sleep)
        finally:
            # Published last so nested connect() calls cannot clobber it;
            # callers use it to disambiguate retried non-idempotent writes.
            self.last_retries = state.attempt + reconnects
            self.bus.record(OpTrace("zk", self.agent.endpoint,
                                    trace_as or method, t0, t0,
                                    self.sim.now, ok,
                                    retries=self.last_retries,
                                    shard=self.shard))

    def _issue(self, server: str, method: str, args: Any, size: int,
               rpc_deadline: Optional[float]) -> Generator:
        """One attempt: a plain call, or a hedged pair for reads."""
        r = self.resilience
        kw: dict = {}
        if rpc_deadline is not None:
            kw["deadline"] = rpc_deadline
        hedging = (r.hedge_enabled and method == "read"
                   and len(self.servers) > 1)
        if not hedging:
            result = yield from self.agent.call(
                server, method, args, size=size,
                timeout=self.request_timeout, **kw)
            return result
        t_start = self.sim.now
        alt = self._hedge_target(server)
        if alt is None:
            result = yield from self.agent.call(
                server, method, args, size=size,
                timeout=self.request_timeout, **kw)
            self._hedge_tracker.record(self.sim.now - t_start)
            return result

        def primary():
            return self.agent.call(server, method, args, size=size,
                                   timeout=self.request_timeout, **kw)

        def secondary():
            self.hedges += 1
            return self.agent.call(alt, method, args, size=size,
                                   timeout=self.request_timeout, **kw)

        result, won = yield from hedged(self.node, primary, secondary,
                                        self._hedge_tracker.delay())
        if won:
            self.hedges_won += 1
        self._hedge_tracker.record(self.sim.now - t_start)
        return result

    def _hedge_target(self, server: str) -> Optional[str]:
        """Another live server to hedge a read against (breaker-aware);
        None if every alternative is down or open-circuited."""
        n = len(self.servers)
        idx = self.servers.index(server)
        for k in range(1, n):
            ep = self.servers[(idx + k) % n]
            if self.node.network.is_down(ep):
                continue
            br = self.breakers.breakers.get(ep)
            if br is not None and br.state == "open":
                continue
            return ep
        return None

    def _rebind_session(self, req: WriteRequest) -> WriteRequest:
        session = self.session or 0
        if req.op == "multi":
            ops = tuple(dataclasses.replace(o, session=session)
                        if o.ephemeral else o for o in req.ops)
            return dataclasses.replace(req, ops=ops, session=session)
        return dataclasses.replace(req, session=session)

    def _fail_over(self) -> None:
        idx = self.servers.index(self.server)
        self.server = self.servers[(idx + 1) % len(self.servers)]
        self._notify_watch_loss("failover")

    def _notify_watch_loss(self, reason: str) -> None:
        for fn in self.watch_loss_listeners:
            fn(reason)

    def _watch_flag(self, watch) -> bool:
        if watch is None:
            return False
        if callable(watch):
            return True
        return bool(watch)

    def _register_watch(self, path: str, watch) -> None:
        if callable(watch):
            self._watch_callbacks.setdefault(path, []).append(watch)

    def _on_watch_event(self, src: str, event: WatchEvent) -> None:
        callbacks = self._watch_callbacks.pop(event.path, [])
        for cb in callbacks:
            cb(event)
        if self.default_watcher is not None:
            self.default_watcher(event)

    # -- reads ---------------------------------------------------------------
    def exists(self, path: str, watch=None) -> Generator:
        """Stat if the node exists, else None. ``zoo_exists``."""
        flag = self._watch_flag(watch)
        stat = yield from self._request(
            "read", ReadRequest("exists", path, watch=flag),
            size=120 + len(path))
        if flag:
            self._register_watch(path, watch)
        return stat

    def get(self, path: str, watch=None) -> Generator:
        """(data, stat). ``zoo_get``."""
        flag = self._watch_flag(watch)
        result = yield from self._request(
            "read", ReadRequest("get", path, watch=flag),
            size=120 + len(path))
        if flag:
            self._register_watch(path, watch)
        return result

    def resolve(self, path: str, watch=None) -> Generator:
        """Server-side whole-path lookup: one RPC regardless of depth.

        Returns a :class:`~repro.zk.protocol.ResolveResult` — never raises
        ``NoNodeError``; a missing path comes back as ``status == "miss"``
        with the nearest existing ancestor. Travels on the ``read`` wire
        method, so hedging, breakers and deadlines apply unchanged; a data
        watch is registered only when the target exists (``"ok"``)."""
        flag = self._watch_flag(watch)
        res = yield from self._request(
            "read", ReadRequest("resolve", path, watch=flag),
            size=120 + len(path), trace_as="resolve")
        if flag and res.status == "ok":
            self._register_watch(path, watch)
        return res

    def get_children(self, path: str, watch=None) -> Generator:
        flag = self._watch_flag(watch)
        names = yield from self._request(
            "read", ReadRequest("children", path, watch=flag),
            size=120 + len(path))
        if flag:
            self._register_watch(path, watch)
        return names

    # -- writes ----------------------------------------------------------------
    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequential: bool = False) -> Generator:
        """Create a znode; returns the final path. ``zoo_create``."""
        req = WriteRequest(op="create", path=path, data=data,
                           ephemeral=ephemeral, sequential=sequential,
                           session=self.session or 0)
        result = yield from self._request("write", req,
                                          size=140 + len(path) + len(data))
        return result

    def set_data(self, path: str, data: bytes, version: int = -1) -> Generator:
        """``zoo_set``."""
        req = WriteRequest(op="set", path=path, data=data, version=version)
        result = yield from self._request("write", req,
                                          size=140 + len(path) + len(data))
        return result

    def delete(self, path: str, version: int = -1) -> Generator:
        """``zoo_delete``."""
        req = WriteRequest(op="delete", path=path, version=version)
        result = yield from self._request("write", req, size=140 + len(path))
        return result

    def multi(self, ops: Sequence[WriteRequest]) -> Generator:
        """Atomic multi-op; ``ops`` built with the ``op_*`` helpers below."""
        req = WriteRequest(op="multi", ops=tuple(ops),
                           session=self.session or 0)
        size = 140 + sum(len(o.path) + len(o.data) + 16 for o in ops)
        result = yield from self._request("write", req, size=size)
        return result

    def sync(self, path: str = "/") -> Generator:
        """``zoo_sync``: after this returns, reads on this client's server
        observe every write committed before the call."""
        result = yield from self._request("sync", path, size=120 + len(path))
        return result

    # -- multi builders ---------------------------------------------------------
    @staticmethod
    def op_create(path: str, data: bytes = b"", ephemeral: bool = False,
                  session: int = 0) -> WriteRequest:
        return WriteRequest(op="create", path=path, data=data,
                            ephemeral=ephemeral, session=session)

    @staticmethod
    def op_delete(path: str, version: int = -1) -> WriteRequest:
        return WriteRequest(op="delete", path=path, version=version)

    @staticmethod
    def op_set(path: str, data: bytes, version: int = -1) -> WriteRequest:
        return WriteRequest(op="set", path=path, data=data, version=version)

    @staticmethod
    def op_check(path: str, version: int = -1) -> WriteRequest:
        return WriteRequest(op="check", path=path, version=version)
