"""Wire records exchanged between ZooKeeper servers and clients.

Client-facing requests travel as RPC *calls* (they need replies); the ZAB
broadcast (PROPOSE / ACK / COMMIT), heartbeats, election votes, and watch
events travel as one-way *casts*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

# ---------------------------------------------------------------------------
# Client <-> server
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReadRequest:
    """exists / get_data / get_children / resolve, served locally by any
    server. ``resolve`` travels on the same RPC method as the other reads,
    so hedging, breakers and deadline propagation apply unchanged."""

    op: str                    # "exists" | "get" | "children" | "resolve"
    path: str
    session: int = 0
    watch: bool = False
    map_epoch: int = -1        # shard-map epoch the caller routed by
    #                            (-1: unstamped — not elastic-routed)


@dataclass(frozen=True)
class ResolveResult:
    """Reply to a ``resolve`` read: whole-path lookup resolved server-side.

    ``status == "ok"``: the path exists — ``data``/``stat`` are its znode
    record, exactly what a ``get`` would have returned.

    ``status == "miss"``: the path does not exist on this server;
    ``ancestor`` is the nearest *existing* ancestor found during the walk
    (``"/"`` when nothing below the root exists) and ``ancestor_data`` its
    znode data (``b""`` for the root). The server never interprets
    payloads — the client classifies the miss (ENOENT when the ancestor is
    a directory, ENOTDIR otherwise) and may negative-cache the missing
    intermediate components between ``ancestor`` and the target.
    """

    status: str                # "ok" | "miss"
    path: str
    data: bytes = b""
    stat: Optional[object] = None
    ancestor: str = "/"
    ancestor_data: bytes = b""


@dataclass(frozen=True)
class WriteRequest:
    """create / delete / set / multi — must go through ZAB."""

    op: str                    # "create" | "delete" | "set" | "multi"
    path: str = ""
    data: bytes = b""
    version: int = -1
    ephemeral: bool = False
    sequential: bool = False
    ops: Tuple = ()            # for multi: tuple of WriteRequest
    session: int = 0
    map_epoch: int = -1        # shard-map epoch the caller routed by
    #                            (-1: unstamped — not elastic-routed)


@dataclass(frozen=True)
class WatchEvent:
    """Delivered (cast) to the client that registered the watch."""

    kind: str                  # "created" | "deleted" | "changed" | "child"
    path: str


# ---------------------------------------------------------------------------
# Server <-> server (ZAB)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Propose:
    zxid: int
    txn: tuple
    epoch: int


@dataclass(frozen=True)
class ProposeBatch:
    """Leader-side write batching: one marshalled message carries a run of
    consecutive proposals, amortizing the per-follower stream cost (the
    λFS/AsyncFS batching lever). Followers process the contained proposals
    in order, exactly as if they had arrived individually."""

    props: Tuple[Propose, ...]


@dataclass(frozen=True)
class Ack:
    zxid: int
    sid: int


@dataclass(frozen=True)
class Commit:
    zxid: int


@dataclass(frozen=True)
class Ping:
    sid: int
    epoch: int


@dataclass(frozen=True)
class Pong:
    sid: int


@dataclass(frozen=True)
class Vote:
    """Fast-leader-election notification."""

    sid: int                   # sender
    proposed_sid: int          # candidate the sender currently backs
    proposed_zxid: int         # candidate's last logged zxid
    round: int                 # sender's election round
    state: str                 # sender's role at send time


@dataclass(frozen=True)
class FollowerInfo:
    """Sync request from a (re)joining follower (or observer)."""

    sid: int
    last_zxid: int
    observer: bool = False


@dataclass(frozen=True)
class SyncResponse:
    """Leader -> follower: adopt this epoch; truncate and append.

    When the follower is too far behind the leader's (checkpointed) log,
    ``snapshot`` carries a full tree dump taken at ``snapshot_zxid`` and the
    follower bootstraps from it instead of replaying from genesis.
    """

    epoch: int
    truncate_to: int           # drop log entries with zxid > truncate_to
    entries: tuple             # ((zxid, txn), ...) to append
    commit_to: int             # leader's commit index after entries
    snapshot: Optional[list] = None
    snapshot_zxid: int = 0
