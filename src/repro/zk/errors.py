"""ZooKeeper error model (subset of the real client error codes)."""

from __future__ import annotations


class ZKError(Exception):
    """Base class; ``code`` mirrors the C client's negative error codes."""

    code = -1

    def __init__(self, path: str = "", msg: str = ""):
        super().__init__(msg or f"{type(self).__name__}: {path}")
        self.path = path


class NoNodeError(ZKError):
    code = -101


class NodeExistsError(ZKError):
    code = -110


class NotEmptyError(ZKError):
    code = -111


class BadVersionError(ZKError):
    code = -103


class NoChildrenForEphemeralsError(ZKError):
    code = -108


class ConnectionLossError(ZKError):
    code = -4


class SessionExpiredError(ZKError):
    code = -112


class NotLeaderError(ZKError):
    """Internal: a write reached a server that is not (any longer) leader."""

    code = -900


class BadArgumentsError(ZKError):
    code = -8
