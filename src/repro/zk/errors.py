"""ZooKeeper error model (subset of the real client error codes)."""

from __future__ import annotations


class ZKError(Exception):
    """Base class; ``code`` mirrors the C client's negative error codes."""

    code = -1

    def __init__(self, path: str = "", msg: str = ""):
        super().__init__(msg or f"{type(self).__name__}: {path}")
        self.path = path


class NoNodeError(ZKError):
    code = -101


class NodeExistsError(ZKError):
    code = -110


class NotEmptyError(ZKError):
    code = -111


class BadVersionError(ZKError):
    code = -103


class NoChildrenForEphemeralsError(ZKError):
    code = -108


class ConnectionLossError(ZKError):
    code = -4


class SessionExpiredError(ZKError):
    code = -112


class NotLeaderError(ZKError):
    """Internal: a write reached a server that is not (any longer) leader."""

    code = -900


class StaleShardMapError(ZKError):
    """Internal: the request was stamped with a shard-map epoch that no
    longer routes its path correctly, or the path is under a subtree whose
    migration is mid-copy. Carries the new map (and the in-flight
    migration, if any) so the client can adopt and re-route without a
    round-trip to a coordinator. Deliberately *not* in ``ZKClient``'s
    retryable set — the shard client would retry against the same wrong
    shard; ``ShardedMDS`` handles it by re-routing."""

    code = -901

    def __init__(self, path: str = "", msg: str = "", shard_map=None,
                 migration=None):
        super().__init__(path, msg)
        self.shard_map = shard_map
        self.migration = migration


class BadArgumentsError(ZKError):
    code = -8
