"""Fast leader election and the epoch-sync (recovery) phase.

A LOOKING server broadcasts a vote for the best candidate it knows —
ordered by (last logged zxid, server id), exactly the real FLE criterion —
adopting and re-broadcasting any better vote it hears. When a quorum of
current votes agrees on one candidate, the server decides: it becomes
leader if the candidate is itself, otherwise it syncs with and follows the
winner.

The sync phase implements ZAB recovery: the new leader's log is
authoritative; a (re)joining follower ships its logged zxid sequence, the
leader computes the longest common prefix, and replies with a truncate
point plus the missing suffix. The leader activates (serves writes) once a
quorum of members is synced, and — per ZAB — commits its entire log at
activation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Tuple

from ..sim.core import Interrupt
from ..sim.rpc import RpcTimeout
from .data import ZnodeStore
from .errors import NotLeaderError, ZKError
from .protocol import Ack, FollowerInfo, Vote

if TYPE_CHECKING:  # pragma: no cover
    from .server import ZKServer

LOOKING = "looking"
LEADING = "leading"
FOLLOWING = "following"


def vote_order(candidate_zxid: int, candidate_sid: int) -> Tuple[int, int]:
    return (candidate_zxid, candidate_sid)


def start_election(server: "ZKServer") -> None:
    """Enter LOOKING and begin a new election round."""
    if server.node.down:
        return
    if server.observer:
        # Observers never vote or lead; they just look for a leader to
        # re-sync with (via the vote-hint path in on_vote).
        server.role = LOOKING
        server.leader_sid = None
        _broadcast_vote(server)
        server.node.spawn(_election_ticker(server, server.election_round),
                          f"zk{server.sid}.observe-seek")
        return
    if server.role == LEADING:
        server._step_down()
    server.role = LOOKING
    server.activated = False
    server.leader_sid = None
    server.stats["elections"] += 1
    server.election_round += 1
    server._votes = {server.sid: (server.last_logged_zxid, server.sid)}
    server._my_vote = (server.last_logged_zxid, server.sid)
    _broadcast_vote(server)
    server.node.spawn(_election_ticker(server, server.election_round),
                      f"zk{server.sid}.election")


def _broadcast_vote(server: "ZKServer") -> None:
    zxid, sid = server._my_vote
    vote = Vote(server.sid, sid, zxid, server.election_round, server.role)
    for peer in server.followers():
        server._cast_peer(peer, "vote", vote, size=64)


def _election_ticker(server: "ZKServer", round_: int) -> Generator:
    """Re-broadcast periodically so elections survive lost casts and
    round changes, and re-check the decision condition. Round-agnostic:
    a server that joins a peer's newer round must keep broadcasting, or
    two-survivor elections livelock (the joiner goes silent and the peer
    never reaches quorum)."""
    if getattr(server, "_ticker_running", False):
        return
    server._ticker_running = True
    try:
        while True:
            try:
                yield server.sim.timeout(server.params.election_tick)
            except Interrupt:
                return
            if server.role != LOOKING:
                return
            _broadcast_vote(server)
            _maybe_decide(server)
    finally:
        server._ticker_running = False


def on_vote(server: "ZKServer", vote: Vote) -> None:
    """Fast-handler for incoming election notifications."""
    if server.role != LOOKING:
        # Help latecomers find the established leader.
        if vote.state == LOOKING and server.leader_sid is not None:
            reply = Vote(server.sid, server.leader_sid,
                         server.last_logged_zxid, vote.round, server.role)
            server._cast_peer(vote.sid, "vote", reply, size=64)
        return
    if vote.state != LOOKING:
        # Authoritative hint: an established member points at its leader.
        if not server._syncing:
            server._syncing = True
            server._presync = []
            server.role = FOLLOWING
            server.leader_sid = vote.proposed_sid
            server.node.spawn(follow(server, vote.proposed_sid),
                              f"zk{server.sid}.follow")
        return
    if vote.sid >= server.ensemble_size:
        return  # an observer's vote never counts toward any quorum
    if vote.round > server.election_round:
        # Peer is in a newer round; join it (and speak up in it).
        server.election_round = vote.round
        server._votes = {server.sid: server._my_vote}
        _broadcast_vote(server)
    elif vote.round < server.election_round and vote.state == LOOKING:
        return  # stale round
    server._votes[vote.sid] = (vote.proposed_zxid, vote.proposed_sid)
    candidate = (vote.proposed_zxid, vote.proposed_sid)
    if vote.proposed_sid >= server.ensemble_size:
        return  # never adopt an observer as candidate
    if vote_order(*candidate) > vote_order(*server._my_vote):
        server._my_vote = candidate
        server._votes[server.sid] = candidate
        _broadcast_vote(server)
    _maybe_decide(server)


def _maybe_decide(server: "ZKServer") -> None:
    backing = sum(1 for v in server._votes.values() if v == server._my_vote)
    if backing < server.quorum:
        return
    winner_sid = server._my_vote[1]
    if winner_sid == server.sid:
        become_leader(server)
    else:
        # Buffer proposals from the instant we commit to following, so
        # nothing racing ahead of the sync response is lost.
        server._syncing = True
        server._presync = []
        server.role = FOLLOWING  # tentative; follow() may re-elect
        server.leader_sid = winner_sid
        server.node.spawn(follow(server, winner_sid),
                          f"zk{server.sid}.follow")


def become_leader(server: "ZKServer") -> None:
    """Adopt a new epoch and wait for a quorum of followers to sync.

    Per ZAB, the new leader's entire log is committed once it activates:
    any proposal it logged under a previous epoch either reached a quorum
    (must survive) or can safely be committed anyway because this leader
    won with the highest logged zxid in a quorum.
    """
    server.role = LEADING
    server.leader_sid = server.sid
    new_epoch = (server.last_logged_zxid >> 32) + 1
    server.epoch = max(new_epoch, server.promised_epoch + 1)
    server.promised_epoch = server.epoch
    server.zxid_counter = 0
    server.active_followers = set()
    server.activated = False
    # Commit the full log locally.
    server._rebuild_from_disk()
    for zxid, txn in server.log:
        if zxid > server.commit_index:
            server.store.apply(txn, zxid, server.sim.now)
            server.commit_index = zxid
    # Speculative tree starts equal to the committed tree.
    server.spec_store = ZnodeStore.from_snapshot(server.store.snapshot())
    server.outstanding.clear()
    server.out_queue.clear()
    server.last_pong_at = {}
    # Single-member ensembles activate immediately.
    if server.quorum <= 1:
        server.activated = True


def follow(server: "ZKServer", leader_sid: int) -> Generator:
    """Sync with the elected leader, then serve as a follower.

    Caller must have set ``server._syncing`` (proposal buffering) already;
    static-mode rejoin does it here.
    """
    if not server._syncing:
        server._syncing = True
        server._presync = []
    try:
        info = FollowerInfo(server.sid, tuple(z for z, _ in server.log),
                            observer=server.observer)
        resp = yield from server.agent.call(
            server.peers[leader_sid], "follower_info", info,
            size=128 + 8 * len(server.log), timeout=2.0)
    except (RpcTimeout, NotLeaderError, ZKError, Interrupt):
        server._syncing = False
        if server.params.failure_detection and not server.node.down:
            start_election(server)
        return
    if resp.epoch < server.promised_epoch:
        server._syncing = False
        if server.params.failure_detection:
            start_election(server)
        return
    server.promised_epoch = resp.epoch
    server.epoch = resp.epoch
    server.leader_sid = leader_sid
    # Truncate divergent suffix, append the leader's, rebuild, apply commits.
    if resp.snapshot is not None:
        server._snapshot = resp.snapshot
        server._snapshot_zxid = resp.snapshot_zxid
        server.log = list(resp.entries)
    else:
        server.log = [(z, t) for z, t in server.log if z <= resp.truncate_to]
        server.log.extend(resp.entries)
    server._rebuild_from_disk()
    for zxid, txn in server.log:
        if zxid > server.commit_index and zxid <= resp.commit_to:
            server.store.apply(txn, zxid, server.sim.now)
            server.commit_index = zxid
    server.pending_commit = server.commit_index
    server._accepted_zxid = (server.log[-1][0] if server.log
                             else server._snapshot_zxid)
    server.role = FOLLOWING
    server.last_ping_at = server.sim.now
    server._syncing = False
    # Entries learned through the sync are durably logged now: ack the
    # uncommitted tail so proposals that were dropped on the wire can
    # still reach quorum through a re-synced follower.
    if not server.observer:
        tail = tuple(z for z, _ in server.log if z > resp.commit_to)
        if tail:
            server._cast_peer(leader_sid, "ack", Ack(tail, server.sid))
    # Replay proposals that raced past the sync response.
    buffered, server._presync = server._presync, []
    for prop in buffered:
        server._f_propose("", prop)
