"""Ensemble assembly: place N ZooKeeper servers on simulated nodes.

The paper co-locates ZooKeeper servers with the DUFS client nodes
(section V: "ZooKeeper server runs along with the DUFS clients"); the
builder supports both co-located and dedicated placements — the ablation
benchmark compares them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..models.params import ZKParams
from ..sim.node import Cluster, Node
from ..svc import TraceBus
from .server import ZKServer


@dataclass
class ZKEnsemble:
    """Handle to a built ensemble."""

    servers: List[ZKServer]
    endpoints: List[str]

    @property
    def leader(self) -> Optional[ZKServer]:
        for s in self.servers:
            if s.role == "leading":
                return s
        return None

    def server_for(self, index: int) -> str:
        """Endpoint assignment for the ``index``-th client (round-robin).

        Round-robins over *live* endpoints only: after a permanent crash
        removes a server, indexing the full endpoint list would hand out
        dead addresses forever. Falls back to the full list when nothing
        is live (the client's own fail-over loop then takes over).
        """
        live = [ep for s, ep in zip(self.servers, self.endpoints)
                if not s.node.down]
        pool = live or self.endpoints
        return pool[index % len(pool)]

    def fingerprints(self) -> List[int]:
        return [s.store.fingerprint() for s in self.servers]

    def converged(self) -> bool:
        """All replicas hold identical committed trees."""
        fps = self.fingerprints()
        return all(fp == fps[0] for fp in fps)


def build_ensemble(
    cluster: Cluster,
    nodes: Sequence[Node],
    n_servers: int,
    params: Optional[ZKParams] = None,
    static_leader: Optional[int] = 0,
    boot: bool = True,
    n_observers: int = 0,
    bus: Optional[TraceBus] = None,
    name: str = "zk",
    shard: int = 0,
) -> ZKEnsemble:
    """Create ``n_servers`` voting ZK servers (plus ``n_observers``
    non-voting observers) spread round-robin over ``nodes``.

    With ``boot=True`` and a ``static_leader``, roles are assigned without
    an election (healthy-cluster benchmarks). Pass ``static_leader=None``
    (and params with ``failure_detection=True``) to start all servers
    LOOKING and let the election run. Observers replicate committed state
    and serve reads but never vote or ack — read fan-out at no write cost.

    ``name`` prefixes server endpoints (default ``"zk"`` keeps them
    identical to before); distinct names let several independent
    ensembles — the sharded metadata plane — share one cluster.
    """
    params = params or ZKParams()
    total = n_servers + n_observers
    peers = {sid: f"{name}{sid}" for sid in range(total)}
    servers = []
    for sid in range(total):
        node = nodes[sid % len(nodes)]
        server = ZKServer(node, sid, peers, params=params,
                          static_leader=static_leader,
                          observer=sid >= n_servers,
                          voter_count=n_servers, bus=bus)
        server.svc.shard = shard      # tag this ensemble's traces
        servers.append(server)
    if boot and static_leader is not None:
        for server in servers:
            server.boot_static()
    elif boot:
        from .election import start_election
        for server in servers:
            if not server.observer:
                start_election(server)
    return ZKEnsemble(servers, [peers[s] for s in range(total)])
