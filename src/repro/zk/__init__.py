"""A from-scratch ZooKeeper: replicated znode tree with ZAB atomic broadcast.

Components (mirroring the real system's architecture):

- :mod:`repro.zk.data` — the znode tree (hierarchical namespace, per-znode
  stat/versions, sequential and ephemeral nodes) and the deterministic
  transaction application that makes every replica converge.
- :mod:`repro.zk.protocol` — wire records (requests, proposals, acks,
  commits, votes).
- :mod:`repro.zk.server` — one ZooKeeper server: leader write pipeline
  (propose → quorum ack → commit), follower forwarding, local reads,
  sessions and watches, crash recovery.
- :mod:`repro.zk.election` — fast-leader-election and the epoch/sync phase.
- :mod:`repro.zk.client` — the synchronous client API the paper uses
  (``zoo_create``/``zoo_get``/``zoo_set``/``zoo_delete`` and friends),
  plus ``multi`` transactions.
- :mod:`repro.zk.ensemble` — builds an ensemble on a simulated cluster.
"""

from .client import ZKClient
from .data import ZnodeStat, ZnodeStore
from .ensemble import ZKEnsemble, build_ensemble
from .errors import (
    BadVersionError,
    ConnectionLossError,
    NoChildrenForEphemeralsError,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
    SessionExpiredError,
    ZKError,
)
from .server import ZKServer

__all__ = [
    "ZKClient", "ZKEnsemble", "ZKServer", "ZnodeStat", "ZnodeStore",
    "build_ensemble",
    "BadVersionError", "ConnectionLossError", "NoChildrenForEphemeralsError",
    "NoNodeError", "NodeExistsError", "NotEmptyError", "SessionExpiredError",
    "ZKError",
]
