"""One ZooKeeper server: ZAB write pipeline, local reads, sessions, watches.

Roles follow the real system: a single **leader** sequences all writes
(validate against a speculative tree → assign zxid → stream PROPOSE to
followers → collect quorum ACKs → COMMIT), while **followers** serve reads
from their committed tree and forward writes to the leader. Txn logging is
group-committed: a batch of proposals shares one fsync, which is what lets
the real server sustain thousands of writes per second through a
millisecond-latency disk.

Durable state (survives :meth:`Node.crash`): the txn log, the last
checkpoint snapshot, and the promised epoch. Everything else is volatile
and rebuilt on recovery by snapshot + log replay.

Leader election lives in :mod:`repro.zk.election` (mixed in here via plain
method calls); throughput experiments run with a statically assigned leader
and no failure detection, matching the paper's healthy-cluster runs.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

from ..core.paths import ancestors
from ..models.params import ZKParams
from ..sim.core import Event, Interrupt
from ..sim.node import Node
from ..sim.resources import Store
from ..sim.rpc import Reply
from ..svc import Batcher, Service, TraceBus
from .data import ZnodeStore
from .errors import (
    ConnectionLossError,
    NotLeaderError,
    SessionExpiredError,
    ZKError,
)
from .protocol import (
    Ack,
    Commit,
    FollowerInfo,
    Ping,
    Pong,
    Propose,
    ProposeBatch,
    ReadRequest,
    ResolveResult,
    SyncResponse,
    Vote,
    WatchEvent,
    WriteRequest,
)

LOOKING = "looking"
LEADING = "leading"
FOLLOWING = "following"


@dataclass
class _Outstanding:
    txn: tuple
    result: Any
    done: Event
    acks: Set[int] = field(default_factory=set)
    ready: bool = False


class ZKServer:
    """A member of a ZooKeeper ensemble, bound to a simulated node."""

    def __init__(
        self,
        node: Node,
        sid: int,
        peers: Dict[int, str],
        params: Optional[ZKParams] = None,
        static_leader: Optional[int] = None,
        observer: bool = False,
        voter_count: Optional[int] = None,
        bus: Optional[TraceBus] = None,
    ):
        self.node = node
        self.sim = node.sim
        self.sid = sid
        self.peers = dict(peers)            # sid -> endpoint (includes self)
        self.endpoint = peers[sid]
        self.params = params or ZKParams()
        self.static_leader = static_leader
        # Observers replicate state and serve reads but never vote or ack
        # proposals — read fan-out without slowing the write quorum.
        self.observer = observer
        self.ensemble_size = voter_count if voter_count is not None \
            else len(peers)
        self.quorum = self.ensemble_size // 2 + 1

        # ---- durable state (conceptually on disk; survives crash) --------
        self.log: List[Tuple[int, tuple]] = []   # (zxid, txn) in order
        self.promised_epoch = 0
        self._snapshot: Optional[list] = None    # last checkpoint
        self._snapshot_zxid = 0

        # ---- volatile state ----------------------------------------------
        self.store = ZnodeStore()
        self.commit_index = 0
        self.role = LOOKING
        self.epoch = 0
        self.leader_sid: Optional[int] = None
        self.activated = False                    # leader: quorum synced

        # leader-only
        self.spec_store = ZnodeStore()
        self.zxid_counter = 0
        self.outstanding: Dict[int, _Outstanding] = {}
        self.out_queue: deque[int] = deque()
        self.active_followers: Set[int] = set()
        self.active_observers: Set[int] = set()

        # follower-only
        self.pending_commit = 0                   # highest Commit.upto seen
        self._accepted_zxid = 0                   # highest zxid accepted into
                                                  # the log pipeline
        self._syncing = False                     # buffering proposals
        self._presync: List[Propose] = []

        # server-side dentry cache (volatile): paths whose *existence* was
        # verified during a ``resolve`` walk. Entries carry no data — znode
        # payloads are always read from the committed tree — so a cached
        # entry only ever goes stale through deletion, which the applier
        # invalidates txn-by-txn. LRU-bounded by ``dentry_cache_capacity``.
        self._dentries: "OrderedDict[str, None]" = OrderedDict()

        # sessions / watches
        self._session_counter = 0
        self.sessions: Dict[int, str] = {}        # session id -> client endpoint
        self.session_last_contact: Dict[int, float] = {}
        self.data_watches: Dict[str, Set[str]] = {}
        self.child_watches: Dict[str, Set[str]] = {}
        self.exist_watches: Dict[str, Set[str]] = {}

        # liveness (failure detection mode)
        self.last_ping_at = 0.0
        self.last_pong_at: Dict[int, float] = {}
        self.election_round = 0
        self._votes: Dict[int, Tuple[int, int]] = {}
        self._my_vote: Tuple[int, int] = (0, 0)

        # pipelines (group-commit logger; optional leader write batching)
        self._apply_kick = Store(self.sim)
        self._logger: Optional[Batcher] = None
        self._proposer: Optional[Batcher] = None

        # counters for tests / benchmarks ("ops" is kept by the kernel)
        self.stats = {"reads": 0, "writes": 0, "proposals": 0, "commits": 0,
                      "forwards": 0, "elections": 0, "gap_resyncs": 0,
                      "resolves": 0, "dentry_hits": 0, "dentry_misses": 0}

        # Elastic metadata plane (off by default): a deployment-shared hook
        # rejecting requests whose shard-map epoch no longer routes their
        # path here, or whose path is under a mid-copy subtree migration.
        # None means no check at all — the static plane pays nothing.
        self.route_guard: Optional[Callable] = None

        from ..svc.queue import make_policy
        self.svc = Service(node, self.endpoint, deployment="zk", bus=bus,
                           op_stats=self.stats,
                           policy=make_policy(self.params.admission,
                                              node.sim))
        self.agent = self.svc.agent
        self._register_handlers()
        node.on_crash(self._on_crash)
        node.on_recover(self._on_recover)
        self._start_pipelines()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _register_handlers(self) -> None:
        s = self.svc
        p = self.params
        s.expose("read", self._h_read, cost=p.read_cpu)
        s.expose("write", self._h_write, write=True, cost=p.write_leader_cpu)
        s.expose("fwd_write", self._h_fwd_write, write=True,
                 cost=p.write_leader_cpu)
        s.expose("connect", self._h_connect, cost=p.session_cpu)
        s.expose("close_session", self._h_close_session, write=True,
                 cost=p.session_cpu)
        s.expose("follower_info", self._h_follower_info, cost=p.session_cpu)
        s.expose("sync", self._h_sync, cost=p.forward_cpu)
        s.expose("commit_index", self._h_commit_index, cost=p.forward_cpu)
        s.expose_fast("propose", self._f_propose)
        s.expose_fast("propose_batch", self._f_propose_batch)
        s.expose_fast("ack", self._f_ack)
        s.expose_fast("commit", self._f_commit)
        s.expose_fast("ping", self._f_ping)
        s.expose_fast("pong", self._f_pong)
        s.expose_fast("vote", self._f_vote)
        s.expose_fast("session_ping", self._f_session_ping)

    def _start_pipelines(self) -> None:
        if self._logger is None:
            self._logger = Batcher(self.node, f"zk{self.sid}.logger",
                                   self._flush_log,
                                   max_batch=self.params.log_batch_max,
                                   bus=self.svc.bus, deployment="zk")
        else:
            self._logger.restart()
        if self.params.propose_batch_max > 1:
            if self._proposer is None:
                self._proposer = Batcher(
                    self.node, f"zk{self.sid}.proposer",
                    self._flush_proposals,
                    max_batch=self.params.propose_batch_max,
                    bus=self.svc.bus, deployment="zk")
            else:
                self._proposer.restart()
        self.node.spawn(self._applier_loop(), f"zk{self.sid}.applier")
        if self.params.checkpoint_interval > 0:
            self.node.spawn(self._checkpoint_loop(), f"zk{self.sid}.ckpt")
        if self.params.failure_detection:
            self.node.spawn(self._heartbeat_loop(), f"zk{self.sid}.heartbeat")
            self.node.spawn(self._watchdog_loop(), f"zk{self.sid}.watchdog")
        if self.params.session_tracking:
            self.node.spawn(self._session_watchdog_loop(),
                            f"zk{self.sid}.sessions")

    @property
    def last_logged_zxid(self) -> int:
        return self.log[-1][0] if self.log else self._snapshot_zxid

    def followers(self) -> List[int]:
        return [sid for sid in self.peers if sid != self.sid]

    def _cast_peer(self, sid: int, method: str, args: Any, size: int = 160) -> None:
        self.agent.cast(self.peers[sid], method, args, size=size)

    # ------------------------------------------------------------------
    # bootstrap (static roles for healthy-cluster benchmarks)
    # ------------------------------------------------------------------
    def boot_static(self) -> None:
        """Assume the configured static leader; no election traffic."""
        assert self.static_leader is not None
        self.epoch = 1
        self.promised_epoch = 1
        self.leader_sid = self.static_leader
        if self.sid == self.static_leader:
            self.role = LEADING
            self.zxid_counter = 0
            # Only voters are pre-activated; observers register themselves
            # by syncing with the leader at boot.
            self.active_followers = {s for s in self.followers()
                                     if s < self.ensemble_size}
            self.activated = True
        elif self.observer:
            from .election import follow
            self._syncing = True
            self._presync = []
            self.role = FOLLOWING
            self.node.spawn(follow(self, self.static_leader),
                            f"zk{self.sid}.observe")
        else:
            self.role = FOLLOWING
        self.last_ping_at = self.sim.now

    # ------------------------------------------------------------------
    # client-facing handlers
    # ------------------------------------------------------------------
    def _h_connect(self, src: str, args: Any) -> Generator:
        yield from self.node.cpu_work(self.params.session_cpu)
        if self.role == LOOKING:
            raise ConnectionLossError(msg=f"zk{self.sid} has no leader")
        self._session_counter += 1
        session = (self.sid << 40) | self._session_counter
        self.sessions[session] = src
        self.session_last_contact[session] = self.sim.now
        return session

    def _h_close_session(self, src: str, session: int) -> Generator:
        yield from self.node.cpu_work(self.params.session_cpu)
        yield from self._expire_session(session)
        return True

    def _f_session_ping(self, src: str, session: int) -> None:
        if session in self.sessions:
            self.session_last_contact[session] = self.sim.now

    def _session_watchdog_loop(self) -> Generator:
        """Expire sessions whose client stopped heartbeating; their
        ephemeral znodes are deleted through the normal write path —
        exactly how the real server reclaims dead clients' state."""
        timeout = self.params.session_timeout
        while True:
            try:
                yield self.sim.timeout(timeout / 2)
            except Interrupt:
                return
            now = self.sim.now
            for session, last in list(self.session_last_contact.items()):
                if now - last > timeout and session in self.sessions:
                    yield from self._expire_session(session)

    def _expire_session(self, session: int) -> Generator:
        """Delete the session's ephemerals through the normal write path."""
        self.sessions.pop(session, None)
        self.session_last_contact.pop(session, None)
        paths = sorted(self.store.ephemerals.get(session, ()), reverse=True)
        for path in paths:
            req = WriteRequest(op="delete", path=path, version=-1)
            try:
                yield from self._route_write(req)
            except ZKError:
                pass  # concurrent deletion is fine

    def expire_session(self, session: int):
        """Test/failure-injection hook: expire from outside a handler."""
        return self.node.spawn(self._expire_session(session),
                               f"zk{self.sid}.expire")

    def _h_read(self, src: str, req: ReadRequest) -> Generator:
        yield from self.node.cpu_work(self.params.read_cpu)
        if self.role == LOOKING:
            raise ConnectionLossError(msg=f"zk{self.sid} is electing")
        if self.route_guard is not None:
            self.route_guard(req)
        self.stats["reads"] += 1
        p = self.params
        if req.op == "exists":
            stat = self.store.exists(req.path)
            if req.watch:
                table = self.data_watches if stat is not None else self.exist_watches
                table.setdefault(req.path, set()).add(src)
            return Reply(stat, size=p.resp_base_size)
        if req.op == "get":
            data, stat = self.store.get(req.path)  # raises NoNodeError
            if req.watch:
                self.data_watches.setdefault(req.path, set()).add(src)
            return Reply((data, stat), size=p.resp_base_size + len(data))
        if req.op == "children":
            names = self.store.get_children(req.path)
            if req.watch:
                self.child_watches.setdefault(req.path, set()).add(src)
            size = p.resp_base_size + sum(len(n) + 4 for n in names)
            return Reply(names, size=size)
        if req.op == "resolve":
            reply = yield from self._h_resolve(src, req)
            return reply
        raise ZKError(req.path, f"unknown read op {req.op!r}")

    def _h_resolve(self, src: str, req: ReadRequest) -> Generator:
        """Whole-path lookup in one RPC: walk the ancestor chain against
        the server-side dentry cache, charging ``resolve_component_cpu``
        only for components not already verified, then read the target
        znode. Never raises NoNodeError — a broken chain or missing target
        comes back as a ``miss`` ResolveResult carrying the nearest
        existing ancestor, so the client can classify the error and
        negative-cache the gap without extra round trips."""
        from .errors import NoNodeError

        p = self.params
        bus = self.svc.bus
        self.stats["resolves"] += 1
        path = req.path
        misses = 0
        nearest = "/"          # nearest *existing* ancestor seen so far
        broken = False         # an intermediate component is missing
        for anc in ancestors(path):
            if anc in self._dentries:
                self._dentries.move_to_end(anc)
                self.stats["dentry_hits"] += 1
                bus.mark("zk", self.endpoint, "dentry_hit", self.sim.now)
                nearest = anc
                continue
            self.stats["dentry_misses"] += 1
            bus.mark("zk", self.endpoint, "dentry_miss", self.sim.now)
            misses += 1
            if self.store.exists(anc) is None:
                broken = True
                break
            self._dentry_insert(anc)
            nearest = anc
        if misses:
            yield from self.node.cpu_work(p.resolve_component_cpu * misses)
        if not broken:
            try:
                data, stat = self.store.get(path)
            except NoNodeError:
                pass
            else:
                if req.watch:
                    self.data_watches.setdefault(path, set()).add(src)
                res = ResolveResult("ok", path, data=data, stat=stat,
                                    ancestor=nearest)
                return Reply(res, size=p.resp_base_size + len(data))
        anc_data = b""
        if nearest != "/":
            anc_data, _ = self.store.get(nearest)
        res = ResolveResult("miss", path, ancestor=nearest,
                            ancestor_data=anc_data)
        return Reply(res, size=p.resp_base_size + len(anc_data))

    def _dentry_insert(self, path: str) -> None:
        self._dentries[path] = None
        self._dentries.move_to_end(path)
        cap = self.params.dentry_cache_capacity
        if cap > 0:
            while len(self._dentries) > cap:
                self._dentries.popitem(last=False)

    def _h_write(self, src: str, req: WriteRequest) -> Generator:
        if self.route_guard is not None:
            self.route_guard(req)
        if (self.params.session_tracking and req.op == "create"
                and req.ephemeral and req.session
                and req.session not in self.sessions):
            # The owning session is gone (expired, or established on
            # another server): the real server refuses rather than create
            # an unreclaimable ephemeral. Clients reconnect and retry.
            raise SessionExpiredError(
                req.path, msg=f"session {req.session:#x} unknown at "
                              f"zk{self.sid}")
        result = yield from self._route_write(req)
        return result

    def _route_write(self, req: WriteRequest) -> Generator:
        if self.role == LEADING:
            result = yield from self._process_write(req)
            return result
        if self.role == FOLLOWING and self.leader_sid is not None:
            self.stats["forwards"] += 1
            yield from self.node.cpu_work(self.params.forward_cpu)
            lead = self.leader_sid  # may have changed while queued
            if self.role != FOLLOWING or lead is None:
                raise ConnectionLossError(
                    msg=f"zk{self.sid} lost its leader while forwarding")
            zxid, result = yield from self.agent.call(
                self.peers[lead], "fwd_write", req,
                size=self._req_size(req), timeout=5.0)
            # Read-your-writes (the ZooKeeper session guarantee): the
            # client's next read lands on *this* replica, so don't
            # acknowledge the write until it is applied here. The
            # leader's reply can beat the COMMIT broadcast when the
            # pipeline queues — answering early lets a create..stat pair
            # on the same session miss its own file. A membership change
            # voids the session binding, so stop holding the ack then.
            while self.commit_index < zxid and self.role == FOLLOWING:
                yield self.sim.timeout(self.params.log_delay)
            return result
        raise ConnectionLossError(msg=f"zk{self.sid} has no leader")

    def _h_commit_index(self, src: str, args: Any) -> Generator:
        if self.role != LEADING:
            raise NotLeaderError(msg=f"zk{self.sid} is not the leader")
        yield from self.node.cpu_work(self.params.forward_cpu)
        return self._pipeline_horizon()

    def _pipeline_horizon(self) -> int:
        """The zxid a sync must wait for: the newest *sequenced* write,
        committed or not. A write is durable-in-order the moment its zxid
        is assigned, so a barrier that stopped at ``commit_index`` would
        run ahead of proposals still collecting acks."""
        return max(self.outstanding) if self.outstanding \
            else self.commit_index

    def _h_sync(self, src: str, path: str) -> Generator:
        """Flush the leader pipeline to this replica (zoo_sync): after it
        returns, this server has applied every write committed before the
        sync was issued."""
        yield from self.node.cpu_work(self.params.forward_cpu)
        if self.role == LOOKING:
            raise ConnectionLossError(msg=f"zk{self.sid} is electing")
        if self.role == LEADING:
            horizon = self._pipeline_horizon()
        else:
            horizon = yield from self.agent.call(
                self.peers[self.leader_sid], "commit_index", None,
                timeout=5.0)
        while self.commit_index < horizon:
            yield self.sim.timeout(self.params.log_delay)
        return self.commit_index

    def _h_fwd_write(self, src: str, req: WriteRequest) -> Generator:
        """Leader side of follower forwarding. Replies ``(zxid, result)``
        so the follower can hold its client's ack until the commit is
        applied locally (see ``_route_write``)."""
        if self.role != LEADING:
            raise NotLeaderError(msg=f"zk{self.sid} is not the leader")
        result = yield from self._process_write(req, with_zxid=True)
        return result

    def _req_size(self, req: WriteRequest) -> int:
        base = self.params.req_base_size + len(req.path) + len(req.data)
        for sub in req.ops:
            base += len(sub.path) + len(sub.data) + 16
        return base

    # ------------------------------------------------------------------
    # leader write pipeline
    # ------------------------------------------------------------------
    def _validate(self, req: WriteRequest) -> Tuple[tuple, Any]:
        """Validate against the speculative tree; return (txn, client result).

        Must run without yielding so validation+speculative-apply is atomic
        with zxid assignment.
        """
        spec = self.spec_store
        if req.op == "create":
            eph = req.session if req.ephemeral else 0
            path = spec.check_create(req.path, eph, req.sequential)
            return ("create", path, req.data, eph, req.sequential), path
        if req.op == "delete":
            spec.check_delete(req.path, req.version)
            return ("delete", req.path), True
        if req.op == "set":
            spec.check_set_data(req.path, req.version)
            return ("set", req.path, req.data), True
        if req.op == "multi":
            subs, results = self._validate_multi(req)
            return ("multi", tuple(subs)), results
        raise ZKError(req.path, f"unknown write op {req.op!r}")

    def _validate_multi(self, req: WriteRequest) -> Tuple[List[tuple], List[Any]]:
        """Validate a multi against spec + an overlay of earlier sub-ops.

        The spec tree is never mutated here (the whole multi is applied
        once, atomically, on commit), so a failed validation needs no
        rollback. Sequential creates inside a multi are not supported
        (DUFS never needs them).
        """
        from .data import split_path, validate_path
        from .errors import (BadArgumentsError, NoNodeError, NodeExistsError,
                             NotEmptyError)

        spec = self.spec_store
        created: set = set()
        deleted: set = set()

        def alive(path: str) -> bool:
            if path in created:
                return True
            if path in deleted:
                return False
            return spec.exists(path) is not None

        def has_children(path: str) -> bool:
            try:
                names = spec.get_children(path)
            except NoNodeError:
                names = []
            prefix = path if path != "/" else ""
            for name in names:
                if f"{prefix}/{name}" not in deleted:
                    return True
            return any(c.startswith(f"{prefix}/")
                       and "/" not in c[len(prefix) + 1:] for c in created)

        subs: List[tuple] = []
        results: List[Any] = []
        for sub in req.ops:
            if sub.op == "check":
                if not alive(sub.path):
                    raise NoNodeError(sub.path)
                if sub.path not in created and sub.path not in deleted:
                    spec.check_version(sub.path, sub.version)
                continue
            if sub.op == "create":
                if sub.sequential:
                    raise BadArgumentsError(sub.path,
                                            "sequential create in multi")
                validate_path(sub.path)
                parent, name = split_path(sub.path)
                if not name or not alive(parent):
                    raise NoNodeError(sub.path)
                if alive(sub.path):
                    raise NodeExistsError(sub.path)
                created.add(sub.path)
                deleted.discard(sub.path)
                eph = sub.session if sub.ephemeral else 0
                subs.append(("create", sub.path, sub.data, eph, False))
                results.append(sub.path)
            elif sub.op == "delete":
                if not alive(sub.path):
                    raise NoNodeError(sub.path)
                if has_children(sub.path):
                    raise NotEmptyError(sub.path)
                if sub.path not in created:
                    spec.check_version(sub.path, sub.version)
                deleted.add(sub.path)
                created.discard(sub.path)
                subs.append(("delete", sub.path))
                results.append(True)
            elif sub.op == "set":
                if not alive(sub.path):
                    raise NoNodeError(sub.path)
                if sub.path not in created:
                    spec.check_set_data(sub.path, sub.version)
                subs.append(("set", sub.path, sub.data))
                results.append(True)
            else:
                raise ZKError(sub.path, f"bad multi op {sub.op!r}")
        return subs, results

    def _peek_zxid(self) -> int:
        return (self.epoch << 32) | (self.zxid_counter + 1)

    def _next_zxid(self) -> int:
        self.zxid_counter += 1
        return (self.epoch << 32) | self.zxid_counter

    def _process_write(self, req: WriteRequest,
                       with_zxid: bool = False) -> Generator:
        if not self.activated:
            raise ConnectionLossError(msg=f"zk{self.sid} leader not activated")
        p = self.params
        batching = p.propose_batch_max > 1
        nf = len(self.active_followers)
        extra = (p.set_extra_cpu if req.op == "set"
                 else p.delete_extra_cpu if req.op == "delete" else 0.0)
        n_obs = len(self.active_observers)
        if batching:
            # Per-follower marshalling is paid once per *batch* by the
            # proposer pipeline; the request only pays its own validation.
            yield from self.node.cpu_work(p.write_leader_cpu + extra)
        else:
            yield from self.node.cpu_work(
                p.write_leader_cpu + extra + nf * p.write_per_follower_cpu
                + n_obs * p.write_per_follower_cpu * 0.5)
        if self.role != LEADING:  # demoted while queued for CPU
            raise NotLeaderError(msg=f"zk{self.sid} lost leadership")
        if self.route_guard is not None:
            # Re-check at the sequencing point: the admission-time check
            # ran before this request queued for the leader's CPU, and
            # the elastic plane may have frozen or re-routed the subtree
            # while it waited. Bouncing here (atomically with zxid
            # assignment) is what makes a migration freeze airtight — no
            # write under a frozen root can ever be sequenced after it.
            self.route_guard(req)
        # ---- atomic section: validate + speculative apply + sequence ----
        txn, result = self._validate(req)  # raises ZKError to caller
        zxid = self._next_zxid()
        self.spec_store.apply(txn, zxid, self.sim.now)
        self.log.append((zxid, txn))
        out = _Outstanding(txn=txn, result=result, done=self.sim.event())
        self.outstanding[zxid] = out
        self.out_queue.append(zxid)
        self.stats["writes"] += 1
        self.stats["proposals"] += 1
        if batching:
            self._proposer.submit((zxid, txn, self._req_size(req)))
            yield out.done
            return (zxid, result) if with_zxid else result
        prop = Propose(zxid, txn, self.epoch)
        psize = p.proposal_base_size + self._req_size(req)
        for sid in self.active_followers:
            self._cast_peer(sid, "propose", prop, size=psize)
        for sid in self.active_observers:
            # INFORM stream: observers replicate without acking; the
            # leader pays a smaller marshalling cost for them.
            self._cast_peer(sid, "propose", prop, size=psize)
        # self-ack goes through the group-committed logger
        self._logger.submit(("self_ack", zxid))
        yield out.done
        return (zxid, result) if with_zxid else result

    def _flush_proposals(self, batch: List[tuple]) -> Generator:
        """Proposer pipeline flush (``propose_batch_max > 1``): stream one
        marshalled PROPOSE batch per follower, then self-ack every txn."""
        p = self.params
        if self.role != LEADING:
            return  # demoted: outstanding entries were failed by step-down
        nf = len(self.active_followers)
        n_obs = len(self.active_observers)
        yield from self.node.cpu_work(
            (nf + 0.5 * n_obs) * p.write_per_follower_cpu)
        if self.role != LEADING:
            return
        pb = ProposeBatch(tuple(Propose(z, txn, self.epoch)
                                for z, txn, _ in batch))
        size = p.proposal_base_size + sum(s for _, _, s in batch)
        for sid in self.active_followers:
            self._cast_peer(sid, "propose_batch", pb, size=size)
        for sid in self.active_observers:
            self._cast_peer(sid, "propose_batch", pb, size=size)
        for z, _, _ in batch:
            self._logger.submit(("self_ack", z))

    # ------------------------------------------------------------------
    # logger pipeline (leader self-acks; follower log+ACK) — group commit
    # ------------------------------------------------------------------
    def _flush_log(self, batch: List[tuple]) -> Generator:
        p = self.params
        follower_items = [b for b in batch if b[0] == "log"]
        if follower_items:
            yield from self.node.cpu_work(
                p.follower_log_cpu * len(follower_items))
        yield self.sim.timeout(p.log_delay)  # one fsync for the batch
        ack_zxids = []
        for item in batch:
            if item[0] == "self_ack":
                self._on_ack(self.sid, item[1])
            else:  # ("log", zxid, txn, leader_sid)
                _, zxid, txn, leader_sid = item
                self.log.append((zxid, txn))
                ack_zxids.append((leader_sid, zxid))
        if ack_zxids:
            if not self.observer:
                leader_sid = ack_zxids[0][0]
                self._cast_peer(
                    leader_sid, "ack",
                    Ack(tuple(z for _, z in ack_zxids), self.sid))
            self._apply_kick.put(True)  # commits may now be applicable

    # ------------------------------------------------------------------
    # ZAB casts
    # ------------------------------------------------------------------
    def _f_propose(self, src: str, prop: Propose) -> None:
        if self._syncing:
            # Mid-sync: the leader already counts us as active, so buffer
            # proposals until the sync response is applied (they are FIFO
            # behind it on the wire, but our coroutine applies it late).
            self._presync.append(prop)
            return
        if self.role != FOLLOWING or prop.epoch != self.epoch:
            return  # stale leader
        if prop.zxid <= self._accepted_zxid:
            return  # duplicate (logged, or queued/batched for the fsync)
        if self.log and prop.zxid <= self.log[-1][0]:
            return  # duplicate (already logged)
        if self._gap_before(prop.zxid):
            # A proposal was lost on the wire: logging past the hole and
            # later applying commits across it would silently diverge from
            # the leader at the same commit index. Buffer this proposal and
            # re-sync our log from the leader instead.
            from .election import follow
            self.stats["gap_resyncs"] += 1
            self._syncing = True
            self._presync = [prop]
            self.node.spawn(follow(self, self.leader_sid),
                            f"zk{self.sid}.gap-resync")
            return
        self._accepted_zxid = prop.zxid
        self._logger.submit(("log", prop.zxid, prop.txn, self.leader_sid))

    def _f_propose_batch(self, src: str, pb: ProposeBatch) -> None:
        """A leader-side write batch: contained proposals are processed in
        order exactly as if they had arrived individually."""
        for prop in pb.props:
            self._f_propose(src, prop)

    def _gap_before(self, zxid: int) -> bool:
        """True if accepting ``zxid`` would leave a hole in the log.

        Proposals within an epoch carry consecutive zxid counters; the
        predecessor of ``zxid`` must already have been accepted into the
        pipeline (``_accepted_zxid`` — the log, the fsync queue, or the
        in-flight fsync batch) or be the checkpoint horizon when the
        replayed log prefix was truncated."""
        last = self._accepted_zxid or self._snapshot_zxid
        if not last:
            # Fresh, empty log: the first proposal of an epoch is counter 1.
            return (zxid & 0xFFFFFFFF) != 1
        if (zxid >> 32) != (last >> 32):
            # First proposal we see of a new epoch; any committed
            # predecessors arrived via the post-election sync.
            return (zxid & 0xFFFFFFFF) != 1
        return zxid != last + 1

    def _f_ack(self, src: str, ack: Ack) -> None:
        if self.role != LEADING:
            return
        for zxid in ack.zxid if isinstance(ack.zxid, tuple) else (ack.zxid,):
            out = self.outstanding.get(zxid)
            if out is None:
                continue
            out.acks.add(ack.sid)
            if not out.ready and len(out.acks) >= self.quorum:
                out.ready = True
        self._advance_commit()

    def _on_ack(self, sid: int, zxid: int) -> None:
        out = self.outstanding.get(zxid)
        if out is None:
            return
        out.acks.add(sid)
        if not out.ready and len(out.acks) >= self.quorum:
            out.ready = True
        self._advance_commit()

    def _advance_commit(self) -> None:
        """Commit ready proposals strictly in zxid order."""
        advanced = False
        while self.out_queue:
            zxid = self.out_queue[0]
            out = self.outstanding.get(zxid)
            if out is None or not out.ready:
                break
            self.out_queue.popleft()
            advanced = True
        if advanced:
            self._apply_kick.put(True)

    def _f_commit(self, src: str, commit: Commit) -> None:
        if self.role != FOLLOWING:
            return
        if commit.zxid > self.pending_commit:
            self.pending_commit = commit.zxid
            self._apply_kick.put(True)

    # ------------------------------------------------------------------
    # applier pipeline: apply committed txns to the local tree, in order
    # ------------------------------------------------------------------
    def _applier_loop(self) -> Generator:
        p = self.params
        try:
            yield from self._applier_body(p)
        except Interrupt:
            return

    def _applier_body(self, p) -> Generator:
        while True:
            got = yield self._apply_kick.get()
            if got is None:
                return
            while True:
                todo = self._applicable()
                if not todo:
                    break
                yield from self.node.cpu_work(p.apply_cpu * len(todo))
                for zxid, txn in todo:
                    self.store.apply(txn, zxid, self.sim.now)
                    self.commit_index = zxid
                    self.stats["commits"] += 1
                    self._invalidate_dentries(txn)
                    self._fire_watches(txn)
                    if self.role == LEADING:
                        out = self.outstanding.pop(zxid, None)
                        if out is not None and not out.done.triggered:
                            out.done.succeed(out.result)
                if self.role == LEADING and todo:
                    upto = todo[-1][0]
                    for sid in self.active_followers | self.active_observers:
                        self._cast_peer(sid, "commit", Commit(upto), size=48)

    def _applicable(self) -> List[Tuple[int, tuple]]:
        """Next run of committed-but-unapplied log entries."""
        if self.role == LEADING:
            # Committed = contiguous ready prefix removed from out_queue.
            horizon = self.out_queue[0] if self.out_queue else None
            todo = []
            for zxid, txn in self._log_tail(self.commit_index):
                if horizon is not None and zxid >= horizon:
                    break
                if zxid in self.outstanding and not self.outstanding[zxid].ready:
                    break
                todo.append((zxid, txn))
            return todo
        if self.role == FOLLOWING:
            upto = self.pending_commit
            return [(z, t) for z, t in self._log_tail(self.commit_index)
                    if z <= upto]
        return []

    def _log_tail(self, after_zxid: int) -> List[Tuple[int, tuple]]:
        # log is zxid-ordered; binary search would be faster but tails are
        # short in steady state.
        out = []
        for i in range(len(self.log) - 1, -1, -1):
            if self.log[i][0] <= after_zxid:
                break
            out.append(self.log[i])
        out.reverse()
        return out

    def _invalidate_dentries(self, txn: tuple) -> None:
        """Drop dentry entries made stale by a committed txn. Deletes are
        validated leaf-only (a non-empty znode can't be deleted), so any
        cached descendant was already purged by its own delete txn — the
        exact-path pop is sufficient. Creates and sets don't change the
        existence of any cached path."""
        kind = txn[0]
        if kind == "multi":
            for sub in txn[1]:
                self._invalidate_dentries(sub)
        elif kind == "delete":
            self._dentries.pop(txn[1], None)

    # ------------------------------------------------------------------
    # watches
    # ------------------------------------------------------------------
    def _fire_watches(self, txn: tuple) -> None:
        kind = txn[0]
        if kind == "multi":
            for sub in txn[1]:
                self._fire_watches(sub)
            return
        path = txn[1]
        from .data import split_path
        parent, _ = split_path(path)
        if kind == "create":
            self._notify(self.exist_watches, path, WatchEvent("created", path))
            self._notify(self.child_watches, parent, WatchEvent("child", parent))
        elif kind == "delete":
            self._notify(self.data_watches, path, WatchEvent("deleted", path))
            self._notify(self.exist_watches, path, WatchEvent("deleted", path))
            self._notify(self.child_watches, parent, WatchEvent("child", parent))
            self._notify(self.child_watches, path, WatchEvent("deleted", path))
        elif kind == "set":
            self._notify(self.data_watches, path, WatchEvent("changed", path))

    def _notify(self, table: Dict[str, Set[str]], path: str,
                event: WatchEvent) -> None:
        watchers = table.pop(path, None)
        if not watchers:
            return
        for client in watchers:
            self.agent.cast(client, "watch_event", event, size=64)

    # ------------------------------------------------------------------
    # sync of (re)joining followers
    # ------------------------------------------------------------------
    def _h_follower_info(self, src: str, info: FollowerInfo) -> Generator:
        if self.role != LEADING:
            raise NotLeaderError(msg=f"zk{self.sid} is not leading")
        yield from self.node.cpu_work(self.params.session_cpu)
        if self.role != LEADING:
            raise NotLeaderError(msg=f"zk{self.sid} lost leadership")
        # ---- atomic: snapshot log tail + activate the follower ----------
        my_zxids = [z for z, _ in self.log]
        follower_zxids = list(info.last_zxid) if isinstance(info.last_zxid, tuple) \
            else None
        if follower_zxids is None:
            # caller sent only a scalar last zxid: treat as prefix length
            common = 0
            for z in my_zxids:
                if z <= info.last_zxid:
                    common += 1
                else:
                    break
        else:
            common = 0
            for a, b in zip(my_zxids, follower_zxids):
                if a == b:
                    common += 1
                else:
                    break
        entries = tuple(self.log[common:])
        truncate_to = my_zxids[common - 1] if common else 0
        snapshot = None
        snapshot_zxid = 0
        if common == 0 and self._snapshot_zxid > 0:
            # Our log was checkpoint-truncated and shares no prefix with the
            # follower's: ship the snapshot the log now starts from.
            snapshot = self._snapshot
            snapshot_zxid = self._snapshot_zxid
        if getattr(info, "observer", False):
            self.active_observers.add(info.sid)
        else:
            self.active_followers.add(info.sid)
            if len(self.active_followers) + 1 >= self.quorum:
                self.activated = True
        resp = SyncResponse(self.epoch, truncate_to, entries,
                            self.commit_index, snapshot, snapshot_zxid)
        size = 160 + 64 * len(entries) + (128 * len(snapshot) if snapshot else 0)
        return Reply(resp, size=size)

    # ------------------------------------------------------------------
    # heartbeats & failure detection (reliability experiments only)
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> Generator:
        p = self.params
        while True:
            try:
                yield self.sim.timeout(p.ping_interval)
            except Interrupt:
                return
            if self.role == LEADING:
                for sid in self.followers():
                    self._cast_peer(sid, "ping", Ping(self.sid, self.epoch), size=32)

    def _f_ping(self, src: str, ping: Ping) -> None:
        if ping.epoch >= self.epoch and self.role == FOLLOWING:
            self.last_ping_at = self.sim.now
            self._cast_peer(ping.sid, "pong", Pong(self.sid), size=32)
        elif ping.epoch > self.epoch and self.role == LOOKING:
            self.last_ping_at = self.sim.now

    def _f_pong(self, src: str, pong: Pong) -> None:
        self.last_pong_at[pong.sid] = self.sim.now

    def _watchdog_loop(self) -> Generator:
        from .election import start_election  # local import: cycle break
        p = self.params
        while True:
            try:
                yield self.sim.timeout(p.ping_timeout / 2)
            except Interrupt:
                return
            now = self.sim.now
            if self.role == FOLLOWING:
                if now - self.last_ping_at > p.ping_timeout:
                    start_election(self)
            elif self.role == LEADING:
                alive = sum(1 for sid in self.active_followers
                            if now - self.last_pong_at.get(sid, 0.0)
                            <= p.ping_timeout)
                if alive + 1 < self.quorum and now > p.ping_timeout:
                    self._step_down()
                    start_election(self)

    def _step_down(self) -> None:
        self.role = LOOKING
        self.activated = False
        self.active_followers.clear()
        for zxid, out in list(self.outstanding.items()):
            if not out.done.triggered:
                out.done.fail(ConnectionLossError(
                    msg=f"zk{self.sid} lost leadership"))
                out.done._used = True
        self.outstanding.clear()
        self.out_queue.clear()

    def _f_vote(self, src: str, vote: Vote) -> None:
        from .election import on_vote
        on_vote(self, vote)

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------
    def _checkpoint_loop(self) -> Generator:
        try:
            while True:
                yield self.sim.timeout(self.params.checkpoint_interval)
                if self.role != LOOKING:
                    yield from self.node.cpu_work(
                        self.params.apply_cpu * max(1, len(self.store) // 64))
                    self.checkpoint()
        except Interrupt:
            return

    def checkpoint(self) -> None:
        """Snapshot the committed tree and truncate the replayed log prefix
        (the paper notes ZooKeeper 'periodically checkpoints on disk')."""
        self._snapshot = self.store.snapshot()
        self._snapshot_zxid = self.commit_index
        self.log = [(z, t) for z, t in self.log if z > self.commit_index]

    def _on_crash(self) -> None:
        # Volatile state is lost; durable log/snapshot/promised_epoch stay.
        self.role = LOOKING
        self.activated = False
        self.leader_sid = None
        self.outstanding.clear()
        self.out_queue.clear()
        self.active_followers.clear()
        self.active_observers.clear()
        self.sessions.clear()
        self._dentries.clear()
        self.data_watches.clear()
        self.child_watches.clear()
        self.exist_watches.clear()
        self._logger.clear()
        if self._proposer is not None:
            self._proposer.clear()
        self._votes.clear()
        # Accepted-but-unfsynced proposals died with the logger pipeline.
        self._accepted_zxid = self.log[-1][0] if self.log \
            else self._snapshot_zxid

    def _rebuild_from_disk(self) -> None:
        if self._snapshot is not None:
            self.store = ZnodeStore.from_snapshot(self._snapshot)
        else:
            self.store = ZnodeStore()
        self.commit_index = self._snapshot_zxid
        self.pending_commit = self.commit_index
        # Conservative: everything logged before the crash may have been
        # committed; ZAB resolves actual commit point during sync/election.

    def _on_recover(self) -> None:
        self._apply_kick = Store(self.sim)
        self._rebuild_from_disk()
        self._start_pipelines()
        if self.params.failure_detection:
            from .election import start_election
            start_election(self)
        else:
            assert self.static_leader is not None and \
                self.static_leader != self.sid, \
                "static-role mode cannot recover the leader"
            self.node.spawn(self._rejoin_static(), f"zk{self.sid}.rejoin")

    def _rejoin_static(self) -> Generator:
        from .election import follow
        yield self.sim.timeout(0)
        yield from follow(self, self.static_leader)
