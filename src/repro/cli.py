"""Command-line entry point: regenerate any figure of the paper.

Usage::

    python -m repro fig7 [--scale quick|medium|full] [--seed N]
    python -m repro fig8 | fig9 | fig10 | fig11 | claims | ablations
    python -m repro trace [--backend local|lustre|pvfs] [--batch N] [--cache]
                          [--shards N] [--json PATH|-]
    python -m repro bench [--json PATH]     # mdcache ablation, cache on vs off
    python -m repro bench --shards 1,2,4    # shard-scaling sweep (equal total
                                            # ZK servers split across shards)
    python -m repro bench --resilience      # overload campaign, resilience
                                            # off vs on at 2x saturation
    python -m repro bench --resolve         # path-resolution ablation: thin
                                            # client vs fat-client VFS walk
    python -m repro bench --kernel          # simulator events/sec bench
                                            # (the hot-path speed gate)
    python -m repro bench --async           # write-behind ablation: async
                                            # acked updates vs sync commits
    python -m repro bench --elastic         # elastic-vs-static arms on the
                                            # skewed shifting-hotspot load
    python -m repro shardmap [--json -]     # elastic plane state dump: map,
                                            # epochs, per-shard load,
                                            # migrations, decisions
    python -m repro profile kernel          # cProfile any bench/figure and
    python -m repro profile fig7            # print the hot-path table
    python -m repro chaos --shards 4        # sharded metadata plane + shard:<k>
    python -m repro chaos --resilience      # deadlines+budget+breakers+hedging
    python -m repro chaos --shards 2 --elastic  # elastic plane under faults
                                                # (+ migration:src/dst targets)
    python -m repro all --scale medium
"""

from __future__ import annotations

import argparse
import sys

from .bench import (
    render_figure,
    render_headline,
    run_ablations,
    run_cmd_comparison,
    run_single_dir,
    write_figure_csv,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_headline_claims,
)

RUNNERS = {
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "singledir": run_single_dir,
    "cmd": run_cmd_comparison,
    "ablations": run_ablations,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the figures of 'Can a Decentralized "
                    "Metadata Service Layer benefit Parallel Filesystems?' "
                    "(CLUSTER 2011) on the simulated cluster.")
    parser.add_argument("target",
                        choices=[*RUNNERS, "claims", "chaos", "trace",
                                 "bench", "shardmap", "profile", "all"],
                        help="which figure/table to regenerate "
                             "(or 'chaos': a fault-injection run; 'trace': "
                             "a traced mdtest with per-endpoint op metrics; "
                             "'bench': the client-cache ablation; "
                             "'shardmap': the elastic metadata plane state "
                             "dump; 'profile': run a bench/figure under "
                             "cProfile)")
    parser.add_argument("subtarget", nargs="?", default=None,
                        help="for 'profile': which target to profile "
                             "(e.g. kernel, kernel:fanout, bench, fig7)")
    parser.add_argument("--scale", default="quick",
                        choices=("quick", "medium", "full"),
                        help="sweep size: quick (seconds), medium, or full "
                             "(the paper's axes; minutes)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write each figure as CSV into DIR")
    parser.add_argument("--chart", action="store_true",
                        help="render ASCII charts of each figure's panels")
    parser.add_argument("--deployment", default="dufs",
                        choices=("dufs", "lustre", "pvfs"),
                        help="chaos target deployment (chaos only)")
    parser.add_argument("--ops", type=int, default=400,
                        help="chaos op-stream length (chaos only)")
    parser.add_argument("--backend", default="local",
                        choices=("local", "lustre", "pvfs"),
                        help="DUFS back-end filesystem (trace only)")
    parser.add_argument("--batch", type=int, default=1,
                        help="ZooKeeper leader write-batch size; >1 enables "
                             "proposal coalescing (trace only)")
    parser.add_argument("--cache", action="store_true",
                        help="enable the client metadata cache (trace and "
                             "chaos; 'bench' always runs cache off AND on)")
    parser.add_argument("--resilience", action="store_true",
                        help="chaos: run the DUFS clients with the full "
                             "resilience policy (deadline propagation, retry "
                             "budget, breakers, hedged reads); bench: run "
                             "the overload campaign comparing resilience "
                             "off vs on at 2x the saturation load")
    parser.add_argument("--resolve", action="store_true",
                        help="bench: run the path-resolution ablation "
                             "(server-side resolve/thin client vs the "
                             "fat-client VFS walk) on the DL-training "
                             "workload family")
    parser.add_argument("--kernel", action="store_true",
                        help="bench: run the simulator events/sec kernel "
                             "bench (timer churn, RPC fan-out, "
                             "spawn/interrupt, resource cascades)")
    parser.add_argument("--elastic", action="store_true",
                        help="bench: run the elastic-vs-static comparison "
                             "(autoscaler with live subtree migration vs "
                             "the best static layouts on a skewed, "
                             "shifting hotspot); chaos: run the elastic "
                             "plane (needs --shards >= 2)")
    parser.add_argument("--async", dest="async_writes", action="store_true",
                        help="bench: run the write-behind ablation "
                             "(asynchronous metadata updates vs the "
                             "synchronous quorum-committed client) on the "
                             "mdtest file phases; chaos: run the DUFS "
                             "clients in write-behind mode")
    parser.add_argument("--async-writes", dest="async_writes",
                        action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--top", type=int, default=25,
                        help="profile: how many hot-path rows to print")
    parser.add_argument("--sort", default="tottime",
                        choices=("tottime", "cumtime", "ncalls"),
                        help="profile: hot-path table sort key")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write machine-readable results to PATH "
                             "(bench and trace; '-' prints trace rows as "
                             "JSON to stdout instead of the table)")
    parser.add_argument("--shards", default=None,
                        help="metadata shards: an int for trace/chaos "
                             "(independent ZK ensembles behind a sharded "
                             "metadata service), or a comma list like "
                             "'1,2,4' for bench (runs the shard-scaling "
                             "sweep at equal total ZK servers)")
    args = parser.parse_args(argv)

    shard_counts = None
    if args.shards is not None:
        try:
            shard_counts = [int(x) for x in args.shards.split(",") if x]
        except ValueError:
            parser.error(f"--shards must be an int or comma list, "
                         f"got {args.shards!r}")
        if not shard_counts or any(n < 1 for n in shard_counts):
            parser.error("--shards values must be >= 1")

    targets = list(RUNNERS) + ["claims"] if args.target == "all" \
        else [args.target]
    for target in targets:
        if target == "chaos":
            from .chaos import run_chaos
            from .models.params import (AsyncParams, CacheParams,
                                        ElasticParams, ResilienceParams)
            cache = CacheParams.caching_on() \
                if args.cache and args.deployment == "dufs" else None
            resilience = ResilienceParams.resilience_on(hedge_enabled=True) \
                if args.resilience and args.deployment == "dufs" else None
            awrite = None
            if args.async_writes:
                if args.deployment != "dufs":
                    parser.error("chaos --async needs the DUFS deployment")
                awrite = AsyncParams.async_on()
            n_shards = shard_counts[0] if shard_counts else 1
            elastic = None
            if args.elastic:
                if args.deployment != "dufs" or n_shards < 2:
                    parser.error("chaos --elastic needs the DUFS deployment "
                                 "with --shards >= 2")
                elastic = ElasticParams.elastic_on()
            result = run_chaos(args.deployment, seed=args.seed, ops=args.ops,
                               cache=cache, shards=n_shards,
                               resilience=resilience, elastic=elastic,
                               awrite=awrite)
            print(result.summary())
        elif target == "trace":
            from .bench.trace_cli import run_trace
            print(run_trace(scale=args.scale, backend=args.backend,
                            batch=args.batch, seed=args.seed,
                            cache=args.cache,
                            shards=shard_counts[0] if shard_counts else 1,
                            json_path=args.json))
        elif target == "profile":
            from .bench import profile_targets, run_profile
            if not args.subtarget:
                parser.error("profile needs a target, e.g. 'repro profile "
                             f"kernel' (one of: {', '.join(profile_targets())})")
            try:
                print(run_profile(args.subtarget, scale=args.scale,
                                  seed=args.seed, top=args.top,
                                  sort=args.sort))
            except ValueError as exc:
                parser.error(str(exc))
        elif target == "shardmap":
            from .bench import run_shardmap
            print(run_shardmap(scale=args.scale, seed=args.seed,
                               json_path=args.json))
        elif target == "bench" and args.async_writes:
            from .bench import (render_async_ablation, run_async_ablation,
                                write_async_bench_json)
            doc = run_async_ablation(scale=args.scale, seed=args.seed)
            print(render_async_ablation(doc))
            if args.json:
                print(f"[json] {write_async_bench_json(doc, args.json)}")
        elif target == "bench" and args.elastic:
            from .bench import (render_elastic_bench, run_elastic_bench,
                                write_elastic_bench_json)
            doc = run_elastic_bench(scale=args.scale, seed=args.seed)
            print(render_elastic_bench(doc))
            if args.json:
                print(f"[json] {write_elastic_bench_json(doc, args.json)}")
        elif target == "bench" and args.kernel:
            from .bench import (render_kernel_bench, run_kernel_bench,
                                write_kernel_bench_json)
            doc = run_kernel_bench(scale=args.scale, seed=args.seed)
            print(render_kernel_bench(doc))
            if args.json:
                print(f"[json] {write_kernel_bench_json(doc, args.json)}")
        elif target == "bench" and args.resolve:
            from .bench import (render_resolve_ablation,
                                run_resolve_ablation,
                                write_resolve_bench_json)
            doc = run_resolve_ablation(scale=args.scale, seed=args.seed)
            print(render_resolve_ablation(doc))
            if args.json:
                print(f"[json] {write_resolve_bench_json(doc, args.json)}")
        elif target == "bench" and args.resilience:
            from .bench import (render_resilience_overload,
                                run_resilience_overload,
                                write_resilience_bench_json)
            doc = run_resilience_overload(scale=args.scale, seed=args.seed)
            print(render_resilience_overload(doc))
            if args.json:
                print(f"[json] {write_resilience_bench_json(doc, args.json)}")
        elif target == "bench" and shard_counts:
            from .bench import (render_shard_scaling, run_shard_scaling,
                                write_shard_bench_json)
            doc = run_shard_scaling(scale=args.scale, seed=args.seed,
                                    shard_counts=shard_counts)
            print(render_shard_scaling(doc))
            if args.json:
                print(f"[json] {write_shard_bench_json(doc, args.json)}")
        elif target == "bench":
            from .bench import (render_cache_ablation, run_cache_ablation,
                                write_cache_bench_json)
            doc = run_cache_ablation(scale=args.scale, seed=args.seed)
            print(render_cache_ablation(doc))
            if args.json:
                print(f"[json] {write_cache_bench_json(doc, args.json)}")
        elif target == "claims":
            scale = args.scale if args.scale != "quick" else "medium"
            print(render_headline(run_headline_claims(scale=scale,
                                                      seed=args.seed)))
        else:
            fig = RUNNERS[target](scale=args.scale, seed=args.seed)
            print(render_figure(fig))
            if args.chart:
                from .bench.chart import render_figure_charts
                print()
                print(render_figure_charts(fig))
            if args.csv:
                print(f"[csv] {write_figure_csv(fig, args.csv)}")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
