"""Per-endpoint circuit breakers for the client stacks.

Classic three-state machine (closed → open → half-open), implemented as
pure bookkeeping over ``sim.now`` — opening a breaker schedules nothing;
the cooldown is checked lazily on the next ``allow()``. A breaker that is
never tripped (or a board built with ``enabled=False``) adds no events
and no RNG draws, so default-off runs replay byte-identically.

Fast-failing against a known-dead endpoint is what turns a crashed ZK
server or MDS from "every request burns a full RPC timeout" into "one
probe per cooldown"; the mdcache and degraded-mode paths absorb the
resulting :class:`BreakerOpenError` exactly like a connection loss.
"""

from __future__ import annotations

from typing import Dict


class BreakerOpenError(Exception):
    """Fast-fail: the breaker for this endpoint is open."""

    def __init__(self, endpoint: str):
        super().__init__(f"circuit breaker open for {endpoint}")
        self.endpoint = endpoint


class CircuitBreaker:
    """One endpoint's breaker: trips after ``threshold`` consecutive
    failures, cools down for ``cooldown`` seconds, then admits a single
    half-open probe whose outcome closes or re-opens it."""

    __slots__ = ("sim", "threshold", "cooldown", "failures", "state",
                 "opened_at", "probing", "trips")

    def __init__(self, sim, threshold: int = 5, cooldown: float = 1.0):
        self.sim = sim
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self.state = "closed"
        self.opened_at = 0.0
        self.probing = False
        self.trips = 0            # times the breaker opened (observability)

    def allow(self) -> bool:
        """May a request be issued to this endpoint right now?"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.sim.now - self.opened_at >= self.cooldown:
                self.state = "half_open"
                self.probing = True
                return True       # the one half-open probe
            return False
        # half_open: one probe in flight at a time
        if not self.probing:
            self.probing = True
            return True
        return False

    def on_success(self) -> None:
        self.failures = 0
        self.probing = False
        self.state = "closed"

    def on_failure(self) -> None:
        self.failures += 1
        if self.state == "half_open":
            self._trip()          # probe failed: straight back to open
        elif self.state == "closed" and self.failures >= self.threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = "open"
        self.opened_at = self.sim.now
        self.probing = False
        self.trips += 1


class BreakerBoard:
    """Lazy endpoint → breaker map shared by one client."""

    def __init__(self, sim, threshold: int = 5, cooldown: float = 1.0,
                 enabled: bool = True):
        self.sim = sim
        self.threshold = threshold
        self.cooldown = cooldown
        self.enabled = enabled
        self.breakers: Dict[str, CircuitBreaker] = {}

    def for_endpoint(self, endpoint: str) -> CircuitBreaker:
        br = self.breakers.get(endpoint)
        if br is None:
            br = CircuitBreaker(self.sim, self.threshold, self.cooldown)
            self.breakers[endpoint] = br
        return br

    def allow(self, endpoint: str) -> bool:
        if not self.enabled:
            return True
        return self.for_endpoint(endpoint).allow()

    def on_success(self, endpoint: str) -> None:
        if self.enabled:
            self.for_endpoint(endpoint).on_success()

    def on_failure(self, endpoint: str) -> None:
        if self.enabled:
            self.for_endpoint(endpoint).on_failure()

    def open_endpoints(self) -> list:
        return sorted(ep for ep, br in self.breakers.items()
                      if br.state == "open")

    def trips(self) -> int:
        return sum(br.trips for br in self.breakers.values())
