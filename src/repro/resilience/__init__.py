"""Unified request-resilience layer (``repro.resilience``).

One place for the request-lifecycle machinery every client stack used to
hand-roll: decorrelated-jitter retry backoff under a token-bucket *retry
budget* (:mod:`.retry`), per-endpoint circuit breakers (:mod:`.breaker`),
and hedged reads for idempotent lookups (:mod:`.hedge`). Deadline
propagation itself lives in the simulator RPC layer
(:class:`~repro.sim.rpc.RpcAgent` and the svc kernel); this package holds
the client-side policy objects.

Everything is pure bookkeeping over ``sim.now`` — none of these classes
schedules simulator events of its own, so a policy whose knobs are at
their defaults (no backoff, unlimited budget, breakers off, hedging off)
leaves a run event-for-event identical to one without the layer.
"""

from .breaker import BreakerBoard, BreakerOpenError, CircuitBreaker
from .hedge import LatencyTracker, hedged
from .retry import RetryBudgetExhausted, RetryBudget, RetryPolicy, RetryState

__all__ = [
    "BreakerBoard",
    "BreakerOpenError",
    "CircuitBreaker",
    "LatencyTracker",
    "hedged",
    "RetryBudget",
    "RetryBudgetExhausted",
    "RetryPolicy",
    "RetryState",
]
