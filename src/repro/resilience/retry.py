"""Shared retry policy: decorrelated-jitter backoff + token-bucket budget.

Replaces the hardcoded loops that grew independently in the Lustre, PVFS,
ZooKeeper and DUFS clients. Two pieces:

- :class:`RetryBudget` — a per-client token bucket in the style of gRPC's
  retry throttling: every retry spends a token, every success refills a
  fraction of one. Under a persistent outage or overload the bucket
  drains and the client stops amplifying load (the retry-storm cure);
  during healthy operation successes keep it full and retries are free.
- :class:`RetryPolicy` — per-operation attempt accounting (max attempts,
  optional wall-clock budget) plus the decorrelated-jitter backoff the ZK
  client has always used: ``sleep = min(cap, uniform(base, 3 * prev))``
  drawn from a named random stream so replay is deterministic.

With ``backoff_base = 0`` and no budget the policy performs no RNG draws
and yields no events — byte-identical to the legacy immediate-retry loops.
"""

from __future__ import annotations

from typing import Optional


class RetryBudgetExhausted(Exception):
    """The client's retry token bucket is empty: stop retrying."""


class RetryBudget:
    """Token bucket bounding retries across all of one client's ops.

    ``cap <= 0`` disables the budget entirely (always allows retries) —
    the default, preserving legacy behaviour.
    """

    def __init__(self, cap: float = 0.0, refill: float = 0.1):
        self.cap = cap
        self.refill = refill
        self.tokens = cap
        self.spent = 0          # retries charged (observability)
        self.denied = 0         # retries refused for want of a token

    @property
    def enabled(self) -> bool:
        return self.cap > 0.0

    def try_spend(self) -> bool:
        """Charge one retry; False (and no charge) if the bucket is dry."""
        if not self.enabled:
            return True
        if self.tokens < 1.0:
            self.denied += 1
            return False
        self.tokens -= 1.0
        self.spent += 1
        return True

    def on_success(self) -> None:
        if self.enabled:
            self.tokens = min(self.cap, self.tokens + self.refill)


class RetryState:
    """Per-operation mutable attempt state handed out by a policy."""

    __slots__ = ("attempt", "prev_sleep", "deadline")

    def __init__(self, prev_sleep: float, deadline: Optional[float]):
        self.attempt = 0
        self.prev_sleep = prev_sleep
        self.deadline = deadline


class RetryPolicy:
    """Retry accounting + backoff shared by the client stacks.

    The loop shape stays in each client (their exception taxonomies and
    failover moves differ); the policy centralizes the three questions
    every loop asks — *may I retry?*, *how long do I sleep?*, *am I out
    of time?* — with the exact legacy semantics as the default answers.
    """

    def __init__(
        self,
        streams,                      # RandomStreams (named-stream registry)
        stream_name: str,
        max_retries: int = 0,
        backoff_base: float = 0.0,
        backoff_cap: float = 1.0,
        op_budget: float = 0.0,       # per-op wall-clock bound; 0 = none
        budget: Optional[RetryBudget] = None,
    ):
        self.streams = streams
        self.stream_name = stream_name
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.op_budget = op_budget
        self.budget = budget or RetryBudget()

    def begin(self, now: float) -> RetryState:
        deadline = now + self.op_budget if self.op_budget else None
        return RetryState(self.backoff_base, deadline)

    def exhausted(self, state: RetryState, now: float) -> bool:
        """Call after ``state.attempt += 1``: True = give up, re-raise."""
        if state.attempt > self.max_retries:
            return True
        if state.deadline is not None and now >= state.deadline:
            return True
        if not self.budget.try_spend():
            return True
        return False

    def next_backoff(self, state: RetryState) -> float:
        """Decorrelated jitter: ``min(cap, uniform(base, 3 * prev))``.

        Draws nothing when no backoff is configured, so the zero-backoff
        policy touches no RNG stream (replay-identical to legacy loops).
        """
        if self.backoff_base <= 0.0 and state.prev_sleep <= 0.0:
            return 0.0
        rng = self.streams.stream(self.stream_name)
        sleep = min(self.backoff_cap,
                    rng.uniform(self.backoff_base, 3.0 * state.prev_sleep))
        state.prev_sleep = max(sleep, self.backoff_base)
        return sleep

    def on_success(self) -> None:
        self.budget.on_success()
