"""Hedged reads: race a delayed duplicate of an idempotent lookup.

After waiting a delay tied to the operation's recent latency tail (the
p95 by default, per "The Tail at Scale"), a second copy of the request is
issued to a *different* server and the first successful reply wins; the
loser is interrupted and its late response is discarded by the RPC layer
(the rpc_id waiter is popped on cancellation, never recycled). Restricted
by callers to idempotent reads — a hedged write could be acknowledged
twice — and off by default: no tracker, no extra processes, no events.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator

from ..sim.core import AnyOf, Interrupt


class LatencyTracker:
    """Rolling latency window; ``delay()`` is the hedging trigger point.

    Until ``min_samples`` observations arrive the configured default
    delay is used — hedging against an empty window would fire blind.
    """

    def __init__(self, window: int = 128, quantile: float = 0.95,
                 min_samples: int = 16, default_delay: float = 0.05):
        self.samples: deque = deque(maxlen=window)
        self.quantile = quantile
        self.min_samples = min_samples
        self.default_delay = default_delay

    def record(self, dt: float) -> None:
        self.samples.append(dt)

    def delay(self) -> float:
        if len(self.samples) < self.min_samples:
            return self.default_delay
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, int(self.quantile * len(ordered)))
        return ordered[idx]


def _boxed(gen_fn: Callable[[], Generator], box: list) -> Generator:
    """Run ``gen_fn()`` capturing its outcome; nothing escapes into the
    strict simulator (an escaping exception would abort the whole run)."""
    try:
        box.append(("ok", (yield from gen_fn())))
    except Interrupt:
        box.append(("interrupted", None))
    except Exception as exc:
        box.append(("err", exc))


def hedged(node, primary: Callable[[], Generator],
           secondary: Callable[[], Generator],
           delay: float) -> Generator:
    """Race ``primary()`` against a ``delay``-deferred ``secondary()``.

    Returns ``(value, hedge_won)`` from the first attempt to *succeed*;
    if one attempt fails the other is awaited, and only when both fail is
    the primary's error (or the sole error seen) re-raised. The losing
    in-flight attempt is interrupted. Both attempts inherit the ambient
    deadline of the calling process like any spawned child.
    """
    sim = node.sim
    box1: list = []
    box2: list = []
    p1 = node.spawn(_boxed(primary, box1), "hedge.primary")
    p2 = None
    timer = sim.timeout(max(0.0, delay))
    yield AnyOf(sim, (p1, timer))
    if not box1:
        p2 = node.spawn(_boxed(secondary, box2), "hedge.secondary")
        yield AnyOf(sim, (p1, p2))
    while True:
        if box1 and box1[0][0] == "ok":
            if p2 is not None and p2.is_alive:
                p2.interrupt("hedge-lost")
            return box1[0][1], False
        if box2 and box2[0][0] == "ok":
            if p1.is_alive:
                p1.interrupt("hedge-lost")
            return box2[0][1], True
        # No success yet: wait for whichever attempt is still running.
        if p1.is_alive:
            yield p1
        elif p2 is not None and p2.is_alive:
            yield p2
        else:
            break
    # Both attempts concluded without success: surface the primary's
    # error, falling back to the hedge's (an interrupted attempt carries
    # none — re-raise Interrupt so the caller's own teardown runs).
    for box in (box1, box2):
        if box and box[0][0] == "err":
            raise box[0][1]
    raise Interrupt("hedge-cancelled")
