"""The metadata-service abstraction the DUFS client programs against.

The paper's prototype hard-wires the namespace to ONE ZooKeeper ensemble,
which is exactly why its metadata *write* throughput stops scaling: every
mutation pays one quorum round on the same replica group (Fig. 7/8 —
adding servers widens the read fan-out but deepens the write pipeline).
:class:`MetadataService` abstracts the namespace API the client actually
uses — lookup / create / delete / readdir / rename-multi plus watch
registration — so the service *behind* that API can be swapped:

- :class:`~repro.mds.single.SingleEnsembleMDS` — the paper's design; a
  pure pass-through to one :class:`~repro.zk.client.ZKClient` that adds
  no simulator events, so a deployment built through it replays
  byte-identical traces to the pre-abstraction code.
- :class:`~repro.mds.sharded.ShardedMDS` — partitions the namespace
  across N *independent* ensembles via a deterministic
  :class:`~repro.mds.shardmap.ShardMap` (λFS / IndexFS-style), turning
  the write ceiling into a scaling axis: shard-local writes touch one
  small quorum, and only cross-shard operations pay coordination.

The method set deliberately mirrors ``ZKClient`` (``get`` / ``exists`` /
``get_children`` / ``create`` / ``set_data`` / ``delete`` / ``multi`` /
``sync`` + the ``op_*`` multi builders + ``last_retries``), so existing
call sites migrate by construction, not by rewrite.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Sequence

from ..zk.client import ZKClient
from ..zk.protocol import WriteRequest


class MetadataService:
    """Abstract namespace service (see module docstring).

    Watch-loss notification is *shard-scoped* here: listeners receive
    ``(reason, shard)`` so a coherent cache layered on watches can flush
    only the namespace slice whose watches may be gone, instead of
    wholesale. (The raw ``ZKClient`` listener signature is ``(reason,)``;
    implementations adapt.)
    """

    #: Number of independent ensembles behind this service.
    n_shards: int = 1

    def __init__(self) -> None:
        self.watch_loss_listeners: List[Callable[[str, int], None]] = []

    # -- shard topology ----------------------------------------------------
    def shard_for(self, path: str) -> int:
        """Shard holding the znode *entry* for ``path``."""
        return 0

    def listing_shard_for(self, path: str) -> int:
        """Shard holding the *child list* of ``path`` (equal to
        :meth:`shard_for` for a single ensemble; the child-hosting shard
        under hash-of-parent partitioning)."""
        return 0

    def client_for_shard(self, shard: int) -> ZKClient:
        raise NotImplementedError

    # -- reads -------------------------------------------------------------
    def get(self, path: str, watch=None) -> Generator:
        raise NotImplementedError

    def exists(self, path: str, watch=None) -> Generator:
        raise NotImplementedError

    def get_children(self, path: str, watch=None) -> Generator:
        raise NotImplementedError

    def resolve(self, path: str, watch=None) -> Generator:
        """Server-side whole-path lookup: returns a
        :class:`~repro.zk.protocol.ResolveResult` (never raises NoNode —
        a missing path comes back as ``status == "miss"`` with the nearest
        existing ancestor). One hop on a single ensemble; bounded hops on
        a sharded service."""
        raise NotImplementedError

    # -- writes ------------------------------------------------------------
    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequential: bool = False) -> Generator:
        raise NotImplementedError

    def set_data(self, path: str, data: bytes, version: int = -1) -> Generator:
        raise NotImplementedError

    def delete(self, path: str, version: int = -1,
               is_dir: Optional[bool] = None) -> Generator:
        """Remove ``path``. ``is_dir`` is a routing hint (the DUFS client
        always knows the type it is removing); a sharded service without
        the hint pays one read to classify."""
        raise NotImplementedError

    def multi(self, ops: Sequence[WriteRequest]) -> Generator:
        raise NotImplementedError

    def sync(self, path: str = "/") -> Generator:
        raise NotImplementedError

    # -- multi builders (shared wire format with ZKClient) -------------------
    op_create = staticmethod(ZKClient.op_create)
    op_delete = staticmethod(ZKClient.op_delete)
    op_set = staticmethod(ZKClient.op_set)
    op_check = staticmethod(ZKClient.op_check)

    # -- retry introspection -------------------------------------------------
    @property
    def last_retries(self) -> int:
        """Retries performed by the preceding operation (callers use it to
        disambiguate retried non-idempotent writes, as with ZKClient)."""
        raise NotImplementedError

    # -- watch loss ----------------------------------------------------------
    def _notify_watch_loss(self, reason: str, shard: int = 0) -> None:
        for fn in self.watch_loss_listeners:
            fn(reason, shard)


def as_metadata_service(obj) -> "MetadataService":
    """Adapt ``obj`` to the service interface: a raw :class:`ZKClient` is
    wrapped in a :class:`~repro.mds.single.SingleEnsembleMDS`; an existing
    service passes through."""
    if isinstance(obj, MetadataService):
        return obj
    from .single import SingleEnsembleMDS
    return SingleEnsembleMDS(obj)
