"""Deterministic namespace → shard routing, versioned by epoch.

The default strategy is **hash-of-parent-directory**: every entry of one
directory lands on the same shard (``MD5(parent) mod N``), so the common
metadata operations — create/lookup/unlink of a name, readdir of a
directory — are shard-local, while unrelated directories spread across
shards. This is the placement λFS and IndexFS converge on: it keeps the
namespace's hot mutation unit (a directory's entry set) on one quorum.

Placement invariants under hash-of-parent:

- the znode *entry* for ``path`` lives on its **home shard**
  ``hash(parent(path)) mod N``;
- the *children* of ``path`` all live on its **child shard**
  ``hash(path) mod N``. A directory therefore materializes on up to two
  shards: the authoritative home copy, plus a child-host copy that
  anchors its entries' parent chain (see ``ShardedMDS``).

``strategy="subtree"`` adds explicit longest-prefix pinning on top
(``subtrees={"/scratch": 1, "/home": 0}``): whole subtrees are routed to
a fixed shard, with the hash as fallback — the pluggable partitioning the
operator uses to keep a workload's tree quorum-local.

Since the elastic-plane refactor a ``ShardMap`` is **immutable per
epoch**: routing changes (moving a subtree pin between shards) produce a
*new* map via :meth:`ShardMap.split` / :meth:`ShardMap.merge` with
``epoch + 1``, and :meth:`ShardMap.diff` reports which subtree roots
route differently between two epochs. The shared
:class:`ShardMapRegistry` is the control-plane record of which epoch is
current, the full epoch history, and the set of in-flight migrations —
it is what the per-server route guards and the offline namespace auditor
consult.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.paths import parent_dir
from ..hashing.md5 import md5_int

__all__ = ["STRATEGIES", "ShardMap", "ShardMapRegistry", "parent_dir"]

STRATEGIES = ("parent-hash", "subtree")


class ShardMap:
    """Pure, deterministic path → shard function (no I/O, immutable)."""

    def __init__(self, n_shards: int, strategy: str = "parent-hash",
                 subtrees: Optional[Dict[str, int]] = None,
                 epoch: int = 0):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown shard strategy {strategy!r}")
        if strategy == "subtree" and not subtrees:
            raise ValueError("subtree strategy needs a subtrees mapping")
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        self.n_shards = n_shards
        self.strategy = strategy
        self.subtrees = dict(subtrees or {})
        self.epoch = epoch
        for prefix, shard in self.subtrees.items():
            if not prefix.startswith("/"):
                raise ValueError(f"subtree prefix {prefix!r} not absolute")
            if not 0 <= shard < n_shards:
                raise ValueError(f"subtree shard {shard} out of range")
        self._frozen = True

    # -- immutability -------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if getattr(self, "_frozen", False):
            raise AttributeError(
                f"ShardMap is immutable per epoch; use split()/merge() to "
                f"derive epoch {self.epoch + 1} (tried to set {name!r})")
        object.__setattr__(self, name, value)

    # -- the two placement questions ----------------------------------------
    def home_shard(self, path: str) -> int:
        """Shard holding the znode entry for ``path``."""
        if path == "/":
            return self.dir_shard("/")
        return self.dir_shard(parent_dir(path))

    def child_shard(self, path: str) -> int:
        """Shard holding the child entries of directory ``path``."""
        return self.dir_shard(path)

    def dir_shard(self, dirpath: str) -> int:
        """The shard that owns ``dirpath``'s entry set."""
        if self.n_shards == 1:
            return 0
        pinned = self._pinned(dirpath)
        if pinned is not None:
            return pinned
        return md5_int(dirpath.encode()) % self.n_shards

    def _pinned(self, dirpath: str) -> Optional[int]:
        """Longest-prefix subtree pin covering ``dirpath`` (or None)."""
        best_len, best = -1, None
        for prefix, shard in self.subtrees.items():
            if dirpath == prefix or dirpath.startswith(prefix + "/"):
                if len(prefix) > best_len:
                    best_len, best = len(prefix), shard
        return best

    # -- epoch-deriving constructors ----------------------------------------
    def split(self, root: str, shard: int) -> "ShardMap":
        """New map (epoch + 1) pinning subtree ``root`` to ``shard``.

        "Split" in the λFS sense: the hot shard's namespace slice is split
        by carving ``root`` out of it and pinning it elsewhere. Re-pinning
        an already-pinned root to a different shard is also a split.
        """
        if not root.startswith("/") or root == "/":
            raise ValueError(f"split root {root!r} must be absolute, not /")
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"split shard {shard} out of range")
        if self.subtrees.get(root) == shard:
            raise ValueError(f"{root!r} already pinned to shard {shard}")
        pins = dict(self.subtrees)
        pins[root] = shard
        return ShardMap(self.n_shards, self.strategy, pins,
                        epoch=self.epoch + 1)

    def merge(self, root: str) -> "ShardMap":
        """New map (epoch + 1) dropping the pin on ``root``.

        The subtree merges back into its hash-of-parent home shard (or an
        enclosing pin, longest prefix wins again).
        """
        if root not in self.subtrees:
            raise ValueError(f"{root!r} is not pinned")
        pins = dict(self.subtrees)
        del pins[root]
        strategy = self.strategy
        if strategy == "subtree" and not pins:
            strategy = "parent-hash"
        return ShardMap(self.n_shards, strategy, pins,
                        epoch=self.epoch + 1)

    # -- structural diff ----------------------------------------------------
    def diff(self, other: "ShardMap") -> List[str]:
        """Subtree roots routed differently by ``self`` vs ``other``.

        Returns the sorted union of pin roots added, removed, or
        retargeted between the two maps — exactly the subtrees whose
        entries may live on a different shard, hence what a client cache
        must invalidate on adopting the new epoch.
        """
        if self.n_shards != other.n_shards:
            raise ValueError("cannot diff maps with different shard counts")
        roots = set(self.subtrees) | set(other.subtrees)
        return sorted(r for r in roots
                      if self.subtrees.get(r) != other.subtrees.get(r))

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        extra = f", subtrees={self.subtrees}" if self.subtrees else ""
        return (f"ShardMap(n_shards={self.n_shards}, "
                f"strategy={self.strategy!r}{extra}, epoch={self.epoch})")


class ShardMapRegistry:
    """Shared control-plane record of the routing state.

    One registry per elastic deployment, consulted by three parties:

    - every ZK server's **route guard** asks whether a request stamped
      with an old epoch would route differently today
      (:meth:`routing_changed`) and whether a write falls under an
      in-flight migration's frozen subtree (:meth:`blocking_migration`);
    - every :class:`~repro.mds.sharded.ShardedMDS` **adopts**
      :attr:`current` after a ``StaleShardMapError`` (adoption is lazy —
      clients learn of a flip the first time a stale request is
      bounced, exactly like MetaFlow's versioned routing);
    - the offline **namespace auditor** takes :attr:`current` as the
      authoritative placement when merging per-shard views.

    ``listeners`` fire synchronously on :meth:`install` with
    ``(new_map, changed_roots)`` — used by the migrator/autoscaler for
    bookkeeping, not for client adoption.
    """

    def __init__(self, initial: ShardMap):
        self.current = initial
        #: [(epoch, map, reason)] — full install history, oldest first.
        self.history: List[Tuple[int, ShardMap, str]] = \
            [(initial.epoch, initial, "initial")]
        self._by_epoch: Dict[int, ShardMap] = {initial.epoch: initial}
        self.migrations: List[object] = []   # in-flight Migration records
        self.completed: List[object] = []    # finished/aborted migrations
        self.listeners: List[Callable[[ShardMap, List[str]], None]] = []

    @property
    def epoch(self) -> int:
        return self.current.epoch

    def map_at(self, epoch: int) -> Optional[ShardMap]:
        return self._by_epoch.get(epoch)

    def install(self, new_map: ShardMap, reason: str = "") -> List[str]:
        """Make ``new_map`` current; returns the changed subtree roots."""
        if new_map.epoch != self.current.epoch + 1:
            raise ValueError(
                f"epoch must advance by 1: current {self.current.epoch}, "
                f"got {new_map.epoch}")
        old = self.current
        self.current = new_map
        self.history.append((new_map.epoch, new_map, reason))
        self._by_epoch[new_map.epoch] = new_map
        roots = old.diff(new_map)
        for fn in self.listeners:
            fn(new_map, roots)
        return roots

    def routing_changed(self, epoch: int, path: str) -> bool:
        """Would a request stamped at ``epoch`` route ``path`` differently
        under the current map? Unknown (pruned) epochs are conservatively
        treated as changed."""
        if epoch == self.current.epoch:
            return False
        old = self._by_epoch.get(epoch)
        if old is None:
            return True
        cur = self.current
        return (old.home_shard(path) != cur.home_shard(path)
                or old.child_shard(path) != cur.child_shard(path))

    # -- migration bookkeeping ----------------------------------------------
    def begin_migration(self, mig) -> None:
        self.migrations.append(mig)

    def end_migration(self, mig) -> None:
        if mig in self.migrations:
            self.migrations.remove(mig)
        self.completed.append(mig)

    def blocking_migration(self, path: str):
        """The in-flight copy-phase migration freezing writes to ``path``
        (or None). A write under a moving subtree must wait for cutover."""
        for mig in self.migrations:
            if mig.state == "copy" and (path == mig.root
                                        or path.startswith(mig.root + "/")):
                return mig
        return None

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return (f"ShardMapRegistry(epoch={self.epoch}, "
                f"pins={len(self.current.subtrees)}, "
                f"in_flight={len(self.migrations)})")
