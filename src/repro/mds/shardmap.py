"""Deterministic namespace → shard routing.

The default strategy is **hash-of-parent-directory**: every entry of one
directory lands on the same shard (``MD5(parent) mod N``), so the common
metadata operations — create/lookup/unlink of a name, readdir of a
directory — are shard-local, while unrelated directories spread across
shards. This is the placement λFS and IndexFS converge on: it keeps the
namespace's hot mutation unit (a directory's entry set) on one quorum.

Placement invariants under hash-of-parent:

- the znode *entry* for ``path`` lives on its **home shard**
  ``hash(parent(path)) mod N``;
- the *children* of ``path`` all live on its **child shard**
  ``hash(path) mod N``. A directory therefore materializes on up to two
  shards: the authoritative home copy, plus a child-host copy that
  anchors its entries' parent chain (see ``ShardedMDS``).

``strategy="subtree"`` adds explicit longest-prefix pinning on top
(``subtrees={"/scratch": 1, "/home": 0}``): whole subtrees are routed to
a fixed shard, with the hash as fallback — the pluggable partitioning the
operator uses to keep a workload's tree quorum-local.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.paths import parent_dir
from ..hashing.md5 import md5_int

__all__ = ["STRATEGIES", "ShardMap", "parent_dir"]

STRATEGIES = ("parent-hash", "subtree")


class ShardMap:
    """Pure, deterministic path → shard function (no I/O, no state)."""

    def __init__(self, n_shards: int, strategy: str = "parent-hash",
                 subtrees: Optional[Dict[str, int]] = None):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown shard strategy {strategy!r}")
        if strategy == "subtree" and not subtrees:
            raise ValueError("subtree strategy needs a subtrees mapping")
        self.n_shards = n_shards
        self.strategy = strategy
        self.subtrees = dict(subtrees or {})
        for prefix, shard in self.subtrees.items():
            if not prefix.startswith("/"):
                raise ValueError(f"subtree prefix {prefix!r} not absolute")
            if not 0 <= shard < n_shards:
                raise ValueError(f"subtree shard {shard} out of range")

    # -- the two placement questions ----------------------------------------
    def home_shard(self, path: str) -> int:
        """Shard holding the znode entry for ``path``."""
        if path == "/":
            return self.dir_shard("/")
        return self.dir_shard(parent_dir(path))

    def child_shard(self, path: str) -> int:
        """Shard holding the child entries of directory ``path``."""
        return self.dir_shard(path)

    def dir_shard(self, dirpath: str) -> int:
        """The shard that owns ``dirpath``'s entry set."""
        if self.n_shards == 1:
            return 0
        pinned = self._pinned(dirpath)
        if pinned is not None:
            return pinned
        return md5_int(dirpath.encode()) % self.n_shards

    def _pinned(self, dirpath: str) -> Optional[int]:
        """Longest-prefix subtree pin covering ``dirpath`` (or None)."""
        best_len, best = -1, None
        for prefix, shard in self.subtrees.items():
            if dirpath == prefix or dirpath.startswith(prefix + "/"):
                if len(prefix) > best_len:
                    best_len, best = len(prefix), shard
        return best

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        extra = f", subtrees={self.subtrees}" if self.subtrees else ""
        return (f"ShardMap(n_shards={self.n_shards}, "
                f"strategy={self.strategy!r}{extra})")
