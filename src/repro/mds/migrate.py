"""Live subtree migration: copy-then-cutover on the intent journal.

Moving a subtree pin between shards (the elastic plane's split/merge
primitive) must not stop the namespace. The migrator runs the λFS-style
three-act protocol, journaled so every step is crash-safe:

1. **Journal + freeze.** A migration marker is written under the source
   shard's ``/.dufs-intent`` area (prefix ``b"M:"`` — deliberately *not*
   valid step-intent JSON, so :func:`~repro.mds.sharded.decode_intent`
   can never misread it as ensure/absent steps). From this moment the
   per-server route guards reject **writes** under the moving root with
   :class:`~repro.zk.errors.StaleShardMapError` carrying the migration;
   clients park on its ``done`` event and retry after cutover. Reads keep
   flowing to the source, which stays authoritative. A short drain pause
   lets writes admitted before the freeze commit, so the copy sees them.

2. **Copy.** The subtree is enumerated via the *old* map and re-created
   at its *new* placement through a private :class:`ShardedMDS` bound to
   the candidate map — reusing the exact anchor/placeholder machinery of
   normal creates. Copies are idempotent ensures (create, on NodeExists
   set-data), so a re-run after a crash converges.

3. **Cutover + cleanup.** The new map is installed in the
   :class:`~repro.mds.shardmap.ShardMapRegistry` (epoch + 1), the
   ``done`` event releases frozen writers, and the now-stale source
   copies are deleted best-effort (children first). Only then is the
   marker retired.

Crash-safety falls out of the auditor's authority rule (*the copy on the
shard the current map routes to is the authoritative one*): a crash
before cutover leaves the old map current — the frozen source is
complete and authoritative, partial destination copies are invisible; a
crash after cutover leaves the new map current — the destination copy is
complete (cutover happens only after the copy finishes) and the stale
source leftovers are invisible. A surviving marker tells the auditor a
migration was torn; rolling it forward is a no-op on the merged view.
"""

from __future__ import annotations

import itertools
import json
from typing import Callable, List, Optional, Sequence, Tuple

from ..sim.core import AllOf
from ..zk.client import ZKClient
from ..zk.errors import NodeExistsError, NoNodeError, NotEmptyError, ZKError
from .sharded import INTENT_ROOT, PLACEHOLDER_DIR_DATA, ShardedMDS, \
    default_is_dir
from .shardmap import ShardMap, ShardMapRegistry

__all__ = ["MIGRATION_MARKER", "Migration", "Migrator",
           "decode_migration", "encode_migration", "is_migration_marker"]

#: Marker prefix for migration intents. ``b"M:"`` followed by JSON is not
#: itself valid JSON, so legacy intent decoding raises ValueError instead
#: of misapplying the record as namespace steps.
MIGRATION_MARKER = b"M:"

#: Concurrent streams per migration phase (collect reads, copy writes,
#: cleanup deletes). The freeze on the moving subtree lasts as long as
#: the copy does, so copy bandwidth bounds write unavailability.
COPY_FANOUT = 8


def encode_migration(root: str, dst: Optional[int], from_epoch: int) -> bytes:
    body = json.dumps([root, -1 if dst is None else dst, from_epoch],
                      separators=(",", ":"))
    return MIGRATION_MARKER + body.encode()


def is_migration_marker(data: bytes) -> bool:
    return data.startswith(MIGRATION_MARKER)


def decode_migration(data: bytes) -> Tuple[str, Optional[int], int]:
    """-> (root, dst_shard or None for a merge, from_epoch)."""
    if not is_migration_marker(data):
        raise ValueError("not a migration marker")
    root, dst, from_epoch = json.loads(data[len(MIGRATION_MARKER):].decode())
    return root, (None if dst == -1 else dst), from_epoch


class Migration:
    """One in-flight (or completed) subtree move, shared by reference:
    the registry lists it, route guards attach it to bounce errors, and
    frozen writers wait on :attr:`done`."""

    def __init__(self, root: str, src: int, dst: int, from_epoch: int,
                 done, merge: bool = False):
        self.root = root
        self.src = src                  # old child shard of root
        self.dst = dst                  # new child shard of root
        self.from_epoch = from_epoch
        self.done = done                # sim Event: cutover (or abort)
        self.merge = merge
        self.state = "copy"             # "copy" | "done" | "aborted"
        self.entries_copied = 0

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        kind = "merge" if self.merge else "split"
        return (f"Migration({kind} {self.root} s{self.src}->s{self.dst}, "
                f"{self.state}, epoch {self.from_epoch})")


class Migrator:
    """Executes migrations against the live cluster.

    Owns a private set of per-shard clients (its requests are
    *unstamped*, so route guards wave them through — the migrator is the
    one party allowed to write under a frozen subtree) and a private
    :class:`ShardedMDS` whose map is rebound to whichever epoch a phase
    needs, reusing the production placement/anchor logic.
    """

    def __init__(self, registry: ShardMapRegistry,
                 clients: Sequence[ZKClient],
                 is_dir_payload: Callable[[bytes], bool] = default_is_dir,
                 drain: float = 0.05):
        if len(clients) != registry.current.n_shards:
            raise ValueError("need one migrator client per shard")
        self.registry = registry
        self.clients = list(clients)
        self.sim = self.clients[0].sim
        self.is_dir_payload = is_dir_payload
        self.drain = drain
        self._seq = itertools.count(1)
        self.stats = {"splits": 0, "merges": 0, "aborted": 0,
                      "entries_copied": 0, "sweep_entries": 0,
                      "stale_copies_deleted": 0}

    # -- public entry points -------------------------------------------------
    def split(self, root: str, dst: int):
        """Pin ``root`` to shard ``dst`` (live). Generator; True on
        success, False if the copy failed and the move was aborted."""
        return self._migrate(root, dst)

    def merge(self, root: str):
        """Unpin ``root`` — its subtree migrates back to hash placement."""
        return self._migrate(root, None)

    def _migrate(self, root: str, dst: Optional[int]):
        cur = self.registry.current
        new_map = cur.merge(root) if dst is None else cur.split(root, dst)
        reason = f"merge {root}" if dst is None \
            else f"split {root} -> s{dst}"
        mig = Migration(root, src=cur.child_shard(root),
                        dst=new_map.child_shard(root),
                        from_epoch=cur.epoch, done=self.sim.event(),
                        merge=dst is None)
        # Migrations of *disjoint* roots may run concurrently (the
        # autoscaler executes a tick's batch in parallel), so each gets a
        # private service instance — its ``map`` is rebound per phase.
        mds = ShardedMDS(self.clients, shard_map=cur,
                         is_dir_payload=self.is_dir_payload,
                         name="migrator")
        self.registry.begin_migration(mig)
        try:
            ok = yield from self._run(mig, mds, cur, new_map, reason)
        finally:
            # Covers error exits AND the migrator's node crashing (the
            # Interrupt unwinds through here): never leave writers frozen
            # on an event that cannot fire.
            if mig.state == "copy":
                mig.state = "aborted"
                self.stats["aborted"] += 1
            if not mig.done.triggered:
                mig.done.succeed(None)
            self.registry.end_migration(mig)
        return ok

    # -- the three acts ------------------------------------------------------
    def _run(self, mig: Migration, mds: ShardedMDS, old_map: ShardMap,
             new_map: ShardMap, reason: str):
        # Act 1: journal the marker on the source shard; the guard freeze
        # is active as soon as the registry lists the copy-phase record,
        # so drain writes that were admitted before it.
        # The marker's own commit doubles as the write barrier: the route
        # guard re-checks at zxid assignment, so no write under the root
        # sequences after the freeze, and every surviving pre-freeze
        # write carries a smaller zxid than the marker. Replicas apply in
        # zxid order and a session's ack implies local apply, so once the
        # create below returns, the collect walk (same session) reads a
        # settled subtree. ``drain`` is belt-and-braces on top.
        marker = yield from self._journal(mig)
        if self.drain > 0:
            yield self.sim.timeout(self.drain)

        # Act 2: enumerate via the old map, re-create via the new one.
        # The freeze rejects writes at *admission*, but a write admitted
        # just before it can still be in the source's commit pipeline
        # when the walk passes its directory — the drain pause shrinks
        # that window, it does not bound it under queueing. So after the
        # bulk copy, sweep the subtree again (children listings only;
        # data is fetched just for paths the first walk missed) until a
        # pass finds nothing new. A subtree that will not settle means
        # the pipeline is wedged: abort, the source stays authoritative.
        entries: List[Tuple[str, bytes, bool]] = []
        try:
            root_data = yield from self._read_entry(mds, mig.root, old_map)
            entries = yield from self._collect(mds, mig.root, old_map)
            yield from self._copy(mds, mig, root_data, entries, new_map)
            for _ in range(4):
                extra = yield from self._sweep(mds, mig.root, entries,
                                               old_map)
                if not extra:
                    break
                self.stats["sweep_entries"] += len(extra)
                yield from self._copy(mds, mig, root_data, extra, new_map)
                entries.extend(extra)
            else:
                yield from self._retire(marker, mig.src)
                return False
        except ZKError:
            # Abort: routing is unchanged (source stays authoritative),
            # destination partials are invisible to it and idempotent to
            # re-run. Retire the marker if the source shard still answers.
            yield from self._retire(marker, mig.src)
            return False

        # Act 3: cutover — one registry install flips the epoch; every
        # stamped request routed by the old map now bounces to the new
        # placement. The pin delta is re-applied to the registry's *live*
        # map, not the candidate built at start: a concurrent migration of
        # a disjoint root may have installed in between, and its pin must
        # survive ours. The subtree's own placement is identical either
        # way (it depends only on this root's pin).
        cur = self.registry.current
        final = cur.merge(mig.root) if mig.merge \
            else cur.split(mig.root, mig.dst)
        self.registry.install(final, reason)
        mig.state = "done"
        mig.done.succeed(None)
        self.stats["merges" if mig.merge else "splits"] += 1
        yield from self._cleanup(mig, entries, old_map, final)
        yield from self._retire(marker, mig.src)
        return True

    # -- act helpers ---------------------------------------------------------
    def _journal(self, mig: Migration):
        zkc = self.clients[mig.src]
        try:
            yield from zkc.create(INTENT_ROOT, PLACEHOLDER_DIR_DATA)
        except NodeExistsError:
            pass
        path = f"{INTENT_ROOT}/migrate-{next(self._seq)}"
        dst = None if mig.merge else mig.dst
        yield from zkc.create(
            path, encode_migration(mig.root, dst, mig.from_epoch))
        return path

    def _read_entry(self, mds: ShardedMDS, path: str, shard_map: ShardMap):
        mds.map = shard_map
        data, _ = yield from mds.get(path)
        return data

    def _fanout(self, gens):
        """Run worker generators concurrently on the migrator's node and
        wait for all of them. Workers trap their own ZKError — an
        uncaught exception in a spawned process is fatal under the
        strict simulator — and the first one is re-raised here after
        every worker has stopped, so a dead shard aborts the migration
        through ``_run``'s normal path."""
        node = self.clients[0].node
        failures: List[ZKError] = []

        def shield(g):
            try:
                yield from g
            except ZKError as exc:
                failures.append(exc)
        procs = [node.spawn(shield(g), "migrate.worker") for g in gens]
        if procs:
            yield AllOf(self.sim, procs)
        if failures:
            raise failures[0]

    def _collect(self, mds: ShardedMDS, root: str, old_map: ShardMap):
        """Pre-order walk of the subtree under ``root`` via the old map:
        parents precede children, so replaying the list as creates never
        hits a missing parent. Per-directory entry reads fan out
        ``COPY_FANOUT`` wide — the source shard is the hot one, and a
        serial walk behind its request queue would stretch the write
        freeze from milliseconds to seconds."""
        mds.map = old_map
        out: List[Tuple[str, bytes, bool]] = []
        stack = [root]
        while stack:
            d = stack.pop()
            try:
                names = yield from mds.get_children(d)
            except NoNodeError:
                continue
            paths = [f"{d}/{name}" if d != "/" else f"/{name}"
                     for name in sorted(names)]
            fetched: dict = {}

            def fetch(chunk, into=fetched):
                for p in chunk:
                    try:
                        data, _ = yield from mds.get(p)
                    except NoNodeError:
                        continue  # raced with a pre-freeze delete
                    into[p] = data
            yield from self._fanout(
                fetch(paths[w::COPY_FANOUT]) for w in range(COPY_FANOUT)
                if paths[w::COPY_FANOUT])
            for p in paths:
                if p not in fetched:
                    continue
                data = fetched[p]
                is_dir = self.is_dir_payload(data)
                out.append((p, data, is_dir))
                if is_dir:
                    stack.append(p)
        return out

    def _sweep(self, mds: ShardedMDS, root: str,
               entries: Sequence[Tuple[str, bytes, bool]],
               old_map: ShardMap):
        """Re-list the subtree via the old map and return the entries the
        previous walk(s) missed — pre-freeze writes that committed behind
        the walk. Known paths cost one children-read per directory; data
        is fetched only for the stragglers."""
        mds.map = old_map
        known = {p for p, _data, _is_dir in entries}
        known_dirs = {p for p, _data, is_dir in entries if is_dir}
        out: List[Tuple[str, bytes, bool]] = []
        stack = [root]
        while stack:
            d = stack.pop()
            try:
                names = yield from mds.get_children(d)
            except NoNodeError:
                continue
            for name in sorted(names):
                p = f"{d}/{name}" if d != "/" else f"/{name}"
                if p in known:
                    if p in known_dirs:
                        stack.append(p)
                    continue
                try:
                    data, _ = yield from mds.get(p)
                except NoNodeError:
                    continue
                is_dir = self.is_dir_payload(data)
                out.append((p, data, is_dir))
                if is_dir:
                    stack.append(p)
        return out

    def _copy(self, mds: ShardedMDS, mig: Migration, root_data: bytes,
              entries: Sequence[Tuple[str, bytes, bool]],
              new_map: ShardMap):
        mds.map = new_map
        # The moving directory's child-host anchor at its new shard: the
        # one piece its own entries' creates depend on.
        new_child = new_map.child_shard(mig.root)
        if new_child != new_map.home_shard(mig.root):
            yield from mds._ensure_child_anchor(new_child, mig.root,
                                                root_data)

        def put(path, data):
            try:
                yield from mds.create(path, data)
            except NodeExistsError:
                yield from mds.set_data(path, data)
            mig.entries_copied += 1
            self.stats["entries_copied"] += 1

        # Directories first, serially, in pre-order: they are the copy's
        # dependency spine and there are few of them. Files then fan out.
        files = []
        for path, data, is_dir in entries:
            if is_dir:
                yield from put(path, data)
            else:
                files.append((path, data))

        def worker(chunk):
            for path, data in chunk:
                yield from put(path, data)
        yield from self._fanout(
            worker(files[w::COPY_FANOUT]) for w in range(COPY_FANOUT)
            if files[w::COPY_FANOUT])

    def _cleanup(self, mig: Migration, entries, old_map: ShardMap,
                 new_map: ShardMap):
        """Delete the now-stale copies at their old placement. Best-effort
        and idempotent: anything left behind is non-authoritative under
        the new (current) map, invisible to routing and to the auditor."""
        targets = set()  # (shard, path)
        old_child = old_map.child_shard(mig.root)
        root_home = new_map.home_shard(mig.root)
        if old_child != new_map.child_shard(mig.root) \
                and old_child != root_home:
            targets.add((old_child, mig.root))   # the old child-host anchor
        for path, _data, is_dir in entries:
            old_home = old_map.home_shard(path)
            new_home = new_map.home_shard(path)
            if old_home != new_home:
                targets.add((old_home, path))
            if is_dir:
                oc = old_map.child_shard(path)
                if oc != new_map.child_shard(path) and oc != new_home:
                    targets.add((oc, path))
        aborted = [False]

        def worker(chunk):
            for shard, path in chunk:
                if aborted[0]:
                    return
                try:
                    yield from self.clients[shard].delete(path)
                    self.stats["stale_copies_deleted"] += 1
                except (NoNodeError, NotEmptyError):
                    pass  # placeholder residue: invisible and harmless
                except ZKError:
                    # Shard unreachable: leave residue for the auditor.
                    aborted[0] = True
                    return

        # Depth by depth, deepest first (children before parents so
        # directory deletes find them empty); within a depth the deletes
        # are order-independent and fan out.
        by_depth: dict = {}
        for shard, path in targets:
            by_depth.setdefault(path.count("/"), []).append((shard, path))
        for depth in sorted(by_depth, reverse=True):
            level = sorted(by_depth[depth])
            yield from self._fanout(
                worker(level[w::COPY_FANOUT]) for w in range(COPY_FANOUT)
                if level[w::COPY_FANOUT])
            if aborted[0]:
                return

    def _retire(self, marker: str, src: int):
        try:
            yield from self.clients[src].delete(marker)
        except ZKError:
            pass
