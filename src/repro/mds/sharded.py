"""Sharded metadata service: the namespace over N independent ensembles.

The paper's own Fig. 7/8 show the limitation this class removes: one
ZooKeeper ensemble scales *reads* with server count but write throughput
*degrades*, because every mutation pays one quorum round over the whole
replica group. ``ShardedMDS`` partitions the namespace across N small,
independent ensembles with a deterministic
:class:`~repro.mds.shardmap.ShardMap` (hash-of-parent-directory by
default), so shard-local writes — the overwhelming majority under
mdtest-style workloads — each touch one small quorum, and N leaders
commit in parallel.

Placement (hash-of-parent):

- a **file/symlink** znode lives only on its *home shard*
  ``hash(parent) mod N``;
- a **directory** materializes on up to two shards: the authoritative
  *home copy* on ``hash(parent) mod N`` (what ``stat``/lookup read) and a
  *child-host copy* on ``hash(path) mod N`` that anchors the parent chain
  for its entries (ZooKeeper refuses to create a child under a missing
  parent). ``readdir`` asks the child-host shard, where ALL of a
  directory's entries live by construction. Deeper anchors are completed
  with placeholder directory znodes on demand; placeholders are never
  visible to listings (a shard only serves the listings of directories it
  child-hosts, and for those the home copy is the anchor).

Cross-shard operations (a rename whose source and destination route to
different shards, a subtree move spanning shards) run as a **two-phase
intent protocol**: the operation is normalized to idempotent
``ensure(path, data)`` / ``absent(path)`` steps, journaled as an *intent
record* znode in the **source shard** (``/.dufs-intent/…``), then applied
— all ensures (parents first), then all absents (children first) — and
finally the intent is retired. A crash mid-operation can leave both names
alive but never neither, and the surviving intent record lets the
namespace auditor roll the operation forward offline
(:func:`apply_intent_to_view`), so a post-chaos audit reconciles to a
clean namespace.

A dead shard (crashed leader, partitioned ensemble) degrades only its
namespace slice: operations routing to it exhaust their retry budget and
fail, while every other shard keeps serving — mirroring the DUFS client's
dead-back-end semantics (§IV-I) at the metadata layer.
"""

from __future__ import annotations

import itertools
import json
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..svc import NULL_BUS, TraceBus
from ..zk.client import ZKClient
from ..zk.errors import (
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    StaleShardMapError,
    ZKError,
)
from ..zk.protocol import ResolveResult, WriteRequest
from .base import MetadataService
from .shardmap import ShardMap, ShardMapRegistry, parent_dir

#: System area holding cross-shard intent records (hidden from readdir).
INTENT_ROOT = "/.dufs-intent"
INTENT_NAME = INTENT_ROOT[1:]

#: Placeholder payload for anchor directories (matches
#: :class:`repro.core.metadata.DirPayload` 0o755 encoding — the mds layer
#: shares the codec's first byte as its type tag but must not import
#: repro.core, which imports this package).
PLACEHOLDER_DIR_DATA = b"D:755:0:0"

_mds_seq = itertools.count()


def default_is_dir(data: bytes) -> bool:
    """Payload classifier: is this znode data a directory record?"""
    return data.startswith(b"D:")


# -- intent records ----------------------------------------------------------
Step = Tuple  # ("ensure", path, data) | ("absent", path)


def encode_intent(steps: Sequence[Step]) -> bytes:
    out = []
    for step in steps:
        if step[0] == "ensure":
            out.append(["ensure", step[1], step[2].hex()])
        else:
            out.append(["absent", step[1]])
    return json.dumps(out, separators=(",", ":")).encode()


def decode_intent(data: bytes) -> List[Step]:
    steps: List[Step] = []
    for rec in json.loads(data.decode()):
        if rec[0] == "ensure":
            steps.append(("ensure", rec[1], bytes.fromhex(rec[2])))
        else:
            steps.append(("absent", rec[1]))
    return steps


def ordered_steps(steps: Sequence[Step]) -> List[Step]:
    """Apply order: ensures parents-first, then absents children-first."""
    ensures = sorted((s for s in steps if s[0] == "ensure"),
                     key=lambda s: s[1].count("/"))
    absents = sorted((s for s in steps if s[0] == "absent"),
                     key=lambda s: -s[1].count("/"))
    return ensures + absents


def apply_intent_to_view(view: Dict[str, bytes],
                         steps: Sequence[Step]) -> int:
    """Roll an intent forward on an offline namespace view (the auditor's
    merged ``{path: data}`` dict). Idempotent; returns changes made."""
    changed = 0
    for step in ordered_steps(steps):
        if step[0] == "ensure":
            if view.get(step[1]) != step[2]:
                view[step[1]] = step[2]
                changed += 1
        else:
            if view.pop(step[1], None) is not None:
                changed += 1
    return changed


def make_route_guard(registry) -> Callable:
    """Build the per-server hook enforcing the epoch protocol.

    Installed on every ZK server of an elastic deployment
    (``server.route_guard``). For requests stamped with a shard-map epoch
    (``map_epoch >= 0``; the migrator's own traffic is unstamped and
    passes):

    - **writes** under a subtree whose migration is mid-copy bounce with
      the migration attached — the client parks on its ``done`` event and
      lands on the new shard after cutover (the brief write redirect);
    - any request whose stamped epoch would route its path differently
      under the current map bounces with the new map attached — the
      client adopts it and re-routes within its retry budget. Requests
      whose routing is *unchanged* by newer epochs are served: benign
      staleness never costs a round-trip.
    """
    def guard(req) -> None:
        epoch = req.map_epoch
        if epoch < 0:
            return
        if isinstance(req, WriteRequest):
            paths = [p for p in (req.path, *(o.path for o in req.ops)) if p]
            for p in paths:
                mig = registry.blocking_migration(p)
                if mig is not None:
                    raise StaleShardMapError(
                        p, msg=f"{p} is migrating to shard {mig.dst}",
                        shard_map=registry.current, migration=mig)
        else:
            paths = [req.path]
        if epoch != registry.epoch:
            for p in paths:
                if registry.routing_changed(epoch, p):
                    raise StaleShardMapError(
                        p, msg=f"shard map epoch {epoch} superseded "
                               f"(current {registry.epoch})",
                        shard_map=registry.current)
    return guard


class ShardedMDS(MetadataService):
    """Namespace service routed across N independent ensembles."""

    def __init__(
        self,
        clients: Sequence[ZKClient],
        shard_map: Optional[ShardMap] = None,
        is_dir_payload: Callable[[bytes], bool] = default_is_dir,
        name: Optional[str] = None,
        bus: Optional[TraceBus] = None,
        registry: Optional[ShardMapRegistry] = None,
    ):
        super().__init__()
        if not clients:
            raise ValueError("need at least one shard client")
        self.clients = list(clients)
        self.n_shards = len(self.clients)
        self.registry = registry
        if registry is not None:
            self.map = registry.current
        else:
            self.map = shard_map or ShardMap(self.n_shards)
        if self.map.n_shards != self.n_shards:
            raise ValueError("shard map size != number of shard clients")
        self.is_dir_payload = is_dir_payload
        self.name = name or f"mds{next(_mds_seq)}"
        self.bus = bus if bus is not None else NULL_BUS
        self._last_retries = 0
        self._intent_seq = 0
        self._intent_root_ready: set = set()
        self.stats = {"cross_shard_ops": 0, "intents_written": 0,
                      "intents_retired": 0, "anchors_created": 0,
                      "resolves": 0, "resolve_hops": 0,
                      "stale_map_retries": 0}
        #: Fired with the list of moved subtree roots when this service
        #: adopts a new shard-map epoch (mdcache invalidation hook).
        self.map_change_listeners: List[Callable[[List[str]], None]] = []
        # Elastic plane only: per-directory op counters feeding the
        # autoscaler's subtree selection. Gated so the static plane pays
        # one boolean test per op and allocates nothing.
        self._track_load = registry is not None
        self.dir_ops: Dict[str, int] = {}
        self._stale_retry_limit = 4
        for k, zkc in enumerate(self.clients):
            zkc.shard = k
            if registry is not None:
                zkc.map_epoch = self.map.epoch
            zkc.watch_loss_listeners.append(
                lambda reason, k=k: self._notify_watch_loss(reason, k))

    # -- shard topology ----------------------------------------------------
    def shard_for(self, path: str) -> int:
        return self.map.home_shard(path)

    def listing_shard_for(self, path: str) -> int:
        return self.map.child_shard(path)

    def client_for_shard(self, shard: int) -> ZKClient:
        return self.clients[shard]

    # -- plumbing ----------------------------------------------------------
    def _call(self, shard: int, method: str, *args,
              reroute: Optional[Callable[[ShardMap], int]] = None,
              **kwargs) -> Generator:
        """One sub-operation on a shard client, retries accumulated into
        this service's ``last_retries`` (callers disambiguate retried
        non-idempotent writes exactly as with a raw ZKClient).

        ``reroute(map) -> shard`` recomputes the target after a
        ``StaleShardMapError``: the server bounced us because our routing
        epoch is superseded (or the path is under a mid-copy migration),
        so we adopt the new map, wait out any copy-phase freeze, and
        re-issue against the freshly computed shard. The bounced attempt
        never reached the namespace, so the op is still counted once.
        """
        attempts = 0
        while True:
            zkc = self.clients[shard]
            try:
                result = yield from getattr(zkc, method)(*args, **kwargs)
                return result
            except StaleShardMapError as exc:
                attempts += 1
                if reroute is None or attempts > self._stale_retry_limit:
                    raise
                yield from self._on_stale_map(exc)
                shard = reroute(self.map)
            finally:
                self._last_retries += zkc.last_retries

    def _on_stale_map(self, exc: StaleShardMapError) -> Generator:
        """React to a route-guard bounce: wait for an in-flight migration
        to cut over (writes to a moving subtree are briefly frozen), then
        adopt the current map epoch."""
        self.stats["stale_map_retries"] += 1
        mig = exc.migration
        if mig is not None and not mig.done.triggered:
            yield mig.done
        new_map = self.registry.current if self.registry is not None \
            else exc.shard_map
        if new_map is not None:
            self._adopt_map(new_map)

    def _adopt_map(self, new_map: ShardMap) -> None:
        """Switch this service (and its shard clients' request stamps) to
        a newer epoch; notify cache layers of the moved subtrees."""
        if new_map.epoch <= self.map.epoch:
            return
        old = self.map
        self.map = new_map
        for zkc in self.clients:
            if zkc.map_epoch is not None or self.registry is not None:
                zkc.map_epoch = new_map.epoch
        roots = old.diff(new_map)
        if roots:
            for fn in self.map_change_listeners:
                fn(roots)

    def _note_op(self, path: str, listing: bool = False) -> None:
        """Elastic-gated per-directory load accounting (autoscaler input:
        which directory's entry set is hot). Listings charge the directory
        itself; entry ops charge the parent — both route to the same
        shard, the directory's ``dir_shard``."""
        if not self._track_load:
            return
        d = path if listing or path == "/" else parent_dir(path)
        self.dir_ops[d] = self.dir_ops.get(d, 0) + 1

    @property
    def last_retries(self) -> int:
        return self._last_retries

    def resilience_stats(self) -> dict:
        """Aggregate request-lifecycle counters across the shard clients:
        hedges issued/won, breaker fast-fails and trips, and the state of
        each client's retry-token bucket."""
        out = {"hedges": 0, "hedges_won": 0, "breaker_fastfails": 0,
               "breaker_trips": 0, "retry_tokens_spent": 0,
               "retries_denied": 0}
        for zkc in self.clients:
            out["hedges"] += zkc.hedges
            out["hedges_won"] += zkc.hedges_won
            out["breaker_fastfails"] += zkc.breaker_fastfails
            out["breaker_trips"] += zkc.breakers.trips()
            out["retry_tokens_spent"] += zkc.retry.budget.spent
            out["retries_denied"] += zkc.retry.budget.denied
        return out

    # -- reads -------------------------------------------------------------
    def get(self, path: str, watch=None) -> Generator:
        self._last_retries = 0
        self._note_op(path)
        result = yield from self._call(self.map.home_shard(path), "get",
                                       path, watch=watch,
                                       reroute=lambda m: m.home_shard(path))
        return result

    def exists(self, path: str, watch=None) -> Generator:
        self._last_retries = 0
        self._note_op(path)
        result = yield from self._call(self.map.home_shard(path), "exists",
                                       path, watch=watch,
                                       reroute=lambda m: m.home_shard(path))
        return result

    def get_children(self, path: str, watch=None) -> Generator:
        self._last_retries = 0
        self._note_op(path, listing=True)
        child = self.map.child_shard(path)
        home = self.map.home_shard(path)
        try:
            names = yield from self._call(
                child, "get_children", path, watch=watch,
                reroute=lambda m: m.child_shard(path))
        except NoNodeError:
            if child == home:
                raise
            # The child-host copy may be missing (crash residue, or a
            # directory that never hosted an entry); the home copy is
            # authoritative for existence.
            stat = yield from self._call(home, "exists", path,
                                         reroute=lambda m: m.home_shard(path))
            if stat is None:
                raise
            return []
        if path == "/":
            names = [n for n in names if n != INTENT_NAME]
        return names

    def resolve(self, path: str, watch=None) -> Generator:
        """Server-side whole-path lookup, bounded at **two hops**.

        Hop 1 goes to the *home shard* of ``path`` — the shard that
        child-hosts its parent directory, so by construction it holds the
        target's entry AND (real or placeholder) anchors for the whole
        ancestor chain. An existing path therefore always resolves
        ``"ok"`` in one hop; a subtree-pinned path is additionally
        guaranteed shard-local. On a ``"miss"`` whose parent's home copy
        lives on another shard, one second hop resolves the parent at its
        authoritative shard so the miss classification (ENOENT vs
        ENOTDIR) matches the namespace's ground truth — the nearest
        ancestor reported for a chain broken *above* the parent is the
        bounded-hop approximation noted in MODEL.md.
        """
        self._last_retries = 0
        self._note_op(path)
        self.stats["resolves"] += 1
        self.stats["resolve_hops"] += 1
        home = self.map.home_shard(path)
        res = yield from self._call(home, "resolve", path, watch=watch,
                                    reroute=lambda m: m.home_shard(path))
        if res.status == "ok" or path == "/":
            return res
        parent = parent_dir(path)
        parent_home = self.map.home_shard(parent)
        if parent == "/" or parent_home == home:
            # The home shard is authoritative for the parent too (or the
            # parent is the root): the hop-1 answer stands.
            return res
        self.stats["resolve_hops"] += 1
        self.bus.mark("mds", self.name, "resolve_hop2",
                      self.clients[0].sim.now)
        pres = yield from self._call(parent_home, "resolve", parent,
                                     reroute=lambda m: m.home_shard(parent))
        if pres.status == "ok":
            return ResolveResult("miss", path, ancestor=parent,
                                 ancestor_data=pres.data)
        return ResolveResult("miss", path, ancestor=pres.ancestor,
                             ancestor_data=pres.ancestor_data)

    # -- writes ------------------------------------------------------------
    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequential: bool = False) -> Generator:
        self._last_retries = 0
        self._note_op(path)
        home = self.map.home_shard(path)
        if self.is_dir_payload(data):
            child = self.map.child_shard(path)
            if child != home:
                # Child-host copy first: a crash in between leaves an
                # invisible anchor (retried create tolerates it), never a
                # stat-able directory whose entries cannot be created.
                yield from self._ensure_child_anchor(child, path, data)
                home = self.map.home_shard(path)  # anchor may have adopted
        result = yield from self._call(home, "create", path, data,
                                       ephemeral=ephemeral,
                                       sequential=sequential,
                                       reroute=lambda m: m.home_shard(path))
        return result

    def set_data(self, path: str, data: bytes, version: int = -1) -> Generator:
        self._last_retries = 0
        self._note_op(path)
        result = yield from self._call(self.map.home_shard(path), "set_data",
                                       path, data, version=version,
                                       reroute=lambda m: m.home_shard(path))
        return result

    def delete(self, path: str, version: int = -1,
               is_dir: Optional[bool] = None) -> Generator:
        self._last_retries = 0
        self._note_op(path)
        home = self.map.home_shard(path)
        if is_dir is None and self.n_shards > 1:
            # No routing hint: one read classifies (only generic callers).
            try:
                data, _ = yield from self._call(
                    home, "get", path, reroute=lambda m: m.home_shard(path))
                is_dir = self.is_dir_payload(data)
            except NoNodeError:
                is_dir = False
            home = self.map.home_shard(path)  # the get may have adopted
        if is_dir:
            child = self.map.child_shard(path)
            if child != home:
                # Child-host copy first: it holds the real entries, so
                # this is where POSIX emptiness (NotEmpty) is enforced.
                try:
                    yield from self._call(
                        child, "delete", path, version=-1,
                        reroute=lambda m: m.child_shard(path))
                except NoNodeError:
                    pass
                home = self.map.home_shard(path)
        result = yield from self._call(home, "delete", path, version=version,
                                       reroute=lambda m: m.home_shard(path))
        return result

    def sync(self, path: str = "/") -> Generator:
        self._last_retries = 0
        result = yield from self._call(self.map.home_shard(path), "sync",
                                       path)
        return result

    # -- directory anchors ---------------------------------------------------
    def _ensure_child_anchor(self, shard: int, path: str,
                             data: bytes) -> Generator:
        """Create the child-host copy of directory ``path`` on ``shard``,
        building placeholder ancestors on demand."""
        rr = lambda m: m.child_shard(path)  # noqa: E731 - route recompute
        try:
            yield from self._call(shard, "create", path, data, reroute=rr)
            return
        except NodeExistsError:
            return
        except NoNodeError:
            pass
        # Cold path: the parent chain is absent on this shard. Verify the
        # parent genuinely exists (its home shard is authoritative) so a
        # racing rmdir still surfaces as ENOENT, then build placeholders.
        parent = parent_dir(path)
        stat = yield from self._call(self.map.home_shard(parent), "exists",
                                     parent,
                                     reroute=lambda m: m.home_shard(parent))
        if stat is None:
            raise NoNodeError(path)
        yield from self._ensure_dir_chain(self.map.child_shard(path), parent,
                                          reroute=rr)
        try:
            yield from self._call(self.map.child_shard(path), "create",
                                  path, data, reroute=rr)
        except NodeExistsError:
            pass

    def _ensure_dir_chain(self, shard: int, dirpath: str,
                          reroute=None) -> Generator:
        """mkdir -p of placeholder anchors for ``dirpath`` on ``shard``."""
        if dirpath == "/":
            return
        prefix = ""
        for comp in dirpath.split("/")[1:]:
            prefix = f"{prefix}/{comp}"
            try:
                yield from self._call(shard, "create", prefix,
                                      PLACEHOLDER_DIR_DATA, reroute=reroute)
                self.stats["anchors_created"] += 1
            except NodeExistsError:
                pass

    # -- multi: atomic when shard-local, intent-journaled across shards ------
    def multi(self, ops: Sequence[WriteRequest]) -> Generator:
        self._last_retries = 0
        ops = list(ops)
        shards = {self.map.home_shard(op.path) for op in ops}
        needs_anchor = any(
            op.op == "create" and self.is_dir_payload(op.data)
            and self.map.child_shard(op.path) != self.map.home_shard(op.path)
            for op in ops)
        if len(shards) == 1 and not needs_anchor:
            # Shard-local: one atomic ZooKeeper multi, exactly as today.
            result = yield from self._call(shards.pop(), "multi", ops)
            return result
        result = yield from self._cross_shard_multi(ops)
        return result

    def _cross_shard_multi(self, ops: List[WriteRequest]) -> Generator:
        self.stats["cross_shard_ops"] += 1
        steps = self._normalize(ops)
        yield from self._precheck(ops)
        source = self._source_shard(ops)
        intent_path = yield from self._write_intent(source, steps)
        try:
            yield from self._apply_steps(steps)
        except ZKError:
            # Leave the intent record: the namespace auditor rolls the
            # operation forward offline (apply_intent_to_view) — a crash
            # mid-operation can strand both names, never neither.
            raise
        try:
            yield from self._call(source, "delete", intent_path)
            self.stats["intents_retired"] += 1
        except ZKError:
            pass  # benign: steps are idempotent under reconciliation
        return [None] * len(ops)

    def _normalize(self, ops: Sequence[WriteRequest]) -> List[Step]:
        """Collapse an op list into idempotent final-state steps (a
        delete-then-create of one path becomes a single ensure, so a
        reconciler replaying the record at any point converges)."""
        final: Dict[str, Step] = {}
        for op in ops:
            if op.op in ("create", "set"):
                final[op.path] = ("ensure", op.path, op.data)
            elif op.op == "delete":
                final[op.path] = ("absent", op.path)
            # "check" ops carry no state change.
        return list(final.values())

    def _precheck(self, ops: Sequence[WriteRequest]) -> Generator:
        """Preserve the atomic multi's NotEmpty guard: a delete that a
        later create overwrites (rename onto an existing target) must
        fail if the target directory currently has entries."""
        deleted = set()
        for op in ops:
            if op.op == "delete":
                deleted.add(op.path)
            elif op.op == "create" and op.path in deleted:
                try:
                    names = yield from self._call(
                        self.map.child_shard(op.path), "get_children",
                        op.path,
                        reroute=lambda m, p=op.path: m.child_shard(p))
                except NoNodeError:
                    continue  # no child-host copy: nothing underneath
                if names:
                    raise NotEmptyError(op.path)

    def _source_shard(self, ops: Sequence[WriteRequest]) -> int:
        """The shard journaling the intent: where the operation's source
        entry lives (the first deleted path), per the protocol."""
        for op in ops:
            if op.op == "delete":
                return self.map.home_shard(op.path)
        return self.map.home_shard(ops[0].path)

    def _write_intent(self, source: int, steps: Sequence[Step]) -> Generator:
        if source not in self._intent_root_ready:
            try:
                yield from self._call(source, "create", INTENT_ROOT,
                                      PLACEHOLDER_DIR_DATA)
            except NodeExistsError:
                pass
            self._intent_root_ready.add(source)
        self._intent_seq += 1
        path = f"{INTENT_ROOT}/{self.name}-{self._intent_seq}"
        yield from self._call(source, "create", path, encode_intent(steps),
                              reroute=lambda m: m.home_shard(path))
        self.stats["intents_written"] += 1
        return path

    def _apply_steps(self, steps: Sequence[Step]) -> Generator:
        for step in ordered_steps(steps):
            if step[0] == "ensure":
                yield from self._apply_ensure(step[1], step[2])
            else:
                yield from self._apply_absent(step[1])

    def _apply_ensure(self, path: str, data: bytes) -> Generator:
        rr = lambda m: m.home_shard(path)  # noqa: E731 - route recompute
        home = self.map.home_shard(path)
        if self.is_dir_payload(data):
            child = self.map.child_shard(path)
            if child != home:
                yield from self._ensure_child_anchor(child, path, data)
                home = self.map.home_shard(path)
        try:
            yield from self._call(home, "create", path, data, reroute=rr)
        except NodeExistsError:
            yield from self._call(home, "set_data", path, data, reroute=rr)

    def _apply_absent(self, path: str) -> Generator:
        home = self.map.home_shard(path)
        child = self.map.child_shard(path)
        if child != home:
            # Covers the directory child-host copy; for files the child
            # shard simply holds nothing (tolerated).
            try:
                yield from self._call(child, "delete", path,
                                      reroute=lambda m: m.child_shard(path))
            except NoNodeError:
                pass
        try:
            yield from self._call(self.map.home_shard(path), "delete", path,
                                  reroute=lambda m: m.home_shard(path))
        except NoNodeError:
            pass
