"""Metadata service layer: the namespace API behind the DUFS client.

``MetadataService`` abstracts lookup/create/delete/readdir/multi + watch
registration; ``SingleEnsembleMDS`` is the paper's one-ensemble design
(byte-identical traces), ``ShardedMDS`` scales writes across N
independent ensembles with a deterministic ``ShardMap`` and a two-phase
cross-shard intent protocol.
"""

from .base import MetadataService, as_metadata_service
from .shardmap import ShardMap, STRATEGIES, parent_dir
from .single import SingleEnsembleMDS
from .sharded import (
    INTENT_ROOT,
    ShardedMDS,
    apply_intent_to_view,
    decode_intent,
    default_is_dir,
    encode_intent,
)

__all__ = [
    "MetadataService",
    "as_metadata_service",
    "ShardMap",
    "STRATEGIES",
    "parent_dir",
    "SingleEnsembleMDS",
    "ShardedMDS",
    "INTENT_ROOT",
    "apply_intent_to_view",
    "decode_intent",
    "encode_intent",
    "default_is_dir",
]
