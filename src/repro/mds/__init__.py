"""Metadata service layer: the namespace API behind the DUFS client.

``MetadataService`` abstracts lookup/create/delete/readdir/multi + watch
registration; ``SingleEnsembleMDS`` is the paper's one-ensemble design
(byte-identical traces), ``ShardedMDS`` scales writes across N
independent ensembles with a deterministic ``ShardMap`` and a two-phase
cross-shard intent protocol.
"""

from .base import MetadataService, as_metadata_service
from .shardmap import ShardMap, ShardMapRegistry, STRATEGIES, parent_dir
from .single import SingleEnsembleMDS
from .sharded import (
    INTENT_ROOT,
    ShardedMDS,
    apply_intent_to_view,
    decode_intent,
    default_is_dir,
    encode_intent,
    make_route_guard,
)
from .migrate import (
    MIGRATION_MARKER,
    Migration,
    Migrator,
    decode_migration,
    encode_migration,
    is_migration_marker,
)
from .autoscaler import Autoscaler

__all__ = [
    "MetadataService",
    "as_metadata_service",
    "ShardMap",
    "ShardMapRegistry",
    "STRATEGIES",
    "parent_dir",
    "SingleEnsembleMDS",
    "ShardedMDS",
    "INTENT_ROOT",
    "apply_intent_to_view",
    "decode_intent",
    "encode_intent",
    "default_is_dir",
    "make_route_guard",
    "MIGRATION_MARKER",
    "Migration",
    "Migrator",
    "decode_migration",
    "encode_migration",
    "is_migration_marker",
    "Autoscaler",
]
