"""Load-driven shard-map control loop (split hot shards, merge cold).

The autoscaler closes the loop the paper leaves open: a decentralized
metadata plane only helps if load actually spreads across the ensembles,
and a static hash map cannot fix a skewed namespace (λFS's core
observation). Every ``interval`` simulated seconds it:

1. samples the **windowed per-shard op rates** from the TraceBus (the
   satellite signal; falls back to per-directory op-count deltas summed
   by the current map when no bus is wired),
2. classifies shards *hot* (rate above ``hot_factor ×`` the mean) and
   *cold* (below ``cold_factor ×``), requiring ``hysteresis`` consecutive
   hot ticks before acting so an oscillating workload never flaps the
   map,
3. proposes **splits** — pin the hottest directories of a hot shard to
   the coldest shards — and **merges** — unpin subtrees that have gone
   idle — subject to the server-budget constraint: the shard pool is
   fixed (equal hardware), so the only resource spent is the pin table,
   capped at ``max_pins``,
4. executes the moves through the :class:`~repro.mds.migrate.Migrator`
   (live copy-then-cutover), recording every decision in
   :attr:`Autoscaler.decisions` for ``repro shardmap`` to dump.

``_decide`` is deliberately a pure-ish function of the sampled signals
(it touches only the hysteresis streaks and cooldown clocks), so the
no-flap property is unit-testable without a simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..models.params import ElasticParams
from ..sim.core import AllOf, Interrupt
from ..zk.errors import ZKError
from .migrate import Migrator
from .sharded import INTENT_ROOT, ShardedMDS
from .shardmap import ShardMapRegistry

__all__ = ["Autoscaler"]

#: (time, action, root, src, dst, note) — the decision journal.
Decision = Tuple[float, str, str, int, int, str]


class Autoscaler:
    """One instance per elastic deployment, spawned as a node process."""

    def __init__(self, registry: ShardMapRegistry, migrator: Migrator,
                 services: Sequence[ShardedMDS],
                 params: Optional[ElasticParams] = None,
                 bus=None):
        self.registry = registry
        self.migrator = migrator
        self.services = list(services)
        self.params = params or ElasticParams(enabled=True)
        self.bus = bus
        self.sim = migrator.sim
        self.decisions: List[Decision] = []
        self._dir_seen: Dict[str, int] = {}   # last-tick per-dir totals
        self._hot_streak: Dict[int, int] = {}
        self._cold_streak: Dict[str, int] = {}
        self._last_move: Dict[str, float] = {}
        self._last_shard_act: Dict[int, float] = {}
        self._last_tick_at: Optional[float] = None
        self.ticks = 0

    # -- the process ---------------------------------------------------------
    def run(self):
        """Control loop; survives until its node crashes or the sim ends."""
        p = self.params
        try:
            while True:
                yield self.sim.timeout(p.interval)
                yield from self.tick()
        except Interrupt:
            return

    def tick(self):
        """One control period: sample, decide, execute.

        Every signal is normalized to **ops/sec** before deciding — the
        per-directory deltas by the actual time since the previous tick
        (migrations stretch ticks past ``interval``), the per-shard loads
        by the TraceBus window — so thresholds and the balance test
        compare like with like.
        """
        self.ticks += 1
        now = self.sim.now
        dt = (now - self._last_tick_at) if self._last_tick_at is not None \
            else self.params.interval
        self._last_tick_at = now
        dir_delta = self._sample_dirs()
        dir_rate = {d: v / max(dt, 1e-9) for d, v in dir_delta.items()}
        shard_load = self._shard_load(dir_rate)
        actions = self._decide(shard_load, dir_rate, self.sim.now)
        if not actions:
            return
        # The batch executes *concurrently*: its roots are disjoint by
        # construction and each migration installs its own pin delta, so
        # the whole rebalance costs one migration's wall-clock, not the
        # sum — the freeze windows overlap instead of queueing.
        node = self.migrator.clients[0].node

        def execute(action, root, dst):
            src = self.registry.current.child_shard(root)
            try:
                if action == "split":
                    ok = yield from self.migrator.split(root, dst)
                else:
                    ok = yield from self.migrator.merge(root)
            except (ZKError, ValueError) as exc:
                self._log(action, root, src, dst, f"failed: {exc}")
                return
            self._last_move[root] = self.sim.now
            self._log(action, root, src, dst, "ok" if ok else "aborted")

        procs = [node.spawn(execute(a, r, d), "autoscale.move")
                 for a, r, d in actions]
        yield AllOf(self.sim, procs)

    # -- signals -------------------------------------------------------------
    def _sample_dirs(self) -> Dict[str, int]:
        """Per-directory op-count deltas since the previous tick, summed
        over every client node's service instance."""
        totals: Dict[str, int] = {}
        for svc in self.services:
            for d, n in svc.dir_ops.items():
                totals[d] = totals.get(d, 0) + n
        delta = {}
        for d, n in totals.items():
            prev = self._dir_seen.get(d, 0)
            if n > prev:
                delta[d] = n - prev
        self._dir_seen = totals
        return delta

    def _shard_load(self, dir_rate: Dict[str, float]) -> Dict[int, float]:
        """Windowed per-shard op rates (ops/sec) from the TraceBus when
        wired, else the per-directory rate aggregate under the current
        map."""
        if self.bus is not None:
            rates = self.bus.shard_window_rates(now=self.sim.now,
                                                deployment="zk")
            if rates:
                return rates
        cur = self.registry.current
        load: Dict[int, float] = {}
        for d, n in dir_rate.items():
            k = cur.dir_shard(d)
            load[k] = load.get(k, 0.0) + n
        return load

    # -- policy --------------------------------------------------------------
    def _decide(self, shard_load: Dict[int, float],
                dir_rate: Dict[str, float],
                now: float) -> List[Tuple[str, str, int]]:
        """-> [(action, root, dst_shard)]. Inputs are ops/sec (per shard
        and per directory). Pure apart from the hysteresis streaks and
        cooldown clocks, so tests drive it directly."""
        p = self.params
        cur = self.registry.current
        n = cur.n_shards
        total = sum(shard_load.values())
        if total < p.min_window_ops:
            # Quiet window: no signal worth acting on; streaks decay so a
            # lull resets the hysteresis clock.
            self._hot_streak.clear()
            self._cold_streak.clear()
            return []
        mean = total / n
        loads = {k: shard_load.get(k, 0.0) for k in range(n)}

        # Calibrate client-side per-directory rates into *server-op*
        # units: the bus counts server-visible requests (resolution
        # hops, anchor writes), a per-shard multiple of the client op
        # rate. Without this the balance test compares apples (server
        # load) to oranges (client rate) and never stops a move run.
        client_by_shard: Dict[int, float] = {}
        for d, v in dir_rate.items():
            j = cur.dir_shard(d)
            client_by_shard[j] = client_by_shard.get(j, 0.0) + v
        scale = {k: (loads[k] / client_by_shard[k]
                     if client_by_shard.get(k, 0.0) > 0 else 1.0)
                 for k in range(n)}

        # Hysteresis bookkeeping: a streak survives only while the
        # condition holds on *consecutive* ticks.
        for k in range(n):
            if loads[k] > p.hot_factor * mean:
                self._hot_streak[k] = self._hot_streak.get(k, 0) + 1
            else:
                self._hot_streak.pop(k, None)

        actions: List[Tuple[str, str, int]] = []
        pins = dict(cur.subtrees)

        # Merges first: an idle pin is wasted budget, and freeing it may
        # fund this very tick's split.
        for root in sorted(pins):
            sub_load = sum(v for d, v in dir_rate.items()
                           if d == root or d.startswith(root + "/"))
            if sub_load < p.merge_min_ops:
                self._cold_streak[root] = self._cold_streak.get(root, 0) + 1
            else:
                self._cold_streak.pop(root, None)
                continue
            if self._cold_streak[root] < p.hysteresis:
                continue
            if now - self._last_move.get(root, -1e18) < p.cooldown:
                continue
            actions.append(("merge", root, -1))
            del pins[root]

        # Splits: hottest directories off shards that stayed hot.
        hot = sorted((k for k, s in self._hot_streak.items()
                      if s >= p.hysteresis),
                     key=lambda k: (-loads[k], k))
        budget = p.max_pins - len(pins)
        batch_cnt: Dict[int, int] = {}   # moves per destination this tick
        for k in hot:
            if budget <= 0 or len(actions) >= p.moves_per_tick:
                break
            # Act-then-listen: after splitting from this shard, wait for
            # the measurement window to flush the pre-move samples before
            # splitting from it again — acting on a stale window would
            # keep peeling directories off a shard that is already fixed.
            if now - self._last_shard_act.get(k, -1e18) \
                    < max(p.window, p.cooldown):
                continue
            before = len(actions)
            cands = sorted(
                ((d, v) for d, v in dir_rate.items()
                 if cur.dir_shard(d) == k and d != "/"
                 and not d.startswith(INTENT_ROOT)
                 and now - self._last_move.get(d, -1e18) >= p.cooldown),
                key=lambda item: (-item[1], item[0]))
            # The source keeps its proportional share of the movable
            # candidates — it remains one of the n shards serving them.
            moves_left = len(cands) - max(1, len(cands) // n)
            for d, dv in cands:
                if budget <= 0 or moves_left <= 0 \
                        or len(actions) >= p.moves_per_tick:
                    break
                if any(d == r or d.startswith(r + "/")
                       for _a, r, _t in actions):
                    continue
                # Destination: fewest moves received *this tick* first
                # (per-move load estimates are too noisy to let one batch
                # pile onto whichever shard measured lightest), then the
                # lightest predicted load.
                dst = min((j for j in range(n) if j != k),
                          key=lambda j: (batch_cnt.get(j, 0), loads[j], j))
                if pins.get(d) == dst:
                    continue
                dv_srv = dv * scale[k]
                # Move only while the pairwise max decreases: once the
                # destination-after would match or exceed the source's
                # *current* load, the move just relocates the hotspot
                # (the degenerate case — one dir IS the whole load —
                # stops here too, keeping the hottest directory home).
                if loads[dst] + dv_srv >= loads[k]:
                    break
                actions.append(("split", d, dst))
                pins[d] = dst
                loads[dst] += dv_srv
                loads[k] -= dv_srv
                batch_cnt[dst] = batch_cnt.get(dst, 0) + 1
                budget -= 1
                moves_left -= 1
            if len(actions) > before:
                # Acting resets the streak: re-evaluate on fresh windows.
                self._hot_streak.pop(k, None)
                self._last_shard_act[k] = now
        return actions

    # -- reporting -----------------------------------------------------------
    def _log(self, action: str, root: str, src: int, dst: int,
             note: str) -> None:
        self.decisions.append((self.sim.now, action, root, src, dst, note))

    def report(self) -> dict:
        """Machine-readable state dump for ``repro shardmap``."""
        cur = self.registry.current
        return {
            "epoch": cur.epoch,
            "pins": dict(cur.subtrees),
            "ticks": self.ticks,
            "decisions": [
                {"t": t, "action": a, "root": r, "src": s, "dst": d,
                 "note": note}
                for t, a, r, s, d, note in self.decisions],
            "migrator": dict(self.migrator.stats),
        }
