"""The paper's design behind the service interface: one ZooKeeper ensemble.

Pure delegation: every method forwards to the wrapped
:class:`~repro.zk.client.ZKClient` with ``yield from`` and adds **zero**
simulator events, CPU work, or messages — a deployment built through
``SingleEnsembleMDS`` is event-for-event (hence trace-byte-) identical to
one that used the raw client directly. This is the ``n_shards=1`` default
and the baseline every sharded configuration is measured against.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from ..zk.client import ZKClient
from ..zk.protocol import WriteRequest
from .base import MetadataService


class SingleEnsembleMDS(MetadataService):
    """Namespace service over exactly one ensemble (today's behaviour)."""

    n_shards = 1

    def __init__(self, zk: ZKClient):
        super().__init__()
        self.zk = zk
        # Shard-scope the client's (reason,) watch-loss notifications.
        zk.watch_loss_listeners.append(
            lambda reason: self._notify_watch_loss(reason, 0))

    # -- shard topology ----------------------------------------------------
    def client_for_shard(self, shard: int) -> ZKClient:
        return self.zk

    # -- reads -------------------------------------------------------------
    def get(self, path: str, watch=None) -> Generator:
        result = yield from self.zk.get(path, watch=watch)
        return result

    def exists(self, path: str, watch=None) -> Generator:
        result = yield from self.zk.exists(path, watch=watch)
        return result

    def get_children(self, path: str, watch=None) -> Generator:
        result = yield from self.zk.get_children(path, watch=watch)
        return result

    def resolve(self, path: str, watch=None) -> Generator:
        result = yield from self.zk.resolve(path, watch=watch)
        return result

    # -- writes ------------------------------------------------------------
    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequential: bool = False) -> Generator:
        result = yield from self.zk.create(path, data, ephemeral=ephemeral,
                                           sequential=sequential)
        return result

    def set_data(self, path: str, data: bytes, version: int = -1) -> Generator:
        result = yield from self.zk.set_data(path, data, version=version)
        return result

    def delete(self, path: str, version: int = -1,
               is_dir: Optional[bool] = None) -> Generator:
        result = yield from self.zk.delete(path, version=version)
        return result

    def multi(self, ops: Sequence[WriteRequest]) -> Generator:
        result = yield from self.zk.multi(ops)
        return result

    def sync(self, path: str = "/") -> Generator:
        result = yield from self.zk.sync(path)
        return result

    # -- retry introspection -------------------------------------------------
    @property
    def last_retries(self) -> int:
        return self.zk.last_retries
