"""Request/response RPC layer over the simulated network.

Each service endpoint (an MDS, a ZooKeeper server, a client library) owns an
:class:`RpcAgent`: an inbox dispatcher that spawns a handler process per
incoming request and routes responses back to waiting callers. Handlers are
generator functions ``handler(src, args) -> value`` that may yield sim
events (CPU work, disk, nested RPCs). Exceptions raised by handlers are
marshalled to the caller and re-raised there, preserving POSIX errnos.
"""

from __future__ import annotations

from sys import intern
from typing import Any, Callable, Dict, Generator, Optional

from .core import _PENDING, AnyOf, Event, Interrupt
from .node import Node

DEFAULT_REQ_SIZE = 192
DEFAULT_RESP_SIZE = 160

_UNSET = object()   # sentinel: "inherit the ambient deadline"


class RpcTimeout(Exception):
    """The reply did not arrive within the caller's deadline."""

    def __init__(self, dst: str, method: str):
        super().__init__(f"rpc {method} to {dst} timed out")
        self.dst = dst
        self.method = method


class RemoteError(Exception):
    """Wrapper for non-FS exceptions raised by a remote handler."""


class RequestExpired(Exception):
    """Server-side: the request's propagated deadline has already passed.

    Raised inside the service stack (admission drop or mid-service cancel)
    to abandon work whose caller has necessarily timed out. ``_serve``
    swallows it without sending a reply — there is nobody left to hear it.
    """

    def __init__(self, method: str, deadline: float, now: float):
        super().__init__(
            f"request {method} expired {now - deadline:.6f}s past deadline")
        self.method = method
        self.deadline = deadline


class _Request:
    """One in-flight call (plain ``__slots__`` class: allocated per RPC on
    the hot path, so no dataclass machinery)."""

    __slots__ = ("rpc_id", "reply_to", "method", "args", "resp_size",
                 "deadline")

    def __init__(self, rpc_id: int, reply_to: str, method: str, args: Any,
                 resp_size: int, deadline: Optional[float] = None):
        self.rpc_id = rpc_id
        self.reply_to = reply_to
        self.method = method
        self.args = args
        self.resp_size = resp_size
        # absolute sim time; None = unbounded
        self.deadline = deadline


class _Response:
    __slots__ = ("rpc_id", "ok", "value")

    def __init__(self, rpc_id: int, ok: bool, value: Any):
        self.rpc_id = rpc_id
        self.ok = ok
        self.value = value


class _Cast:
    __slots__ = ("method", "args", "src")

    def __init__(self, method: str, args: Any, src: str):
        self.method = method
        self.args = args
        self.src = src


class Reply:
    """Handlers may return ``Reply(value, size)`` to set the response size."""

    __slots__ = ("value", "size")

    def __init__(self, value: Any, size: int = DEFAULT_RESP_SIZE):
        self.value = value
        self.size = size


class RpcAgent:
    """Bidirectional RPC endpoint bound to a node."""

    __slots__ = ("node", "sim", "network", "endpoint", "inbox", "handlers",
                 "fast_handlers", "_pending", "_next_id", "_spawn_names",
                 "_dispatcher")

    def __init__(self, node: Node, endpoint: str):
        self.node = node
        self.sim = node.sim
        self.network = node.network
        self.endpoint = endpoint
        self.inbox = self.network.register(endpoint, host=node.name)
        node.register_endpoint(endpoint)
        self.handlers: Dict[str, Callable] = {}
        self.fast_handlers: Dict[str, Callable] = {}
        self._pending: Dict[int, Event] = {}
        self._next_id = 0
        # method -> interned "endpoint.method" label, built once: spawn
        # names for request handlers must not re-format a string per call.
        self._spawn_names: Dict[str, str] = {}
        self._dispatcher = node.spawn(self._dispatch_loop(), f"{endpoint}.dispatch")
        self.network.set_inbox_hook(endpoint, self._inbox_hook)
        node.on_crash(self._fail_pending)
        node.on_recover(self._restart)

    # -- server side -------------------------------------------------------
    def register(self, method: str, handler: Callable) -> None:
        """Register ``handler(src, args)`` — a generator function."""
        self.handlers[intern(method)] = handler

    def _spawn_name(self, method: str) -> str:
        name = self._spawn_names.get(method)
        if name is None:
            name = self._spawn_names[method] = intern(
                f"{self.endpoint}.{method}")
        return name

    def register_fast(self, method: str, fn: Callable) -> None:
        """Register a plain-function *cast* handler, run inline by the
        dispatcher with no process spawn. For cheap bookkeeping on hot
        paths (ZAB acks/commits); must not block or consume resources."""
        self.fast_handlers[method] = fn

    def _dispatch_loop(self) -> Generator:
        inbox_get = self.inbox.get
        pending = self._pending
        node_spawn = self.node.spawn
        while True:
            try:
                msg = yield inbox_get()
            except Interrupt:
                return
            if msg is None:  # cancelled get during teardown
                return
            payload = msg.payload
            cls = payload.__class__
            if cls is _Response:
                waiter = pending.pop(payload.rpc_id, None)
                if waiter is not None and waiter._value is _PENDING:
                    waiter.succeed(payload)
            elif cls is _Request:
                proc = node_spawn(self._serve(payload),
                                  self._spawn_name(payload.method))
                # The handler process runs under the caller's remaining
                # budget; nested RPCs it issues inherit it ambiently.
                proc.deadline = payload.deadline
            elif cls is _Cast:
                fast = self.fast_handlers.get(payload.method)
                if fast is not None:
                    fast(payload.src, payload.args)
                    continue
                handler = self.handlers.get(payload.method)
                if handler is not None:
                    node_spawn(self._serve_cast(handler, payload),
                               self._spawn_name(payload.method))

    def _inbox_hook(self, msg) -> bool:
        """Delivery-time fast path for responses (see ``set_inbox_hook``).

        Completes a pending call at the instant its response delivery
        event fires, skipping the inbox round-trip plus dispatcher wakeup
        (one Event, one queue hop, and one generator resume per RPC).
        Only legal when the inbox is empty and the dispatcher's get is
        armed — i.e. exactly when the dispatcher would receive this
        message next anyway, so per-endpoint FIFO processing order is
        unchanged. Requests and casts stay on the queue path: they spawn
        handler processes, and pulling those spawns earlier in the
        same-instant order would perturb replay (the figure-trace pin).
        """
        if msg.payload.__class__ is not _Response:
            return False
        inbox = self.inbox
        if inbox.items:
            return False
        getters = inbox._getters
        if not getters or getters[0]._value is not _PENDING:
            return False
        payload = msg.payload
        waiter = self._pending.pop(payload.rpc_id, None)
        if waiter is not None and waiter._value is _PENDING:
            waiter.succeed(payload)
        return True

    def _serve(self, req: _Request) -> Generator:
        handler = self.handlers.get(req.method)
        resp_size = req.resp_size
        if handler is None:
            resp = _Response(req.rpc_id, False, RemoteError(
                f"no handler {req.method!r} at {self.endpoint}"))
        else:
            try:
                value = yield from handler(req.reply_to, req.args)
                if isinstance(value, Reply):
                    resp_size = value.size
                    value = value.value
                resp = _Response(req.rpc_id, True, value)
            except Interrupt:
                return  # node died mid-service; caller will time out
            except RequestExpired:
                return  # caller's deadline passed; nobody to reply to
            except Exception as exc:
                resp = _Response(req.rpc_id, False, exc)
        self.network.send(self.endpoint, req.reply_to, resp, resp_size)

    def _serve_cast(self, handler: Callable, cast: _Cast) -> Generator:
        try:
            yield from handler(cast.src, cast.args)
        except Interrupt:
            return

    # -- client side -------------------------------------------------------
    def call(
        self,
        dst: str,
        method: str,
        args: Any = None,
        size: int = DEFAULT_REQ_SIZE,
        resp_size: int = DEFAULT_RESP_SIZE,
        timeout: Optional[float] = None,
        deadline: Any = _UNSET,
    ) -> Generator:
        """Issue an RPC and wait for the reply (``yield from`` this).

        ``deadline`` is an *absolute* sim time carried to the server so the
        service stack can drop the request once the caller must have given
        up. Left unset, it inherits the ambient deadline of the calling
        process (None = unbounded, the default); pass ``None`` explicitly
        to opt a call out of an inherited deadline. A set deadline also
        caps the local wait: the call raises :class:`RpcTimeout` no later
        than the deadline, immediately if it has already passed.
        """
        if deadline is _UNSET:
            active = self.sim._active
            deadline = active.deadline if active is not None else None
        if deadline is not None:
            remaining = deadline - self.sim.now
            if remaining <= 0.0:
                raise RpcTimeout(dst, method)
            timeout = (remaining if timeout is None
                       else min(timeout, remaining))
        self._next_id = rpc_id = self._next_id + 1
        waiter = Event.__new__(Event)   # inlined Event.__init__ (hot path)
        waiter.sim = self.sim
        waiter.callbacks = []
        waiter._value = _PENDING
        waiter._ok = True
        waiter._used = False
        self._pending[rpc_id] = waiter
        req = _Request(rpc_id, self.endpoint, method, args, resp_size,
                       deadline)
        self.network.send(self.endpoint, dst, req, size)
        try:
            if timeout is None:
                resp = yield waiter
            else:
                expiry = self.sim.timeout(timeout)
                yield AnyOf(self.sim, (waiter, expiry))
                if not waiter.triggered or waiter.value is None:
                    if not waiter.triggered:
                        waiter._ok = True  # detach: response may still arrive
                        waiter._value = None
                    raise RpcTimeout(dst, method)
                resp = waiter.value
        finally:
            # Success pops in the dispatcher; this covers timeout and a
            # caller interrupted mid-wait (hedge cancellation) so the late
            # response is discarded instead of leaking a waiter forever.
            self._pending.pop(rpc_id, None)
        if resp.ok:
            return resp.value
        raise resp.value

    def cast(self, dst: str, method: str, args: Any = None,
             size: int = DEFAULT_REQ_SIZE) -> None:
        """One-way message (no reply expected)."""
        self.network.send(self.endpoint, dst, _Cast(method, args, self.endpoint), size)

    # -- failure plumbing ---------------------------------------------------
    def _fail_pending(self) -> None:
        self._pending.clear()

    def _restart(self) -> None:
        self._dispatcher = self.node.spawn(self._dispatch_loop(),
                                           f"{self.endpoint}.dispatch")
