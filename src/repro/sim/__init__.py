"""Discrete-event simulation substrate (kernel, resources, network, nodes, RPC)."""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    EmptySchedule,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .network import Message, Network, NetworkStats
from .node import Cluster, Node
from .random import RandomStreams
from .resources import PriorityResource, Request, Resource, Store
from .rpc import Reply, RemoteError, RpcAgent, RpcTimeout
from .stats import (
    Counter,
    Histogram,
    LatencyRecorder,
    LatencySummary,
    OpLog,
    ThroughputWindow,
    percentile,
)

__all__ = [
    "AllOf", "AnyOf", "Condition", "EmptySchedule", "Event", "Interrupt",
    "Process", "SimulationError", "Simulator", "Timeout",
    "Message", "Network", "NetworkStats",
    "Cluster", "Node",
    "RandomStreams",
    "PriorityResource", "Request", "Resource", "Store",
    "Reply", "RemoteError", "RpcAgent", "RpcTimeout",
    "Counter", "Histogram", "LatencyRecorder", "LatencySummary", "OpLog",
    "ThroughputWindow", "percentile",
]
