"""Deterministic named random streams.

Every stochastic decision in the simulation draws from a stream keyed by a
stable name (e.g. ``"lustre.mds.service"``), so adding a new consumer never
perturbs the draws seen by existing ones — runs stay reproducible and
comparable across configurations.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def uniform(self, name: str, lo: float, hi: float) -> float:
        return self.stream(name).uniform(lo, hi)

    def expovariate(self, name: str, rate: float) -> float:
        return self.stream(name).expovariate(rate)

    def jitter(self, name: str, mean: float, cv: float = 0.1) -> float:
        """A service time with mild lognormal-ish jitter around ``mean``.

        ``cv`` is the coefficient of variation; 0 returns ``mean`` exactly.
        """
        if cv <= 0:
            return mean
        rng = self.stream(name)
        # Triangular jitter is cheap and bounded (no pathological tails).
        lo, hi = mean * (1 - 1.7 * cv), mean * (1 + 1.7 * cv)
        return max(1e-9, rng.triangular(lo, hi, mean))
