"""Cluster network model.

Point-to-point messages between named endpoints with per-pair FIFO delivery
(TCP-like ordering — required for ZAB correctness), configurable one-way
latency and bandwidth, and failure features: node down-drops and partitions.

The default parameters approximate the paper's testbed: 1 GigE, ~60 us
one-way latency for small messages, ~117 MB/s effective bandwidth.
Messages between co-located endpoints (same node name) use loopback cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .core import Simulator
from .resources import Store

GIGE_LATENCY = 60e-6       # one-way small-message latency (s)
GIGE_BANDWIDTH = 117e6     # effective bytes/s on 1 GigE
LOOPBACK_LATENCY = 8e-6    # same-host latency (s)
LOOPBACK_BANDWIDTH = 2e9

#: Stream name all link-fault randomness draws from. Draws happen only
#: while a fault with loss/duplication is installed, so healthy runs see
#: exactly the event sequence they saw before chaos existed.
CHAOS_STREAM = "net.chaos"


@dataclass(frozen=True)
class Message:
    """An envelope delivered to the destination endpoint's inbox."""

    src: str
    dst: str
    payload: Any
    size: int = 128
    sent_at: float = 0.0


@dataclass
class NetworkStats:
    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    duplicated: int = 0


@dataclass(frozen=True)
class LinkFault:
    """Degradation installed on a directed host pair (``"*"`` = any host).

    ``latency_factor``/``bandwidth_factor`` scale the link's base delay
    model; ``loss`` drops each message independently with the given
    probability; ``duplicate`` delivers a second, late copy with the given
    probability (out of order, as real duplication is).
    """

    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    loss: float = 0.0
    duplicate: float = 0.0

    @property
    def stochastic(self) -> bool:
        return self.loss > 0.0 or self.duplicate > 0.0


class Network:
    """Message fabric connecting endpoints registered by name."""

    def __init__(
        self,
        sim: Simulator,
        latency: float = GIGE_LATENCY,
        bandwidth: float = GIGE_BANDWIDTH,
        loopback_latency: float = LOOPBACK_LATENCY,
        loopback_bandwidth: float = LOOPBACK_BANDWIDTH,
        streams=None,
    ):
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.loopback_latency = loopback_latency
        self.loopback_bandwidth = loopback_bandwidth
        self.streams = streams                 # RandomStreams (link faults)
        self.stats = NetworkStats()
        self._inboxes: dict[str, Store] = {}
        self._hosts: dict[str, str] = {}       # endpoint -> host name
        self._down: set[str] = set()           # down endpoints
        self._last_delivery: dict[tuple[str, str], float] = {}
        self._partition: Optional[dict[str, int]] = None  # host -> group id
        # directed (src_host, dst_host) -> LinkFault; "*" matches any host
        self._link_faults: dict[tuple[str, str], LinkFault] = {}

    # -- topology --------------------------------------------------------
    def register(self, endpoint: str, host: Optional[str] = None) -> Store:
        """Create (or fetch) the inbox for an endpoint; returns the Store."""
        if endpoint not in self._inboxes:
            self._inboxes[endpoint] = Store(self.sim)
            self._hosts[endpoint] = host or endpoint
        return self._inboxes[endpoint]

    def inbox(self, endpoint: str) -> Store:
        return self._inboxes[endpoint]

    def host_of(self, endpoint: str) -> str:
        return self._hosts[endpoint]

    # -- failures --------------------------------------------------------
    def set_down(self, endpoint: str, down: bool = True) -> None:
        if down:
            self._down.add(endpoint)
            self._inboxes[endpoint].items.clear()
            self._inboxes[endpoint].drain_getters()
        else:
            self._down.discard(endpoint)

    def is_down(self, endpoint: str) -> bool:
        return endpoint in self._down

    def partition(self, groups: list[list[str]]) -> None:
        """Split *hosts* into isolated groups; cross-group traffic drops."""
        mapping: dict[str, int] = {}
        for gid, members in enumerate(groups):
            for host in members:
                mapping[host] = gid
        self._partition = mapping

    def heal(self) -> None:
        self._partition = None

    # -- link degradation (chaos) ----------------------------------------
    def degrade_link(self, src_host: str, dst_host: str, *,
                     latency_factor: Optional[float] = None,
                     bandwidth_factor: Optional[float] = None,
                     loss: Optional[float] = None,
                     duplicate: Optional[float] = None) -> LinkFault:
        """Install (or amend) a fault on the directed ``src_host`` ->
        ``dst_host`` link; ``"*"`` is a wildcard host. Unspecified fields
        keep their current value for the pair. Loopback traffic (same
        host) is never affected."""
        key = (src_host, dst_host)
        cur = self._link_faults.get(key, LinkFault())
        fault = LinkFault(
            latency_factor=cur.latency_factor if latency_factor is None
            else latency_factor,
            bandwidth_factor=cur.bandwidth_factor if bandwidth_factor is None
            else bandwidth_factor,
            loss=cur.loss if loss is None else loss,
            duplicate=cur.duplicate if duplicate is None else duplicate,
        )
        self._link_faults[key] = fault
        return fault

    def restore_link(self, src_host: str, dst_host: str) -> None:
        self._link_faults.pop((src_host, dst_host), None)

    def clear_link_faults(self) -> None:
        self._link_faults.clear()

    def _fault_for(self, src_host: str, dst_host: str) -> Optional[LinkFault]:
        if not self._link_faults or src_host == dst_host:
            return None
        for key in ((src_host, dst_host), (src_host, "*"),
                    ("*", dst_host), ("*", "*")):
            fault = self._link_faults.get(key)
            if fault is not None:
                return fault
        return None

    def _chaos_rng(self):
        if self.streams is None:  # pragma: no cover - chaos needs streams
            raise RuntimeError("probabilistic link faults need a Network "
                               "built with RandomStreams (Cluster does this)")
        return self.streams.stream(CHAOS_STREAM)

    def _reachable(self, src: str, dst: str) -> bool:
        if src in self._down or dst in self._down:
            return False
        if self._partition is None:
            return True
        hs, hd = self._hosts.get(src, src), self._hosts.get(dst, dst)
        return self._partition.get(hs, -1) == self._partition.get(hd, -2) or hs == hd

    # -- transmission ----------------------------------------------------
    def delay_for(self, src: str, dst: str, size: int) -> float:
        if self._hosts.get(src, src) == self._hosts.get(dst, dst):
            return self.loopback_latency + size / self.loopback_bandwidth
        return self.latency + size / self.bandwidth

    def send(self, src: str, dst: str, payload: Any, size: int = 128) -> None:
        """Fire-and-forget transmit; delivery is FIFO per (src, dst) pair."""
        if dst not in self._inboxes:
            raise KeyError(f"unknown endpoint {dst!r}")
        if not self._reachable(src, dst):
            self.stats.dropped += 1
            return
        sim = self.sim
        delay = self.delay_for(src, dst, size)
        fault = self._fault_for(self._hosts.get(src, src),
                                self._hosts.get(dst, dst))
        duplicate = False
        if fault is not None:
            if fault.stochastic:
                rng = self._chaos_rng()
                if fault.loss > 0.0 and rng.random() < fault.loss:
                    self.stats.dropped += 1
                    return
                duplicate = (fault.duplicate > 0.0
                             and rng.random() < fault.duplicate)
            delay = (self.latency * fault.latency_factor
                     + size / (self.bandwidth * fault.bandwidth_factor))
        key = (src, dst)
        deliver_at = max(sim.now + delay, self._last_delivery.get(key, 0.0))
        self._last_delivery[key] = deliver_at
        self.stats.messages += 1
        self.stats.bytes += size
        msg = Message(src, dst, payload, size, sim.now)
        self._schedule_delivery(deliver_at, msg)
        if duplicate:
            # The copy arrives a link-delay later, out of FIFO order —
            # receivers must tolerate it (at-least-once delivery).
            self.stats.duplicated += 1
            self._schedule_delivery(deliver_at + delay, msg)

    def _schedule_delivery(self, deliver_at: float, msg: Message) -> None:
        sim = self.sim
        ev = sim.event()
        ev.callbacks.append(lambda _ev, m=msg: self._deliver(m))
        ev._ok = True
        ev._value = None
        sim._queue_at(deliver_at, ev)

    def _deliver(self, msg: Message) -> None:
        # Re-check reachability at delivery time: a crash mid-flight or a
        # partition installed after send() still drops the message.
        if not self._reachable(msg.src, msg.dst):
            self.stats.dropped += 1
            return
        self._inboxes[msg.dst].put(msg)
