"""Cluster network model.

Point-to-point messages between named endpoints with per-pair FIFO delivery
(TCP-like ordering — required for ZAB correctness), configurable one-way
latency and bandwidth, and failure features: node down-drops and partitions.

The default parameters approximate the paper's testbed: 1 GigE, ~60 us
one-way latency for small messages, ~117 MB/s effective bandwidth.
Messages between co-located endpoints (same node name) use loopback cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .core import Event, Simulator
from .resources import Store

GIGE_LATENCY = 60e-6       # one-way small-message latency (s)
GIGE_BANDWIDTH = 117e6     # effective bytes/s on 1 GigE
LOOPBACK_LATENCY = 8e-6    # same-host latency (s)
LOOPBACK_BANDWIDTH = 2e9

#: Stream name all link-fault randomness draws from. Draws happen only
#: while a fault with loss/duplication is installed, so healthy runs see
#: exactly the event sequence they saw before chaos existed.
CHAOS_STREAM = "net.chaos"

#: Route-cache sentinel: the pair is unreachable (down endpoint/partition).
_DROP = ("drop",)


class Message:
    """An envelope delivered to the destination endpoint's inbox.

    Plain ``__slots__`` class — one is allocated per transmitted message,
    which makes it part of the simulator hot path.
    """

    __slots__ = ("src", "dst", "payload", "size", "sent_at")

    def __init__(self, src: str, dst: str, payload: Any, size: int = 128,
                 sent_at: float = 0.0):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size
        self.sent_at = sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message(src={self.src!r}, dst={self.dst!r}, "
                f"size={self.size}, sent_at={self.sent_at})")


class _Delivery(Event):
    """Scheduled arrival of one message.

    The delivery *event* carries the envelope fields itself and is put
    into the destination inbox directly, so one transmitted message costs
    a single allocation (no separate Message + Event + closure). It
    duck-types :class:`Message` — consumers only ever read the envelope
    fields (``payload``, ``src``, ...)."""

    __slots__ = ("src", "dst", "payload", "size", "sent_at")

    def __init__(self, sim: Simulator, src: str, dst: str, payload: Any,
                 size: int, sent_at: float, cb):
        self.sim = sim
        self.callbacks = [cb]
        self._value = None       # triggered from creation, like a Timeout
        self._ok = True
        self._used = False
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size
        self.sent_at = sent_at


@dataclass(slots=True)
class NetworkStats:
    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    duplicated: int = 0


@dataclass(frozen=True)
class LinkFault:
    """Degradation installed on a directed host pair (``"*"`` = any host).

    ``latency_factor``/``bandwidth_factor`` scale the link's base delay
    model; ``loss`` drops each message independently with the given
    probability; ``duplicate`` delivers a second, late copy with the given
    probability (out of order, as real duplication is).
    """

    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    loss: float = 0.0
    duplicate: float = 0.0

    @property
    def stochastic(self) -> bool:
        return self.loss > 0.0 or self.duplicate > 0.0


class Network:
    """Message fabric connecting endpoints registered by name."""

    __slots__ = ("sim", "latency", "bandwidth", "loopback_latency",
                 "loopback_bandwidth", "streams", "stats", "_inboxes",
                 "_hosts", "_down", "_last_delivery", "_partition",
                 "_link_faults", "_deliver_cb", "_routes", "_hooks")

    def __init__(
        self,
        sim: Simulator,
        latency: float = GIGE_LATENCY,
        bandwidth: float = GIGE_BANDWIDTH,
        loopback_latency: float = LOOPBACK_LATENCY,
        loopback_bandwidth: float = LOOPBACK_BANDWIDTH,
        streams=None,
    ):
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.loopback_latency = loopback_latency
        self.loopback_bandwidth = loopback_bandwidth
        self.streams = streams                 # RandomStreams (link faults)
        self.stats = NetworkStats()
        self._inboxes: dict[str, Store] = {}
        self._hosts: dict[str, str] = {}       # endpoint -> host name
        self._down: set[str] = set()           # down endpoints
        self._last_delivery: dict[tuple[str, str], float] = {}
        self._partition: Optional[dict[str, int]] = None  # host -> group id
        # directed (src_host, dst_host) -> LinkFault; "*" matches any host
        self._link_faults: dict[tuple[str, str], LinkFault] = {}
        # single bound callback shared by every _Delivery event
        self._deliver_cb = self._deliver
        # endpoint -> fast-path hook tried at delivery time (see
        # set_inbox_hook); absent endpoints go straight to their inbox.
        self._hooks: dict[str, Any] = {}
        # (src, dst) -> (latency, 1/bandwidth, loss, duplicate), or the
        # _DROP sentinel for unreachable pairs. The cache folds the host
        # lookup, partition check, and link-fault resolution into one dict
        # get on the send hot path; every topology or fault mutation
        # (set_down, partition, heal, degrade/restore_link) clears it.
        self._routes: dict[tuple[str, str], tuple] = {}

    # -- topology --------------------------------------------------------
    def register(self, endpoint: str, host: Optional[str] = None) -> Store:
        """Create (or fetch) the inbox for an endpoint; returns the Store."""
        if endpoint not in self._inboxes:
            self._inboxes[endpoint] = Store(self.sim)
            self._hosts[endpoint] = host or endpoint
            self._routes.clear()
        return self._inboxes[endpoint]

    def inbox(self, endpoint: str) -> Store:
        return self._inboxes[endpoint]

    def set_inbox_hook(self, endpoint: str, hook) -> None:
        """Install ``hook(msg) -> bool`` tried at delivery time.

        Returning True consumes the message without an inbox round-trip
        (the RPC layer uses this to handle a message at the instant its
        delivery event fires instead of paying a queue hop plus a
        dispatcher wakeup). The hook MUST preserve inbox FIFO semantics:
        it may only consume when the inbox is empty and a getter is
        armed, i.e. exactly when the message would have been handed to
        the waiting consumer next anyway."""
        self._hooks[endpoint] = hook

    def host_of(self, endpoint: str) -> str:
        return self._hosts[endpoint]

    # -- failures --------------------------------------------------------
    def set_down(self, endpoint: str, down: bool = True) -> None:
        self._routes.clear()
        if down:
            self._down.add(endpoint)
            self._inboxes[endpoint].items.clear()
            self._inboxes[endpoint].drain_getters()
        else:
            self._down.discard(endpoint)

    def is_down(self, endpoint: str) -> bool:
        return endpoint in self._down

    def partition(self, groups: list[list[str]]) -> None:
        """Split *hosts* into isolated groups; cross-group traffic drops."""
        mapping: dict[str, int] = {}
        for gid, members in enumerate(groups):
            for host in members:
                mapping[host] = gid
        self._partition = mapping
        self._routes.clear()

    def heal(self) -> None:
        self._partition = None
        self._routes.clear()

    # -- link degradation (chaos) ----------------------------------------
    def degrade_link(self, src_host: str, dst_host: str, *,
                     latency_factor: Optional[float] = None,
                     bandwidth_factor: Optional[float] = None,
                     loss: Optional[float] = None,
                     duplicate: Optional[float] = None) -> LinkFault:
        """Install (or amend) a fault on the directed ``src_host`` ->
        ``dst_host`` link; ``"*"`` is a wildcard host. Unspecified fields
        keep their current value for the pair. Loopback traffic (same
        host) is never affected."""
        key = (src_host, dst_host)
        cur = self._link_faults.get(key, LinkFault())
        fault = LinkFault(
            latency_factor=cur.latency_factor if latency_factor is None
            else latency_factor,
            bandwidth_factor=cur.bandwidth_factor if bandwidth_factor is None
            else bandwidth_factor,
            loss=cur.loss if loss is None else loss,
            duplicate=cur.duplicate if duplicate is None else duplicate,
        )
        self._link_faults[key] = fault
        self._routes.clear()
        return fault

    def restore_link(self, src_host: str, dst_host: str) -> None:
        self._link_faults.pop((src_host, dst_host), None)
        self._routes.clear()

    def clear_link_faults(self) -> None:
        self._link_faults.clear()
        self._routes.clear()

    def _fault_for(self, src_host: str, dst_host: str) -> Optional[LinkFault]:
        if not self._link_faults or src_host == dst_host:
            return None
        for key in ((src_host, dst_host), (src_host, "*"),
                    ("*", dst_host), ("*", "*")):
            fault = self._link_faults.get(key)
            if fault is not None:
                return fault
        return None

    def _chaos_rng(self):
        if self.streams is None:  # pragma: no cover - chaos needs streams
            raise RuntimeError("probabilistic link faults need a Network "
                               "built with RandomStreams (Cluster does this)")
        return self.streams.stream(CHAOS_STREAM)

    def _reachable(self, src: str, dst: str) -> bool:
        if src in self._down or dst in self._down:
            return False
        if self._partition is None:
            return True
        hs, hd = self._hosts.get(src, src), self._hosts.get(dst, dst)
        return self._partition.get(hs, -1) == self._partition.get(hd, -2) or hs == hd

    # -- transmission ----------------------------------------------------
    def delay_for(self, src: str, dst: str, size: int) -> float:
        if self._hosts.get(src, src) == self._hosts.get(dst, dst):
            return self.loopback_latency + size / self.loopback_bandwidth
        return self.latency + size / self.bandwidth

    def _route_for(self, key: tuple, src: str, dst: str) -> tuple:
        """Resolve, cache, and return the route tuple for one pair."""
        if dst not in self._inboxes:
            raise KeyError(f"unknown endpoint {dst!r}")
        hosts = self._hosts
        hs = hosts.get(src, src)
        hd = hosts.get(dst, dst)
        part = self._partition
        if src in self._down or dst in self._down:
            route = _DROP
        elif (part is not None and hs != hd
                and part.get(hs, -1) != part.get(hd, -2)):
            route = _DROP
        elif hs == hd:
            route = (self.loopback_latency, self.loopback_bandwidth, 0.0, 0.0)
        else:
            fault = self._fault_for(hs, hd)
            if fault is None:
                route = (self.latency, self.bandwidth, 0.0, 0.0)
            else:
                # Bake the factors in; delay stays `lat + size / bw`, the
                # exact arithmetic the uncached path used (bit-identical
                # delivery times are load-bearing for the trace pin).
                route = (self.latency * fault.latency_factor,
                         self.bandwidth * fault.bandwidth_factor,
                         fault.loss, fault.duplicate)
        self._routes[key] = route
        return route

    def send(self, src: str, dst: str, payload: Any, size: int = 128) -> None:
        """Fire-and-forget transmit; delivery is FIFO per (src, dst) pair."""
        key = (src, dst)
        route = self._routes.get(key)
        if route is None:
            route = self._route_for(key, src, dst)
        stats = self.stats
        if route is _DROP:
            stats.dropped += 1
            return
        lat, bw, loss, dup = route
        duplicate = False
        if loss or dup:
            rng = self._chaos_rng()
            if loss and rng.random() < loss:
                stats.dropped += 1
                return
            duplicate = dup > 0.0 and rng.random() < dup
        delay = lat + size / bw
        sim = self.sim
        now = sim.now
        deliver_at = now + delay
        last = self._last_delivery.get(key, 0.0)
        if last > deliver_at:
            deliver_at = last
        self._last_delivery[key] = deliver_at
        stats.messages += 1
        stats.bytes += size
        # Inlined _Delivery.__init__ — two allocations per RPC (request +
        # response) make this constructor's frame measurable.
        ev = _Delivery.__new__(_Delivery)
        ev.sim = sim
        ev.callbacks = [self._deliver_cb]
        ev._value = None
        ev._ok = True
        ev._used = False
        ev.src = src
        ev.dst = dst
        ev.payload = payload
        ev.size = size
        ev.sent_at = now
        # deliver_at is strictly in the future (delay > 0 and the FIFO
        # clamp only moves it later), so stage it for the heap directly.
        sim._eid = eid = sim._eid + 1
        sim._staged.append((deliver_at, eid, ev))
        if duplicate:
            # The copy arrives a link-delay later, out of FIFO order —
            # receivers must tolerate it (at-least-once delivery).
            stats.duplicated += 1
            copy = _Delivery(sim, src, dst, payload, size, now,
                             self._deliver_cb)
            sim._queue_at(deliver_at + delay, copy)

    def _deliver(self, ev: "_Delivery") -> None:
        # Re-check reachability at delivery time: a crash mid-flight or a
        # partition installed after send() still drops the message.
        if not self._reachable(ev.src, ev.dst):
            self.stats.dropped += 1
            return
        dst = ev.dst
        hook = self._hooks.get(dst)
        if hook is not None and hook(ev):
            return
        self._inboxes[dst].put(ev)
