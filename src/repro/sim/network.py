"""Cluster network model.

Point-to-point messages between named endpoints with per-pair FIFO delivery
(TCP-like ordering — required for ZAB correctness), configurable one-way
latency and bandwidth, and failure features: node down-drops and partitions.

The default parameters approximate the paper's testbed: 1 GigE, ~60 us
one-way latency for small messages, ~117 MB/s effective bandwidth.
Messages between co-located endpoints (same node name) use loopback cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .core import Simulator
from .resources import Store

GIGE_LATENCY = 60e-6       # one-way small-message latency (s)
GIGE_BANDWIDTH = 117e6     # effective bytes/s on 1 GigE
LOOPBACK_LATENCY = 8e-6    # same-host latency (s)
LOOPBACK_BANDWIDTH = 2e9


@dataclass(frozen=True)
class Message:
    """An envelope delivered to the destination endpoint's inbox."""

    src: str
    dst: str
    payload: Any
    size: int = 128
    sent_at: float = 0.0


@dataclass
class NetworkStats:
    messages: int = 0
    bytes: int = 0
    dropped: int = 0


class Network:
    """Message fabric connecting endpoints registered by name."""

    def __init__(
        self,
        sim: Simulator,
        latency: float = GIGE_LATENCY,
        bandwidth: float = GIGE_BANDWIDTH,
        loopback_latency: float = LOOPBACK_LATENCY,
        loopback_bandwidth: float = LOOPBACK_BANDWIDTH,
    ):
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.loopback_latency = loopback_latency
        self.loopback_bandwidth = loopback_bandwidth
        self.stats = NetworkStats()
        self._inboxes: dict[str, Store] = {}
        self._hosts: dict[str, str] = {}       # endpoint -> host name
        self._down: set[str] = set()           # down endpoints
        self._last_delivery: dict[tuple[str, str], float] = {}
        self._partition: Optional[dict[str, int]] = None  # host -> group id

    # -- topology --------------------------------------------------------
    def register(self, endpoint: str, host: Optional[str] = None) -> Store:
        """Create (or fetch) the inbox for an endpoint; returns the Store."""
        if endpoint not in self._inboxes:
            self._inboxes[endpoint] = Store(self.sim)
            self._hosts[endpoint] = host or endpoint
        return self._inboxes[endpoint]

    def inbox(self, endpoint: str) -> Store:
        return self._inboxes[endpoint]

    def host_of(self, endpoint: str) -> str:
        return self._hosts[endpoint]

    # -- failures --------------------------------------------------------
    def set_down(self, endpoint: str, down: bool = True) -> None:
        if down:
            self._down.add(endpoint)
            self._inboxes[endpoint].items.clear()
            self._inboxes[endpoint].drain_getters()
        else:
            self._down.discard(endpoint)

    def is_down(self, endpoint: str) -> bool:
        return endpoint in self._down

    def partition(self, groups: list[list[str]]) -> None:
        """Split *hosts* into isolated groups; cross-group traffic drops."""
        mapping: dict[str, int] = {}
        for gid, members in enumerate(groups):
            for host in members:
                mapping[host] = gid
        self._partition = mapping

    def heal(self) -> None:
        self._partition = None

    def _reachable(self, src: str, dst: str) -> bool:
        if src in self._down or dst in self._down:
            return False
        if self._partition is None:
            return True
        hs, hd = self._hosts.get(src, src), self._hosts.get(dst, dst)
        return self._partition.get(hs, -1) == self._partition.get(hd, -2) or hs == hd

    # -- transmission ----------------------------------------------------
    def delay_for(self, src: str, dst: str, size: int) -> float:
        if self._hosts.get(src, src) == self._hosts.get(dst, dst):
            return self.loopback_latency + size / self.loopback_bandwidth
        return self.latency + size / self.bandwidth

    def send(self, src: str, dst: str, payload: Any, size: int = 128) -> None:
        """Fire-and-forget transmit; delivery is FIFO per (src, dst) pair."""
        if dst not in self._inboxes:
            raise KeyError(f"unknown endpoint {dst!r}")
        if not self._reachable(src, dst):
            self.stats.dropped += 1
            return
        sim = self.sim
        delay = self.delay_for(src, dst, size)
        key = (src, dst)
        deliver_at = max(sim.now + delay, self._last_delivery.get(key, 0.0))
        self._last_delivery[key] = deliver_at
        self.stats.messages += 1
        self.stats.bytes += size
        msg = Message(src, dst, payload, size, sim.now)
        ev = sim.event()
        ev.callbacks.append(lambda _ev, m=msg: self._deliver(m))
        ev._ok = True
        ev._value = None
        sim._queue_at(deliver_at, ev)

    def _deliver(self, msg: Message) -> None:
        # Re-check reachability at delivery time: a crash mid-flight or a
        # partition installed after send() still drops the message.
        if not self._reachable(msg.src, msg.dst):
            self.stats.dropped += 1
            return
        self._inboxes[msg.dst].put(msg)
