"""Discrete-event simulation kernel.

A small, fast, deterministic event loop in the style of SimPy: simulation
logic is written as generator *processes* that ``yield`` events. The kernel
is the substrate for every simulated cluster component in this package
(ZooKeeper servers, Lustre/PVFS servers, DUFS clients).

Determinism: given identical inputs the event order is fully reproducible.
Ties on simulation time are broken by event creation order; all randomness
comes from named streams in :mod:`repro.sim.random`.

Performance notes (per the optimization guides: measure, keep the hot loop
allocation-light): events use ``__slots__``, the scheduler is a plain
``heapq`` over ``(time, eid, event)`` tuples, and callbacks are plain lists.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` carries the value passed to :meth:`Process.interrupt` (used by
    the failure injector to say *why* a server process died).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """One-shot occurrence; processes wait on it by ``yield``-ing it.

    Lifecycle: *pending* -> *triggered* (value set, queued on the heap) ->
    *processed* (callbacks ran).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_used")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._used = False  # failure was delivered to at least one waiter

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._queue(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._value = exc
        self.sim._queue(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """Event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._queue_at(sim.now + delay, self)


class Process(Event):
    """Drives a generator; the process *is* an event that fires on return.

    The generator yields events; the process resumes when the yielded event
    is processed, receiving ``event.value`` (or having the exception thrown
    in, if the event failed and nothing defused it).
    """

    __slots__ = ("gen", "name", "deadline", "_target", "_interrupts",
                 "_started")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError(f"process target must be a generator, got {gen!r}")
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        # Ambient absolute deadline (None = unbounded). Inherited from the
        # spawning process so nested work — RPC handlers issuing their own
        # RPCs — automatically operates under the remaining budget of the
        # request that spawned it (repro.resilience deadline propagation).
        parent = sim._active
        self.deadline: Optional[float] = (
            parent.deadline if parent is not None else None)
        self._target: Optional[Event] = None
        self._interrupts: list = []
        self._started = False
        # Kick off at the current time via an initialization event.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        sim._queue(init)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        self._interrupts.append(cause)
        # Detach from whatever we were waiting for and schedule resumption.
        wake = Event(self.sim)
        wake._ok = True
        wake._value = None
        wake.callbacks.append(self._resume)
        self.sim._queue(wake)

    def _resume(self, trigger: Event) -> None:
        if not self.is_alive:
            return
        # If an interrupt is queued it wins over the normal resumption.
        if self._interrupts:
            cause = self._interrupts.pop(0)
            if not self._started:
                # Killed before ever running: a throw would surface at the
                # generator's first line, so just close it instead.
                self.gen.close()
                self.succeed(None)
                return
            target = self._target
            if target is not None and target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None
            self._step(throw=Interrupt(cause))
            return
        if trigger is not self._target and self._target is not None:
            return  # stale wakeup (we were re-targeted by an interrupt)
        self._target = None
        if trigger._ok:
            self._step(send=trigger._value)
        else:
            trigger._used = True
            self._step(throw=trigger._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        sim = self.sim
        sim._active = self
        self._started = True
        try:
            if throw is not None:
                target = self.gen.throw(throw)
            else:
                target = self.gen.send(send)
        except StopIteration as stop:
            sim._active = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active = None
            if sim.strict:
                raise
            self.fail(exc)
            return
        sim._active = None
        if not isinstance(target, Event):
            self._step(throw=SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target.sim is not sim:
            self._step(throw=SimulationError("yielded event from another simulator"))
            return
        if target.callbacks is None:
            # Already processed: resume immediately with its outcome.
            if target._ok:
                self._step(send=target._value)
            else:
                target._used = True
                self._step(throw=target._value)
            return
        self._target = target
        target.callbacks.append(self._resume)


class Condition(Event):
    """Waits for *all* or *any* of a set of events (see AllOf / AnyOf)."""

    __slots__ = ("events", "_need")

    def __init__(self, sim: "Simulator", events: Iterable[Event], need_all: bool):
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition spans simulators")
        self._need = len(self.events) if need_all else min(1, len(self.events))
        if self._need == 0:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            ev._used = True
            self.fail(ev._value)
            return
        self._need -= 1
        if self._need <= 0:
            self.succeed({e: e._value for e in self.events if e.triggered and e._ok})


def AllOf(sim: "Simulator", events: Iterable[Event]) -> Condition:
    return Condition(sim, events, need_all=True)


def AnyOf(sim: "Simulator", events: Iterable[Event]) -> Condition:
    return Condition(sim, events, need_all=False)


class Simulator:
    """The event loop.

    ``strict`` (default True) makes uncaught exceptions in processes
    propagate out of :meth:`run` immediately — the right default for tests.
    """

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.strict = strict
        self._heap: list = []
        self._eid = 0
        self._active: Optional[Process] = None

    # -- scheduling ------------------------------------------------------
    def _queue(self, event: Event) -> None:
        self._queue_at(self.now, event)

    def _queue_at(self, when: float, event: Event) -> None:
        self._eid += 1
        heapq.heappush(self._heap, (when, self._eid, event))

    # -- factory helpers -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> Condition:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> Condition:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------
    def step(self) -> None:
        if not self._heap:
            raise EmptySchedule()
        when, _, event = heapq.heappop(self._heap)
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - double-queue guard
            return
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._used and self.strict:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the heap is empty, a deadline, or an event triggers."""
        if isinstance(until, Event):
            stop = until
            # Wait for the event to be *processed*, not merely triggered
            # (a Timeout is value-bearing from creation but fires later).
            while stop.callbacks is not None:
                try:
                    self.step()
                except EmptySchedule:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        f"event triggered (t={self.now})") from None
            if not stop._ok:
                stop._used = True
                raise stop._value
            return stop._value
        if until is None:
            while self._heap:
                self.step()
            return None
        deadline = float(until)
        if deadline < self.now:
            raise ValueError("deadline in the past")
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        self.now = deadline
        return None

    def peek(self) -> float:
        """Time of the next event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")
