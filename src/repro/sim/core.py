"""Discrete-event simulation kernel.

A small, fast, deterministic event loop in the style of SimPy: simulation
logic is written as generator *processes* that ``yield`` events. The kernel
is the substrate for every simulated cluster component in this package
(ZooKeeper servers, Lustre/PVFS servers, DUFS clients).

Determinism: given identical inputs the event order is fully reproducible.
Ties on simulation time are broken by event creation order; all randomness
comes from named streams in :mod:`repro.sim.random`.

Performance notes (the hot-path overhaul; measured by
``repro.bench.kernel_bench`` and gated in CI):

* **Same-time FIFO lane.** Events scheduled *at the current time* — every
  ``succeed``/``fail``, zero-delay timeouts, process wakeups — go into a
  plain ``deque`` instead of the heap. They are already in creation order,
  so draining them is O(1) per event with no heap traffic. The lane and
  the heap are merged on the global ``(time, creation-id)`` order, so tie
  breaking is identical to a single heap.
* **Staged heap inserts.** Future-time events are appended to a staging
  list and folded into the heap only when the loop next needs its minimum:
  one straggler is ``heappush``-ed (or, when it precedes the heap top,
  dispatched without ever touching the heap — the common RPC chain shape),
  while burst arrivals are bulk-loaded with a single ``heapify``.
* **Allocation-light resume path.** Process init and interrupt wakeups
  queue the process itself on the lane (no wakeup ``Event``, no closure);
  repeated interrupts coalesce into one queued wakeup; the
  already-processed-target fast path is an inline loop rather than
  recursion; per-process callbacks are pre-bound once.
* **Bound locals.** The run loops bind the heap, lane, and heapq
  functions to locals, eliminating attribute lookups per event.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from types import GeneratorType
from typing import Any, Generator, Iterable, Optional

_PENDING = object()
_WAKE = object()   # _step trigger sentinel: lane-dispatched process wakeup


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` carries the value passed to :meth:`Process.interrupt` (used by
    the failure injector to say *why* a server process died).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """One-shot occurrence; processes wait on it by ``yield``-ing it.

    Lifecycle: *pending* -> *triggered* (value set, queued on the lane) ->
    *processed* (callbacks ran).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_used")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._used = False  # failure was delivered to at least one waiter

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        if self.callbacks:
            sim = self.sim
            sim._eid = eid = sim._eid + 1
            sim._lane.append((eid, self, None))
        else:
            # No waiters: nothing to run, so skip the queue round-trip and
            # mark the event processed on the spot. (Unwaited process
            # completions — every RPC handler — hit this constantly.) A
            # later yield takes the already-processed inline resume path.
            # Failures never short-circuit: strict-mode unraised-failure
            # detection needs them dispatched.
            self.callbacks = None
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._value = exc
        sim = self.sim
        sim._eid = eid = sim._eid + 1
        sim._lane.append((eid, self, None))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """Event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ + scheduling: a Timeout is value-bearing
        # from creation and queues itself immediately.
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self._used = False
        self.delay = delay
        sim._eid = eid = sim._eid + 1
        if delay == 0.0:
            sim._lane.append((eid, self, None))
        else:
            sim._staged.append((sim.now + delay, eid, self))


class Process(Event):
    """Drives a generator; the process *is* an event that fires on return.

    The generator yields events; the process resumes when the yielded event
    is processed, receiving ``event.value`` (or having the exception thrown
    in, if the event failed and nothing defused it).
    """

    __slots__ = ("gen", "name", "deadline", "_target", "_interrupts",
                 "_started", "_resume_cb", "_wake_pending", "_gsend",
                 "_gthrow")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if gen.__class__ is not GeneratorType and not hasattr(gen, "send"):
            raise TypeError(f"process target must be a generator, got {gen!r}")
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._used = False
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        # Ambient absolute deadline (None = unbounded). Inherited from the
        # spawning process so nested work — RPC handlers issuing their own
        # RPCs — automatically operates under the remaining budget of the
        # request that spawned it (repro.resilience deadline propagation).
        parent = sim._active
        self.deadline: Optional[float] = (
            parent.deadline if parent is not None else None)
        self._target: Optional[Event] = None
        self._interrupts: Optional[list] = None   # lazily allocated
        self._started = False
        self._resume_cb = self._step              # one bound method, reused
        self._gsend = gen.send                    # pre-bound: one resume per
        self._gthrow = getattr(gen, "throw", None)  # event makes these hot
        # Kick off at the current time: the lane carries the process
        # itself, so init needs no wakeup Event allocation.
        self._wake_pending = True
        sim._eid = eid = sim._eid + 1
        sim._lane.append((eid, None, self))

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Repeated interrupts on the same process coalesce into a single
        queued wakeup; causes are delivered FIFO, one per resume point.
        """
        if self._value is not _PENDING:
            return
        ints = self._interrupts
        if ints is None:
            self._interrupts = [cause]
        else:
            ints.append(cause)
        if not self._wake_pending:
            self._wake_pending = True
            sim = self.sim
            sim._eid = eid = sim._eid + 1
            sim._lane.append((eid, None, self))

    def _deliver_interrupt(self) -> None:
        ints = self._interrupts
        cause = ints.pop(0)
        if not self._started:
            # Killed before ever running: a throw would surface at the
            # generator's first line, so just close it instead.
            self.gen.close()
            self.succeed(None)
            return
        # Detach from whatever we were waiting for and resume with the
        # interrupt thrown in.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None
        self._step(None, None, Interrupt(cause))
        # Coalesced repeats: if undelivered causes remain and no wakeup is
        # queued, queue one so FIFO delivery continues.
        if ints and self._value is _PENDING and not self._wake_pending:
            self._wake_pending = True
            sim = self.sim
            sim._eid = eid = sim._eid + 1
            sim._lane.append((eid, None, self))

    def _step(self, trigger: Optional[Event] = None, send: Any = None,
              throw: Optional[BaseException] = None) -> None:
        """Resume the generator.

        ``trigger`` is an Event on the callback path (``_resume_cb`` is
        this method, bound once — no wrapper frame per resume) and the
        ``_WAKE`` sentinel on the lane-dispatched wakeup path (process
        init or interrupt delivery); internal callers pass explicit
        ``send``/``throw``."""
        if trigger is not None:
            if trigger is _WAKE:
                self._wake_pending = False
                if self._value is not _PENDING:
                    return
                if self._interrupts:
                    self._deliver_interrupt()
                    return
                if self._target is not None or self._started:
                    # Stale wakeup — the interrupt was already delivered
                    # when the original target fired.
                    return
                # Fall through: init kick, gen.send(None).
            else:
                if self._value is not _PENDING:
                    return
                # A queued interrupt wins over the normal resumption.
                if self._interrupts:
                    self._deliver_interrupt()
                    return
                target = self._target
                if trigger is not target and target is not None:
                    return  # stale wakeup (re-targeted by an interrupt)
                self._target = None
                if trigger._ok:
                    send = trigger._value
                else:
                    trigger._used = True
                    throw = trigger._value
        sim = self.sim
        gsend = self._gsend
        self._started = True
        # Inline loop instead of recursion: an already-processed target
        # resumes immediately without re-entering the scheduler.
        while True:
            sim._active = self
            try:
                if throw is not None:
                    target = self._gthrow(throw)
                else:
                    target = gsend(send)
            except StopIteration as stop:
                sim._active = None
                # Inlined Event.succeed (a live process completes exactly
                # once, so the already-triggered guard is unreachable).
                self._value = stop.value
                if self.callbacks:
                    sim._eid = eid = sim._eid + 1
                    sim._lane.append((eid, self, None))
                else:
                    self.callbacks = None
                return
            except BaseException as exc:
                sim._active = None
                if sim.strict:
                    raise
                self.fail(exc)
                return
            sim._active = None
            if isinstance(target, Event):
                if target.sim is not sim:
                    send, throw = None, SimulationError(
                        "yielded event from another simulator")
                    continue
                tcb = target.callbacks
                if tcb is None:
                    # Already processed: resume immediately with its outcome.
                    if target._ok:
                        send, throw = target._value, None
                    else:
                        target._used = True
                        send, throw = None, target._value
                    continue
                self._target = target
                tcb.append(self._resume_cb)
                return
            send, throw = None, SimulationError(
                f"process {self.name!r} yielded non-event {target!r}")


class Condition(Event):
    """Waits for *all* or *any* of a set of events (see AllOf / AnyOf).

    On completion the condition detaches itself from every still-pending
    constituent and drops its ``events`` tuple — without this, a long-lived
    straggler (e.g. the losing timeout of an RPC ``AnyOf``) would pin the
    condition, every sibling event, and their values until it fired, which
    accumulates real garbage across fan-out-heavy 10^8-event campaigns.
    """

    __slots__ = ("events", "_need", "_check_cb")

    def __init__(self, sim: "Simulator", events: Iterable[Event], need_all: bool):
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._used = False
        self._check_cb = None
        evs = tuple(events)
        self.events = evs
        for ev in evs:
            if ev.sim is not sim:
                raise SimulationError("condition spans simulators")
        self._need = len(evs) if need_all else min(1, len(evs))
        if self._need == 0:
            self.succeed({})
            return
        cb = self._check_cb = self._check
        for ev in evs:
            if self._value is not _PENDING:
                break  # triggered mid-construction; don't attach further
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(cb)

    def _detach(self) -> None:
        cb = self._check_cb
        for ev in self.events:
            ecb = ev.callbacks
            if ecb is not None:
                try:
                    ecb.remove(cb)
                except ValueError:
                    pass
        self.events = ()

    def _check(self, ev: Event) -> None:
        if self._value is not _PENDING:
            return
        if not ev._ok:
            ev._used = True
            self._detach()
            self.fail(ev._value)
            return
        self._need -= 1
        if self._need <= 0:
            result = {e: e._value for e in self.events
                      if e._value is not _PENDING and e._ok}
            self._detach()
            self.succeed(result)


def AllOf(sim: "Simulator", events: Iterable[Event]) -> Condition:
    return Condition(sim, events, need_all=True)


def AnyOf(sim: "Simulator", events: Iterable[Event]) -> Condition:
    return Condition(sim, events, need_all=False)


class Simulator:
    """The event loop.

    ``strict`` (default True) makes uncaught exceptions in processes
    propagate out of :meth:`run` immediately — the right default for tests.

    Internally the schedule is split three ways, merged on the global
    ``(time, creation-id)`` order:

    * ``_lane`` — a FIFO of events at the *current* time (plus process
      wakeups), already in creation order;
    * ``_heap`` — a ``(when, eid, event)`` min-heap of future events;
    * ``_staged`` — future events not yet folded into the heap (bulk
      ``heapify`` on bursts; single stragglers can bypass the heap
      entirely when they are the next event anyway).
    """

    __slots__ = ("now", "strict", "_heap", "_staged", "_lane", "_eid",
                 "_active")

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.strict = strict
        self._heap: list = []
        self._staged: list = []
        self._lane: deque = deque()
        self._eid = 0
        self._active: Optional[Process] = None

    # -- scheduling ------------------------------------------------------
    def _queue(self, event: Event) -> None:
        self._eid = eid = self._eid + 1
        self._lane.append((eid, event, None))

    def _queue_at(self, when: float, event: Event) -> None:
        self._eid = eid = self._eid + 1
        if when > self.now:
            self._staged.append((when, eid, event))
        else:
            # Past times are clamped to "now" (nothing schedules into the
            # past; this keeps float round-off harmless).
            self._lane.append((eid, event, None))

    def _merge(self) -> None:
        """Fold staged future events into the heap.

        Bursts (relative to the heap size) are bulk-loaded with one
        O(n + k) ``heapify``; trickles are ``heappush``-ed.
        """
        staged = self._staged
        heap = self._heap
        if len(staged) > 8 and len(staged) * 4 >= len(heap):
            heap.extend(staged)
            heapify(heap)
        else:
            for item in staged:
                heappush(heap, item)
        staged.clear()

    # -- factory helpers -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Duplicates Timeout.__init__ (sans the constructor frame): this is
        # the single most-called factory in the kernel, so one Python frame
        # per call is measurable. Keep in sync with Timeout.__init__.
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        t = Timeout.__new__(Timeout)
        t.sim = self
        t.callbacks = []
        t._ok = True
        t._value = value
        t._used = False
        t.delay = delay
        self._eid = eid = self._eid + 1
        if delay == 0.0:
            self._lane.append((eid, t, None))
        else:
            self._staged.append((self.now + delay, eid, t))
        return t

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> Condition:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> Condition:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------
    def step(self) -> None:
        """Dispatch exactly one scheduled item (event or process wakeup)."""
        lane = self._lane
        heap = self._heap
        if lane:
            # Staged items are strictly in the future, so only the heap can
            # hold a same-time event that predates the lane head (scheduled
            # for this instant before the clock reached it); the
            # creation-id decides, exactly as a single heap would.
            if heap and heap[0][0] <= self.now and heap[0][1] < lane[0][0]:
                when, _, event = heappop(heap)
                self.now = when
            else:
                _, event, proc = lane.popleft()
                if proc is not None:
                    proc._step(_WAKE)
                    return
        else:
            if self._staged:
                self._merge()
            if heap:
                when, _, event = heappop(heap)
                self.now = when
            else:
                raise EmptySchedule()
        callbacks = event.callbacks
        if callbacks is None:  # pragma: no cover - double-queue guard
            return
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._used and self.strict:
            raise event._value

    def _run_core(self, stop: Optional[Event],
                  deadline: Optional[float]) -> None:
        """The inlined hot loop behind every :meth:`run` mode.

        ``stop`` — return once this event is processed (raise
        :class:`SimulationError` if the schedule empties first).
        ``deadline`` — run events with ``when <= deadline``, then set the
        clock to the deadline and return (cheap idle advancement: an empty
        or all-future schedule costs O(1)).
        """
        lane = self._lane
        heap = self._heap
        staged = self._staged
        pop = heappop
        push = heappush
        while True:
            if stop is not None and stop.callbacks is None:
                return
            if lane:
                # Staged items are strictly in the future (they were
                # appended with when > now and the clock has not moved
                # while the lane was busy), so they cannot contend with
                # the lane head — no merge needed on this branch.
                if heap and heap[0][0] <= self.now and heap[0][1] < lane[0][0]:
                    when, _, event = pop(heap)
                    self.now = when
                else:
                    _, event, proc = lane.popleft()
                    if proc is not None:
                        proc._step(_WAKE)
                        continue
            else:
                event = None
                if staged:
                    if len(staged) == 1:
                        item = staged[0]
                        if not heap or item < heap[0]:
                            # Single straggler that fires next anyway:
                            # dispatch it without touching the heap.
                            when = item[0]
                            if deadline is not None and when > deadline:
                                self.now = deadline
                                return
                            staged.clear()
                            self.now = when
                            event = item[2]
                        else:
                            push(heap, item)
                            staged.clear()
                    else:
                        self._merge()
                if event is None:
                    if heap:
                        if deadline is not None and heap[0][0] > deadline:
                            self.now = deadline
                            return
                        when, _, event = pop(heap)
                        self.now = when
                    else:
                        if deadline is not None:
                            self.now = deadline
                            return
                        if stop is not None:
                            raise SimulationError(
                                "simulation ran out of events before the "
                                f"awaited event triggered (t={self.now})"
                            ) from None
                        return
            callbacks = event.callbacks
            if callbacks is None:
                continue
            event.callbacks = None
            if len(callbacks) == 1:   # single waiter: skip iterator setup
                callbacks[0](event)
            else:
                for cb in callbacks:
                    cb(event)
            if not event._ok and not event._used and self.strict:
                raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the heap is empty, a deadline, or an event triggers."""
        if isinstance(until, Event):
            # Wait for the event to be *processed*, not merely triggered
            # (a Timeout is value-bearing from creation but fires later).
            self._run_core(until, None)
            if not until._ok:
                until._used = True
                raise until._value
            return until._value
        if until is None:
            self._run_core(None, None)
            return None
        deadline = float(until)
        if deadline < self.now:
            raise ValueError("deadline in the past")
        self._run_core(None, deadline)
        return None

    def peek(self) -> float:
        """Time of the next event, or +inf if none."""
        if self._lane:
            return self.now
        if self._staged:
            self._merge()
        return self._heap[0][0] if self._heap else float("inf")
