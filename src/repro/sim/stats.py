"""Measurement helpers: op counters, throughput windows, latency summaries."""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


class Counter:
    """Per-key event counter (ops completed, RPCs sent, ...)."""

    def __init__(self):
        self._counts: Dict[str, int] = defaultdict(int)

    def inc(self, key: str, n: int = 1) -> None:
        self._counts[key] += n

    def get(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


@dataclass
class LatencySummary:
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"n={self.count} mean={self.mean * 1e3:.3f}ms "
                f"p50={self.p50 * 1e3:.3f}ms p99={self.p99 * 1e3:.3f}ms")


def percentile(sorted_xs: Sequence[float], p: float) -> float:
    """Percentile with linear interpolation between closest ranks.

    ``p`` in [0, 1]; ``sorted_xs`` must be non-empty and ascending. On a
    small sample this lands between observations instead of truncating to
    the nearest lower index (the old behaviour made p50 of [1, 2] report 1
    and p99 collapse onto the max for n < 100).
    """
    n = len(sorted_xs)
    if n == 1:
        return sorted_xs[0]
    rank = p * (n - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, n - 1)
    frac = rank - lo
    return sorted_xs[lo] + (sorted_xs[hi] - sorted_xs[lo]) * frac


@dataclass
class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` holds samples in
    ``(edges[i-1], edges[i]]`` (the first bucket is ``[0, edges[0]]``),
    with one overflow bucket past the last edge."""

    edges: List[float]
    counts: List[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def as_dict(self) -> Dict[str, List[float]]:
        return {"edges": list(self.edges), "counts": list(self.counts)}

    def render(self, width: int = 40) -> str:
        peak = max(self.counts) if self.counts else 0
        lines = []
        labels = [f"<= {e * 1e3:9.3f}ms" for e in self.edges] + ["overflow   "]
        for label, count in zip(labels, self.counts):
            bar = "#" * (round(width * count / peak) if peak else 0)
            lines.append(f"{label} {count:7d} {bar}")
        return "\n".join(lines)


def default_latency_edges() -> List[float]:
    """Log-spaced bucket edges from 1 us to 10 s (half-decade steps)."""
    return [1e-6 * 10 ** (i / 2) for i in range(15)]


class LatencyRecorder:
    """Records per-op latencies keyed by op name; summarizes on demand."""

    def __init__(self):
        self._samples: Dict[str, List[float]] = defaultdict(list)

    def record(self, key: str, latency: float) -> None:
        self._samples[key].append(latency)

    def keys(self) -> List[str]:
        return sorted(self._samples)

    def samples(self, key: str) -> List[float]:
        return list(self._samples.get(key, ()))

    def count(self, key: str) -> int:
        return len(self._samples.get(key, ()))

    def summary(self, key: str) -> Optional[LatencySummary]:
        xs = self._samples.get(key)
        if not xs:
            return None
        xs = sorted(xs)
        n = len(xs)
        return LatencySummary(n, sum(xs) / n, percentile(xs, 0.50),
                              percentile(xs, 0.95), percentile(xs, 0.99),
                              xs[-1])

    def histogram(self, key: str,
                  edges: Optional[Sequence[float]] = None
                  ) -> Optional[Histogram]:
        """Bucketed export of one key's samples (for the trace bus)."""
        if key not in self._samples:
            return None
        edges = list(edges) if edges is not None else default_latency_edges()
        counts = [0] * (len(edges) + 1)
        for x in self._samples.get(key, ()):
            for i, edge in enumerate(edges):
                if x <= edge:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
        return Histogram(edges, counts)


@dataclass
class ThroughputWindow:
    """Completed-op timestamps within [start, end); throughput in ops/s."""

    start: float = 0.0
    end: float = 0.0
    count: int = 0

    def throughput(self) -> float:
        dur = self.end - self.start
        return self.count / dur if dur > 0 else 0.0


class OpLog:
    """Completion log used by the benchmark driver.

    Records ``(finish_time, op_name)`` pairs; the driver computes phase
    throughput as total completions / (last finish - phase start), matching
    how mdtest reports per-phase rates.
    """

    def __init__(self):
        self.finishes: List[float] = []
        self.by_op: Dict[str, int] = defaultdict(int)

    def record(self, op: str, finish: float) -> None:
        self.finishes.append(finish)
        self.by_op[op] += 1

    @property
    def count(self) -> int:
        return len(self.finishes)

    def window(self, start: float) -> ThroughputWindow:
        if not self.finishes:
            return ThroughputWindow(start, start, 0)
        return ThroughputWindow(start, max(self.finishes), len(self.finishes))
