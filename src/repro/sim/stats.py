"""Measurement helpers: op counters, throughput windows, latency summaries."""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Counter:
    """Per-key event counter (ops completed, RPCs sent, ...)."""

    def __init__(self):
        self._counts: Dict[str, int] = defaultdict(int)

    def inc(self, key: str, n: int = 1) -> None:
        self._counts[key] += n

    def get(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


@dataclass
class LatencySummary:
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"n={self.count} mean={self.mean * 1e3:.3f}ms "
                f"p50={self.p50 * 1e3:.3f}ms p99={self.p99 * 1e3:.3f}ms")


class LatencyRecorder:
    """Records per-op latencies keyed by op name; summarizes on demand."""

    def __init__(self):
        self._samples: Dict[str, List[float]] = defaultdict(list)

    def record(self, key: str, latency: float) -> None:
        self._samples[key].append(latency)

    def keys(self) -> List[str]:
        return sorted(self._samples)

    def summary(self, key: str) -> Optional[LatencySummary]:
        xs = self._samples.get(key)
        if not xs:
            return None
        xs = sorted(xs)
        n = len(xs)

        def pct(p: float) -> float:
            return xs[min(n - 1, max(0, math.ceil(p * n) - 1))]

        return LatencySummary(n, sum(xs) / n, pct(0.50), pct(0.95), pct(0.99), xs[-1])


@dataclass
class ThroughputWindow:
    """Completed-op timestamps within [start, end); throughput in ops/s."""

    start: float = 0.0
    end: float = 0.0
    count: int = 0

    def throughput(self) -> float:
        dur = self.end - self.start
        return self.count / dur if dur > 0 else 0.0


class OpLog:
    """Completion log used by the benchmark driver.

    Records ``(finish_time, op_name)`` pairs; the driver computes phase
    throughput as total completions / (last finish - phase start), matching
    how mdtest reports per-phase rates.
    """

    def __init__(self):
        self.finishes: List[float] = []
        self.by_op: Dict[str, int] = defaultdict(int)

    def record(self, op: str, finish: float) -> None:
        self.finishes.append(finish)
        self.by_op[op] += 1

    @property
    def count(self) -> int:
        return len(self.finishes)

    def window(self, start: float) -> ThroughputWindow:
        if not self.finishes:
            return ThroughputWindow(start, start, 0)
        return ThroughputWindow(start, max(self.finishes), len(self.finishes))
