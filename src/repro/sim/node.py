"""Cluster and node abstractions.

A :class:`Cluster` owns the simulator, the network fabric, and the named
random streams. A :class:`Node` models one machine of the paper's testbed:
a fixed number of CPU cores (a shared :class:`Resource` — co-located
services like the ZooKeeper server and DUFS client processes genuinely
compete for them), one disk, and a registry of running processes so the
failure injector can crash and recover the whole machine.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from .core import _PENDING, Process, Simulator
from .network import Network
from .random import RandomStreams
from .resources import Resource


class Cluster:
    """Top-level container for one simulated experiment."""

    __slots__ = ("sim", "streams", "network", "nodes")

    def __init__(
        self,
        seed: int = 0,
        latency: Optional[float] = None,
        bandwidth: Optional[float] = None,
        strict: bool = True,
    ):
        self.sim = Simulator(strict=strict)
        self.streams = RandomStreams(seed)
        kwargs = {}
        if latency is not None:
            kwargs["latency"] = latency
        if bandwidth is not None:
            kwargs["bandwidth"] = bandwidth
        self.network = Network(self.sim, streams=self.streams, **kwargs)
        self.nodes: Dict[str, "Node"] = {}

    def add_node(self, name: str, cores: int = 8, disk_concurrency: int = 1) -> "Node":
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        node = Node(self, name, cores=cores, disk_concurrency=disk_concurrency)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> "Node":
        return self.nodes[name]

    def run(self, until=None):
        return self.sim.run(until)


class Node:
    """One machine: CPU cores, a disk, and crashable processes."""

    __slots__ = ("cluster", "sim", "network", "name", "cores",
                 "disk_concurrency", "cpu", "disk", "disk_factor", "down",
                 "_procs", "_procs_cap", "_on_crash", "_on_recover",
                 "_endpoints")

    def __init__(self, cluster: Cluster, name: str, cores: int = 8,
                 disk_concurrency: int = 1):
        self.cluster = cluster
        self.sim = cluster.sim
        self.network = cluster.network
        self.name = name
        self.cores = cores
        self.disk_concurrency = disk_concurrency
        self.cpu = Resource(self.sim, cores)
        self.disk = Resource(self.sim, disk_concurrency)
        # Chaos hook: >1 stretches every disk_io (a degraded/contended disk).
        self.disk_factor = 1.0
        self.down = False
        self._procs: list[Process] = []
        self._procs_cap = 256          # GC sweep threshold (doubles with load)
        self._on_crash: list[Callable[[], None]] = []
        self._on_recover: list[Callable[[], None]] = []
        self._endpoints: list[str] = []

    # -- process management ----------------------------------------------
    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a process whose lifetime is bound to this node."""
        proc = Process(self.sim, gen, name or f"{self.name}.proc")
        procs = self._procs
        procs.append(proc)
        if len(procs) >= self._procs_cap:
            # Garbage-collect finished handlers. The threshold doubles
            # with the live count so a busy server (thousands of
            # short-lived RPC handlers) sweeps amortized O(1) per spawn
            # instead of rescanning a near-full list every few spawns.
            self._procs = procs = [p for p in procs if p._value is _PENDING]
            self._procs_cap = max(256, 2 * len(procs))
        return proc

    def register_endpoint(self, endpoint: str) -> None:
        self._endpoints.append(endpoint)

    def on_crash(self, cb: Callable[[], None]) -> None:
        self._on_crash.append(cb)

    def on_recover(self, cb: Callable[[], None]) -> None:
        self._on_recover.append(cb)

    # -- resource helpers --------------------------------------------------
    def cpu_work(self, seconds: float) -> Generator:
        """Occupy one core for ``seconds`` of service time."""
        req = self.cpu.request()
        try:
            yield req
            yield self.sim.timeout(seconds)
        finally:
            self.cpu.release(req)

    def disk_io(self, seconds: float) -> Generator:
        """Serialize on the disk for ``seconds`` (sync transaction model)."""
        req = self.disk.request()
        try:
            yield req
            yield self.sim.timeout(seconds * self.disk_factor)
        finally:
            self.disk.release(req)

    # -- failure injection -------------------------------------------------
    def crash(self) -> None:
        """Kill every process on the node and drop its in-flight traffic."""
        if self.down:
            return
        self.down = True
        for ep in self._endpoints:
            self.network.set_down(ep, True)
        for proc in self._procs:
            proc.interrupt("node-crash")
        self._procs.clear()
        # Anything held on CPU/disk dies with the processes.
        self.cpu = Resource(self.sim, self.cores)
        self.disk = Resource(self.sim, self.disk_concurrency)
        for cb in self._on_crash:
            cb()

    def recover(self) -> None:
        if not self.down:
            return
        self.down = False
        for ep in self._endpoints:
            self.network.set_down(ep, False)
        for cb in self._on_recover:
            cb()

    def __repr__(self) -> str:  # pragma: no cover
        state = "down" if self.down else "up"
        return f"<Node {self.name} cores={self.cores} {state}>"
