"""Shared-resource primitives for the simulation kernel.

``Resource`` models a server with fixed concurrency (e.g. the 8 cores of a
metadata server); ``PriorityResource`` adds request priorities (used by the
Lustre DLM so lock revocations overtake ordinary requests); ``Store`` is an
unbounded producer/consumer queue (used for node inboxes).

Usage mirrors SimPy::

    with resource.request() as req:
        yield req
        yield sim.timeout(service_time)
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any

from .core import _PENDING, Event, Simulator


class Request(Event):
    """Pending claim on a :class:`Resource`; fires when capacity is granted."""

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int = 0):
        # Inlined Event.__init__ (one Request per simulated op — hot).
        self.sim = resource.sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._used = False
        self.resource = resource
        self.priority = priority
        self._order = 0

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """FIFO resource with integer capacity."""

    __slots__ = ("sim", "capacity", "users", "queue")

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of granted requests currently holding the resource."""
        return len(self.users)

    def request(self) -> Request:
        req = Request(self)
        users = self.users
        if len(users) < self.capacity:
            users.append(req)
            # Inlined succeed: a fresh request has no waiters yet, so the
            # no-waiter fast path (mark processed, skip the queue) always
            # applies; the process resumes inline when it yields the req.
            req._value = None
            req.callbacks = None
        else:
            self.queue.append(req)
        return req

    def release(self, req: Request) -> None:
        """Release a granted request, or cancel a queued one. Idempotent."""
        try:
            self.users.remove(req)
        except ValueError:
            # Not granted (queued or already released): cancel if queued.
            try:
                self.queue.remove(req)
            except ValueError:
                pass
            return
        self._grant_next()

    def _grant_next(self) -> None:
        queue = self.queue
        users = self.users
        capacity = self.capacity
        while queue and len(users) < capacity:
            nxt = queue.popleft()
            if nxt._value is not _PENDING:  # cancelled
                continue
            users.append(nxt)
            # Inlined Event.succeed (grant cascades run one per release
            # at the same instant — the kernel bench's `resource` shape).
            nxt._value = None
            if nxt.callbacks:
                sim = nxt.sim
                sim._eid = eid = sim._eid + 1
                sim._lane.append((eid, nxt, None))
            else:
                nxt.callbacks = None


class PriorityResource(Resource):
    """Resource whose queue is ordered by (priority, arrival). Lower wins."""

    __slots__ = ("_pq", "_seq")

    def __init__(self, sim: Simulator, capacity: int = 1):
        super().__init__(sim, capacity)
        self._pq: list = []
        self._seq = 0

    def request(self, priority: int = 0) -> Request:  # type: ignore[override]
        req = Request(self, priority)
        if len(self.users) < self.capacity and not self._pq:
            self.users.append(req)
            req.succeed()
        else:
            self._seq += 1
            req._order = self._seq
            heapq.heappush(self._pq, (priority, self._seq, req))
        return req

    def release(self, req: Request) -> None:  # type: ignore[override]
        try:
            self.users.remove(req)
        except ValueError:
            # Queued requests are lazily discarded on pop; mark by failing
            # nothing — just let triggered-check skip. We trigger it here so
            # the pop loop can identify it as cancelled.
            if not req.triggered:
                req._ok = True
                req._value = None  # cancelled sentinel: triggered, not queued
            return
        self._grant_next()

    def _grant_next(self) -> None:
        while self._pq and len(self.users) < self.capacity:
            _, _, nxt = heapq.heappop(self._pq)
            if nxt.triggered:
                continue
            self.users.append(nxt)
            nxt.succeed()


class Store:
    """Unbounded FIFO of items with blocking ``get``."""

    __slots__ = ("sim", "items", "_getters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        # Inlined Event.succeed: one put per delivered network message
        # makes this a kernel hot path (see the kernel bench).
        while self._getters:
            getter = self._getters.popleft()
            if getter._value is not _PENDING:
                continue
            getter._ok = True
            getter._value = item
            sim = self.sim
            sim._eid = eid = sim._eid + 1
            sim._lane.append((eid, getter, None))
            return
        self.items.append(item)

    def get(self) -> Event:
        # Inlined Event.__init__ (+ succeed on the items-ready branch).
        ev = Event.__new__(Event)
        ev.sim = self.sim
        ev.callbacks = []
        ev._ok = True
        ev._used = False
        if self.items:
            ev._value = self.items.popleft()
            sim = self.sim
            sim._eid = eid = sim._eid + 1
            sim._lane.append((eid, ev, None))
        else:
            ev._value = _PENDING
            self._getters.append(ev)
        return ev

    def cancel(self, get_event: Event) -> None:
        """Withdraw a pending get (used when a node crashes)."""
        if not get_event.triggered:
            get_event._ok = True
            get_event._value = None

    def drain_getters(self) -> None:
        """Cancel every pending get — crashed consumers must not steal
        items destined for their restarted replacements."""
        for getter in self._getters:
            self.cancel(getter)
        self._getters.clear()

    def __len__(self) -> int:
        return len(self.items)
