"""Reproduction of *"Can a Decentralized Metadata Service Layer benefit
Parallel Filesystems?"* (Meshram et al., IEEE CLUSTER 2011).

The package implements **DUFS** -- a union filesystem layer that merges
multiple parallel-filesystem mounts behind a single POSIX namespace whose
metadata lives in a ZooKeeper-style coordination service -- together with
every substrate the paper's evaluation depends on, all running on a
deterministic discrete-event simulated cluster:

- :mod:`repro.sim` -- the discrete-event kernel (events, processes, CPU /
  disk / network resources, RPC, failure injection).
- :mod:`repro.zk` -- a from-scratch ZooKeeper: znode tree, ZAB atomic
  broadcast, leader election, sessions, watches, multi-op transactions.
- :mod:`repro.pfs` -- Lustre-like (single MDS + DLM + OSS) and PVFS2-like
  (handle-partitioned servers) parallel filesystems, plus a local FS.
- :mod:`repro.fuse` -- the userspace-filesystem dispatch layer.
- :mod:`repro.core` -- DUFS itself: FIDs, the deterministic MD5-based
  mapping function, ZooKeeper-backed metadata, and the client operations.
- :mod:`repro.workloads` -- the mdtest-style metadata benchmark.
- :mod:`repro.bench` -- harnesses regenerating every figure of the paper.

Quickstart::

    from repro.core import build_dufs_deployment
    dep = build_dufs_deployment(n_zk=3, n_backends=2, n_client_nodes=2)
    client = dep.clients[0]
    dep.call(client.mkdir, "/exp")
    dep.call(client.create, "/exp/data.bin")
    print(dep.call(client.stat, "/exp/data.bin"))
"""

from ._version import __version__

__all__ = ["__version__"]
