"""Hash functions used by DUFS's deterministic mapping.

- :mod:`repro.hashing.md5` — a from-scratch RFC 1321 MD5 (the paper's
  mapping function is ``MD5(fid) mod N``).
- :mod:`repro.hashing.consistent` — a consistent-hash ring, implementing
  the paper's stated future work (bounded relocation when back-end storages
  are added or removed).
"""

from .consistent import ConsistentHashRing
from .md5 import md5_bytes, md5_hex, md5_int

__all__ = ["ConsistentHashRing", "md5_bytes", "md5_hex", "md5_int"]
