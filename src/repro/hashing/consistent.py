"""Consistent hashing ring (Karger et al., STOC '97).

The paper's conclusion names this as future work: replacing the
``MD5(fid) mod N`` mapping with consistent hashing so back-end storages can
be added or removed while keeping the number of relocated files bounded by
~K/N. :class:`ConsistentHashRing` is a drop-in alternative mapping for
:mod:`repro.core.mapping`, and the relocation bound is verified by property
tests and the ablation benchmark.
"""

from __future__ import annotations

import bisect
from typing import Hashable, Iterable, List, Tuple

from .md5 import md5_int


def _point(key: str) -> int:
    return md5_int(key.encode())


class ConsistentHashRing:
    """Maps keys to members with bounded reshuffling on membership change.

    ``replicas`` virtual points per member smooth the load distribution
    (classic trade-off: more points, better balance, bigger ring).
    """

    def __init__(self, members: Iterable[Hashable] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[int] = []
        self._owners: List[Hashable] = []
        self._members: set = set()
        for m in members:
            self.add(m)

    def __len__(self) -> int:
        return len(self._members)

    @property
    def members(self) -> set:
        return set(self._members)

    def add(self, member: Hashable) -> None:
        if member in self._members:
            raise ValueError(f"member {member!r} already on ring")
        self._members.add(member)
        for r in range(self.replicas):
            point = _point(f"{member!r}#{r}")
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, member)

    def remove(self, member: Hashable) -> None:
        if member not in self._members:
            raise KeyError(member)
        self._members.discard(member)
        keep: List[Tuple[int, Hashable]] = [
            (p, o) for p, o in zip(self._points, self._owners) if o != member
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def lookup(self, key: bytes | str) -> Hashable:
        """Member owning ``key`` (first point clockwise from its hash)."""
        if not self._points:
            raise LookupError("ring is empty")
        data = key if isinstance(key, bytes) else key.encode()
        h = md5_int(data)
        idx = bisect.bisect(self._points, h)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]
