"""RFC 1321 MD5, implemented from scratch.

The paper's deterministic mapping function is ``fid -> MD5(fid) mod N``
(section IV-F), chosen because MD5 distributes FIDs fairly across the
back-end storages. This module provides the digest used by
:mod:`repro.core.mapping`; its correctness is property-tested against
:mod:`hashlib` and the RFC 1321 appendix vectors.

Note MD5 is used purely for load balancing here (as in the paper), not for
security.
"""

from __future__ import annotations

import struct

# Per-round left-rotate amounts (RFC 1321, section 3.4).
_SHIFTS = (
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
)

# Binary integer parts of abs(sin(i+1)) * 2^32 (the T table).
_SINES = tuple(
    int(abs(__import__("math").sin(i + 1)) * 4294967296) & 0xFFFFFFFF
    for i in range(64)
)

_MASK = 0xFFFFFFFF


def _rotl(x: int, c: int) -> int:
    return ((x << c) | (x >> (32 - c))) & _MASK


def _compress(state: tuple[int, int, int, int], block: bytes) -> tuple[int, int, int, int]:
    a0, b0, c0, d0 = state
    m = struct.unpack("<16I", block)
    a, b, c, d = a0, b0, c0, d0
    for i in range(64):
        if i < 16:
            f = (b & c) | (~b & d)
            g = i
        elif i < 32:
            f = (d & b) | (~d & c)
            g = (5 * i + 1) % 16
        elif i < 48:
            f = b ^ c ^ d
            g = (3 * i + 5) % 16
        else:
            f = c ^ (b | ~d)
            g = (7 * i) % 16
        f = (f + a + _SINES[i] + m[g]) & _MASK
        a, d, c = d, c, b
        b = (b + _rotl(f, _SHIFTS[i])) & _MASK
    return (
        (a0 + a) & _MASK,
        (b0 + b) & _MASK,
        (c0 + c) & _MASK,
        (d0 + d) & _MASK,
    )


def md5_bytes(data: bytes) -> bytes:
    """16-byte MD5 digest of ``data``."""
    state = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)
    length = len(data)
    # Padding: 0x80, zeros, then the bit length as a little-endian u64.
    padded = data + b"\x80" + b"\x00" * ((55 - length) % 64)
    padded += struct.pack("<Q", (length * 8) & 0xFFFFFFFFFFFFFFFF)
    for off in range(0, len(padded), 64):
        state = _compress(state, padded[off:off + 64])
    return struct.pack("<4I", *state)


def md5_hex(data: bytes) -> str:
    return md5_bytes(data).hex()


def md5_int(data: bytes) -> int:
    """Digest interpreted as a big-endian 128-bit integer (for ``mod N``)."""
    return int.from_bytes(md5_bytes(data), "big")
