"""The ``repro trace`` subcommand: one traced mdtest run, full op metrics.

Builds a DUFS deployment with the unified trace bus enabled, drives a
small mdtest workload through it, and prints per-endpoint queue-wait /
service-time / retry metrics for every layer — DUFS client entry points,
the ZK client retry path, and every server endpoint (ZooKeeper and the
back-end filesystems). ``--batch N`` turns on ZooKeeper leader-side write
batching (``ZKParams.propose_batch_max``) so the group-commit win is
directly visible in the create-phase throughput. ``--cache`` enables the
client metadata cache, whose hit/miss/invalidation counters then appear
as ``mdcache/*`` rows in the same table.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..core.fs import build_dufs_deployment
from ..core.mdcache import aggregate_counters
from ..models.params import CacheParams, SimParams
from ..workloads.mdtest import MdtestConfig, run_mdtest

_SCALES = {
    # scale -> (n_zk, n_backends, n_client_nodes, n_procs, items_per_proc)
    "quick": (3, 2, 4, 8, 20),
    "medium": (8, 2, 8, 32, 40),
    "full": (8, 4, 8, 64, 100),
}


def run_trace(scale: str = "quick", backend: str = "local",
              batch: int = 1, seed: int = 0,
              phases: Optional[tuple] = None,
              cache: bool = False) -> str:
    """Run one traced mdtest and return the formatted report."""
    n_zk, n_backends, n_clients, n_procs, items = _SCALES[scale]
    params = SimParams()
    if batch > 1:
        params = params.with_overrides(
            zk=replace(params.zk, propose_batch_max=batch))
    dep = build_dufs_deployment(n_zk=n_zk, n_backends=n_backends,
                                n_client_nodes=n_clients, backend=backend,
                                params=params, seed=seed, trace=True,
                                cache=CacheParams.caching_on() if cache
                                else None)
    cfg = MdtestConfig(n_procs=n_procs, items_per_proc=items,
                       phases=phases or ("dir_create", "dir_stat",
                                         "dir_remove"))
    result = run_mdtest(dep.cluster, dep.mount_for, dep.node_for, cfg)

    lines = [f"traced mdtest: backend={backend} scale={scale} "
             f"zk={n_zk} procs={n_procs} items/proc={items} "
             f"propose_batch_max={max(1, batch)}"
             f"{' cache=on' if cache else ''}", ""]
    for name, phase in result.phases.items():
        lines.append(f"  {name:<12s} {phase.throughput:10.1f} ops/s")
    lines += ["", dep.bus.table()]
    if cache:
        counters = aggregate_counters([c.mdcache for c in dep.clients])
        pairs = " ".join(f"{k}={v}" for k, v in counters.items() if v)
        lines += ["", f"mdcache counters: {pairs or '(no activity)'}"]
    return "\n".join(lines)
