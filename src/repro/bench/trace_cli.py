"""The ``repro trace`` subcommand: one traced mdtest run, full op metrics.

Builds a DUFS deployment with the unified trace bus enabled, drives a
small mdtest workload through it, and prints per-endpoint queue-wait /
service-time / retry metrics for every layer — DUFS client entry points,
the ZK client retry path, and every server endpoint (ZooKeeper and the
back-end filesystems). ``--batch N`` turns on ZooKeeper leader-side write
batching (``ZKParams.propose_batch_max``) so the group-commit win is
directly visible in the create-phase throughput. ``--cache`` enables the
client metadata cache, whose hit/miss/invalidation counters then appear
as ``mdcache/*`` rows in the same table.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Dict, List, Optional

from ..core.fs import build_dufs_deployment
from ..core.mdcache import aggregate_counters
from ..models.params import CacheParams, SimParams
from ..svc import TraceBus
from ..workloads.mdtest import MdtestConfig, run_mdtest

_SCALES = {
    # scale -> (n_zk, n_backends, n_client_nodes, n_procs, items_per_proc)
    "quick": (3, 2, 4, 8, 20),
    "medium": (8, 2, 8, 32, 40),
    "full": (8, 4, 8, 64, 100),
}


def trace_rows(bus: TraceBus) -> List[Dict]:
    """The trace table as machine-readable rows: one dict per
    deployment/endpoint.method key, metrics plus the serving shard."""
    rows = []
    for key, metrics in bus.as_dict().items():
        deployment, rest = key.split("/", 1)
        endpoint, method = rest.rsplit(".", 1)
        rows.append({"deployment": deployment, "endpoint": endpoint,
                     "method": method, **metrics})
    return rows


def run_trace(scale: str = "quick", backend: str = "local",
              batch: int = 1, seed: int = 0,
              phases: Optional[tuple] = None,
              cache: bool = False, shards: int = 1,
              json_path: Optional[str] = None) -> str:
    """Run one traced mdtest and return the formatted report.

    ``json_path`` additionally exports the per-endpoint/per-shard rows
    (:func:`trace_rows`) plus the phase throughputs as JSON for tooling —
    ``"-"`` returns the JSON document *instead of* the table.
    """
    n_zk, n_backends, n_clients, n_procs, items = _SCALES[scale]
    params = SimParams()
    if batch > 1:
        params = params.with_overrides(
            zk=replace(params.zk, propose_batch_max=batch))
    dep = build_dufs_deployment(n_zk=n_zk, n_backends=n_backends,
                                n_client_nodes=n_clients, backend=backend,
                                params=params, seed=seed, trace=True,
                                cache=CacheParams.caching_on() if cache
                                else None, n_shards=shards)
    # Windowed per-shard op rates — the same aggregation the elastic
    # autoscaler decides on, here covering the whole run so the export
    # shows each shard's share of the load.
    shard_window = 60.0
    dep.bus.enable_shard_window(shard_window)
    cfg = MdtestConfig(n_procs=n_procs, items_per_proc=items,
                       phases=phases or ("dir_create", "dir_stat",
                                         "dir_remove"))
    result = run_mdtest(dep.cluster, dep.mount_for, dep.node_for, cfg)

    elapsed = dep.cluster.sim.now
    shard_rates = dep.bus.shard_window_rates(now=elapsed, deployment="zk",
                                             window=elapsed)
    doc = {
        "benchmark": "trace",
        "scale": scale, "backend": backend, "seed": seed,
        "n_zk": n_zk, "n_shards": shards,
        "batch": max(1, batch), "cache": cache,
        "phases": {name: {"ops": r.ops, "duration": r.duration,
                          "ops_per_s": r.throughput}
                   for name, r in result.phases.items()},
        "shard_rates": {str(k): v for k, v in sorted(shard_rates.items())},
        "shard_rate_window": min(shard_window, elapsed),
        "rows": trace_rows(dep.bus),
    }
    if json_path == "-":
        return json.dumps(doc, indent=2, sort_keys=True)

    lines = [f"traced mdtest: backend={backend} scale={scale} "
             f"zk={n_zk} procs={n_procs} items/proc={items} "
             f"propose_batch_max={max(1, batch)}"
             f"{' cache=on' if cache else ''}"
             f"{f' shards={shards}' if shards > 1 else ''}", ""]
    for name, phase in result.phases.items():
        lines.append(f"  {name:<12s} {phase.throughput:10.1f} ops/s")
    if shards > 1 and shard_rates:
        shares = "  ".join(f"s{k}={v:,.0f}"
                           for k, v in sorted(shard_rates.items()))
        lines += ["", f"  per-shard ZK op rate (ops/s): {shares}"]
    lines += ["", dep.bus.table()]
    if cache:
        counters = aggregate_counters([c.mdcache for c in dep.clients])
        pairs = " ".join(f"{k}={v}" for k, v in counters.items() if v)
        lines += ["", f"mdcache counters: {pairs or '(no activity)'}"]
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        lines += ["", f"[json] {json_path}"]
    return "\n".join(lines)
