"""Published reference values.

Two kinds of ground truth, kept separate on purpose:

- ``TEXT_CLAIMS`` — ratios and constants stated *in the paper's prose*
  (authoritative): dir-create speedups at 256 procs (1.9× over Lustre,
  23× over PVFS2), file-stat speedups (1.3× / 3.0×), the ≥37% file-stat
  gain from 4 vs 2 back-ends, and 417 MB per million znodes.
- ``PAPER_CURVES`` — values digitized *approximately* from the figures
  (the paper provides no tables); treat them as ±20% anchors for curve
  shapes, not exact targets.
"""

from __future__ import annotations

TEXT_CLAIMS = {
    # (figure, metric): value stated in the text
    "dir_create_speedup_vs_lustre_256": 1.9,     # §V-D
    "dir_create_speedup_vs_pvfs_256": 23.0,      # §V-D
    "file_stat_speedup_vs_lustre_256": 1.3,      # §V-D / abstract
    "file_stat_speedup_vs_pvfs_256": 3.0,        # §V-D / abstract
    "file_stat_gain_4_vs_2_backends_256": 0.37,  # §V-C ("more than 37%")
    "zk_mb_per_million_znodes": 417.0,           # §V-E
}

# Approximate (ops/s) read off the plots; keys are series names used by the
# figure runners. x = number of client processes.
PAPER_CURVES = {
    "fig7": {
        # ZooKeeper raw throughput at 256 procs (panel maxima / minima)
        ("zoo_create", 1): 15000,
        ("zoo_create", 8): 6500,
        ("zoo_get", 1): 21000,
        ("zoo_get", 8): 165000,
        ("zoo_set", 1): 8500,
        ("zoo_set", 8): 5500,
        ("zoo_delete", 1): 8500,
        ("zoo_delete", 8): 5500,
    },
    "fig10_256procs": {
        # system -> op -> approx ops/s at 256 client processes
        "lustre": {"dir_create": 2600, "dir_remove": 3300, "dir_stat": 33000,
                   "file_create": 5000, "file_remove": 3800,
                   "file_stat": 30000},
        "dufs-lustre": {"dir_create": 4900, "dir_remove": 5500,
                        "dir_stat": 88000, "file_create": 5500,
                        "file_remove": 5500, "file_stat": 40000},
        "pvfs": {"dir_create": 215, "dir_remove": 230, "dir_stat": 17000,
                 "file_create": 250, "file_remove": 250, "file_stat": 13500},
        "dufs-pvfs": {"dir_create": 4900, "dir_remove": 5500,
                      "dir_stat": 88000, "file_create": 300,
                      "file_remove": 330, "file_stat": 17000},
    },
    "fig11": {
        # millions of directories -> ZooKeeper MB (linear, ~417 MB/M)
        "zookeeper_mb_per_million": 417.0,
        "dufs_mb_flat": 37.0,
        "dummy_fuse_mb_flat": 26.0,
    },
}
