"""The ``repro shardmap`` subcommand: inspect the elastic metadata plane.

Runs a short, deliberately skewed workload on an elastic DUFS deployment
(two bursts whose hot directories collide onto one shard each, so the
autoscaler has something to do) and dumps the control-plane state the
operator of a real deployment would ask for:

- the **current shard map** — epoch, placement strategy, subtree pins;
- the **epoch history** — every installed map with its reason
  (``split /hot -> s2``, ``merge /hot``), i.e. the audit trail of how
  routing got here;
- the **per-shard load** — the TraceBus's windowed op rates, the same
  signal the autoscaler decides on;
- **migrations** — in-flight records (root, src/dst shard, state) and
  the completed tally, plus the autoscaler's full decision journal.

``--json`` exports the same document machine-readably (``-`` to stdout).
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..core.fs import build_dufs_deployment
from ..models.params import ElasticParams, SimParams
from ..workloads.driver import run_phase
from .elastic_bench import colliding_dirs

_SCALES = {
    # scale -> (n_client_nodes, n_procs, dirs_per_burst, items)
    "quick": (4, 16, 4, 40),
    "medium": (8, 32, 6, 60),
    "full": (8, 64, 8, 80),
}


def run_shardmap_demo(scale: str = "quick", seed: int = 0) -> Dict:
    """Drive the skewed two-burst workload and return the state document."""
    n_clients, n_procs, dirs_per_burst, items = _SCALES[scale]
    elastic = ElasticParams.elastic_on(
        interval=0.05, window=0.15, hysteresis=2, cooldown=0.2,
        max_pins=8, min_window_ops=24, merge_min_ops=4,
        moves_per_tick=8, drain=0.0)
    dep = build_dufs_deployment(
        n_zk=8, n_backends=2, n_client_nodes=n_clients, backend="local",
        params=SimParams(), seed=seed, n_shards=4, autoscale=elastic)
    sim = dep.cluster.sim
    nodes = [dep.node_for(p) for p in range(n_procs)]
    bursts = {"A": colliding_dirs(0, dirs_per_burst, "a"),
              "B": colliding_dirs(1, dirs_per_burst, "b")}

    def scaffold():
        m = dep.mount_for(0)
        for d in bursts["A"] + bursts["B"]:
            yield from m.mkdir(d)
    run_phase(sim, "scaffold", [nodes[0]], [scaffold()], 0)

    def worker(period: str, p: int):
        m = dep.mount_for(p)
        dirs = bursts[period]
        for i in range(items):
            d = dirs[(p + i) % len(dirs)]
            yield from m.create(f"{d}/f.{p}.{i}")
            yield from m.stat(f"{d}/f.{p}.{i}")
    for period in ("A", "B"):
        sim.run(until=sim.now + 0.05)
        run_phase(sim, f"burst-{period}", nodes,
                  [worker(period, p) for p in range(n_procs)], items)

    registry = dep.registry
    cur = registry.current
    rates = dep.bus.shard_window_rates(now=sim.now, deployment="zk") \
        if dep.bus is not None else {}
    return {
        "benchmark": "shardmap",
        "scale": scale,
        "seed": seed,
        "map": {
            "epoch": cur.epoch,
            "strategy": cur.strategy,
            "n_shards": cur.n_shards,
            "pins": dict(cur.subtrees),
        },
        "history": [
            {"epoch": epoch, "reason": reason,
             "pins": dict(shard_map.subtrees)}
            for epoch, shard_map, reason in registry.history],
        "shard_load": {str(k): rates.get(k, 0.0)
                       for k in range(cur.n_shards)},
        "migrations": {
            "in_flight": [
                {"root": m.root, "src": m.src, "dst": m.dst,
                 "state": m.state, "merge": m.merge}
                for m in registry.migrations],
            "completed": len(registry.completed),
            "stats": dict(dep.migrator.stats),
        },
        "autoscaler": dep.autoscaler.report(),
    }


def render_shardmap(doc: Dict) -> str:
    m = doc["map"]
    pins = ", ".join(f"{root} -> s{shard}"
                     for root, shard in sorted(m["pins"].items())) \
        or "(none)"
    lines = [
        f"shard map: epoch {m['epoch']}, strategy {m['strategy']}, "
        f"{m['n_shards']} shards",
        f"  pins: {pins}",
        "",
        "epoch history:",
    ]
    for entry in doc["history"]:
        lines.append(f"  e{entry['epoch']:<3} {entry['reason']:<24} "
                     f"({len(entry['pins'])} pins)")
    lines += ["", "per-shard load (windowed ops/s):"]
    for k, rate in sorted(doc["shard_load"].items(), key=lambda kv: kv[0]):
        lines.append(f"  s{k}: {rate:>10,.0f}")
    mig = doc["migrations"]
    stats = mig["stats"]
    lines += ["",
              f"migrations: {stats['splits']} splits / "
              f"{stats['merges']} merges / {stats['aborted']} aborted, "
              f"{stats['entries_copied']} entries copied, "
              f"{len(mig['in_flight'])} in flight"]
    for rec in mig["in_flight"]:
        kind = "merge" if rec["merge"] else "split"
        lines.append(f"  [in-flight] {kind} {rec['root']} "
                     f"s{rec['src']}->s{rec['dst']} ({rec['state']})")
    auto = doc["autoscaler"]
    lines += ["", f"autoscaler: {auto['ticks']} ticks, "
                  f"{len(auto['decisions'])} decisions:"]
    for d in auto["decisions"]:
        lines.append(f"  t={d['t']:.2f} {d['action']:<5} {d['root']:<8} "
                     f"s{d['src']}->s{d['dst']} {d['note']}")
    return "\n".join(lines)


def run_shardmap(scale: str = "quick", seed: int = 0,
                 json_path: Optional[str] = None) -> str:
    """Entry point for ``repro shardmap``: run the demo, format the dump."""
    doc = run_shardmap_demo(scale=scale, seed=seed)
    if json_path == "-":
        return json.dumps(doc, indent=2, sort_keys=True)
    out = render_shardmap(doc)
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        out += f"\n\n[json] {json_path}"
    return out
