"""CSV export of figure results (for external plotting)."""

from __future__ import annotations

import csv
import io
from pathlib import Path

from .figures import FigureResult


def figure_to_csv(fig: FigureResult) -> str:
    """Long-format CSV: figure, panel, variant, x, ops_per_sec."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["figure", "panel", "variant", "x", "value"])
    for name in sorted(fig.series):
        panel, _, variant = name.partition("/")
        for x, y in fig.series[name]:
            writer.writerow([fig.figure, panel, variant or panel, x,
                             f"{y:.6g}"])
    return buf.getvalue()


def write_figure_csv(fig: FigureResult, directory: str | Path) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{fig.figure}.csv"
    path.write_text(figure_to_csv(fig))
    return path
