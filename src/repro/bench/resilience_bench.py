"""Overload / retry-storm campaign for the resilience layer.

The scenario every resilience mechanism in ``repro.resilience`` exists
for: an open-loop client population offers metadata reads at a multiple
of one ZooKeeper server's CPU capacity. Past the knee the legacy stack is
metastable — queue delay exceeds the client RPC timeout, every timeout
spawns retries, retries multiply the offered load, and the server burns
all of its CPU producing replies nobody is waiting for. Goodput (replies
that reach a still-waiting caller) collapses to near zero and stays
there.

With the resilience policy on — deadline propagation (the server sheds
queued work whose caller must have given up), a token-bucket retry
budget (drained buckets stop the amplification), and per-endpoint
circuit breakers (clients fast-fail during collapse and probe their way
back) — the same overload degrades instead: the server spends its CPU
only on live requests and goodput holds near capacity.

The committed gate (``benchmarks/BENCH_resilience.json``): at 2x the
saturation load, resilience-on goodput must be >= 1.5x resilience-off.
Both arms run the identical cluster, fault policy and offered load; only
the client-side resilience knobs differ.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..models.params import FaultToleranceParams, ResilienceParams, ZKParams
from ..sim.node import Cluster
from ..svc import TraceBus
from ..zk.client import ZKClient
from ..zk.ensemble import build_ensemble

#: The acceptance gate: resilience-on goodput >= FLOOR x off, at 2x load.
GATE_LOAD = "2.0"
GOODPUT_FLOOR = 1.5

_SCALES = {
    # scale -> (duration seconds, client count, load multiples swept)
    "quick": (4.0, 4, (0.5, 2.0)),
    "medium": (8.0, 6, (0.5, 2.0)),
    "full": (12.0, 8, (0.5, 1.0, 2.0, 3.0)),
}

#: One metadata read costs this much server CPU (inflated ~5x so a single
#: core saturates at a few hundred ops/s and the campaign stays small).
READ_CPU = 2e-3

#: Shared fault policy for BOTH arms: a short RPC timeout against a
#: deliberately deep queue plus eager retries — the storm recipe.
FAULT = dict(request_timeout=0.08, max_retries=8, backoff_base=0.02,
             backoff_cap=0.2, op_budget=1.0)

#: The resilience-on arm: deadlines + retry budget + breakers (hedging
#: stays off — duplicating reads into an overloaded server adds load).
RESILIENCE_ON = dict(deadline_propagation=True, retry_budget=10.0,
                     retry_refill=0.1, breaker_enabled=True,
                     breaker_threshold=5, breaker_cooldown=0.25)


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _run_arm(load: float, resilient: bool, duration: float,
             n_clients: int, seed: int) -> Dict:
    """One (load multiple, arm) cell: open-loop reads against one server."""
    cluster = Cluster(seed=seed)
    bus = TraceBus()
    server_node = cluster.add_node("zkserver", cores=1)
    ensemble = build_ensemble(cluster, [server_node], 1,
                              params=ZKParams(read_cpu=READ_CPU), bus=bus)
    fault = FaultToleranceParams(**FAULT)
    resilience = ResilienceParams(**RESILIENCE_ON) if resilient \
        else ResilienceParams()
    client_nodes = [cluster.add_node(f"client{i}")
                    for i in range(n_clients)]
    clients = [ZKClient(node, ensemble.endpoints, fault=fault,
                        name=f"load{i}", resilience=resilience)
               for i, node in enumerate(client_nodes)]

    def setup():
        yield from clients[0].connect()
        yield from clients[0].create("/f", b"x")
        for zkc in clients[1:]:
            yield from zkc.connect()

    cluster.sim.run(until=client_nodes[0].spawn(setup()))
    capacity = 1.0 / READ_CPU                       # one core of reads
    rate = capacity * load
    interval = n_clients / rate                     # per-client spacing
    t_start = cluster.sim.now
    stats = {"issued": 0, "ok": 0, "err": 0}
    latencies: List[float] = []

    def one_op(zkc):
        t0 = cluster.sim.now
        stats["issued"] += 1
        try:
            yield from zkc.exists("/f")
            stats["ok"] += 1
            latencies.append(cluster.sim.now - t0)
        except Exception:
            stats["err"] += 1

    def arrivals(node, zkc, offset):
        yield cluster.sim.timeout(offset)
        end = t_start + duration
        while cluster.sim.now < end:
            node.spawn(one_op(zkc))
            yield cluster.sim.timeout(interval)

    for i, (node, zkc) in enumerate(zip(client_nodes, clients)):
        # Stagger the streams so arrivals interleave evenly.
        node.spawn(arrivals(node, zkc, offset=i * interval / n_clients))
    # Tail: let in-flight ops resolve (each is bounded by op_budget).
    cluster.sim.run(until=t_start + duration + FAULT["op_budget"] + 0.5)

    key = "zk/zk0.read"
    return {
        "load": load,
        "resilient": resilient,
        "offered_ops_s": rate,
        "issued": stats["issued"],
        "ok": stats["ok"],
        "err": stats["err"],
        "goodput_ops_s": stats["ok"] / duration,
        "success_rate": stats["ok"] / stats["issued"] if stats["issued"]
        else 0.0,
        "latency_p95": _percentile(latencies, 0.95),
        "server": {
            "served": bus.ops.get(key),
            "expired": bus.expired.get(key),
            "rejected": bus.rejected.get(key),
        },
        "clients": {
            "retry_tokens_spent": sum(z.retry.budget.spent for z in clients),
            "retries_denied": sum(z.retry.budget.denied for z in clients),
            "breaker_trips": sum(z.breakers.trips() for z in clients),
            "breaker_fastfails": sum(z.breaker_fastfails for z in clients),
        },
    }


def run_resilience_overload(scale: str = "quick", seed: int = 0) -> Dict:
    """Run the off/on sweep; returns a JSON-ready result document."""
    duration, n_clients, loads = _SCALES[scale]
    capacity = 1.0 / READ_CPU
    runs: Dict[str, Dict[str, Dict]] = {}
    for load in loads:
        runs[f"{load:g}"] = {
            "off": _run_arm(load, False, duration, n_clients, seed),
            "on": _run_arm(load, True, duration, n_clients, seed),
        }
    gate_cell = runs.get(GATE_LOAD) or runs[max(runs, key=float)]
    off = gate_cell["off"]["goodput_ops_s"]
    on = gate_cell["on"]["goodput_ops_s"]
    return {
        "benchmark": "resilience_overload",
        "scale": scale,
        "seed": seed,
        "duration": duration,
        "n_clients": n_clients,
        "capacity_ops_s": capacity,
        "fault": dict(FAULT),
        "resilience_on": dict(RESILIENCE_ON),
        "loads": runs,
        "gate": {
            "load": GATE_LOAD,
            "goodput_off": off,
            "goodput_on": on,
            "on_over_off": on / off if off else float("inf"),
            "floor": GOODPUT_FLOOR,
        },
    }


def render_resilience_overload(doc: Dict) -> str:
    lines = [
        f"resilience overload campaign (scale={doc['scale']} "
        f"seed={doc['seed']}, capacity {doc['capacity_ops_s']:,.0f} reads/s,"
        f" {doc['n_clients']} open-loop clients x {doc['duration']:g}s):",
        f"  {'load':>5} {'arm':>4} {'offered/s':>10} {'goodput/s':>10} "
        f"{'ok%':>6} {'p95(ms)':>8} {'served':>7} {'expired':>8} "
        f"{'denied':>7} {'trips':>6}",
    ]
    for load in sorted(doc["loads"], key=float):
        for arm in ("off", "on"):
            r = doc["loads"][load][arm]
            lines.append(
                f"  {load:>4}x {arm:>4} {r['offered_ops_s']:>10,.0f} "
                f"{r['goodput_ops_s']:>10,.0f} "
                f"{r['success_rate'] * 100:>5.1f}% "
                f"{r['latency_p95'] * 1e3:>8.1f} "
                f"{r['server']['served']:>7} {r['server']['expired']:>8} "
                f"{r['clients']['retries_denied']:>7} "
                f"{r['clients']['breaker_trips']:>6}")
    g = doc["gate"]
    lines.append(
        f"  gate: goodput at {g['load']}x load, on/off = "
        f"{g['on_over_off']:.2f}x (floor {g['floor']}x)")
    return "\n".join(lines)


def write_resilience_bench_json(doc: Dict, path: str) -> str:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def check_resilience_regression(doc: Dict, baseline: Optional[Dict] = None,
                                tolerance: float = 0.25) -> List[str]:
    """Gate a fresh campaign: the on/off goodput floor always applies;
    with a committed ``baseline``, per-cell goodput must also stay within
    ``tolerance`` of it. Returns human-readable failures."""
    failures = []
    gate = doc.get("gate", {})
    ratio = gate.get("on_over_off", 0.0)
    if ratio < GOODPUT_FLOOR:
        failures.append(
            f"goodput at {gate.get('load')}x load: resilience-on is only "
            f"{ratio:.2f}x resilience-off (floor {GOODPUT_FLOOR}x)")
    if baseline is not None:
        for load, cell in sorted(doc.get("loads", {}).items()):
            base_cell = baseline.get("loads", {}).get(load)
            if base_cell is None:
                failures.append(f"baseline has no entry for load {load}x — "
                                f"regenerate the baseline JSON")
                continue
            for arm in ("off", "on"):
                base = base_cell.get(arm, {}).get("goodput_ops_s", 0.0)
                cur = cell[arm]["goodput_ops_s"]
                if base > 0 and cur < base * (1.0 - tolerance):
                    failures.append(
                        f"{arm} @ {load}x: goodput {cur:,.0f} ops/s is "
                        f">{tolerance:.0%} below baseline {base:,.0f}")
    return failures
