"""Elastic-vs-static benchmark: adaptivity as a throughput multiplier.

The shard-scaling sweep (``shard_bench``) shows a *sharded* metadata
plane beats one big ensemble — but only if load actually spreads across
the shards. This benchmark measures the case the static hash map cannot
fix: a **skewed, shifting** workload. All hot directories of a period
hash onto ONE shard under parent-hash placement (the names are searched
so md5 collides), and the hot set rotates between two periods (A then
B, colliding onto different shards). Per period, clients cycle through
``file_create`` and ``file_stat`` segments against the hot directories.

Four arms run the identical workload at identical hardware (8 ZK
servers as 4 independent 2-server ensembles) and identical pin budget:

- ``hash`` — plain parent-hash placement, no pins: both periods
  serialize on one shard's leader.
- ``tuned-A`` / ``tuned-B`` — the best *static* subtree layouts a
  well-informed operator could pick with the pin budget: period A's (or
  B's) hot directories pinned round-robin over the shards. Perfect for
  one period, useless for the other.
- ``elastic`` — the autoscaler watching windowed per-shard op rates,
  splitting the hot shard's directories away live and merging them back
  when the hot set rotates. Same ``max_pins`` budget as the tuned arms.

The acceptance gate (enforced by ``scripts/check_regression.py --suite
elastic`` in CI): elastic aggregate ``file_create`` AND ``file_stat``
throughput must be at least :data:`SPEEDUP_FLOOR` x the **best** static
arm. The win is pure adaptivity — no extra servers, no extra pins, just
moving them at the right time.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.fs import build_dufs_deployment
from ..mds import ShardMap
from ..models.params import ElasticParams, SimParams
from ..workloads.driver import run_phase

_SCALES = {
    # scale -> (n_client_nodes, n_procs, dirs_per_period, cycles, items)
    "quick": (8, 64, 8, 4, 100),
    "medium": (8, 64, 8, 5, 100),
    "full": (8, 96, 8, 6, 100),
}

#: Equal-hardware constants: total ZK budget and how it is sharded.
N_ZK_TOTAL = 8
N_SHARDS = 4
#: Equal-knowledge constant: every arm gets the same pin budget.
PIN_BUDGET = 8

#: The acceptance gate, per measured op kind.
GATED_OPS = ("file_create", "file_stat")
SPEEDUP_FLOOR = 1.3

ARMS = ("hash", "tuned-A", "tuned-B", "elastic")


def colliding_dirs(shard: int, count: int, tag: str,
                   n_shards: int = N_SHARDS) -> List[str]:
    """``count`` top-level directory names whose *children* all hash to
    ``shard`` under parent-hash placement — a worst-case hotspot the
    static map cannot spread."""
    ref = ShardMap(n_shards)
    out: List[str] = []
    i = 0
    while len(out) < count:
        d = f"/h{tag}{i}"
        if ref.child_shard(d) == shard:
            out.append(d)
        i += 1
    return out


def bench_elastic_params() -> ElasticParams:
    """The autoscaler policy used by the elastic arm: tighter clock than
    the defaults (the bench periods are seconds, not minutes) but the
    same hysteresis discipline and the shared PIN_BUDGET."""
    return ElasticParams.elastic_on(
        interval=0.04, window=0.12, hysteresis=2, cooldown=0.2,
        max_pins=PIN_BUDGET, min_window_ops=24, merge_min_ops=4,
        moves_per_tick=PIN_BUDGET, drain=0.0)


def _static_pins(dirs: Sequence[str], n_shards: int = N_SHARDS,
                 budget: int = PIN_BUDGET) -> Dict[str, int]:
    """Round-robin the hot directories over the shards — the best static
    answer for the period those directories dominate."""
    return {d: i % n_shards for i, d in enumerate(list(dirs)[:budget])}


def _build_arm(arm: str, hot: Dict[str, List[str]], n_clients: int,
               seed: int):
    pins = None
    autoscale = None
    if arm == "tuned-A":
        pins = _static_pins(hot["A"])
    elif arm == "tuned-B":
        pins = _static_pins(hot["B"])
    elif arm == "elastic":
        autoscale = bench_elastic_params()
    return build_dufs_deployment(
        n_zk=N_ZK_TOTAL, n_backends=2, n_client_nodes=n_clients,
        backend="local", params=SimParams(), seed=seed, n_shards=N_SHARDS,
        shard_subtrees=pins, autoscale=autoscale)


def _run_arm(arm: str, hot: Dict[str, List[str]], scale: str,
             seed: int) -> Dict:
    n_clients, n_procs, _dirs, cycles, items = _SCALES[scale]
    dep = _build_arm(arm, hot, n_clients, seed)
    sim = dep.cluster.sim
    nodes = [dep.node_for(p) for p in range(n_procs)]

    # Scaffold both periods' hot directories (unmeasured).
    def scaffold():
        m = dep.mount_for(0)
        for d in hot["A"] + hot["B"]:
            yield from m.mkdir(d)
    run_phase(sim, "scaffold", [nodes[0]], [scaffold()], 0)

    def segment(op: str, period: str, cycle: int, p: int):
        m = dep.mount_for(p)
        dirs = hot[period]
        for i in range(items):
            d = dirs[(p + i) % len(dirs)]
            path = f"{d}/f.{p}.{cycle}.{i}"
            if op == "file_create":
                yield from m.create(path)
            elif op == "file_stat":
                yield from m.stat(path)
            else:
                yield from m.unlink(path)

    # Each cycle is create -> stat -> remove against the period's hot
    # directories, mdtest-style. The remove segment is measured but not
    # gated: its job is realism (steady-state namespaces do not grow
    # without bound) and it keeps subtree moves cheap at every instant.
    ops_total = {op: 0 for op in GATED_OPS}
    time_total = {op: 0.0 for op in GATED_OPS}
    for period in ("A", "B"):
        for cycle in range(cycles):
            for op in GATED_OPS + ("file_remove",):
                sim.run(until=sim.now + 0.05)   # barrier slack
                workers = [segment(op, period, cycle, p)
                           for p in range(n_procs)]
                res = run_phase(sim, f"{period}{cycle}-{op}", nodes,
                                workers, items)
                if op in ops_total:
                    ops_total[op] += res.ops
                    time_total[op] += res.duration

    doc = {
        "arm": arm,
        "throughput": {op: (ops_total[op] / time_total[op]
                            if time_total[op] else 0.0)
                       for op in GATED_OPS},
        "ops": dict(ops_total),
    }
    if arm == "elastic":
        doc["elastic"] = dep.autoscaler.report()
        doc["stale_map_retries"] = sum(s.stats["stale_map_retries"]
                                       for s in dep.services)
    return doc


def run_elastic_bench(scale: str = "quick", seed: int = 0,
                      arms: Sequence[str] = ARMS) -> Dict:
    """Run every arm on the identical workload; returns a JSON-ready doc."""
    n_clients, n_procs, dirs_per_period, cycles, items = _SCALES[scale]
    # Period A's hot set collides onto shard 0, period B's onto shard 1.
    hot = {"A": colliding_dirs(0, dirs_per_period, "a"),
           "B": colliding_dirs(1, dirs_per_period, "b")}
    runs = {arm: _run_arm(arm, hot, scale, seed) for arm in arms}

    static_arms = [a for a in arms if a != "elastic"]
    best_static = {
        op: max((runs[a]["throughput"][op] for a in static_arms),
                default=0.0)
        for op in GATED_OPS
    }
    speedup = {
        op: (runs["elastic"]["throughput"][op] / best_static[op]
             if "elastic" in runs and best_static[op] else 0.0)
        for op in GATED_OPS
    }
    return {
        "benchmark": "elastic",
        "scale": scale,
        "seed": seed,
        "n_zk_total": N_ZK_TOTAL,
        "n_shards": N_SHARDS,
        "pin_budget": PIN_BUDGET,
        "n_procs": n_procs,
        "cycles": cycles,
        "items_per_segment": items,
        "hot_dirs": hot,
        "arms": runs,
        "best_static": best_static,
        "speedup_vs_best_static": speedup,
    }


def render_elastic_bench(doc: Dict) -> str:
    lines = [f"elastic plane (scale={doc['scale']} seed={doc['seed']}, "
             f"{doc['n_zk_total']} ZK servers as {doc['n_shards']} shards, "
             f"pin budget {doc['pin_budget']}):",
             f"  {'arm':<10} " + " ".join(f"{op:>14}" for op in GATED_OPS)]
    for arm, run in doc["arms"].items():
        cells = " ".join(f"{run['throughput'][op]:>14,.0f}"
                         for op in GATED_OPS)
        lines.append(f"  {arm:<10} {cells}")
    for op in GATED_OPS:
        lines.append(f"  gate: {op} elastic/best-static = "
                     f"{doc['speedup_vs_best_static'][op]:.2f}x "
                     f"(floor {SPEEDUP_FLOOR}x)")
    el = doc["arms"].get("elastic", {}).get("elastic")
    if el:
        mig = el["migrator"]
        lines.append(f"  elastic: {el['ticks']} ticks, "
                     f"epoch {el['epoch']}, {mig['splits']} splits / "
                     f"{mig['merges']} merges, "
                     f"{mig['entries_copied']} entries copied")
    return "\n".join(lines)


def write_elastic_bench_json(doc: Dict, path: str) -> str:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def check_elastic_regression(doc: Dict, baseline: Optional[Dict] = None,
                             tolerance: float = 0.25) -> List[str]:
    """Gate a fresh run: the adaptivity floor always applies; with a
    committed baseline, per-arm throughput must also stay within
    ``tolerance``. Returns human-readable failures (empty = pass)."""
    failures: List[str] = []
    for op in GATED_OPS:
        gate = doc.get("speedup_vs_best_static", {}).get(op, 0.0)
        if gate < SPEEDUP_FLOOR:
            failures.append(
                f"{op}: elastic speedup {gate:.2f}x over best static arm "
                f"< {SPEEDUP_FLOOR}x acceptance floor")
    if baseline is not None:
        for arm, run in doc.get("arms", {}).items():
            base_run = baseline.get("arms", {}).get(arm)
            if base_run is None:
                failures.append(f"baseline has no arm {arm!r} — "
                                f"regenerate the baseline JSON")
                continue
            for op in GATED_OPS:
                base = base_run.get("throughput", {}).get(op, 0.0)
                cur = run["throughput"][op]
                if base > 0 and cur < base * (1.0 - tolerance):
                    failures.append(
                        f"{op} @ {arm}: throughput {cur:,.0f} ops/s is "
                        f">{tolerance:.0%} below baseline {base:,.0f}")
    return failures
